#!/usr/bin/env bash
# Live-endpoint smoke: starts a gdlog_shell run with --serve-obs on an
# ephemeral port, scrapes the endpoints WHILE the run is in flight,
# follows the SSE progress stream to termination, re-scrapes during the
# post-run linger window, and validates every Prometheus exposition with
# tools/check_prometheus.py. Bodies land in the artifact directory for
# upload. Used by the CI obs-smoke step; runs locally too:
#
#   tools/serve_smoke.sh <build-dir> <artifact-dir>
set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-obs-artifacts/serve}
SHELL_BIN="$BUILD_DIR/tools/gdlog_shell"
CHECK="$(dirname "$0")/check_prometheus.py"
mkdir -p "$OUT_DIR"

# Eight runaway chains bounded by --deadline-ms: guarantees a run long
# enough that the mid-run scrapes land while run_state is "running" on
# any machine, and exercises serving across a guardrail bounded stop.
PROG=$(mktemp "${TMPDIR:-/tmp}/serve_smoke.XXXXXX.dl")
trap 'rm -f "$PROG"' EXIT
cat > "$PROG" <<'EOF'
c(0, 0). c(1, 0). c(2, 0). c(3, 0).
c(4, 0). c(5, 0). c(6, 0). c(7, 0).
c(K, M) <- c(K, N), M = N + 1, N < 2000000000.
EOF

"$SHELL_BIN" "$PROG" --deadline-ms 4000 \
  --serve-obs 0 --serve-linger-ms 8000 --progress \
  > "$OUT_DIR/run_stdout.txt" 2> "$OUT_DIR/run_stderr.txt" &
RUN_PID=$!

# The endpoint is announced on stderr before the run starts.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*obs endpoint: http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$OUT_DIR/run_stderr.txt" | head -1)
  [ -n "$PORT" ] && break
  sleep 0.05
done
if [ -z "$PORT" ]; then
  echo "serve_smoke: no obs endpoint announced" >&2
  cat "$OUT_DIR/run_stderr.txt" >&2
  kill "$RUN_PID" 2> /dev/null || true
  exit 1
fi
BASE="http://127.0.0.1:$PORT"
echo "serve_smoke: endpoint $BASE (run pid $RUN_PID)"

# --- Mid-run scrapes -------------------------------------------------------
sleep 0.5  # well inside the 4s run
curl -sSf "$BASE/healthz" > "$OUT_DIR/healthz.txt"
grep -q '^ok$' "$OUT_DIR/healthz.txt"

curl -sSf "$BASE/statusz" > "$OUT_DIR/statusz_live.json"
python3 - "$OUT_DIR/statusz_live.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["run_state"] == "running", doc["run_state"]
assert "version" in doc["build"]
EOF

# The live scrape must be a valid exposition with the run-state gauges,
# the vm series, the server's own request counter (the healthz above
# already landed), and real histogram series — mid-run.
curl -sSf -D "$OUT_DIR/metrics_headers.txt" "$BASE/metrics" \
  > "$OUT_DIR/metrics_live.prom"
grep -qi 'Content-Type: text/plain; version=0.0.4' \
  "$OUT_DIR/metrics_headers.txt"
python3 "$CHECK" "$OUT_DIR/metrics_live.prom" \
  --require gdlog_build_info \
  --require gdlog_engine_uptime_seconds \
  --require gdlog_engine_run_state \
  --require gdlog_vm_backend \
  --require gdlog_http_requests_total \
  --min-histograms 2
grep -q 'gdlog_engine_run_state{state="running"} 1' \
  "$OUT_DIR/metrics_live.prom"

# Mid-run the bounded ring has lapped far past run-start; recent round
# events prove the recorder is live.
curl -sSf "$BASE/blackbox" > "$OUT_DIR/blackbox_live.txt"
grep -q 'flight recorder:' "$OUT_DIR/blackbox_live.txt"
grep -q 'round-start' "$OUT_DIR/blackbox_live.txt"

# /runs is empty mid-run (reports are pushed only after a run ends).
test "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/runs/last")" = 404

# --- SSE stream to termination --------------------------------------------
# Blocks until the run's termination event closes the stream; the 30s
# cap is a hang backstop only.
curl -sSf -m 30 -N "$BASE/progress" > "$OUT_DIR/progress.sse"
# run-start is not asserted: the tap's ring has lapped it long before a
# mid-run subscriber connects (it replays only the retained window).
grep -q '^event: progress$' "$OUT_DIR/progress.sse"
grep -q '"kind":"round"' "$OUT_DIR/progress.sse"
grep -q '"kind":"termination"' "$OUT_DIR/progress.sse"
python3 - "$OUT_DIR/progress.sse" <<'EOF'
import json, sys
events = 0
for line in open(sys.argv[1]):
    if line.startswith("data: "):
        json.loads(line[6:])
        events += 1
assert events >= 3, f"only {events} SSE events"
print(f"serve_smoke: {events} SSE progress events, all valid JSON")
EOF

# --- Post-run scrapes (linger window) --------------------------------------
curl -sSf "$BASE/runs/last" > "$OUT_DIR/runs_last.json"
python3 - "$OUT_DIR/runs_last.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["termination"]["reason"] == "deadline", doc["termination"]
EOF
curl -sSf "$BASE/runs" > "$OUT_DIR/runs.json"

curl -sSf "$BASE/metrics" > "$OUT_DIR/metrics_final.prom"
python3 "$CHECK" "$OUT_DIR/metrics_final.prom" --min-histograms 2
grep -q 'gdlog_engine_run_state{state="stopped"} 1' \
  "$OUT_DIR/metrics_final.prom"

curl -sSf "$BASE/statusz" > "$OUT_DIR/statusz_final.json"

# The --progress stderr ticker printed live round lines.
grep -q 'round' "$OUT_DIR/run_stderr.txt"

# The runaway run ends in a bounded stop: exit code 3 by contract.
RC=0
wait "$RUN_PID" || RC=$?
if [ "$RC" -ne 3 ]; then
  echo "serve_smoke: expected bounded-stop exit 3, got $RC" >&2
  exit 1
fi
echo "serve_smoke: OK"
