#!/usr/bin/env python3
"""Compare two gdlog bench JSON reports and flag median regressions.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
      [--threshold 0.20] [--noise-mult 3.0] [--max-threshold 0.60]
      [--allow PATTERN ...] [--report-only]

Reports are the `bench_* --json out.json` format (schema
gdlog-bench-v1, see bench/bench_util.h). Experiments are matched by
title, rows by x, columns by name. For every timing column (name ending
in `_ms` or `_s`) the script compares the median over repetitions when
rep spreads were recorded, falling back to the single recorded value.
Derived ratio columns (anything else) are reported but never gate.

The gate is noise-aware: each cell's allowed slowdown is

    max(--threshold, --noise-mult * max(rel spread of either side))

capped at --max-threshold, where a side's relative spread is
(max - min) / median over its recorded repetitions. A cell whose own
reps are jittery earns a proportionally looser gate; a rock-steady cell
is held to the base threshold. Cells with no recorded spread use the
base threshold unchanged.

--allow PATTERN (repeatable) downgrades matching regressions to notes;
patterns are fnmatch globs tested against the cell label
"TITLE [COLUMN @ x=X]" and against the bare experiment title. Use it to
ride out a known, accepted regression until the baseline is refreshed.

Exit status: 1 when any non-allowlisted timing median regressed beyond
its effective threshold and --report-only was not given; 0 otherwise.
Experiments or rows present on only one side are listed as notes — new
benchmarks must not fail the gate retroactively.

The committed BENCH_baseline.json is the union of the experiment tables
of every gating bench binary (its "experiments" arrays concatenated);
refresh it with the workflow described in docs/PERFORMANCE.md.
"""

import argparse
import fnmatch
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "gdlog-bench-v1":
        sys.exit(f"{path}: not a gdlog-bench-v1 report")
    return report


def is_timing_column(name):
    return name.endswith("_ms") or name.endswith("_s")


def median_of(row, col_index):
    reps = row.get("reps", [])
    if col_index < len(reps):
        return reps[col_index]["median"]
    return row["values"][col_index]


def rel_spread(row, col_index):
    """(max - min) / median over the recorded reps, or None if absent."""
    reps = row.get("reps", [])
    if col_index >= len(reps):
        return None
    r = reps[col_index]
    if r.get("median", 0) <= 0:
        return None
    return max(0.0, (r.get("max", 0) - r.get("min", 0))) / r["median"]


def effective_threshold(base, noise_mult, cap, brow, bi, row, ci):
    """Noise-aware per-cell gate: spreads widen it, the cap bounds it."""
    spreads = [s for s in (rel_spread(brow, bi), rel_spread(row, ci))
               if s is not None]
    thr = base
    if spreads:
        thr = max(thr, noise_mult * max(spreads))
    return min(thr, cap)


def is_allowed(where, title, patterns):
    return any(fnmatch.fnmatch(where, p) or fnmatch.fnmatch(title, p)
               for p in patterns)


def index_rows(experiment):
    return {row["x"]: row for row in experiment["rows"]}


def compare(baseline, current, args):
    """Yields (kind, message): 'regression', 'allowed', 'note' or 'ok'."""
    base_by_title = {e["title"]: e for e in baseline["experiments"]}
    for exp in current["experiments"]:
        base = base_by_title.get(exp["title"])
        if base is None:
            yield "note", f"no baseline for experiment: {exp['title']}"
            continue
        base_rows = index_rows(base)
        base_cols = {c: i for i, c in enumerate(base["columns"])}
        for row in exp["rows"]:
            brow = base_rows.get(row["x"])
            if brow is None:
                yield "note", (f"{exp['title']}: x={row['x']:g} "
                               "has no baseline row")
                continue
            for ci, col in enumerate(exp["columns"]):
                bi = base_cols.get(col)
                if bi is None:
                    yield "note", f"{exp['title']}: new column {col}"
                    continue
                cur = median_of(row, ci)
                ref = median_of(brow, bi)
                where = f"{exp['title']} [{col} @ x={row['x']:g}]"
                if not is_timing_column(col):
                    yield "ok", f"{where}: {ref:g} -> {cur:g} (not gating)"
                    continue
                if ref <= 0:
                    yield "note", f"{where}: baseline median is {ref:g}"
                    continue
                thr = effective_threshold(args.threshold, args.noise_mult,
                                          args.max_threshold, brow, bi,
                                          row, ci)
                ratio = cur / ref
                line = (f"{where}: {ref:.4f} -> {cur:.4f} "
                        f"({ratio - 1.0:+.1%}, gate {thr:+.1%})")
                if ratio <= 1.0 + thr:
                    yield "ok", line
                elif is_allowed(where, exp["title"], args.allow):
                    yield "allowed", line + " [allowlisted]"
                else:
                    yield "regression", line


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench medians against a committed baseline.")
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="base allowed median slowdown fraction "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--noise-mult", type=float, default=3.0,
                        help="widen a cell's gate to this multiple of its "
                             "worst relative rep spread (default 3.0)")
    parser.add_argument("--max-threshold", type=float, default=0.60,
                        help="hard cap on any cell's effective gate "
                             "(default 0.60 = 60%%)")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="PATTERN",
                        help="fnmatch glob of cell labels or experiment "
                             "titles whose regressions become notes "
                             "(repeatable)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    args = parser.parse_args()

    baseline = load(args.baseline)
    regressions = 0
    for path in args.current:
        current = load(path)
        print(f"== {path} vs {args.baseline} "
              f"(base threshold {args.threshold:.0%}, noise x"
              f"{args.noise_mult:g}, cap {args.max_threshold:.0%}) ==")
        for kind, message in compare(baseline, current, args):
            tag = {"regression": "REGRESSION", "allowed": "allowed",
                   "note": "note", "ok": "ok"}[kind]
            print(f"  [{tag}] {message}")
            if kind == "regression":
                regressions += 1
    if regressions:
        print(f"{regressions} median regression(s) beyond threshold")
        if args.report_only:
            print("(report-only mode: exiting 0)")
            return 0
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
