#!/usr/bin/env python3
"""Validates a Prometheus text-format (0.0.4) exposition.

Used by the CI obs-smoke job against live scrapes of the embedded
observability endpoint (GET /metrics). Checks, per the exposition
format spec:

  - every sample line parses as `name[{labels}] value` with a legal
    metric name and a finite-or-infinite float value;
  - every sampled metric is declared by exactly one preceding # TYPE
    line with kind counter | gauge | histogram;
  - counter samples are non-negative;
  - label values are properly quoted with only \\" \\\\ \\n escapes;
  - every histogram exposes _bucket series that are cumulative in le
    order, end in le="+Inf", and agree with the _count sample, plus a
    _sum sample (per labelled series independently);
  - requested series (--require NAME) are present, and at least
    --min-histograms distinct histograms exist.

Exit status 0 on success; 1 with one diagnostic per violation.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{label="value",...} value  -- labels optional
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\["\\n])*)"'
)


def parse_labels(raw, errors, line):
    """'{a="b",c="d"}' -> dict; appends diagnostics on malformed input."""
    if raw is None:
        return {}
    body = raw[1:-1]
    labels = {}
    pos = 0
    while pos < len(body):
        m = LABEL_RE.match(body, pos)
        if not m:
            errors.append(f"bad label syntax: {line}")
            return labels
        labels[m.group("key")] = m.group("val")
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"bad label separator: {line}")
                return labels
            pos += 1
    return labels


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def series_key(name, labels, drop=()):
    kept = sorted((k, v) for k, v in labels.items() if k not in drop)
    return name + "|" + "|".join(f"{k}={v}" for k, v in kept)


def check(text, require, min_histograms):
    errors = []
    type_of = {}
    sampled = set()
    # histogram bookkeeping, per labelled series
    buckets = {}      # key -> list of (le, count) in exposition order
    hist_counts = {}  # key -> _count value
    hist_sums = {}    # key -> _sum value

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                errors.append(f"line {lineno}: bad comment: {line}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: bad TYPE: {line}")
                    continue
                _, _, name, kind = parts
                if not NAME_RE.match(name):
                    errors.append(f"line {lineno}: bad metric name: {name}")
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    errors.append(f"line {lineno}: bad kind: {line}")
                if name in type_of:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                type_of[name] = kind
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparsable sample: {line}")
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels"), errors, line)
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad value: {line}")
            continue

        # Resolve the declaring TYPE: exact, or the histogram base for
        # the _bucket/_count/_sum series.
        base = name
        kind = type_of.get(name)
        if kind is None:
            for suffix in ("_bucket", "_count", "_sum"):
                if name.endswith(suffix):
                    candidate = name[: -len(suffix)]
                    if type_of.get(candidate) == "histogram":
                        base = candidate
                        kind = "histogram"
                        break
        if kind is None:
            errors.append(f"line {lineno}: sample without TYPE: {name}")
            continue
        sampled.add(base)
        sampled.add(name)

        if kind == "counter" and value < 0:
            errors.append(f"line {lineno}: negative counter: {line}")
        if kind == "histogram":
            key = series_key(base, labels, drop=("le",))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: bucket without le: {line}")
                    continue
                buckets.setdefault(key, []).append(
                    (parse_value(labels["le"]), value))
            elif name.endswith("_count"):
                hist_counts[key] = value
            elif name.endswith("_sum"):
                hist_sums[key] = value

    for key, series in buckets.items():
        les = [le for le, _ in series]
        counts = [c for _, c in series]
        if les != sorted(les):
            errors.append(f"{key}: buckets not in le order")
        if counts != sorted(counts):
            errors.append(f"{key}: bucket counts not cumulative")
        if not les or les[-1] != math.inf:
            errors.append(f"{key}: missing le=\"+Inf\" bucket")
        elif key in hist_counts and counts[-1] != hist_counts[key]:
            errors.append(
                f"{key}: +Inf bucket {counts[-1]} != _count "
                f"{hist_counts[key]}")
        if key not in hist_sums:
            errors.append(f"{key}: missing _sum")
        if key not in hist_counts:
            errors.append(f"{key}: missing _count")

    histogram_count = len({k.split("|", 1)[0] for k in buckets})
    if histogram_count < min_histograms:
        errors.append(
            f"only {histogram_count} histogram(s), need {min_histograms}")
    for name in require:
        if name not in sampled:
            errors.append(f"required series missing: {name}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("path", help="exposition file, or - for stdin")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this metric name is sampled "
                         "(repeatable)")
    ap.add_argument("--min-histograms", type=int, default=0,
                    help="fail unless at least N distinct histograms exist")
    args = ap.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as f:
            text = f.read()

    errors = check(text, args.require, args.min_histograms)
    if errors:
        for e in errors:
            print(f"check_prometheus: {e}", file=sys.stderr)
        return 1
    samples = sum(1 for l in text.splitlines()
                  if l.strip() and not l.startswith("#"))
    print(f"check_prometheus: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
