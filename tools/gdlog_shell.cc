// gdlog_shell — command-line driver for the engine.
//
//   gdlog_shell PROGRAM.dl [options]        batch mode
//   gdlog_shell --interactive [options]     dot-command REPL on stdin
//
// Batch options:
//   --query pred/arity   print one relation (repeatable; default: all IDB)
//   --seed N             choice tie-break seed (explore stable models)
//   --lint               lint only: print diagnostics, exit 1 on errors
//   --lint-json          like --lint, but machine-readable JSON
//   --report             print the Section 4 analysis report
//   --rewrite            print the first-order rewriting (Sections 2-3)
//   --verify             run the Gelfond-Lifschitz stable-model check
//   --stats              print evaluation statistics (per-rule profiles)
//   --provenance         record derivation provenance and the choice audit
//   --why TARGET         print a proof tree (repeatable; implies --provenance)
//   --why-dot TARGET     like --why, but Graphviz DOT output
//   --choices            print the choice-audit trail (implies --provenance)
//   --explain-analyze    per-goal planner estimates vs measured actuals
//   --json-report        print the machine-readable run report JSON
//   --metrics-out PATH   write metrics in Prometheus text format
//                        (atomic: temp file + rename, scraper-safe)
//   --serve-obs PORT     serve the live observability endpoint on
//                        127.0.0.1:PORT for the process lifetime
//                        (0 = ephemeral; the bound port is announced on
//                        stderr). Endpoints: /metrics /healthz /statusz
//                        /runs /runs/last /trace /blackbox /progress
//   --serve-linger-ms N  keep serving N ms after the run finished (lets
//                        scrapers collect /runs/last before exit)
//   --progress           stderr ticker: one line per fixpoint round
//   --trace PATH         record a phase timeline, write Chrome trace JSON
//   --no-merge           disable congruence merging ((R,Q,L) ablation)
//   --linear-least       naive linear-scan retrieval instead of the heap
//   --threads N          parallel evaluation workers (0 = hardware, 1 = serial)
//   --backend NAME       evaluation backend: interp (default) | vm (bytecode;
//                        bit-identical results, rejected rule shapes fall
//                        back to the interpreter — see docs/VM.md)
//   --dump-plan          run, then print only the bytecode disassembly of the
//                        compiled rules (the `.plan` golden format) and exit
//   --no-planner         parser-order joins (cost-based planner ablation)
//   --no-absint          skip abstract interpretation (types/intervals/bounds)
//   --no-priors          planner ignores analysis row bounds (ablation)
//   --deadline-ms N      stop the run after N wall-clock milliseconds
//   --max-tuples N       stop after N derived tuples
//   --max-stages N       stop after N next-rule stage advances
//   --max-memory-mb N    stop when tracked memory exceeds N MiB
//   --faults SPEC        deterministic fault injection (probe[@N],...)
//   --db-dir PATH        durable database directory (WAL + checkpoints);
//                        inline facts are WAL-logged, recovered EDB facts
//                        from a previous run are replayed on open
//   --fsync POLICY       WAL fsync policy: always | batch | off
//   --checkpoint-every N snapshot automatically every N logged mutations
//
// A run stopped by a limit (or by SIGINT) is a *bounded stop*: the shell
// prints the termination reason plus whatever partial results were asked
// for, and exits 3 (hard errors exit 1). A second SIGINT exits at once.
//
// With --lint/--lint-json the program is parsed and analyzed but never
// evaluated; --query specs become the lint's query roots (enabling the
// unreachable-rule check GD010). Diagnostics include the abstract
// interpreter's findings (GD012/GD013/GD3xx), and the JSON output
// carries the inferred signatures under an "analysis" key (null with
// --no-absint, absent when the program fails to load).
//
// A --why/--why-dot TARGET is either a ground atom (`prm(0,1,0,4)`) or
// `pred/arity` for the relation's most recently derived row.
//
// Interactive commands (see .help):
//   .load PATH | .run | .query pred/arity | .lint | .types | .stats | .json
//   .explain | .blackbox | .metrics [PATH]
//   .why [text|json|dot] TARGET | .choices | .provenance on|off
//   .report | .rewrite | .verify | .trace on [PATH] | .trace off
//   .serve [PORT] | .serve off
//   .open DIR [POLICY] | .save | .seed N | .quit
//
// Example:
//   $ gdlog_shell prim.dl --query prm/4 --verify --trace prim_trace.json
//   $ printf '.load prim.dl\n.run\n.stats\n' | gdlog_shell --interactive
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/absint/absint.h"
#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "api/engine.h"
#include "obs/json.h"
#include "storage/tuple.h"

namespace {

// Exit code for a run ended by a guardrail (limit, cancel, OOM) with its
// partial results printed; distinct from 1 = hard error.
constexpr int kExitBoundedStop = 3;

// SIGINT handling: the first Ctrl-C cancels the in-flight run (one
// relaxed atomic store — async-signal-safe), the second aborts the
// process. With no run in flight SIGINT exits immediately.
std::atomic<gdlog::Engine*> g_active_engine{nullptr};
std::atomic<int> g_sigint_count{0};

extern "C" void HandleSigint(int) {
  const int n = g_sigint_count.fetch_add(1, std::memory_order_relaxed) + 1;
  gdlog::Engine* engine = g_active_engine.load(std::memory_order_relaxed);
  if (engine == nullptr || n >= 2) _exit(130);
  engine->RequestCancel();
}

void InstallSigintHandler() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSigint;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
}

/// Runs the engine with the SIGINT-cancel window open.
gdlog::Status RunWithCancel(gdlog::Engine* engine) {
  g_sigint_count.store(0, std::memory_order_relaxed);
  g_active_engine.store(engine, std::memory_order_relaxed);
  const gdlog::Status st = engine->Run();
  g_active_engine.store(nullptr, std::memory_order_relaxed);
  return st;
}

/// --progress: a background thread draining the engine's progress tap
/// to stderr, one status line per ~100ms (the tap is multi-reader, so
/// the ticker composes with a concurrent /progress SSE stream). The
/// destructor drains once more, so the terminal event always prints.
class ProgressTicker {
 public:
  explicit ProgressTicker(const gdlog::Engine* engine) : engine_(engine) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~ProgressTicker() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    uint64_t cursor = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      cursor = Drain(cursor);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    Drain(cursor);
  }

  /// Prints the newest event of the batch (natural rate limiting: fast
  /// runs produce many rounds per poll, one line summarizes them).
  uint64_t Drain(uint64_t cursor) {
    const gdlog::ProgressTap* tap = engine_->progress();
    if (tap == nullptr) return cursor;
    const std::vector<gdlog::ProgressEvent> events = tap->Since(cursor);
    if (events.empty()) return cursor;
    cursor = events.back().seq;
    if (events.back().kind != gdlog::ProgressKind::kRunStart) {
      std::fprintf(stderr, "%s\n",
                   gdlog::ProgressEventLine(events.back()).c_str());
    }
    return cursor;
  }

  const gdlog::Engine* engine_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Announces the live endpoint (parseable by scripts waiting on it).
void AnnounceObsEndpoint(const gdlog::Engine& engine) {
  if (engine.obs_server() != nullptr) {
    std::fprintf(stderr, "%% obs endpoint: http://127.0.0.1:%u\n",
                 engine.obs_http_port());
  }
}

void PrintTermination(const gdlog::Engine& engine) {
  const gdlog::RunOutcome& o = engine.outcome();
  std::fprintf(stderr, "%% run stopped: %.*s\n",
               static_cast<int>(gdlog::TerminationReasonName(o.reason).size()),
               gdlog::TerminationReasonName(o.reason).data());
  std::fprintf(stderr, "%%   %s\n", o.status.ToString().c_str());
  std::fprintf(stderr,
               "%%   partial results retained (%llu guard checks, peak "
               "tracked memory %llu bytes)\n",
               static_cast<unsigned long long>(o.guard_checks),
               static_cast<unsigned long long>(o.peak_memory_bytes));
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s PROGRAM.dl [--query pred/arity]... [--seed N] "
               "[--lint] [--lint-json] "
               "[--report] [--rewrite] [--verify] [--stats] "
               "[--provenance] [--why TARGET]... [--why-dot TARGET]... "
               "[--choices] "
               "[--explain-analyze] [--json-report] [--metrics-out PATH] "
               "[--serve-obs PORT] [--serve-linger-ms N] [--progress] "
               "[--trace PATH] [--no-merge] [--linear-least] "
               "[--threads N] [--backend interp|vm] [--dump-plan] "
               "[--no-planner] [--no-absint] [--no-priors] "
               "[--deadline-ms N] [--max-tuples N] [--max-stages N] "
               "[--max-memory-mb N] [--faults SPEC] "
               "[--db-dir PATH] [--fsync always|batch|off] "
               "[--checkpoint-every N]\n"
               "       %s --interactive [options]\n",
               argv0, argv0);
}

struct Query {
  std::string pred;
  uint32_t arity = 0;
};

bool ParseQuerySpec(const std::string& spec, Query* q) {
  const auto slash = spec.find('/');
  if (slash == std::string::npos) return false;
  q->pred = spec.substr(0, slash);
  q->arity = static_cast<uint32_t>(std::atoi(spec.c_str() + slash + 1));
  return true;
}

void PrintRelation(const gdlog::Engine& engine, const std::string& pred,
                   uint32_t arity) {
  const gdlog::Relation* rel = engine.Find(pred, arity);
  std::printf("%% %s/%u (%zu facts)\n", pred.c_str(), arity,
              rel ? rel->size() : 0);
  if (!rel) return;
  for (const auto& row : engine.Query(pred, arity)) {
    std::printf("%s%s.\n", pred.c_str(),
                gdlog::TupleToString(engine.store(),
                                     gdlog::TupleView(row))
                    .c_str());
  }
}

/// One percentile row of the `.stats` histogram table; silent when the
/// histogram was never registered or never recorded.
void PrintHistPercentiles(const char* label, const gdlog::Histogram* h,
                          double scale, const char* unit) {
  if (h == nullptr || h->count() == 0) return;
  std::printf("%%   %-22s p50 %10.1f  p90 %10.1f  p99 %10.1f %-4s (n=%llu)\n",
              label, h->Quantile(0.5) / scale, h->Quantile(0.9) / scale,
              h->Quantile(0.99) / scale, unit,
              static_cast<unsigned long long>(h->count()));
}

void PrintStats(const gdlog::Engine& engine) {
  const gdlog::FixpointStats* s = engine.stats();
  if (s == nullptr) {
    std::printf("%% no run yet\n");
    return;
  }
  if (s->termination != gdlog::TerminationReason::kCompleted) {
    const std::string_view reason =
        gdlog::TerminationReasonName(s->termination);
    std::printf("%% termination: %.*s (partial results)\n",
                static_cast<int>(reason.size()), reason.data());
  }
  const gdlog::EnginePhaseTimes& ph = engine.phase_times();
  std::printf(
      "%% phases (ms): parse %.3f  analyze %.3f  absint %.3f  compile %.3f  "
      "eval %.3f\n",
      ph.parse_ns / 1e6, ph.analyze_ns / 1e6, ph.absint_ns / 1e6,
      ph.compile_ns / 1e6, ph.eval_ns / 1e6);
  if (s->saturate_ns > 0 || s->gamma_ns > 0) {
    std::printf("%%   eval split: saturate %.3f ms, gamma %.3f ms\n",
                s->saturate_ns / 1e6, s->gamma_ns / 1e6);
  }
  std::printf(
      "%% fixpoint: %llu gamma firings, %llu stages, %llu saturation "
      "rounds, %llu tuples inserted, %llu rows scanned, Q high-water %zu\n",
      static_cast<unsigned long long>(s->gamma_firings),
      static_cast<unsigned long long>(s->stages_assigned),
      static_cast<unsigned long long>(s->saturation_rounds),
      static_cast<unsigned long long>(s->exec.inserts),
      static_cast<unsigned long long>(s->exec.scan_rows),
      s->queues.max_queue);
  const gdlog::MetricsRegistry* m = engine.metrics();
  if (m != nullptr) {
    std::printf("%% histograms (p50/p90/p99):\n");
    PrintHistPercentiles("delta rows/round", m->FindHistogram("seminaive.delta_rows"),
                         1.0, "rows");
    PrintHistPercentiles("pool queue wait", m->FindHistogram("pool.queue_wait_ns"),
                         1e3, "us");
    PrintHistPercentiles("pops per gamma fire",
                         m->FindHistogram("choice.pops_per_fire"), 1.0, "pops");
  }
  const std::vector<gdlog::RuleProfile>* profiles = engine.RuleProfiles();
  if (profiles == nullptr) return;
  std::printf("%% %-4s %-18s %-9s %10s %9s %9s %9s %9s %10s %9s %9s\n",
              "rule", "head", "kind", "invoc", "firings", "tuples", "dedup",
              "cands", "wall_ms", "p50_us", "p99_us");
  for (size_t i = 0; i < profiles->size(); ++i) {
    const gdlog::RuleProfile& p = (*profiles)[i];
    if (p.head.empty()) continue;
    std::printf(
        "%% %-4zu %-18s %-9s %10llu %9llu %9llu %9llu %9llu %10.3f", i,
        p.head.c_str(), p.kind,
        static_cast<unsigned long long>(p.invocations),
        static_cast<unsigned long long>(p.firings),
        static_cast<unsigned long long>(p.tuples),
        static_cast<unsigned long long>(p.dedup_hits),
        static_cast<unsigned long long>(p.candidates), p.wall_ns / 1e6);
    if (p.latency != nullptr && p.latency->count() > 0) {
      std::printf(" %9.1f %9.1f", p.latency->Quantile(0.5) / 1e3,
                  p.latency->Quantile(0.99) / 1e3);
    }
    std::printf("\n");
  }
}

/// Lints `text` without evaluating it; returns 0 when error-free.
/// `queries` (pred/arity specs) become the lint's query roots. When the
/// program loads, diagnostics include the abstract interpreter's
/// findings and the JSON output carries the inferred signatures under
/// "analysis"; a program that fails to load falls back to the
/// structural linter alone (which reports the load failure too).
int RunLint(const std::string& name, const std::string& text,
            const std::vector<Query>& queries,
            const gdlog::EngineOptions& options, bool json) {
  gdlog::LintOptions lopts;
  for (const Query& q : queries) {
    lopts.roots.push_back({q.pred, q.arity});
  }
  gdlog::Engine engine(options);
  if (!engine.LoadProgram(text).ok()) {
    lopts.stage = options.stage;
    gdlog::ValueStore store;
    const gdlog::LintResult result = gdlog::LintSource(&store, text, lopts);
    if (json) {
      std::printf("%s\n",
                  gdlog::DiagnosticsJson(result.diagnostics, name).c_str());
    } else {
      std::printf("%s", gdlog::RenderDiagnostics(result.diagnostics, name)
                            .c_str());
    }
    return result.clean() ? 0 : 1;
  }
  auto lr = engine.Lint(lopts);
  if (!lr.ok()) {
    std::fprintf(stderr, "lint error: %s\n", lr.status().ToString().c_str());
    return 1;
  }
  if (json) {
    gdlog::JsonWriter w;
    w.BeginObject();
    gdlog::DiagnosticsJsonContents(lr->diagnostics, name, &w);
    w.Key("analysis");
    if (options.static_analysis) {
      gdlog::absint::AnalysisOptions aopts;
      const gdlog::absint::AnalysisResult ar = gdlog::absint::AnalyzeProgram(
          *engine.program(), engine.analysis()->expanded, aopts);
      gdlog::absint::AnalysisToJson(ar, &w);
    } else {
      w.Null();
    }
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    std::printf("%s",
                gdlog::RenderDiagnostics(lr->diagnostics, name).c_str());
  }
  return lr->clean() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Interactive mode
// ---------------------------------------------------------------------------

/// REPL state. Engines are single-shot, so `.run` after a completed run
/// (and every option change) rebuilds the engine from the saved text.
/// With a durable database attached (.open / --db-dir) an engine can
/// exist with no program loaded at all: it holds the recovered EDB,
/// queryable via .query, awaiting a .load.
struct Shell {
  gdlog::EngineOptions options;
  std::string program_path;
  std::string program_text;
  std::unique_ptr<gdlog::Engine> engine;

  bool Reload() {
    engine = std::make_unique<gdlog::Engine>(options);
    if (!engine->durability_status().ok()) {
      std::printf("error: %s\n",
                  engine->durability_status().ToString().c_str());
      engine.reset();
      return false;
    }
    if (program_text.empty()) return true;  // recovered EDB only
    // A durable engine loads inline facts through AddFact so they
    // traverse the WAL (see Engine::LoadProgramDurable).
    const gdlog::Status st = options.durability.dir.empty()
                                 ? engine->LoadProgram(program_text)
                                 : engine->LoadProgramDurable(program_text);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      engine.reset();
      return false;
    }
    return true;
  }
};

void PrintHelp() {
  std::printf(
      ".load PATH        load a program (replaces the current one)\n"
      ".run              evaluate to the choice fixpoint\n"
      ".query pred/arity print one relation\n"
      ".lint             compile-time diagnostics for the loaded program\n"
      ".types            inferred predicate signatures (types, intervals,\n"
      "                  cardinality bounds) from the abstract interpreter\n"
      ".stats            per-phase and per-rule evaluation statistics\n"
      ".explain          planner estimates vs measured actuals per goal\n"
      ".why [FMT] TARGET proof tree for a derived tuple (FMT: text|json|dot);\n"
      "                  TARGET is an atom like p(1,2) or pred/arity\n"
      ".choices          choice-audit trail: one line per gamma firing\n"
      ".provenance on|off  record provenance + choice audit on the next .run\n"
      ".blackbox         dump the flight-recorder ring (recent events)\n"
      ".metrics [PATH]   Prometheus text metrics (to PATH or stdout)\n"
      ".json             machine-readable run report (RunReport JSON)\n"
      ".report           Section 4 stage-analysis report\n"
      ".rewrite          first-order rewriting (Sections 2-3)\n"
      ".verify           Gelfond-Lifschitz stable-model check\n"
      ".trace on [PATH]  record a timeline; write Chrome trace on .run\n"
      ".trace off        disable tracing\n"
      ".serve [PORT]     start the live observability HTTP endpoint\n"
      ".serve off        stop serving (takes effect on next reload)\n"
      ".open DIR [POLICY] attach a durable database (WAL + checkpoints);\n"
      "                  recovers any existing state; POLICY: always|batch|off\n"
      ".save             checkpoint the durable database (snapshot + WAL rotate)\n"
      ".seed N           choice tie-break seed\n"
      ".help             this text\n"
      ".quit             exit\n");
}

int RunInteractive(gdlog::EngineOptions options) {
  InstallSigintHandler();
  Shell sh;
  sh.options = std::move(options);
  const bool tty = isatty(STDIN_FILENO);
  std::string line;
  for (;;) {
    if (tty) {
      std::printf("gdlog> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::istringstream iss(line);
    std::string cmd, arg1, arg2;
    iss >> cmd >> arg1 >> arg2;
    if (cmd.empty() || cmd[0] == '%' || cmd[0] == '#') continue;

    if (cmd == ".quit" || cmd == ".exit") break;
    if (cmd == ".help") {
      PrintHelp();
    } else if (cmd == ".load") {
      if (arg1.empty()) {
        std::printf("usage: .load PATH\n");
        continue;
      }
      std::ifstream in(arg1);
      if (!in) {
        std::printf("error: cannot open %s\n", arg1.c_str());
        continue;
      }
      std::ostringstream text;
      text << in.rdbuf();
      sh.program_path = arg1;
      sh.program_text = text.str();
      if (sh.Reload()) std::printf("loaded %s\n", arg1.c_str());
    } else if (cmd == ".open") {
      if (arg1.empty()) {
        std::printf("usage: .open DIR [always|batch|off]\n");
        continue;
      }
      sh.options.durability.dir = arg1;
      if (!arg2.empty()) sh.options.durability.fsync = arg2;
      if (!sh.Reload()) {
        sh.options.durability.dir.clear();
        continue;
      }
      const gdlog::DurableStore::RecoveryInfo& rec =
          sh.engine->durable()->recovery();
      if (rec.opened_existing) {
        std::printf("opened %s: snapshot seq %llu (%llu facts), %llu WAL "
                    "record(s) replayed%s\n",
                    arg1.c_str(),
                    static_cast<unsigned long long>(rec.snapshot_seq),
                    static_cast<unsigned long long>(rec.snapshot_facts),
                    static_cast<unsigned long long>(rec.wal_records_replayed),
                    rec.wal_tail_dropped ? " (torn tail dropped)" : "");
      } else {
        const std::string_view pol =
            gdlog::FsyncPolicyName(sh.engine->durable()->fsync_policy());
        std::printf("created %s (fsync=%.*s)\n", arg1.c_str(),
                    static_cast<int>(pol.size()), pol.data());
      }
    } else if (cmd == ".save") {
      if (!sh.engine || sh.engine->durable() == nullptr) {
        std::printf("error: no durable database (.open DIR first)\n");
        continue;
      }
      const gdlog::Status st = sh.engine->Checkpoint();
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      const gdlog::DurableStore& d = *sh.engine->durable();
      std::printf("checkpoint: snapshot seq %llu, %llu facts, %llu bytes, "
                  "WAL rotated to seq %llu\n",
                  static_cast<unsigned long long>(d.snapshot_seq()),
                  static_cast<unsigned long long>(d.stats().edb_facts),
                  static_cast<unsigned long long>(d.stats().checkpoint_bytes),
                  static_cast<unsigned long long>(d.wal_seq()));
    } else if (cmd == ".trace") {
      if (arg1 == "on") {
        sh.options.obs.enabled = true;
        sh.options.obs.trace_path =
            arg2.empty() ? "gdlog_trace.json" : arg2;
        std::printf("tracing on -> %s\n",
                    sh.options.obs.trace_path.c_str());
      } else if (arg1 == "off") {
        sh.options.obs = gdlog::ObsOptions{};
        std::printf("tracing off\n");
      } else {
        std::printf("usage: .trace on [PATH] | .trace off\n");
        continue;
      }
      if (!sh.program_text.empty()) sh.Reload();
    } else if (cmd == ".serve") {
      if (arg1 == "off") {
        sh.options.obs_http = gdlog::ObsHttpOptions{};
        std::printf("serving off\n");
        if (sh.engine) sh.Reload();
        continue;
      }
      sh.options.obs_http.enabled = true;
      sh.options.obs_http.port = static_cast<uint16_t>(
          arg1.empty() ? 0 : std::strtoul(arg1.c_str(), nullptr, 10));
      // The server lives inside the engine, so rebuild to (re)bind.
      if (!sh.Reload()) continue;
      if (sh.engine->obs_server() == nullptr) {
        std::printf("error: %s\n",
                    sh.engine->obs_http_status().ToString().c_str());
        sh.options.obs_http = gdlog::ObsHttpOptions{};
        continue;
      }
      std::printf("serving http://%s:%u (endpoints: /metrics /healthz "
                  "/statusz /runs /runs/last /trace /blackbox /progress)\n",
                  sh.options.obs_http.bind_address.c_str(),
                  sh.engine->obs_http_port());
    } else if (cmd == ".seed") {
      sh.options.eval.choice_seed = std::strtoull(arg1.c_str(), nullptr, 10);
      if (!sh.program_text.empty()) sh.Reload();
    } else if (cmd == ".run") {
      if (!sh.engine && !sh.program_text.empty()) sh.Reload();
      if (!sh.engine) {
        std::printf("error: no program loaded (.load PATH first)\n");
        continue;
      }
      if (sh.engine->has_run() && !sh.Reload()) continue;
      const gdlog::Status st = RunWithCancel(sh.engine.get());
      if (!st.ok() && !sh.engine->has_run()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      if (!st.ok()) PrintTermination(*sh.engine);
      const gdlog::FixpointStats* s = sh.engine->stats();
      std::printf("%s: %llu tuples inserted, %llu gamma firings\n",
                  st.ok() ? "ok" : "stopped",
                  static_cast<unsigned long long>(s->exec.inserts),
                  static_cast<unsigned long long>(s->gamma_firings));
      if (sh.options.obs.enabled && !sh.options.obs.trace_path.empty()) {
        std::printf("trace written to %s\n",
                    sh.options.obs.trace_path.c_str());
      }
    } else if (cmd == ".query") {
      Query q;
      if (!ParseQuerySpec(arg1, &q)) {
        std::printf("usage: .query pred/arity\n");
        continue;
      }
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      PrintRelation(*sh.engine, q.pred, q.arity);
    } else if (cmd == ".lint") {
      if (sh.program_text.empty()) {
        std::printf("error: no program loaded (.load PATH first)\n");
        continue;
      }
      RunLint(sh.program_path, sh.program_text, {}, sh.options,
              /*json=*/arg1 == "json");
    } else if (cmd == ".types") {
      if (!sh.engine) {
        std::printf("error: no program loaded (.load PATH first)\n");
        continue;
      }
      auto r = sh.engine->TypeSignaturesText();
      if (r.ok()) {
        std::printf("%s", r->c_str());
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else if (cmd == ".stats") {
      if (sh.engine) {
        PrintStats(*sh.engine);
      } else {
        std::printf("%% no run yet\n");
      }
    } else if (cmd == ".explain") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      auto r = sh.engine->ExplainAnalyzeText();
      if (r.ok()) {
        std::printf("%s", r->c_str());
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else if (cmd == ".provenance") {
      if (arg1 == "on") {
        sh.options.provenance = true;
        std::printf("provenance on (takes effect on the next .run)\n");
      } else if (arg1 == "off") {
        sh.options.provenance = false;
        sh.options.eval.provenance = false;
        std::printf("provenance off\n");
      } else {
        std::printf("usage: .provenance on | .provenance off\n");
        continue;
      }
      if (!sh.program_text.empty()) sh.Reload();
    } else if (cmd == ".why") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      // Optional leading format token, then the target; tuple text may
      // have been split on spaces, so glue the remaining tokens back.
      std::string format = "text";
      std::string target;
      if (arg1 == "text" || arg1 == "json" || arg1 == "dot") {
        format = arg1;
        target = arg2;
      } else {
        target = arg1 + arg2;
      }
      std::string tok;
      while (iss >> tok) target += tok;
      if (target.empty()) {
        std::printf("usage: .why [text|json|dot] pred(args) | pred/arity\n");
        continue;
      }
      auto r = format == "json"  ? sh.engine->WhyJson(target)
               : format == "dot" ? sh.engine->WhyDot(target)
                                 : sh.engine->WhyText(target);
      if (r.ok()) {
        std::printf("%s", r->c_str());
        if (!r->empty() && r->back() != '\n') std::printf("\n");
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else if (cmd == ".choices") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      auto r = sh.engine->ChoiceAuditText();
      if (r.ok()) {
        std::printf("%s", r->c_str());
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else if (cmd == ".blackbox") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      std::printf("%s", sh.engine->DumpFlightRecorder().c_str());
    } else if (cmd == ".metrics") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      if (arg1.empty()) {
        auto r = sh.engine->MetricsText();
        if (r.ok()) {
          std::printf("%s", r->c_str());
        } else {
          std::printf("error: %s\n", r.status().ToString().c_str());
        }
      } else {
        const gdlog::Status st = sh.engine->WriteMetricsText(arg1);
        if (st.ok()) {
          std::printf("metrics written to %s\n", arg1.c_str());
        } else {
          std::printf("error: %s\n", st.ToString().c_str());
        }
      }
    } else if (cmd == ".json") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      auto r = sh.engine->RunReport();
      if (r.ok()) {
        std::printf("%s\n", r->c_str());
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else if (cmd == ".report") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      auto r = sh.engine->AnalysisReport();
      if (r.ok()) std::printf("%s\n", r->c_str());
    } else if (cmd == ".rewrite") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      auto r = sh.engine->RewrittenProgramText();
      if (r.ok()) std::printf("%s\n", r->c_str());
    } else if (cmd == ".verify") {
      if (!sh.engine) {
        std::printf("error: no program loaded\n");
        continue;
      }
      auto check = sh.engine->VerifyStableModel();
      if (!check.ok()) {
        std::printf("error: %s\n", check.status().ToString().c_str());
        continue;
      }
      std::printf("stable model: %s (%zu facts)\n",
                  check->stable ? "yes" : "NO", check->model_facts);
    } else {
      std::printf("unknown command %s (.help for help)\n", cmd.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  const char* path = nullptr;
  std::vector<Query> queries;
  bool report = false, rewrite = false, verify = false, stats = false;
  bool json_report = false, interactive = false;
  bool lint = false, lint_json = false, explain_analyze = false;
  bool choices = false, dump_plan = false;
  std::vector<std::string> why_targets, why_dot_targets;
  std::string metrics_out;
  bool progress_ticker = false;
  uint64_t serve_linger_ms = 0;
  gdlog::EngineOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query" && i + 1 < argc) {
      Query q;
      if (!ParseQuerySpec(argv[++i], &q)) {
        std::fprintf(stderr, "bad --query %s (want pred/arity)\n", argv[i]);
        return 2;
      }
      queries.push_back(q);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.eval.choice_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--trace" && i + 1 < argc) {
      options.obs.enabled = true;
      options.obs.trace_path = argv[++i];
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--lint-json") {
      lint = true;
      lint_json = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--rewrite") {
      rewrite = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--provenance") {
      options.provenance = true;
    } else if (arg == "--why" && i + 1 < argc) {
      why_targets.push_back(argv[++i]);
      options.provenance = true;
    } else if (arg == "--why-dot" && i + 1 < argc) {
      why_dot_targets.push_back(argv[++i]);
      options.provenance = true;
    } else if (arg == "--choices") {
      choices = true;
      options.provenance = true;
    } else if (arg == "--explain-analyze") {
      explain_analyze = true;
    } else if (arg == "--json-report") {
      json_report = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--serve-obs" && i + 1 < argc) {
      options.obs_http.enabled = true;
      options.obs_http.port =
          static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--serve-linger-ms" && i + 1 < argc) {
      serve_linger_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--progress") {
      progress_ticker = true;
    } else if (arg == "--interactive" || arg == "-i") {
      interactive = true;
    } else if (arg == "--no-merge") {
      options.eval.use_merge_congruence = false;
    } else if (arg == "--linear-least") {
      options.eval.use_priority_queue = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.eval.threads =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--backend" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "interp") {
        options.eval.backend = gdlog::EvalBackend::kInterp;
      } else if (name == "vm") {
        options.eval.backend = gdlog::EvalBackend::kVm;
      } else {
        std::fprintf(stderr, "bad --backend %s (want interp|vm)\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--dump-plan") {
      dump_plan = true;
    } else if (arg == "--no-planner") {
      options.eval.use_join_planner = false;
    } else if (arg == "--no-absint") {
      options.static_analysis = false;
    } else if (arg == "--no-priors") {
      options.eval.use_cardinality_priors = false;
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      options.limits.deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-tuples" && i + 1 < argc) {
      options.limits.max_tuples = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-stages" && i + 1 < argc) {
      options.limits.max_stages = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-memory-mb" && i + 1 < argc) {
      options.limits.max_memory_bytes =
          std::strtoull(argv[++i], nullptr, 10) * 1024 * 1024;
    } else if (arg == "--faults" && i + 1 < argc) {
      options.faults = argv[++i];
    } else if (arg == "--db-dir" && i + 1 < argc) {
      options.durability.dir = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      options.durability.fsync = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      options.durability.checkpoint_every =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg[0] == '-') {
      Usage(argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (interactive) return RunInteractive(std::move(options));
  if (!path) {
    Usage(argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  if (lint) return RunLint(path, text.str(), queries, options, lint_json);

  gdlog::Engine engine(options);
  if (options.obs_http.enabled) {
    if (!engine.obs_http_status().ok()) {
      std::fprintf(stderr, "serve-obs failed: %s\n",
                   engine.obs_http_status().ToString().c_str());
      return 1;
    }
    // Announced before the run so scripts waiting on the endpoint can
    // resolve an ephemeral port and scrape mid-run.
    AnnounceObsEndpoint(engine);
  }
  // With a durable database the inline facts must traverse the WAL, so
  // they are loaded via AddFact rather than as program text.
  gdlog::Status st = options.durability.dir.empty()
                         ? engine.LoadProgram(text.str())
                         : engine.LoadProgramDurable(text.str());
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, st.ToString().c_str());
    return 1;
  }
  if (engine.durable() != nullptr && engine.durable()->recovery().opened_existing) {
    const gdlog::DurableStore::RecoveryInfo& rec = engine.durable()->recovery();
    std::fprintf(stderr,
                 "%% recovered %s: snapshot seq %llu (%llu facts), %llu WAL "
                 "record(s) replayed%s\n",
                 options.durability.dir.c_str(),
                 static_cast<unsigned long long>(rec.snapshot_seq),
                 static_cast<unsigned long long>(rec.snapshot_facts),
                 static_cast<unsigned long long>(rec.wal_records_replayed),
                 rec.wal_tail_dropped ? " (torn tail dropped)" : "");
  }
  if (report) {
    auto r = engine.AnalysisReport();
    if (r.ok()) std::printf("%s\n", r->c_str());
  }
  if (rewrite) {
    auto r = engine.RewrittenProgramText();
    if (r.ok()) std::printf("%% first-order rewriting:\n%s\n", r->c_str());
  }
  InstallSigintHandler();
  {
    std::unique_ptr<ProgressTicker> ticker;
    if (progress_ticker) ticker = std::make_unique<ProgressTicker>(&engine);
    st = RunWithCancel(&engine);
  }
  bool bounded_stop = false;
  if (!st.ok()) {
    if (engine.has_run()) {
      // A guardrail ended the run; the partial state is queryable, so
      // fall through and print whatever was asked for.
      PrintTermination(engine);
      bounded_stop = true;
    } else {
      std::fprintf(stderr, "evaluation failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (dump_plan) {
    // Golden-format dump: only the disassembly, nothing else, so the
    // output diffs cleanly against tests/goldens/*.plan.
    auto r = engine.PlanDump();
    if (!r.ok()) {
      std::fprintf(stderr, "dump-plan error: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", r->c_str());
    return bounded_stop ? 3 : 0;
  }

  if (queries.empty()) {
    // Default: every predicate that appears in a rule head.
    std::set<std::pair<std::string, uint32_t>> heads;
    for (const gdlog::Rule& r : engine.program()->rules) {
      if (!r.is_fact()) {
        heads.insert({r.head.predicate,
                      static_cast<uint32_t>(r.head.args.size())});
      }
    }
    for (const auto& [pred, arity] : heads) {
      PrintRelation(engine, pred, arity);
    }
  } else {
    for (const Query& q : queries) PrintRelation(engine, q.pred, q.arity);
  }

  if (stats) PrintStats(engine);
  for (const std::string& target : why_targets) {
    auto r = engine.WhyText(target);
    if (r.ok()) {
      std::printf("%% why %s:\n%s", target.c_str(), r->c_str());
    } else {
      std::fprintf(stderr, "why error (%s): %s\n", target.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
  }
  for (const std::string& target : why_dot_targets) {
    auto r = engine.WhyDot(target);
    if (r.ok()) {
      std::printf("%s", r->c_str());
    } else {
      std::fprintf(stderr, "why error (%s): %s\n", target.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
  }
  if (choices) {
    auto r = engine.ChoiceAuditText();
    if (r.ok()) {
      std::printf("%% choice audit:\n%s", r->c_str());
    } else {
      std::fprintf(stderr, "choices error: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }
  if (explain_analyze) {
    auto r = engine.ExplainAnalyzeText();
    if (r.ok()) {
      std::printf("%s", r->c_str());
    } else {
      std::fprintf(stderr, "explain-analyze error: %s\n",
                   r.status().ToString().c_str());
    }
  }
  if (json_report) {
    auto r = engine.RunReport();
    if (r.ok()) std::printf("%s\n", r->c_str());
  }
  if (!metrics_out.empty()) {
    const gdlog::Status mst = engine.WriteMetricsText(metrics_out);
    if (!mst.ok()) {
      std::fprintf(stderr, "metrics error: %s\n", mst.ToString().c_str());
      return 1;
    }
  }
  if (verify) {
    if (bounded_stop) {
      std::fprintf(stderr,
                   "%% --verify skipped: run was truncated, the partial "
                   "state is not a fixpoint\n");
    } else {
      auto check = engine.VerifyStableModel();
      if (!check.ok()) {
        std::fprintf(stderr, "verification error: %s\n",
                     check.status().ToString().c_str());
        return 1;
      }
      std::printf("%% stable model: %s (%zu facts)\n",
                  check->stable ? "yes" : "NO", check->model_facts);
      if (!check->stable) {
        std::printf("%%   %s\n", check->diagnostic.c_str());
        return 1;
      }
    }
  }
  if (serve_linger_ms > 0 && engine.obs_server() != nullptr) {
    // Keep the endpoint up after the run so scrapers can collect the
    // end-of-run artifacts (/runs/last, /trace). SIGINT ends the linger.
    std::fprintf(stderr, "%% obs endpoint lingering %llu ms\n",
                 static_cast<unsigned long long>(serve_linger_ms));
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(serve_linger_ms);
    while (std::chrono::steady_clock::now() < until &&
           g_sigint_count.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return bounded_stop ? kExitBoundedStop : 0;
}
