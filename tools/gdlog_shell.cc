// gdlog_shell — command-line driver for the engine.
//
//   gdlog_shell PROGRAM.dl [options]
//
//   --query pred/arity   print one relation (repeatable; default: all IDB)
//   --seed N             choice tie-break seed (explore stable models)
//   --report             print the Section 4 analysis report
//   --rewrite            print the first-order rewriting (Sections 2-3)
//   --verify             run the Gelfond-Lifschitz stable-model check
//   --stats              print evaluation statistics
//   --no-merge           disable congruence merging ((R,Q,L) ablation)
//   --linear-least       naive linear-scan retrieval instead of the heap
//
// Example:
//   $ cat prim.dl
//   prm(nil, 0, 0, 0).
//   prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
//                      least(C, I), choice(Y, X).
//   new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
//   g(0, 1, 4). g(1, 0, 4). ...
//   $ gdlog_shell prim.dl --query prm/4 --verify
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "storage/tuple.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s PROGRAM.dl [--query pred/arity]... [--seed N] "
               "[--report] [--rewrite] [--verify] [--stats] [--no-merge] "
               "[--linear-least]\n",
               argv0);
}

struct Query {
  std::string pred;
  uint32_t arity = 0;
};

void PrintRelation(const gdlog::Engine& engine, const std::string& pred,
                   uint32_t arity) {
  const gdlog::Relation* rel = engine.Find(pred, arity);
  std::printf("%% %s/%u (%zu facts)\n", pred.c_str(), arity,
              rel ? rel->size() : 0);
  if (!rel) return;
  for (const auto& row : engine.Query(pred, arity)) {
    std::printf("%s%s.\n", pred.c_str(),
                gdlog::TupleToString(engine.store(),
                                     gdlog::TupleView(row))
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }
  const char* path = nullptr;
  std::vector<Query> queries;
  bool report = false, rewrite = false, verify = false, stats = false;
  gdlog::EngineOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto slash = spec.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "bad --query %s (want pred/arity)\n",
                     spec.c_str());
        return 2;
      }
      queries.push_back(
          {spec.substr(0, slash),
           static_cast<uint32_t>(std::atoi(spec.c_str() + slash + 1))});
    } else if (arg == "--seed" && i + 1 < argc) {
      options.eval.choice_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--rewrite") {
      rewrite = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--no-merge") {
      options.eval.use_merge_congruence = false;
    } else if (arg == "--linear-least") {
      options.eval.use_priority_queue = false;
    } else if (arg[0] == '-') {
      Usage(argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (!path) {
    Usage(argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  gdlog::Engine engine(options);
  gdlog::Status st = engine.LoadProgram(text.str());
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, st.ToString().c_str());
    return 1;
  }
  if (report) {
    auto r = engine.AnalysisReport();
    if (r.ok()) std::printf("%s\n", r->c_str());
  }
  if (rewrite) {
    auto r = engine.RewrittenProgramText();
    if (r.ok()) std::printf("%% first-order rewriting:\n%s\n", r->c_str());
  }
  st = engine.Run();
  if (!st.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  if (queries.empty()) {
    // Default: every predicate that appears in a rule head.
    std::set<std::pair<std::string, uint32_t>> heads;
    for (const gdlog::Rule& r : engine.program()->rules) {
      if (!r.is_fact()) {
        heads.insert({r.head.predicate,
                      static_cast<uint32_t>(r.head.args.size())});
      }
    }
    for (const auto& [pred, arity] : heads) {
      PrintRelation(engine, pred, arity);
    }
  } else {
    for (const Query& q : queries) PrintRelation(engine, q.pred, q.arity);
  }

  if (stats && engine.stats()) {
    const gdlog::FixpointStats& s = *engine.stats();
    std::printf(
        "%% stats: %llu gamma firings, %llu stages, %llu saturation "
        "rounds, %llu tuples inserted, %llu rows scanned, Q high-water "
        "%zu\n",
        static_cast<unsigned long long>(s.gamma_firings),
        static_cast<unsigned long long>(s.stages_assigned),
        static_cast<unsigned long long>(s.saturation_rounds),
        static_cast<unsigned long long>(s.exec.inserts),
        static_cast<unsigned long long>(s.exec.scan_rows),
        s.queues.max_queue);
  }
  if (verify) {
    auto check = engine.VerifyStableModel();
    if (!check.ok()) {
      std::fprintf(stderr, "verification error: %s\n",
                   check.status().ToString().c_str());
      return 1;
    }
    std::printf("%% stable model: %s (%zu facts)\n",
                check->stable ? "yes" : "NO", check->model_facts);
    if (!check->stable) {
      std::printf("%%   %s\n", check->diagnostic.c_str());
      return 1;
    }
  }
  return 0;
}
