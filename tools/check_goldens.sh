#!/usr/bin/env bash
# Golden static-analysis and plan-disassembly outputs.
#
# Runs `gdlog_shell --lint-json` over every shipped program and every
# lint fixture and diffs the output against the checked-in goldens in
# tests/goldens/. The JSON is deterministic by construction (integer-only
# analysis rendering, no timestamps or build identity), so any drift is a
# real behavior change — either a regression or an intentional analyzer
# improvement that must be re-blessed with --update.
#
# Additionally runs `gdlog_shell --dump-plan` over the shipped programs
# and diffs the bytecode-lowering disassembly against
# tests/goldens/<name>.plan — the reviewable record of what the VM
# executes (micro-ops, probe keys, fused filters, rejection reasons).
# The disassembly is pointer-free and deterministic for a fixed program.
#
#   tools/check_goldens.sh BUILD_DIR            check; exit 1 on drift
#   tools/check_goldens.sh BUILD_DIR --update   refresh the goldens
set -u

cd "$(dirname "$0")/.."
BUILD_DIR=${1:?usage: check_goldens.sh BUILD_DIR [--update]}
MODE=${2:-check}
SHELL_BIN="$BUILD_DIR/tools/gdlog_shell"

if [ ! -x "$SHELL_BIN" ]; then
  echo "error: $SHELL_BIN not built" >&2
  exit 2
fi

mkdir -p tests/goldens
fail=0
for f in programs/*.dl tests/fixtures/*.dl; do
  name=$(basename "$f" .dl)
  golden="tests/goldens/$name.json"
  # --lint-json exits 1 when the program has error-severity diagnostics;
  # that is part of what the golden captures, not a script failure.
  out=$("$SHELL_BIN" "$f" --lint-json 2>/dev/null) || true
  if [ "$MODE" = "--update" ]; then
    printf '%s\n' "$out" > "$golden"
    echo "updated $golden"
  elif [ ! -f "$golden" ]; then
    echo "MISSING GOLDEN: $golden (run tools/check_goldens.sh $BUILD_DIR --update)"
    fail=1
  elif ! printf '%s\n' "$out" | diff -u "$golden" -; then
    echo "GOLDEN DRIFT: $f vs $golden"
    fail=1
  fi
done

# Plan disassembly goldens: shipped programs only (fixtures exist to
# exercise diagnostics; their plans are incidental). The vm_reject
# fixtures are the exception — their whole point is the lowering
# fallback they document, so pin their disassembly too.
for f in programs/*.dl tests/fixtures/vm_reject_*.dl; do
  name=$(basename "$f" .dl)
  golden="tests/goldens/$name.plan"
  out=$("$SHELL_BIN" "$f" --dump-plan 2>/dev/null) || true
  if [ "$MODE" = "--update" ]; then
    printf '%s\n' "$out" > "$golden"
    echo "updated $golden"
  elif [ ! -f "$golden" ]; then
    echo "MISSING GOLDEN: $golden (run tools/check_goldens.sh $BUILD_DIR --update)"
    fail=1
  elif ! printf '%s\n' "$out" | diff -u "$golden" -; then
    echo "GOLDEN DRIFT: $f vs $golden"
    fail=1
  fi
done
exit $fail
