#!/bin/sh
# Smoke test for the observability surface: drives gdlog_shell's
# interactive mode through a traced run and checks that `.stats`, the
# `.json` run report, and the Chrome trace file all come out.
#
#   smoke_stats.sh <gdlog_shell> <program.dl> [out_dir]
set -e

SHELL_BIN="$1"
PROG="$2"
OUT_DIR="${3:-.}"

if [ -z "$SHELL_BIN" ] || [ -z "$PROG" ]; then
  echo "usage: $0 <gdlog_shell> <program.dl> [out_dir]" >&2
  exit 2
fi

TRACE="$OUT_DIR/smoke_trace.json"
rm -f "$TRACE"

OUT=$(printf '.load %s\n.trace on %s\n.run\n.stats\n.json\n.quit\n' \
      "$PROG" "$TRACE" | "$SHELL_BIN" --interactive)
echo "$OUT"

echo "$OUT" | grep -q "phases (ms)" || {
  echo "smoke: .stats output missing phase table" >&2; exit 1; }
echo "$OUT" | grep -q '"rules"' || {
  echo "smoke: .json run report missing" >&2; exit 1; }
[ -s "$TRACE" ] || { echo "smoke: trace file not written" >&2; exit 1; }
grep -q '"traceEvents"' "$TRACE" || {
  echo "smoke: trace file missing traceEvents" >&2; exit 1; }

echo "smoke: OK"
