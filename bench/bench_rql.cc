// Experiment E8 — the (R,Q,L) storage structure ablation (paper
// Section 6).
//
// Section 6's complexity results hinge on two ingredients of D_r:
//   (a) Q_r is a *priority queue*: retrieve-least is O(log |Q|), not a
//       linear re-scan;
//   (b) r-congruent candidates merge at insertion, bounding |Q| by the
//       number of congruence classes (n for Prim instead of e).
// This bench runs declarative Prim under three configurations —
// full structure, merge disabled, and priority queue replaced by the
// naive O(|Q|) linear scan — on the same graphs. Expected shape: the
// linear-scan column grows with a clearly higher slope; merge-off stays
// asymptotically equal with a larger queue.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/logging.h"
#include "greedy/prim.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

Graph MakeGraph(uint32_t n) {
  GraphGenOptions opts;
  opts.seed = 29;
  return ConnectedRandomGraph(n, 3 * n, opts);
}

EngineOptions Config(bool merge, bool pq) {
  EngineOptions o;
  o.eval.use_merge_congruence = merge;
  o.eval.use_priority_queue = pq;
  return o;
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E8: (R,Q,L) ablation on declarative Prim — full vs no-merge vs "
      "linear-scan least (e = 4n)",
      "n",
      {"full_ms", "nomerge_ms", "linscan_ms", "qmax_full", "qmax_nomerge"});
  for (uint32_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    const Graph g = MakeGraph(n);
    int64_t expected = -1;
    double qmax_full = 0, qmax_nomerge = 0;
    const double full_s = bench::MeasureSeconds([&] {
      auto r = PrimMst(g, 0, Config(true, true));
      GDLOG_CHECK(r.ok());
      expected = r->total_cost;
      const CandidateQueueStats* qs = r->engine->QueueStats(0);
      qmax_full = qs ? static_cast<double>(qs->max_queue) : 0;
    }, /*reps=*/2);
    const double nomerge_s = bench::MeasureSeconds([&] {
      auto r = PrimMst(g, 0, Config(false, true));
      GDLOG_CHECK_EQ(r->total_cost, expected);
      const CandidateQueueStats* qs = r->engine->QueueStats(0);
      qmax_nomerge = qs ? static_cast<double>(qs->max_queue) : 0;
    }, /*reps=*/2);
    const double linscan_s = bench::MeasureSeconds([&] {
      auto r = PrimMst(g, 0, Config(true, false));
      GDLOG_CHECK_EQ(r->total_cost, expected);
    }, /*reps=*/1);
    table.AddRow(n, {full_s * 1e3, nomerge_s * 1e3, linscan_s * 1e3,
                     qmax_full, qmax_nomerge});
  }
  table.Print();
}

void BM_PrimFullStructure(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = PrimMst(g, 0, Config(true, true));
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrimFullStructure)->Arg(250)->Arg(1000)->Arg(4000)
    ->Complexity();

void BM_PrimLinearScanLeast(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = PrimMst(g, 0, Config(true, false));
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrimLinearScanLeast)->Arg(250)->Arg(1000)->Arg(2000)
    ->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
