// Shared harness for the experiment tables (EXPERIMENTS.md).
//
// Each bench binary prints its experiment table — a scaling series with
// engine/baseline timings, ratios, and fitted log-log slopes — and then
// runs its registered google-benchmark micro-benchmarks.
#ifndef GDLOG_BENCH_BENCH_UTIL_H_
#define GDLOG_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace gdlog {
namespace bench {

/// Wall-clock seconds for one invocation of fn, best of `reps`.
double MeasureSeconds(const std::function<void()>& fn, int reps = 3);

/// A printable experiment table: one independent variable (the scale)
/// and named measurement columns.
class ExperimentTable {
 public:
  ExperimentTable(std::string title, std::string x_name,
                  std::vector<std::string> columns);

  void AddRow(double x, std::vector<double> values);

  /// Fitted slope of log(col) vs log(x) — the empirical complexity
  /// exponent of that column.
  double FitSlope(size_t col) const;

  /// Prints the table and per-column fitted slopes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::string x_name_;
  std::vector<std::string> columns_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace bench
}  // namespace gdlog

#endif  // GDLOG_BENCH_BENCH_UTIL_H_
