// Shared harness for the experiment tables (EXPERIMENTS.md).
//
// Each bench binary prints its experiment table — a scaling series with
// engine/baseline timings, ratios, and fitted log-log slopes — and then
// runs its registered google-benchmark micro-benchmarks.
//
// JSON mode: call InitBenchReport(&argc, argv) first thing in main. When
// the user passes `--json out.json`, every ExperimentTable printed
// afterwards is also recorded and written to the file at process exit as
// one machine-readable report, together with a snapshot of
// ProcessMetrics() — so perf runs leave a BENCH_*.json trajectory behind
// (see docs/OBSERVABILITY.md).
#ifndef GDLOG_BENCH_BENCH_UTIL_H_
#define GDLOG_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace gdlog {
namespace bench {

/// Per-measurement spread over the repetitions of one timed call.
struct RepStats {
  double min = 0;
  double median = 0;
  double max = 0;
};

/// Wall-clock seconds of fn over `reps` invocations: minimum (the
/// traditional best-of metric) plus median/max noise bars.
RepStats MeasureRepStats(const std::function<void()>& fn, int reps = 3);

/// Wall-clock seconds for one invocation of fn, best of `reps`.
double MeasureSeconds(const std::function<void()>& fn, int reps = 3);

/// A printable experiment table: one independent variable (the scale)
/// and named measurement columns.
class ExperimentTable {
 public:
  ExperimentTable(std::string title, std::string x_name,
                  std::vector<std::string> columns);

  void AddRow(double x, std::vector<double> values);
  /// Same, with per-column rep spreads (seconds or the column's unit);
  /// carried into the JSON report as noise bars. `reps` may cover fewer
  /// columns than `values` (trailing derived columns have no spread).
  void AddRow(double x, std::vector<double> values,
              std::vector<RepStats> reps);

  /// Fitted slope of log(col) vs log(x) — the empirical complexity
  /// exponent of that column.
  double FitSlope(size_t col) const;

  /// Prints the table and per-column fitted slopes to stdout; in JSON
  /// mode also records the table for the end-of-process report.
  void Print() const;

  /// The table as one JSON object (title, columns, rows, rep spreads,
  /// fitted slopes).
  std::string ToJson() const;

 private:
  std::string title_;
  std::string x_name_;
  std::vector<std::string> columns_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> rows_;
  std::vector<std::vector<RepStats>> reps_;  // parallel to rows_
};

/// Strips `--json PATH` from argv (before google-benchmark sees it) and
/// arms the end-of-process JSON report. Safe to call when the flag is
/// absent.
void InitBenchReport(int* argc, char** argv);
bool JsonReportEnabled();

/// Records one engine run's termination outcome for the JSON report's
/// "runs" array: how the run ended (guardrails taxonomy, see
/// docs/ROBUSTNESS.md) and its tracked peak memory. No-op outside JSON
/// mode.
void RecordRunOutcome(const std::string& label, std::string_view reason,
                      bool ok, uint64_t guard_checks,
                      uint64_t peak_memory_bytes);

/// Process-wide metrics registry, embedded in the JSON report. Bench
/// code may pass it to engines via EngineOptions::obs.metrics to
/// accumulate evaluation metrics across runs.
MetricsRegistry& ProcessMetrics();

}  // namespace bench
}  // namespace gdlog

#endif  // GDLOG_BENCH_BENCH_UTIL_H_
