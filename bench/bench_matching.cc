// Experiment E3 — Matching (paper Section 6, "Matching: Complexity of
// Example 7").
//
// Claim: O(e log e) — "the tuples of arc are stored by using a priority
// queue Q ... the cost of extracting one tuple is O(log e)". The table
// sweeps bipartite instances with e = 5 * sides and compares against
// the procedural sorted-greedy matching (also O(e log e)); slopes ~1,
// ratio roughly flat.
#include <benchmark/benchmark.h>

#include "baselines/matching.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/matching.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

Graph MakeGraph(uint32_t side) {
  GraphGenOptions opts;
  opts.seed = 11;
  return BipartiteGraph(side, side, 5 * side, opts);
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E3: Min-cost greedy matching — declarative Example 7 vs "
      "procedural greedy (bipartite, e = 5*side)",
      "e", {"engine_ms", "baseline_ms", "ratio", "arcs"});
  for (uint32_t side : {200u, 400u, 800u, 1600u, 3200u, 6400u}) {
    const Graph g = MakeGraph(side);
    size_t arcs = 0;
    int64_t engine_cost = 0, base_cost = 0;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = GreedyMatching(g);
      GDLOG_CHECK(r.ok());
      engine_cost = r->total_cost;
      arcs = r->arcs.size();
    });
    const double base_s = bench::MeasureSeconds([&] {
      base_cost = BaselineGreedyMatching(g).total_cost;
    });
    GDLOG_CHECK_EQ(engine_cost, base_cost);
    table.AddRow(static_cast<double>(g.edges.size()),
                 {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                  static_cast<double>(arcs)});
  }
  table.Print();
}

void BM_MatchingEngine(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = GreedyMatching(g);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(static_cast<int64_t>(g.edges.size()));
}
BENCHMARK(BM_MatchingEngine)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

void BM_MatchingBaseline(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BaselineGreedyMatching(g).total_cost);
  }
  state.SetComplexityN(static_cast<int64_t>(g.edges.size()));
}
BENCHMARK(BM_MatchingBaseline)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
