// Experiment E4 — Kruskal (paper Section 7, "Kruskal: Complexity of
// Example 8").
//
// The paper concedes the declarative Kruskal is asymptotically WORSE
// than the classical O(e log e): their comp-relation formulation pays
// O(e * n) because "the classical algorithm 'merges' the smallest
// component into the 'largest'" while the declarative one re-labels a
// whole component per step. Our conn-based reformulation pays the
// analogous price through the connected-pair relation: Θ(n^2) conn
// tuples total, so the expected shape is
//
//   declarative:  ~ e log e + n^2   (superlinear slope vs n)
//   procedural :  ~ e log e         (slope ~1)
//   declarative Prim wins over declarative Kruskal on the same graphs.
#include <benchmark/benchmark.h>

#include "baselines/kruskal.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/kruskal.h"
#include "greedy/prim.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

Graph MakeGraph(uint32_t n) {
  GraphGenOptions opts;
  opts.seed = 23;
  return ConnectedRandomGraph(n, 3 * n, opts);
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E4: Kruskal MST — declarative (conn-based Example 8) vs "
      "procedural union-find vs declarative Prim (e = 4n)",
      "n",
      {"kruskal_ms", "unionfind_ms", "ratio", "prim_engine_ms",
       "conn_tuples"});
  for (uint32_t n : {100u, 200u, 400u, 800u, 1600u}) {
    const Graph g = MakeGraph(n);
    int64_t engine_cost = 0, base_cost = 0;
    double conn_tuples = 0;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = KruskalMst(g);
      GDLOG_CHECK(r.ok());
      engine_cost = r->total_cost;
      const Relation* conn = r->engine->Find("conn", 3);
      conn_tuples = conn ? static_cast<double>(conn->size()) : 0;
    }, /*reps=*/2);
    const double base_s = bench::MeasureSeconds([&] {
      base_cost = BaselineKruskal(g).total_cost;
    });
    GDLOG_CHECK_EQ(engine_cost, base_cost);
    const double prim_s = bench::MeasureSeconds([&] {
      auto r = PrimMst(g, 0);
      GDLOG_CHECK_EQ(r->total_cost, base_cost);
    }, /*reps=*/2);
    table.AddRow(n, {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                     prim_s * 1e3, conn_tuples});
  }
  table.Print();
}

void BM_KruskalEngine(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = KruskalMst(g);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KruskalEngine)->Arg(100)->Arg(400)->Arg(800)->Complexity();

void BM_KruskalBaseline(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BaselineKruskal(g).total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KruskalBaseline)->Arg(100)->Arg(400)->Arg(800)->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
