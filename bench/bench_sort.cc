// Experiment E2 — Sorting (paper Section 6, "Sorting: Complexity of
// Example 5").
//
// Claim: the fixpoint implementation of the declarative sort runs in
// O(n log n); "although the program expresses an 'insertion sort' like
// algorithm, the fixpoint algorithm implements a 'heap-sort'". The
// table sweeps n and compares against an explicit heap-sort and
// std::sort; all three should fit slope ~1 and the queue's high-water
// mark must equal n (every tuple sits in the priority queue).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "baselines/heapsort.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/sort.h"
#include "workload/relation_gen.h"

namespace gdlog {
namespace {

std::vector<std::pair<int64_t, int64_t>> MakeInput(uint32_t n) {
  RelationGenOptions opts;
  opts.seed = 7;
  return RandomCostedRelation(n, opts);
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E2: Sorting — declarative Example 5 vs heap-sort vs std::sort",
      "n", {"engine_ms", "heapsort_ms", "stdsort_ms", "ratio_vs_heap",
            "q_max"});
  for (uint32_t n : {500u, 1000u, 2000u, 4000u, 8000u, 16000u}) {
    const auto input = MakeInput(n);
    std::unique_ptr<Engine> keep;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = SortRelation(input);
      GDLOG_CHECK(r.ok());
      keep = std::move(r->engine);
    });
    const double heap_s = bench::MeasureSeconds([&] {
      auto out = BaselineHeapSort(input);
      benchmark::DoNotOptimize(out.data());
    });
    const double std_s = bench::MeasureSeconds([&] {
      auto copy = input;
      std::sort(copy.begin(), copy.end(),
                [](const auto& a, const auto& b) {
                  return a.second < b.second;
                });
      benchmark::DoNotOptimize(copy.data());
    });
    const CandidateQueueStats* qs = keep->QueueStats(0);
    table.AddRow(n, {engine_s * 1e3, heap_s * 1e3, std_s * 1e3,
                     engine_s / heap_s,
                     static_cast<double>(qs ? qs->max_queue : 0)});
  }
  table.Print();
}

void BM_SortEngine(benchmark::State& state) {
  const auto input = MakeInput(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = SortRelation(input);
    benchmark::DoNotOptimize(r->sorted.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SortEngine)->Arg(500)->Arg(2000)->Arg(8000)->Complexity();

void BM_SortHeapBaseline(benchmark::State& state) {
  const auto input = MakeInput(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto out = BaselineHeapSort(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SortHeapBaseline)->Arg(500)->Arg(2000)->Arg(8000)->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
