#include "bench_util.h"

#include <cmath>
#include <cstdio>

namespace gdlog {
namespace bench {

double MeasureSeconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

ExperimentTable::ExperimentTable(std::string title, std::string x_name,
                                 std::vector<std::string> columns)
    : title_(std::move(title)),
      x_name_(std::move(x_name)),
      columns_(std::move(columns)) {}

void ExperimentTable::AddRow(double x, std::vector<double> values) {
  xs_.push_back(x);
  rows_.push_back(std::move(values));
}

double ExperimentTable::FitSlope(size_t col) const {
  // Least-squares fit of log(y) = a * log(x) + b.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] <= 0 || rows_[i][col] <= 0) continue;
    const double lx = std::log(xs_[i]);
    const double ly = std::log(rows_[i][col]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

void ExperimentTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%12s", x_name_.c_str());
  for (const std::string& c : columns_) std::printf("  %14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::printf("%12.0f", xs_[i]);
    for (double v : rows_[i]) std::printf("  %14.4f", v);
    std::printf("\n");
  }
  std::printf("%12s", "slope");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("  %14.2f", FitSlope(c));
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace gdlog
