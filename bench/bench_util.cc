#include "bench_util.h"

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace gdlog {
namespace bench {

namespace {

// These stores are read by the atexit report writer, which runs after
// function-local statics are destroyed (they are constructed later than
// the atexit registration, so they die first). Leak them instead.
std::string* JsonPath() {
  static std::string* path = new std::string;
  return path;
}

std::vector<std::string>* RecordedTables() {
  static auto* tables = new std::vector<std::string>;
  return tables;
}

std::vector<std::string>* RecordedRuns() {
  static auto* runs = new std::vector<std::string>;  // see JsonPath
  return runs;
}

uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

void WriteJsonReport() {
  const std::string& path = *JsonPath();
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s\n", path.c_str());
    return;
  }
  // Tables are pre-serialized JSON objects; splice them in raw.
  std::string out = "{\"schema\":\"gdlog-bench-v1\",\"experiments\":[";
  const auto& tables = *RecordedTables();
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i) out += ',';
    out += tables[i];
  }
  out += "],\"runs\":[";
  const auto& runs = *RecordedRuns();
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i) out += ',';
    out += runs[i];
  }
  out += "],\"process\":{\"peak_rss_bytes\":";
  out += std::to_string(PeakRssBytes());
  out += "},\"metrics\":";
  out += ProcessMetrics().SnapshotJson();
  out += "}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote JSON report to %s\n", path.c_str());
}

}  // namespace

void InitBenchReport(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < *argc) {
      *JsonPath() = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      *JsonPath() = arg.substr(7);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (!JsonPath()->empty()) std::atexit(WriteJsonReport);
}

bool JsonReportEnabled() { return !JsonPath()->empty(); }

void RecordRunOutcome(const std::string& label, std::string_view reason,
                      bool ok, uint64_t guard_checks,
                      uint64_t peak_memory_bytes) {
  if (!JsonReportEnabled()) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("label").String(label);
  w.Key("reason").String(std::string(reason));
  w.Key("ok").Bool(ok);
  w.Key("guard_checks").UInt(guard_checks);
  w.Key("peak_memory_bytes").UInt(peak_memory_bytes);
  w.EndObject();
  RecordedRuns()->push_back(w.Take());
}

MetricsRegistry& ProcessMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry;  // see JsonPath
  return *registry;
}

RepStats MeasureRepStats(const std::function<void()>& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(reps < 1 ? 1 : reps);
  for (int i = 0; i < std::max(reps, 1); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  RepStats out;
  out.min = samples.front();
  out.max = samples.back();
  const size_t n = samples.size();
  out.median = n % 2 == 1 ? samples[n / 2]
                          : (samples[n / 2 - 1] + samples[n / 2]) / 2;
  return out;
}

double MeasureSeconds(const std::function<void()>& fn, int reps) {
  return MeasureRepStats(fn, reps).min;
}

ExperimentTable::ExperimentTable(std::string title, std::string x_name,
                                 std::vector<std::string> columns)
    : title_(std::move(title)),
      x_name_(std::move(x_name)),
      columns_(std::move(columns)) {}

void ExperimentTable::AddRow(double x, std::vector<double> values) {
  AddRow(x, std::move(values), {});
}

void ExperimentTable::AddRow(double x, std::vector<double> values,
                             std::vector<RepStats> reps) {
  xs_.push_back(x);
  rows_.push_back(std::move(values));
  reps_.push_back(std::move(reps));
}

double ExperimentTable::FitSlope(size_t col) const {
  // Least-squares fit of log(y) = a * log(x) + b.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] <= 0 || rows_[i][col] <= 0) continue;
    const double lx = std::log(xs_[i]);
    const double ly = std::log(rows_[i][col]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

std::string ExperimentTable::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("title").String(title_);
  w.Key("x_name").String(x_name_);
  w.Key("columns").BeginArray();
  for (const std::string& c : columns_) w.String(c);
  w.EndArray();
  w.Key("rows").BeginArray();
  for (size_t i = 0; i < xs_.size(); ++i) {
    w.BeginObject();
    w.Key("x").Double(xs_[i]);
    w.Key("values").BeginArray();
    for (double v : rows_[i]) w.Double(v);
    w.EndArray();
    if (!reps_[i].empty()) {
      w.Key("reps").BeginArray();
      for (const RepStats& r : reps_[i]) {
        w.BeginObject();
        w.Key("min").Double(r.min);
        w.Key("median").Double(r.median);
        w.Key("max").Double(r.max);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("slopes").BeginArray();
  for (size_t c = 0; c < columns_.size(); ++c) w.Double(FitSlope(c));
  w.EndArray();
  w.EndObject();
  return w.Take();
}

void ExperimentTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::printf("%12s", x_name_.c_str());
  for (const std::string& c : columns_) std::printf("  %14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::printf("%12.0f", xs_[i]);
    for (double v : rows_[i]) std::printf("  %14.4f", v);
    std::printf("\n");
  }
  std::printf("%12s", "slope");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("  %14.2f", FitSlope(c));
  }
  std::printf("\n");
  std::fflush(stdout);
  if (JsonReportEnabled()) RecordedTables()->push_back(ToJson());
}

}  // namespace bench
}  // namespace gdlog
