// Experiment E5 — Huffman trees (paper Example 6).
//
// The paper gives no explicit bound for Example 6; the candidate pool
// is the feasible pairs, which grow by O(k) per merge (each new subtree
// pairs with the unused ones), so the expected declarative shape is
// ~O(k^2 log k) against the procedural O(k log k) priority-queue
// construction: declarative slope ~2, procedural ~1, total cost equal.
#include <benchmark/benchmark.h>

#include "baselines/huffman.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/huffman.h"
#include "workload/text_gen.h"

namespace gdlog {
namespace {

std::vector<std::pair<std::string, int64_t>> MakeFreqs(uint32_t k) {
  TextGenOptions opts;
  opts.seed = 3;
  return ZipfLetterFrequencies(k, opts);
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E5: Huffman tree — declarative Example 6 vs procedural priority "
      "queue (k symbols)",
      "k", {"engine_ms", "baseline_ms", "ratio", "feasible_pairs"});
  for (uint32_t k : {8u, 16u, 32u, 64u, 128u}) {
    const auto freqs = MakeFreqs(k);
    int64_t engine_cost = 0, base_cost = 0;
    double feasible = 0;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = HuffmanTree(freqs);
      GDLOG_CHECK(r.ok());
      engine_cost = r->total_cost;
      const Relation* f = r->engine->Find("feasible", 3);
      feasible = f ? static_cast<double>(f->size()) : 0;
    }, /*reps=*/2);
    const double base_s = bench::MeasureSeconds([&] {
      base_cost = BaselineHuffman(freqs).total_cost;
    });
    GDLOG_CHECK_EQ(engine_cost, base_cost);
    table.AddRow(k, {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                     feasible});
  }
  table.Print();
}

void BM_HuffmanEngine(benchmark::State& state) {
  const auto freqs = MakeFreqs(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = HuffmanTree(freqs);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HuffmanEngine)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_HuffmanBaseline(benchmark::State& state) {
  const auto freqs = MakeFreqs(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BaselineHuffman(freqs).total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HuffmanBaseline)->Arg(8)->Arg(32)->Arg(128)->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
