// Experiment E1 — Prim's algorithm (paper Section 6, "Prim's
// Algorithm: Complexity of Example 4").
//
// Claim: the fixpoint evaluation of Example 4 with the (R,Q,L) structure
// runs in O(e log e), "comparable to the classical complexity of
// O(e log n)". The table sweeps connected random graphs with e = 4n and
// reports engine vs procedural-Prim time: both columns should fit a
// near-linear slope (~1 in e, log factors flatten it slightly above 1)
// and the ratio should stay roughly constant — the paper's
// "asymptotically comparable" shape.
#include <benchmark/benchmark.h>

#include "baselines/prim.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/prim.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

Graph MakeGraph(uint32_t n, uint64_t seed = 42) {
  GraphGenOptions opts;
  opts.seed = seed;
  return ConnectedRandomGraph(n, 3 * n, opts);  // e ~ 4n
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E1: Prim MST — declarative Example 4 vs procedural heap Prim "
      "(e = 4n)",
      "e", {"engine_ms", "baseline_ms", "ratio", "q_max", "q_inserted"});
  for (uint32_t n : {250u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    const Graph g = MakeGraph(n);
    int64_t engine_cost = 0, base_cost = 0;
    const CandidateQueueStats* qs = nullptr;
    std::unique_ptr<Engine> keep;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = PrimMst(g, 0);
      GDLOG_CHECK(r.ok());
      engine_cost = r->total_cost;
      keep = std::move(r->engine);
    });
    qs = keep->QueueStats(0);
    const double base_s = bench::MeasureSeconds([&] {
      base_cost = BaselinePrim(g, 0).total_cost;
    });
    GDLOG_CHECK_EQ(engine_cost, base_cost);
    table.AddRow(static_cast<double>(g.edges.size()),
                 {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                  static_cast<double>(qs ? qs->max_queue : 0),
                  static_cast<double>(qs ? qs->inserted : 0)});
  }
  table.Print();
}

void BM_PrimEngine(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = PrimMst(g, 0);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(static_cast<int64_t>(g.edges.size()));
}
BENCHMARK(BM_PrimEngine)->Arg(250)->Arg(1000)->Arg(4000)->Complexity();

void BM_PrimBaseline(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BaselinePrim(g, 0).total_cost);
  }
  state.SetComplexityN(static_cast<int64_t>(g.edges.size()));
}
BENCHMARK(BM_PrimBaseline)->Arg(250)->Arg(1000)->Arg(4000)->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
