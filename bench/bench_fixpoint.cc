// Experiment E9 — polynomial data complexity of the Choice Fixpoint
// (Lemma 2 / Theorem 2).
//
// "The data complexity of computing a stable model for P is polynomial
// time." The table scales three program shapes — a Horn transitive
// closure (the seminaive substrate), a stage program (sort), and a
// choice program (Example 1) — and reports the fitted exponents, all of
// which must be small constants.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <unordered_set>

#include <unistd.h>

#include "api/engine.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "greedy/prim.h"
#include "workload/graph_gen.h"
#include "greedy/sort.h"
#include "workload/relation_gen.h"

namespace gdlog {
namespace {

/// Transitive closure of a chain of length n (|tc| = n(n+1)/2 — the
/// quadratic output is the lower bound here).
double RunChainTc(uint32_t n) {
  return bench::MeasureSeconds([&] {
    Engine e;
    GDLOG_CHECK(e.LoadProgram(R"(
      tc(X, Y) <- edge(X, Y).
      tc(X, Z) <- tc(X, Y), edge(Y, Z).
    )").ok());
    for (uint32_t i = 0; i + 1 < n; ++i) {
      GDLOG_CHECK(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
    }
    GDLOG_CHECK(e.Run().ok());
    GDLOG_CHECK_EQ(e.Query("tc", 2).size(), size_t{n} * (n - 1) / 2);
  }, /*reps=*/2);
}

double RunSort(uint32_t n) {
  RelationGenOptions opts;
  opts.seed = 1;
  const auto input = RandomCostedRelation(n, opts);
  return bench::MeasureSeconds([&] {
    auto r = SortRelation(input);
    GDLOG_CHECK(r.ok());
  }, /*reps=*/2);
}

double RunChoice(uint32_t n) {
  return bench::MeasureSeconds([&] {
    Engine e;
    GDLOG_CHECK(e.LoadProgram(R"(
      a(X, Y) <- t(X, Y), choice(X, Y), choice(Y, X).
    )").ok());
    Rng rng(2);
    for (uint32_t i = 0; i < 4 * n; ++i) {
      GDLOG_CHECK(e.AddFact("t", {Value::Int(rng.NextBounded(n)),
                                  Value::Int(rng.NextBounded(n))}).ok());
    }
    GDLOG_CHECK(e.Run().ok());
  }, /*reps=*/2);
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E9: polynomial data complexity — Horn TC (quadratic output), "
      "stage sort, flat choice",
      "n", {"tc_chain_ms", "sort_ms", "choice_ms"});
  for (uint32_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    table.AddRow(n, {RunChainTc(n) * 1e3, RunSort(n) * 1e3,
                     RunChoice(n) * 1e3});
  }
  table.Print();
}

/// E13: the abstract's other ingredient — "through seminaive refinements
/// and suitable storage structures ... low asymptotic complexity".
/// Declarative Prim with and without the seminaive delta discipline.
void PrintSeminaiveAblation() {
  bench::ExperimentTable table(
      "E13: seminaive ablation — declarative Prim with delta-driven "
      "rounds vs naive full re-evaluation (e = 4n)",
      "n", {"seminaive_ms", "naive_ms", "naive_over_seminaive"});
  for (uint32_t n : {100u, 200u, 400u, 800u, 1600u}) {
    GraphGenOptions gopts;
    gopts.seed = 45;
    const Graph g = ConnectedRandomGraph(n, 3 * n, gopts);
    int64_t expected = -1;
    const auto ms = [](bench::RepStats s) {
      return bench::RepStats{s.min * 1e3, s.median * 1e3, s.max * 1e3};
    };
    const bench::RepStats semi = bench::MeasureRepStats([&] {
      auto r = PrimMst(g, 0);
      GDLOG_CHECK(r.ok());
      expected = r->total_cost;
    }, /*reps=*/2);
    EngineOptions naive;
    naive.eval.use_seminaive = false;
    const bench::RepStats naive_r = bench::MeasureRepStats([&] {
      auto r = PrimMst(g, 0, naive);
      GDLOG_CHECK_EQ(r->total_cost, expected);
    }, /*reps=*/1);
    table.AddRow(n, {semi.min * 1e3, naive_r.min * 1e3,
                     naive_r.min / semi.min},
                 {ms(semi), ms(naive_r)});
  }
  table.Print();
}

/// Eval-phase seconds (median over `reps` fresh engines) of `program`
/// under one evaluation backend. Parse/load are untimed: E16 isolates
/// the rule-match hot loop that the bytecode VM replaces (docs/VM.md);
/// the fixpoint outputs are cross-checked against `expect` tuples.
double MedianEvalSeconds(EvalBackend backend, const char* program,
                         const std::function<void(Engine&)>& add_facts,
                         const char* head, uint32_t head_arity,
                         size_t* expect, int reps = 7) {
  std::vector<double> secs;
  for (int r = 0; r < reps; ++r) {
    EngineOptions opts;
    opts.eval.backend = backend;
    Engine e(opts);
    GDLOG_CHECK(e.LoadProgram(program).ok());
    add_facts(e);
    GDLOG_CHECK(e.Run().ok());
    const size_t got = e.Query(head, head_arity).size();
    if (*expect == SIZE_MAX) {
      *expect = got;  // first run of the pair records the oracle count
    } else {
      GDLOG_CHECK_EQ(got, *expect);  // backends must agree
    }
    secs.push_back(static_cast<double>(e.phase_times().eval_ns) * 1e-9);
  }
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

/// E16 workload 1 — the E9 Horn-join substrate: oriented triangle
/// enumeration (e = 20n random edges), probe-bound like the TC delta
/// join, with the order filters the VM fuses into the scan loops.
constexpr char kTriangleProgram[] = R"(
  tri(X, Y, Z) <- e(X, Y), X < Y, e(Y, Z), Y < Z, e(Z, X).
)";

void AddTriangleFacts(Engine& e, uint32_t n) {
  Rng rng(7);
  const uint32_t target = 20 * n;
  std::unordered_set<uint64_t> seen;
  while (seen.size() < target) {
    const uint32_t a = rng.NextBounded(n);
    const uint32_t b = rng.NextBounded(n);
    if (a == b || !seen.insert((uint64_t{a} << 32) | b).second) continue;
    GDLOG_CHECK(e.AddFact("e", {Value::Int(a), Value::Int(b)}).ok());
  }
}

/// E16 workload 2 — the E13 Prim substrate: one frontier-expansion
/// round (candidate = cheap edge out of the tree), scan/filter-bound
/// with a fused cost filter and a negated membership probe.
constexpr char kCandidateProgram[] = R"(
  cand(X, Y, C) <- frontier(X), e(X, Y, C), C < 200, not tree(Y).
)";

void AddCandidateFacts(Engine& e, uint32_t n) {
  Rng rng(11);
  for (uint32_t x = 0; x < n; ++x) {
    GDLOG_CHECK(e.AddFact("frontier", {Value::Int(x)}).ok());
    if (x % 2 == 0) {
      GDLOG_CHECK(e.AddFact("tree", {Value::Int(x)}).ok());
    }
  }
  for (uint32_t x = 0; x < n; ++x) {
    for (uint32_t d = 0; d < 64; ++d) {
      GDLOG_CHECK(e.AddFact("e", {Value::Int(x), Value::Int(rng.NextBounded(n)),
                                  Value::Int(rng.NextBounded(1000))}).ok());
    }
  }
}

/// E16: backend ablation — the rule-match hot loops of E9 (Horn join)
/// and E13 (Prim candidate selection) under the interpreter vs the
/// bytecode VM (docs/VM.md). Inserts and storage are shared between
/// backends, so the loop-heavy shapes isolate what the VM changes; the
/// speedup columns are ratios and never gate (tools/bench_compare.py).
/// Sizes keep the probe working set cache-resident: past that, both
/// backends hit the same memory-latency floor and the ablation measures
/// the cache, not the loop.
void PrintBackendAblation() {
  bench::ExperimentTable table(
      "E16: backend ablation — interpreter vs bytecode VM on the E9/E13 "
      "rule-match hot loops (oriented-triangle join at n=200·s, Prim "
      "candidate filter at n=1000·s; eval phase only)",
      "s",
      {"tri_interp_ms", "tri_vm_ms", "tri_interp_over_vm",
       "cand_interp_ms", "cand_vm_ms", "cand_interp_over_vm"});
  for (uint32_t s : {1u, 2u, 4u}) {
    const uint32_t tri_n = 200 * s;
    size_t tri_expect = SIZE_MAX;
    const auto tri_facts = [tri_n](Engine& e) { AddTriangleFacts(e, tri_n); };
    const double ti = MedianEvalSeconds(EvalBackend::kInterp, kTriangleProgram,
                                        tri_facts, "tri", 3, &tri_expect);
    const double tv = MedianEvalSeconds(EvalBackend::kVm, kTriangleProgram,
                                        tri_facts, "tri", 3, &tri_expect);
    const uint32_t cand_n = 1000 * s;
    size_t cand_expect = SIZE_MAX;
    const auto cand_facts = [cand_n](Engine& e) {
      AddCandidateFacts(e, cand_n);
    };
    const double ci = MedianEvalSeconds(EvalBackend::kInterp,
                                        kCandidateProgram, cand_facts, "cand",
                                        3, &cand_expect);
    const double cv = MedianEvalSeconds(EvalBackend::kVm, kCandidateProgram,
                                        cand_facts, "cand", 3, &cand_expect);
    table.AddRow(s, {ti * 1e3, tv * 1e3, ti / tv, ci * 1e3, cv * 1e3,
                     ci / cv});
  }
  table.Print();
}

/// Chain TC with the EDB routed through a durable store (WAL + fsync
/// policy). The durable run pays one WAL append per edge; the fixpoint
/// itself is identical, so the delta against the in-memory run is the
/// durability overhead.
double RunChainTcDurable(uint32_t n, const char* fsync) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("gdlog_bench_wal_" + std::to_string(::getpid()));
  const double secs = bench::MeasureSeconds([&] {
    std::filesystem::remove_all(dir);  // each rep starts a fresh database
    EngineOptions opts;
    opts.durability.dir = dir;
    opts.durability.fsync = fsync;
    Engine e(opts);
    GDLOG_CHECK(e.LoadProgram(R"(
      tc(X, Y) <- edge(X, Y).
      tc(X, Z) <- tc(X, Y), edge(Y, Z).
    )").ok());
    for (uint32_t i = 0; i + 1 < n; ++i) {
      GDLOG_CHECK(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
    }
    GDLOG_CHECK(e.Run().ok());
    GDLOG_CHECK_EQ(e.Query("tc", 2).size(), size_t{n} * (n - 1) / 2);
  }, /*reps=*/2);
  std::filesystem::remove_all(dir);
  return secs;
}

/// E15: WAL-append overhead (docs/DURABILITY.md) — the same chain TC
/// with the EDB in memory, behind a batch-fsync WAL, and behind an
/// fsync-per-append WAL. The batch column is what a durable engine pays
/// by default; it must stay within noise of the in-memory run since the
/// n WAL appends are dwarfed by the O(n^2) derivation.
void PrintDurabilityOverhead() {
  bench::ExperimentTable table(
      "E15: WAL-append overhead — chain TC in memory vs durable EDB "
      "(fsync=batch / fsync=always)",
      "n", {"mem_ms", "wal_batch_ms", "wal_always_ms",
            "wal_batch_over_mem"});
  for (uint32_t n : {250u, 500u, 1000u}) {
    const double mem = RunChainTc(n);
    const double batch = RunChainTcDurable(n, "batch");
    const double always = RunChainTcDurable(n, "always");
    table.AddRow(n, {mem * 1e3, batch * 1e3, always * 1e3, batch / mem});
  }
  table.Print();
}

/// Chain TC under an explicit thread count; the result-set check pins
/// the parallel path to the exact serial model.
double RunChainTcThreaded(uint32_t n, uint32_t threads) {
  return bench::MeasureSeconds([&] {
    EngineOptions opts;
    opts.eval.threads = threads;
    Engine e(opts);
    GDLOG_CHECK(e.LoadProgram(R"(
      tc(X, Y) <- edge(X, Y).
      tc(X, Z) <- tc(X, Y), edge(Y, Z).
    )").ok());
    for (uint32_t i = 0; i + 1 < n; ++i) {
      GDLOG_CHECK(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
    }
    GDLOG_CHECK(e.Run().ok());
    GDLOG_CHECK_EQ(e.Query("tc", 2).size(), size_t{n} * (n - 1) / 2);
  }, /*reps=*/2);
}

/// E14: parallel saturation — the same chain TC at threads=1 (the exact
/// legacy path) vs threads=4 (partitioned delta scans, merged
/// deterministically). The speedup column is wall-clock bound by the
/// host's core count; on a single-core host it hovers near (or below)
/// 1.0 while the bit-identical result contract still holds.
void PrintParallelScaling() {
  bench::ExperimentTable table(
      "E14: parallel saturation — chain TC, serial vs 4 workers "
      "(bit-identical results)",
      "n", {"t1_ms", "t4_ms", "t1_over_t4"});
  for (uint32_t n : {500u, 1000u, 2000u, 4000u}) {
    const double t1 = RunChainTcThreaded(n, 1);
    const double t4 = RunChainTcThreaded(n, 4);
    table.AddRow(n, {t1 * 1e3, t4 * 1e3, t1 / t4});
  }
  table.Print();
}

/// One obs-enabled Prim run recorded into ProcessMetrics(), so the JSON
/// report embeds a representative engine metrics snapshot alongside the
/// timing tables.
void RecordInstrumentedRun() {
  EngineOptions opts;
  opts.obs.enabled = true;
  opts.obs.metrics = &bench::ProcessMetrics();
  GraphGenOptions gopts;
  gopts.seed = 45;
  const Graph g = ConnectedRandomGraph(400, 1200, gopts);
  auto r = PrimMst(g, 0, opts);
  GDLOG_CHECK(r.ok());
  // A direct engine run whose guardrail outcome (termination reason,
  // tracked peak memory) lands in the report's "runs" array.
  Engine e(opts);
  GDLOG_CHECK(e.LoadProgram(R"(
    tc(X, Y) <- edge(X, Y).
    tc(X, Z) <- tc(X, Y), edge(Y, Z).
  )").ok());
  for (uint32_t i = 0; i + 1 < 400; ++i) {
    GDLOG_CHECK(e.AddFact("edge", {Value::Int(i), Value::Int(i + 1)}).ok());
  }
  GDLOG_CHECK(e.Run().ok());
  const RunOutcome& o = e.outcome();
  bench::RecordRunOutcome("tc_chain_400", TerminationReasonName(o.reason),
                          o.status.ok(), o.guard_checks,
                          o.peak_memory_bytes);
}

void BM_TransitiveClosure(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunChainTc(static_cast<uint32_t>(state.range(0))));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TransitiveClosure)->Arg(250)->Arg(1000)->Arg(2000)
    ->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  gdlog::PrintSeminaiveAblation();
  gdlog::PrintBackendAblation();
  gdlog::PrintParallelScaling();
  gdlog::PrintDurabilityOverhead();
  if (gdlog::bench::JsonReportEnabled()) gdlog::RecordInstrumentedRun();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
