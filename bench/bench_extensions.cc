// Experiments E10/E11 — extension algorithms beyond the paper's printed
// list, showing the stage-stratified style generalizes as Section 5
// promises ("several scheduling algorithms and others").
//
// E10: Dijkstra SSSP as a stage program vs procedural lazy-deletion
//      Dijkstra — both O(e log e), so slopes ~1 and a flat ratio.
// E11: activity selection vs procedural earliest-finish-first — both
//      O(n log n).
#include <benchmark/benchmark.h>

#include "baselines/dijkstra.h"
#include "baselines/scheduling.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/dijkstra.h"
#include "greedy/scheduling.h"
#include "workload/graph_gen.h"
#include "workload/interval_gen.h"

namespace gdlog {
namespace {

Graph MakeGraph(uint32_t n) {
  GraphGenOptions opts;
  opts.seed = 31;
  return ConnectedRandomGraph(n, 3 * n, opts);
}

void PrintSsspTable() {
  bench::ExperimentTable table(
      "E10: Dijkstra SSSP — declarative stage program vs procedural "
      "lazy-deletion Dijkstra (e = 4n)",
      "e", {"engine_ms", "baseline_ms", "ratio", "settled"});
  for (uint32_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    const Graph g = MakeGraph(n);
    size_t settled = 0;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = DijkstraSssp(g, 0);
      GDLOG_CHECK(r.ok());
      settled = r->settled.size();
    }, /*reps=*/2);
    const double base_s = bench::MeasureSeconds([&] {
      benchmark::DoNotOptimize(BaselineDijkstra(g, 0).data());
    });
    table.AddRow(static_cast<double>(g.edges.size()),
                 {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                  static_cast<double>(settled)});
  }
  table.Print();
}

void PrintSchedulingTable() {
  bench::ExperimentTable table(
      "E11: activity selection — declarative scheduling program vs "
      "procedural earliest-finish-first",
      "n", {"engine_ms", "baseline_ms", "ratio", "selected"});
  for (uint32_t n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    IntervalGenOptions opts;
    opts.seed = 13;
    const auto jobs = RandomIntervals(n, opts);
    size_t selected = 0;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = SelectActivities(jobs);
      GDLOG_CHECK(r.ok());
      selected = r->jobs.size();
    }, /*reps=*/2);
    size_t base_selected = 0;
    const double base_s = bench::MeasureSeconds([&] {
      base_selected = BaselineSelectActivities(jobs).size();
    });
    GDLOG_CHECK_EQ(selected, base_selected);
    table.AddRow(n, {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                     static_cast<double>(selected)});
  }
  table.Print();
}

void BM_DijkstraEngine(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = DijkstraSssp(g, 0);
    benchmark::DoNotOptimize(r->settled.size());
  }
  state.SetComplexityN(static_cast<int64_t>(g.edges.size()));
}
BENCHMARK(BM_DijkstraEngine)->Arg(250)->Arg(1000)->Arg(4000)->Complexity();

void BM_SchedulingEngine(benchmark::State& state) {
  IntervalGenOptions opts;
  opts.seed = 13;
  const auto jobs = RandomIntervals(static_cast<uint32_t>(state.range(0)),
                                    opts);
  for (auto _ : state) {
    auto r = SelectActivities(jobs);
    benchmark::DoNotOptimize(r->jobs.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SchedulingEngine)->Arg(500)->Arg(2000)->Arg(8000)
    ->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintSsspTable();
  gdlog::PrintSchedulingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
