// Experiment E6 — Greedy TSP chain (paper Section 5, "Computation of
// Sub-Optimals").
//
// The chain on a complete graph performs n pops of up to O(n) fresh
// candidates per step, so the declarative cost is ~O(n^2 log n) against
// the procedural O(n^2) scan — both slope ~2 in n; the chains and
// totals are identical. The table also reports the greedy total against
// a crude tour lower bound (sum of each node's cheapest incident arc)
// to show the heuristic's sub-optimality band.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "baselines/tsp.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/tsp.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

Graph MakeGraph(uint32_t n) {
  GraphGenOptions opts;
  opts.seed = 5;
  return CompleteGraph(n, opts);
}

double TourLowerBound(const Graph& g) {
  std::vector<int64_t> best(g.num_nodes,
                            std::numeric_limits<int64_t>::max());
  for (const GraphEdge& e : g.edges) {
    best[e.u] = std::min(best[e.u], e.w);
    best[e.v] = std::min(best[e.v], e.w);
  }
  double sum = 0;
  for (int64_t b : best) sum += static_cast<double>(b);
  return sum;
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E6: Greedy TSP chain — declarative program vs procedural greedy "
      "(complete graph)",
      "n", {"engine_ms", "baseline_ms", "ratio", "chain_arcs",
            "cost_vs_lb"});
  for (uint32_t n : {20u, 40u, 80u, 160u, 320u}) {
    const Graph g = MakeGraph(n);
    int64_t engine_cost = 0, base_cost = 0;
    size_t arcs = 0;
    const double engine_s = bench::MeasureSeconds([&] {
      auto r = GreedyTspChain(g);
      GDLOG_CHECK(r.ok());
      engine_cost = r->total_cost;
      arcs = r->chain.size();
    }, /*reps=*/2);
    const double base_s = bench::MeasureSeconds([&] {
      base_cost = BaselineGreedyTsp(g).total_cost;
    });
    GDLOG_CHECK_EQ(engine_cost, base_cost);
    table.AddRow(n, {engine_s * 1e3, base_s * 1e3, engine_s / base_s,
                     static_cast<double>(arcs),
                     static_cast<double>(engine_cost) / TourLowerBound(g)});
  }
  table.Print();
}

void BM_TspEngine(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = GreedyTspChain(g);
    benchmark::DoNotOptimize(r->total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TspEngine)->Arg(20)->Arg(80)->Arg(320)->Complexity();

void BM_TspBaseline(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BaselineGreedyTsp(g).total_cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TspBaseline)->Arg(20)->Arg(80)->Arg(320)->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
