// Experiment E7 — the chosen-memo choice runtime (paper Section 2).
//
// "An efficient implementation for choice programs only requires
// memorization of the chosen predicates; from these, the diffChoice
// predicates can be generated on-the-fly." The table scales Example 1's
// bi-injective assignment and a recursive choice program (Example 3's
// spanning tree) and reports time per candidate: the FD probes are O(1)
// hash lookups, so both columns should fit slope ~1 (Lemma 2's
// polynomial — here linear — data complexity).
#include <benchmark/benchmark.h>

#include <string>

#include "api/engine.h"
#include "bench_util.h"
#include "common/logging.h"
#include "greedy/spanning_tree.h"
#include "workload/graph_gen.h"

namespace gdlog {
namespace {

/// Example 1 at scale: n students x n courses, 4 enrolments per student.
std::unique_ptr<Engine> RunAssignment(uint32_t n) {
  auto e = std::make_unique<Engine>();
  GDLOG_CHECK(e->LoadProgram(R"(
    a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).
  )").ok());
  Rng rng(17);
  for (uint32_t st = 0; st < n; ++st) {
    for (int k = 0; k < 4; ++k) {
      const auto crs = static_cast<int64_t>(rng.NextBounded(n));
      GDLOG_CHECK(e->AddFact("takes",
                             {Value::Int(st), Value::Int(crs)}).ok());
    }
  }
  GDLOG_CHECK(e->Run().ok());
  return e;
}

void PrintExperimentTable() {
  bench::ExperimentTable table(
      "E7: choice runtime — Example 1 assignment (4n enrolments) and "
      "Example 3 spanning tree (e = 4n)",
      "n",
      {"assign_ms", "assigned", "sptree_ms", "sptree_cands"});
  for (uint32_t n : {1000u, 2000u, 4000u, 8000u, 16000u}) {
    double assigned = 0;
    const double assign_s = bench::MeasureSeconds([&] {
      auto e = RunAssignment(n);
      assigned = static_cast<double>(e->Query("a_st", 2).size());
    }, /*reps=*/2);

    GraphGenOptions gopts;
    gopts.seed = 4;
    const Graph g = ConnectedRandomGraph(n, 3 * n, gopts);
    double cands = 0;
    const double st_s = bench::MeasureSeconds([&] {
      auto r = ComputeSpanningTree(g, 0);
      GDLOG_CHECK(r.ok());
      GDLOG_CHECK_EQ(r->edges.size(), g.num_nodes - 1);
      const CandidateQueueStats* qs = r->engine->QueueStats(0);
      cands = qs ? static_cast<double>(qs->inserted) : 0;
    }, /*reps=*/2);
    table.AddRow(n, {assign_s * 1e3, assigned, st_s * 1e3, cands});
  }
  table.Print();
}

void BM_ChoiceAssignment(benchmark::State& state) {
  for (auto _ : state) {
    auto e = RunAssignment(static_cast<uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(e->Query("a_st", 2).size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChoiceAssignment)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Complexity();

void BM_ChoiceSpanningTree(benchmark::State& state) {
  GraphGenOptions gopts;
  gopts.seed = 4;
  const Graph g = ConnectedRandomGraph(
      static_cast<uint32_t>(state.range(0)), 3 * state.range(0), gopts);
  for (auto _ : state) {
    auto r = ComputeSpanningTree(g, 0);
    benchmark::DoNotOptimize(r->edges.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChoiceSpanningTree)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Complexity();

}  // namespace
}  // namespace gdlog

int main(int argc, char** argv) {
  gdlog::bench::InitBenchReport(&argc, argv);
  gdlog::PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
