# Empty compiler generated dependencies file for gdlog_shell.
# This may be replaced when dependencies are built.
