file(REMOVE_RECURSE
  "CMakeFiles/gdlog_shell.dir/gdlog_shell.cc.o"
  "CMakeFiles/gdlog_shell.dir/gdlog_shell.cc.o.d"
  "gdlog_shell"
  "gdlog_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
