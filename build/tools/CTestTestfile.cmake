# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_prim "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/prim.dl" "--verify" "--stats")
set_tests_properties(shell_prim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_kruskal "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/kruskal.dl" "--verify" "--stats")
set_tests_properties(shell_kruskal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_sort "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/sort.dl" "--verify" "--stats")
set_tests_properties(shell_sort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_huffman "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/huffman.dl" "--verify" "--stats")
set_tests_properties(shell_huffman PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_course_assignment "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/course_assignment.dl" "--verify" "--stats")
set_tests_properties(shell_course_assignment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_report "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/prim.dl" "--report" "--rewrite")
set_tests_properties(shell_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_ablation "/root/repo/build/tools/gdlog_shell" "/root/repo/tools/../programs/prim.dl" "--no-merge" "--linear-least" "--verify")
set_tests_properties(shell_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(shell_bad_usage "/root/repo/build/tools/gdlog_shell")
set_tests_properties(shell_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
