file(REMOVE_RECURSE
  "CMakeFiles/bench_huffman.dir/bench_huffman.cc.o"
  "CMakeFiles/bench_huffman.dir/bench_huffman.cc.o.d"
  "CMakeFiles/bench_huffman.dir/bench_util.cc.o"
  "CMakeFiles/bench_huffman.dir/bench_util.cc.o.d"
  "bench_huffman"
  "bench_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
