# Empty dependencies file for bench_huffman.
# This may be replaced when dependencies are built.
