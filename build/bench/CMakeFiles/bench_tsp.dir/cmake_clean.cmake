file(REMOVE_RECURSE
  "CMakeFiles/bench_tsp.dir/bench_tsp.cc.o"
  "CMakeFiles/bench_tsp.dir/bench_tsp.cc.o.d"
  "CMakeFiles/bench_tsp.dir/bench_util.cc.o"
  "CMakeFiles/bench_tsp.dir/bench_util.cc.o.d"
  "bench_tsp"
  "bench_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
