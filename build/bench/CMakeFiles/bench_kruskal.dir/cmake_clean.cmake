file(REMOVE_RECURSE
  "CMakeFiles/bench_kruskal.dir/bench_kruskal.cc.o"
  "CMakeFiles/bench_kruskal.dir/bench_kruskal.cc.o.d"
  "CMakeFiles/bench_kruskal.dir/bench_util.cc.o"
  "CMakeFiles/bench_kruskal.dir/bench_util.cc.o.d"
  "bench_kruskal"
  "bench_kruskal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kruskal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
