# Empty compiler generated dependencies file for bench_kruskal.
# This may be replaced when dependencies are built.
