
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kruskal.cc" "bench/CMakeFiles/bench_kruskal.dir/bench_kruskal.cc.o" "gcc" "bench/CMakeFiles/bench_kruskal.dir/bench_kruskal.cc.o.d"
  "/root/repo/bench/bench_util.cc" "bench/CMakeFiles/bench_kruskal.dir/bench_util.cc.o" "gcc" "bench/CMakeFiles/bench_kruskal.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdlog_greedy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
