file(REMOVE_RECURSE
  "CMakeFiles/bench_rql.dir/bench_rql.cc.o"
  "CMakeFiles/bench_rql.dir/bench_rql.cc.o.d"
  "CMakeFiles/bench_rql.dir/bench_util.cc.o"
  "CMakeFiles/bench_rql.dir/bench_util.cc.o.d"
  "bench_rql"
  "bench_rql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
