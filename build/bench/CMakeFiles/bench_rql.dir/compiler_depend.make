# Empty compiler generated dependencies file for bench_rql.
# This may be replaced when dependencies are built.
