# Empty compiler generated dependencies file for bench_choice.
# This may be replaced when dependencies are built.
