file(REMOVE_RECURSE
  "CMakeFiles/bench_choice.dir/bench_choice.cc.o"
  "CMakeFiles/bench_choice.dir/bench_choice.cc.o.d"
  "CMakeFiles/bench_choice.dir/bench_util.cc.o"
  "CMakeFiles/bench_choice.dir/bench_util.cc.o.d"
  "bench_choice"
  "bench_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
