# Empty compiler generated dependencies file for bench_prim.
# This may be replaced when dependencies are built.
