file(REMOVE_RECURSE
  "CMakeFiles/bench_prim.dir/bench_prim.cc.o"
  "CMakeFiles/bench_prim.dir/bench_prim.cc.o.d"
  "CMakeFiles/bench_prim.dir/bench_util.cc.o"
  "CMakeFiles/bench_prim.dir/bench_util.cc.o.d"
  "bench_prim"
  "bench_prim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
