# Empty compiler generated dependencies file for example_talk_schedule.
# This may be replaced when dependencies are built.
