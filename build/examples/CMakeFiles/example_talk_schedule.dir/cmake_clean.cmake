file(REMOVE_RECURSE
  "CMakeFiles/example_talk_schedule.dir/talk_schedule.cpp.o"
  "CMakeFiles/example_talk_schedule.dir/talk_schedule.cpp.o.d"
  "example_talk_schedule"
  "example_talk_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_talk_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
