file(REMOVE_RECURSE
  "CMakeFiles/example_huffman_coder.dir/huffman_coder.cpp.o"
  "CMakeFiles/example_huffman_coder.dir/huffman_coder.cpp.o.d"
  "example_huffman_coder"
  "example_huffman_coder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_huffman_coder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
