# Empty dependencies file for example_huffman_coder.
# This may be replaced when dependencies are built.
