file(REMOVE_RECURSE
  "CMakeFiles/example_network_mst.dir/network_mst.cpp.o"
  "CMakeFiles/example_network_mst.dir/network_mst.cpp.o.d"
  "example_network_mst"
  "example_network_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
