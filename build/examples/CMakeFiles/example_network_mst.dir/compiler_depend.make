# Empty compiler generated dependencies file for example_network_mst.
# This may be replaced when dependencies are built.
