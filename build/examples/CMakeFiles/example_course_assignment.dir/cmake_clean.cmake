file(REMOVE_RECURSE
  "CMakeFiles/example_course_assignment.dir/course_assignment.cpp.o"
  "CMakeFiles/example_course_assignment.dir/course_assignment.cpp.o.d"
  "example_course_assignment"
  "example_course_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_course_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
