# Empty dependencies file for example_course_assignment.
# This may be replaced when dependencies are built.
