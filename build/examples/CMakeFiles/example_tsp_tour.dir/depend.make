# Empty dependencies file for example_tsp_tour.
# This may be replaced when dependencies are built.
