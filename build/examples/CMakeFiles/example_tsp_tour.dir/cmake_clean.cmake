file(REMOVE_RECURSE
  "CMakeFiles/example_tsp_tour.dir/tsp_tour.cpp.o"
  "CMakeFiles/example_tsp_tour.dir/tsp_tour.cpp.o.d"
  "example_tsp_tour"
  "example_tsp_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tsp_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
