# Empty dependencies file for greedy_huffman_test.
# This may be replaced when dependencies are built.
