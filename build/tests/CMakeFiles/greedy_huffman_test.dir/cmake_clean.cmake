file(REMOVE_RECURSE
  "CMakeFiles/greedy_huffman_test.dir/greedy_huffman_test.cc.o"
  "CMakeFiles/greedy_huffman_test.dir/greedy_huffman_test.cc.o.d"
  "greedy_huffman_test"
  "greedy_huffman_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_huffman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
