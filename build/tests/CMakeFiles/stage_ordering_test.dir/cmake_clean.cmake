file(REMOVE_RECURSE
  "CMakeFiles/stage_ordering_test.dir/stage_ordering_test.cc.o"
  "CMakeFiles/stage_ordering_test.dir/stage_ordering_test.cc.o.d"
  "stage_ordering_test"
  "stage_ordering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
