# Empty compiler generated dependencies file for stage_ordering_test.
# This may be replaced when dependencies are built.
