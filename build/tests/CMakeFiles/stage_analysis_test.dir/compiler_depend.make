# Empty compiler generated dependencies file for stage_analysis_test.
# This may be replaced when dependencies are built.
