file(REMOVE_RECURSE
  "CMakeFiles/stage_analysis_test.dir/stage_analysis_test.cc.o"
  "CMakeFiles/stage_analysis_test.dir/stage_analysis_test.cc.o.d"
  "stage_analysis_test"
  "stage_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
