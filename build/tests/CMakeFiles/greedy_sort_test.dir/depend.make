# Empty dependencies file for greedy_sort_test.
# This may be replaced when dependencies are built.
