file(REMOVE_RECURSE
  "CMakeFiles/greedy_sort_test.dir/greedy_sort_test.cc.o"
  "CMakeFiles/greedy_sort_test.dir/greedy_sort_test.cc.o.d"
  "greedy_sort_test"
  "greedy_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
