file(REMOVE_RECURSE
  "CMakeFiles/greedy_extensions_test.dir/greedy_extensions_test.cc.o"
  "CMakeFiles/greedy_extensions_test.dir/greedy_extensions_test.cc.o.d"
  "greedy_extensions_test"
  "greedy_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
