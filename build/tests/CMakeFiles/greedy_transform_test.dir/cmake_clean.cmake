file(REMOVE_RECURSE
  "CMakeFiles/greedy_transform_test.dir/greedy_transform_test.cc.o"
  "CMakeFiles/greedy_transform_test.dir/greedy_transform_test.cc.o.d"
  "greedy_transform_test"
  "greedy_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
