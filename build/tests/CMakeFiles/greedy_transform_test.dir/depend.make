# Empty dependencies file for greedy_transform_test.
# This may be replaced when dependencies are built.
