file(REMOVE_RECURSE
  "CMakeFiles/greedy_tsp_test.dir/greedy_tsp_test.cc.o"
  "CMakeFiles/greedy_tsp_test.dir/greedy_tsp_test.cc.o.d"
  "greedy_tsp_test"
  "greedy_tsp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_tsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
