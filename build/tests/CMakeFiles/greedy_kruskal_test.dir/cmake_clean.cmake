file(REMOVE_RECURSE
  "CMakeFiles/greedy_kruskal_test.dir/greedy_kruskal_test.cc.o"
  "CMakeFiles/greedy_kruskal_test.dir/greedy_kruskal_test.cc.o.d"
  "greedy_kruskal_test"
  "greedy_kruskal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_kruskal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
