# Empty dependencies file for greedy_kruskal_test.
# This may be replaced when dependencies are built.
