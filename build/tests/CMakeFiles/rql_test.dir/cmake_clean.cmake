file(REMOVE_RECURSE
  "CMakeFiles/rql_test.dir/rql_test.cc.o"
  "CMakeFiles/rql_test.dir/rql_test.cc.o.d"
  "rql_test"
  "rql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
