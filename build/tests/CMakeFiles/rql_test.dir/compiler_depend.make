# Empty compiler generated dependencies file for rql_test.
# This may be replaced when dependencies are built.
