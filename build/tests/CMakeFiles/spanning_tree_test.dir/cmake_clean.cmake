file(REMOVE_RECURSE
  "CMakeFiles/spanning_tree_test.dir/spanning_tree_test.cc.o"
  "CMakeFiles/spanning_tree_test.dir/spanning_tree_test.cc.o.d"
  "spanning_tree_test"
  "spanning_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanning_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
