file(REMOVE_RECURSE
  "CMakeFiles/stable_model_test.dir/stable_model_test.cc.o"
  "CMakeFiles/stable_model_test.dir/stable_model_test.cc.o.d"
  "stable_model_test"
  "stable_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
