# Empty compiler generated dependencies file for stable_model_test.
# This may be replaced when dependencies are built.
