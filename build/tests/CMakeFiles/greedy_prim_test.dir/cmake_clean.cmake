file(REMOVE_RECURSE
  "CMakeFiles/greedy_prim_test.dir/greedy_prim_test.cc.o"
  "CMakeFiles/greedy_prim_test.dir/greedy_prim_test.cc.o.d"
  "greedy_prim_test"
  "greedy_prim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_prim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
