# Empty dependencies file for greedy_prim_test.
# This may be replaced when dependencies are built.
