file(REMOVE_RECURSE
  "CMakeFiles/gdlog_greedy.dir/greedy/dijkstra.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/dijkstra.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/graph.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/graph.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/huffman.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/huffman.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/kruskal.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/kruskal.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/matching.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/matching.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/prim.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/prim.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/scheduling.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/scheduling.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/sort.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/sort.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/spanning_tree.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/spanning_tree.cc.o.d"
  "CMakeFiles/gdlog_greedy.dir/greedy/tsp.cc.o"
  "CMakeFiles/gdlog_greedy.dir/greedy/tsp.cc.o.d"
  "libgdlog_greedy.a"
  "libgdlog_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
