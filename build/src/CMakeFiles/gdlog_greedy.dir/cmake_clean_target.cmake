file(REMOVE_RECURSE
  "libgdlog_greedy.a"
)
