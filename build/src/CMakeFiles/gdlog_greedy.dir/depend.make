# Empty dependencies file for gdlog_greedy.
# This may be replaced when dependencies are built.
