
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/greedy/dijkstra.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/dijkstra.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/dijkstra.cc.o.d"
  "/root/repo/src/greedy/graph.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/graph.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/graph.cc.o.d"
  "/root/repo/src/greedy/huffman.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/huffman.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/huffman.cc.o.d"
  "/root/repo/src/greedy/kruskal.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/kruskal.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/kruskal.cc.o.d"
  "/root/repo/src/greedy/matching.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/matching.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/matching.cc.o.d"
  "/root/repo/src/greedy/prim.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/prim.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/prim.cc.o.d"
  "/root/repo/src/greedy/scheduling.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/scheduling.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/scheduling.cc.o.d"
  "/root/repo/src/greedy/sort.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/sort.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/sort.cc.o.d"
  "/root/repo/src/greedy/spanning_tree.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/spanning_tree.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/spanning_tree.cc.o.d"
  "/root/repo/src/greedy/tsp.cc" "src/CMakeFiles/gdlog_greedy.dir/greedy/tsp.cc.o" "gcc" "src/CMakeFiles/gdlog_greedy.dir/greedy/tsp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdlog_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
