
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/gdlog_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/gdlog_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/gdlog_storage.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/gdlog_storage.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/gdlog_storage.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/gdlog_storage.dir/storage/relation.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/gdlog_storage.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/gdlog_storage.dir/storage/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdlog_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
