file(REMOVE_RECURSE
  "CMakeFiles/gdlog_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/gdlog_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/gdlog_storage.dir/storage/index.cc.o"
  "CMakeFiles/gdlog_storage.dir/storage/index.cc.o.d"
  "CMakeFiles/gdlog_storage.dir/storage/relation.cc.o"
  "CMakeFiles/gdlog_storage.dir/storage/relation.cc.o.d"
  "CMakeFiles/gdlog_storage.dir/storage/tuple.cc.o"
  "CMakeFiles/gdlog_storage.dir/storage/tuple.cc.o.d"
  "libgdlog_storage.a"
  "libgdlog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
