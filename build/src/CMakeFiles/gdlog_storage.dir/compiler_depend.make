# Empty compiler generated dependencies file for gdlog_storage.
# This may be replaced when dependencies are built.
