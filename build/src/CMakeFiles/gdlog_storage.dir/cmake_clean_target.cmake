file(REMOVE_RECURSE
  "libgdlog_storage.a"
)
