# Empty dependencies file for gdlog_common.
# This may be replaced when dependencies are built.
