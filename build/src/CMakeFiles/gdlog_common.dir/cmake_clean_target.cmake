file(REMOVE_RECURSE
  "libgdlog_common.a"
)
