file(REMOVE_RECURSE
  "CMakeFiles/gdlog_common.dir/common/arena.cc.o"
  "CMakeFiles/gdlog_common.dir/common/arena.cc.o.d"
  "CMakeFiles/gdlog_common.dir/common/logging.cc.o"
  "CMakeFiles/gdlog_common.dir/common/logging.cc.o.d"
  "CMakeFiles/gdlog_common.dir/common/rng.cc.o"
  "CMakeFiles/gdlog_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gdlog_common.dir/common/status.cc.o"
  "CMakeFiles/gdlog_common.dir/common/status.cc.o.d"
  "libgdlog_common.a"
  "libgdlog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
