# Empty compiler generated dependencies file for gdlog_baselines.
# This may be replaced when dependencies are built.
