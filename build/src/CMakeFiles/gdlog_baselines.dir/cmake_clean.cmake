file(REMOVE_RECURSE
  "CMakeFiles/gdlog_baselines.dir/baselines/dijkstra.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/dijkstra.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/heapsort.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/heapsort.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/huffman.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/huffman.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/kruskal.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/kruskal.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/matching.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/matching.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/prim.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/prim.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/scheduling.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/scheduling.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/tsp.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/tsp.cc.o.d"
  "CMakeFiles/gdlog_baselines.dir/baselines/union_find.cc.o"
  "CMakeFiles/gdlog_baselines.dir/baselines/union_find.cc.o.d"
  "libgdlog_baselines.a"
  "libgdlog_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
