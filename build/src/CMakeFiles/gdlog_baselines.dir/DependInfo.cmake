
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dijkstra.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/dijkstra.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/dijkstra.cc.o.d"
  "/root/repo/src/baselines/heapsort.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/heapsort.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/heapsort.cc.o.d"
  "/root/repo/src/baselines/huffman.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/huffman.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/huffman.cc.o.d"
  "/root/repo/src/baselines/kruskal.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/kruskal.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/kruskal.cc.o.d"
  "/root/repo/src/baselines/matching.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/matching.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/matching.cc.o.d"
  "/root/repo/src/baselines/prim.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/prim.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/prim.cc.o.d"
  "/root/repo/src/baselines/scheduling.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/scheduling.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/scheduling.cc.o.d"
  "/root/repo/src/baselines/tsp.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/tsp.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/tsp.cc.o.d"
  "/root/repo/src/baselines/union_find.cc" "src/CMakeFiles/gdlog_baselines.dir/baselines/union_find.cc.o" "gcc" "src/CMakeFiles/gdlog_baselines.dir/baselines/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdlog_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
