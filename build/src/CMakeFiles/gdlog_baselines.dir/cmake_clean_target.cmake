file(REMOVE_RECURSE
  "libgdlog_baselines.a"
)
