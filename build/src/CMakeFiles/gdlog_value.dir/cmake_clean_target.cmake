file(REMOVE_RECURSE
  "libgdlog_value.a"
)
