# Empty compiler generated dependencies file for gdlog_value.
# This may be replaced when dependencies are built.
