
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/value/symbol_table.cc" "src/CMakeFiles/gdlog_value.dir/value/symbol_table.cc.o" "gcc" "src/CMakeFiles/gdlog_value.dir/value/symbol_table.cc.o.d"
  "/root/repo/src/value/term_table.cc" "src/CMakeFiles/gdlog_value.dir/value/term_table.cc.o" "gcc" "src/CMakeFiles/gdlog_value.dir/value/term_table.cc.o.d"
  "/root/repo/src/value/value.cc" "src/CMakeFiles/gdlog_value.dir/value/value.cc.o" "gcc" "src/CMakeFiles/gdlog_value.dir/value/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
