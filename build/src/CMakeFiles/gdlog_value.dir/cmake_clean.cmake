file(REMOVE_RECURSE
  "CMakeFiles/gdlog_value.dir/value/symbol_table.cc.o"
  "CMakeFiles/gdlog_value.dir/value/symbol_table.cc.o.d"
  "CMakeFiles/gdlog_value.dir/value/term_table.cc.o"
  "CMakeFiles/gdlog_value.dir/value/term_table.cc.o.d"
  "CMakeFiles/gdlog_value.dir/value/value.cc.o"
  "CMakeFiles/gdlog_value.dir/value/value.cc.o.d"
  "libgdlog_value.a"
  "libgdlog_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
