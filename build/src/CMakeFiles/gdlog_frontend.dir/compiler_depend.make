# Empty compiler generated dependencies file for gdlog_frontend.
# This may be replaced when dependencies are built.
