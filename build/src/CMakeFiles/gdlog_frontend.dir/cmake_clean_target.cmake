file(REMOVE_RECURSE
  "libgdlog_frontend.a"
)
