file(REMOVE_RECURSE
  "CMakeFiles/gdlog_frontend.dir/ast/ast.cc.o"
  "CMakeFiles/gdlog_frontend.dir/ast/ast.cc.o.d"
  "CMakeFiles/gdlog_frontend.dir/ast/builder.cc.o"
  "CMakeFiles/gdlog_frontend.dir/ast/builder.cc.o.d"
  "CMakeFiles/gdlog_frontend.dir/ast/printer.cc.o"
  "CMakeFiles/gdlog_frontend.dir/ast/printer.cc.o.d"
  "CMakeFiles/gdlog_frontend.dir/parser/lexer.cc.o"
  "CMakeFiles/gdlog_frontend.dir/parser/lexer.cc.o.d"
  "CMakeFiles/gdlog_frontend.dir/parser/parser.cc.o"
  "CMakeFiles/gdlog_frontend.dir/parser/parser.cc.o.d"
  "libgdlog_frontend.a"
  "libgdlog_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
