file(REMOVE_RECURSE
  "libgdlog_workload.a"
)
