file(REMOVE_RECURSE
  "CMakeFiles/gdlog_workload.dir/workload/graph_gen.cc.o"
  "CMakeFiles/gdlog_workload.dir/workload/graph_gen.cc.o.d"
  "CMakeFiles/gdlog_workload.dir/workload/interval_gen.cc.o"
  "CMakeFiles/gdlog_workload.dir/workload/interval_gen.cc.o.d"
  "CMakeFiles/gdlog_workload.dir/workload/relation_gen.cc.o"
  "CMakeFiles/gdlog_workload.dir/workload/relation_gen.cc.o.d"
  "CMakeFiles/gdlog_workload.dir/workload/text_gen.cc.o"
  "CMakeFiles/gdlog_workload.dir/workload/text_gen.cc.o.d"
  "libgdlog_workload.a"
  "libgdlog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
