# Empty dependencies file for gdlog_workload.
# This may be replaced when dependencies are built.
