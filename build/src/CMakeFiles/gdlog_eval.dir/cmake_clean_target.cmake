file(REMOVE_RECURSE
  "libgdlog_eval.a"
)
