file(REMOVE_RECURSE
  "CMakeFiles/gdlog_eval.dir/eval/binding.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/binding.cc.o.d"
  "CMakeFiles/gdlog_eval.dir/eval/choice_runtime.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/choice_runtime.cc.o.d"
  "CMakeFiles/gdlog_eval.dir/eval/fixpoint.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/fixpoint.cc.o.d"
  "CMakeFiles/gdlog_eval.dir/eval/rql.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/rql.cc.o.d"
  "CMakeFiles/gdlog_eval.dir/eval/rule_compiler.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/rule_compiler.cc.o.d"
  "CMakeFiles/gdlog_eval.dir/eval/seminaive.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/seminaive.cc.o.d"
  "CMakeFiles/gdlog_eval.dir/eval/stable_model.cc.o"
  "CMakeFiles/gdlog_eval.dir/eval/stable_model.cc.o.d"
  "libgdlog_eval.a"
  "libgdlog_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
