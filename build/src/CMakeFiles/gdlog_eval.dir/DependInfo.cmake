
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/binding.cc" "src/CMakeFiles/gdlog_eval.dir/eval/binding.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/binding.cc.o.d"
  "/root/repo/src/eval/choice_runtime.cc" "src/CMakeFiles/gdlog_eval.dir/eval/choice_runtime.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/choice_runtime.cc.o.d"
  "/root/repo/src/eval/fixpoint.cc" "src/CMakeFiles/gdlog_eval.dir/eval/fixpoint.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/fixpoint.cc.o.d"
  "/root/repo/src/eval/rql.cc" "src/CMakeFiles/gdlog_eval.dir/eval/rql.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/rql.cc.o.d"
  "/root/repo/src/eval/rule_compiler.cc" "src/CMakeFiles/gdlog_eval.dir/eval/rule_compiler.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/rule_compiler.cc.o.d"
  "/root/repo/src/eval/seminaive.cc" "src/CMakeFiles/gdlog_eval.dir/eval/seminaive.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/seminaive.cc.o.d"
  "/root/repo/src/eval/stable_model.cc" "src/CMakeFiles/gdlog_eval.dir/eval/stable_model.cc.o" "gcc" "src/CMakeFiles/gdlog_eval.dir/eval/stable_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdlog_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdlog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
