# Empty dependencies file for gdlog_eval.
# This may be replaced when dependencies are built.
