file(REMOVE_RECURSE
  "libgdlog_api.a"
)
