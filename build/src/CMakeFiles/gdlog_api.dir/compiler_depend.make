# Empty compiler generated dependencies file for gdlog_api.
# This may be replaced when dependencies are built.
