file(REMOVE_RECURSE
  "CMakeFiles/gdlog_api.dir/api/engine.cc.o"
  "CMakeFiles/gdlog_api.dir/api/engine.cc.o.d"
  "libgdlog_api.a"
  "libgdlog_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
