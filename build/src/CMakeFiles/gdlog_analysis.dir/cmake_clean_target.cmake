file(REMOVE_RECURSE
  "libgdlog_analysis.a"
)
