file(REMOVE_RECURSE
  "CMakeFiles/gdlog_analysis.dir/analysis/dep_graph.cc.o"
  "CMakeFiles/gdlog_analysis.dir/analysis/dep_graph.cc.o.d"
  "CMakeFiles/gdlog_analysis.dir/analysis/greedy_transform.cc.o"
  "CMakeFiles/gdlog_analysis.dir/analysis/greedy_transform.cc.o.d"
  "CMakeFiles/gdlog_analysis.dir/analysis/rewriter.cc.o"
  "CMakeFiles/gdlog_analysis.dir/analysis/rewriter.cc.o.d"
  "CMakeFiles/gdlog_analysis.dir/analysis/stage.cc.o"
  "CMakeFiles/gdlog_analysis.dir/analysis/stage.cc.o.d"
  "libgdlog_analysis.a"
  "libgdlog_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdlog_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
