# Empty compiler generated dependencies file for gdlog_analysis.
# This may be replaced when dependencies are built.
