// Lexer for the choice-Datalog surface syntax.
//
// Token classes: lowercase identifiers (predicate/functor/constant names
// and the keywords not/nil/choice/least/most/next/mod/min/max), variables
// (uppercase or `_` start), integers, double-quoted strings, and
// punctuation. Comments: `%` and `//` to end of line, `/* ... */`.
#ifndef GDLOG_PARSER_LEXER_H_
#define GDLOG_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gdlog {

enum class TokenKind : uint8_t {
  kIdent,     // lowercase-start identifier
  kVariable,  // uppercase- or underscore-start identifier
  kInteger,
  kString,    // "..." (content without quotes)
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,     // <- or :-
  kEq,        // =
  kNe,        // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEof,
};

std::string_view TokenKindName(TokenKind k);

struct Token {
  TokenKind kind;
  std::string text;   // identifier / variable / string content
  int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Tokenizes `source` completely (appending a kEof token), or returns a
/// ParseError naming the offending line/column.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace gdlog

#endif  // GDLOG_PARSER_LEXER_H_
