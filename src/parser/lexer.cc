#include "parser/lexer.h"

#include <cctype>

#include "analysis/diagnostics.h"
#include "value/value.h"

namespace gdlog {

std::string_view TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kArrow:
      return "'<-'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      GDLOG_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (AtEnd()) {
        tok.kind = TokenKind::kEof;
        out.push_back(std::move(tok));
        return out;
      }
      const char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        GDLOG_RETURN_IF_ERROR(LexInteger(&tok));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexWord(&tok);
      } else if (c == '"') {
        GDLOG_RETURN_IF_ERROR(LexString(&tok));
      } else {
        GDLOG_RETURN_IF_ERROR(LexPunct(&tok));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Status SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '%' || (Peek() == '/' && Peek(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      if (Peek() == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  Status LexInteger(Token* tok) {
    tok->kind = TokenKind::kInteger;
    int64_t v = 0;
    bool overflow = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      const int d = Advance() - '0';
      if (v > (INT64_MAX - d) / 10) overflow = true;
      if (!overflow) v = v * 10 + d;
    }
    // Checked against Value's inline-int payload (61 bits), not int64:
    // a literal the lexer accepts must be representable downstream, or
    // Value::Int would hit its range invariant.
    if (overflow || !Value::IntInRange(v)) {
      return Error(std::string("[") + std::string(diag::kIntLiteralRange) +
                   "] integer literal out of range (inline ints span [" +
                   std::to_string(Value::kMinInt) + ", " +
                   std::to_string(Value::kMaxInt) + "])");
    }
    tok->int_value = v;
    return Status::OK();
  }

  void LexWord(Token* tok) {
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      word += Advance();
    }
    const char first = word[0];
    tok->kind = (std::isupper(static_cast<unsigned char>(first)) || first == '_')
                    ? TokenKind::kVariable
                    : TokenKind::kIdent;
    tok->text = std::move(word);
  }

  Status LexString(Token* tok) {
    Advance();  // opening quote
    std::string content;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        const char esc = Advance();
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '\\':
            c = '\\';
            break;
          case '"':
            c = '"';
            break;
          default:
            return Error(std::string("unknown escape '\\") + esc + "'");
        }
      }
      content += c;
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    tok->kind = TokenKind::kString;
    tok->text = std::move(content);
    return Status::OK();
  }

  Status LexPunct(Token* tok) {
    const char c = Advance();
    switch (c) {
      case '(':
        tok->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        tok->kind = TokenKind::kRParen;
        return Status::OK();
      case ',':
        tok->kind = TokenKind::kComma;
        return Status::OK();
      case '.':
        tok->kind = TokenKind::kDot;
        return Status::OK();
      case '+':
        tok->kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        tok->kind = TokenKind::kMinus;
        return Status::OK();
      case '*':
        tok->kind = TokenKind::kStar;
        return Status::OK();
      case '/':
        tok->kind = TokenKind::kSlash;
        return Status::OK();
      case '=':
        tok->kind = TokenKind::kEq;
        return Status::OK();
      case '!':
        if (Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kNe;
          return Status::OK();
        }
        return Error("expected '=' after '!'");
      case ':':
        if (Peek() == '-') {
          Advance();
          tok->kind = TokenKind::kArrow;
          return Status::OK();
        }
        return Error("expected '-' after ':'");
      case '<':
        if (Peek() == '-') {
          Advance();
          tok->kind = TokenKind::kArrow;
          return Status::OK();
        }
        if (Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kLe;
          return Status::OK();
        }
        if (Peek() == '>') {
          Advance();
          tok->kind = TokenKind::kNe;
          return Status::OK();
        }
        tok->kind = TokenKind::kLt;
        return Status::OK();
      case '>':
        if (Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kGe;
          return Status::OK();
        }
        tok->kind = TokenKind::kGt;
        return Status::OK();
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace gdlog
