// Recursive-descent parser producing AST Programs.
//
// Grammar (see README for the full language reference):
//
//   program  := { rule }
//   rule     := atom [ ("<-" | ":-") body ] "."
//   body     := literal { "," literal }
//   literal  := "not" atom
//             | "not" "(" body ")"
//             | "choice" "(" term "," term ")"
//             | "least" "(" term [ "," term ] ")"
//             | "most"  "(" term [ "," term ] ")"
//             | "next" "(" VARIABLE ")"
//             | atom
//             | expr compop expr
//   expr     := additive arithmetic over primaries
//   primary  := INTEGER | VARIABLE | "nil" | STRING
//             | IDENT [ "(" expr {"," expr} ")" ]
//             | "(" ")" | "(" expr {"," expr} ")"     (tuple if 0 or 2+,
//                                                      grouping if exactly 1)
//             | "-" primary
//
// Anonymous variables `_` are renamed apart per occurrence.
#ifndef GDLOG_PARSER_PARSER_H_
#define GDLOG_PARSER_PARSER_H_

#include <string_view>

#include "ast/ast.h"
#include "common/status.h"

namespace gdlog {

/// Parses a full program. Constants are interned into `store`.
Result<Program> ParseProgram(ValueStore* store, std::string_view source);

/// Parses a single rule (convenience for tests).
Result<Rule> ParseRule(ValueStore* store, std::string_view source);

}  // namespace gdlog

#endif  // GDLOG_PARSER_PARSER_H_
