#include "parser/parser.h"

#include <optional>

#include "parser/lexer.h"

namespace gdlog {

namespace {

bool IsComparisonToken(TokenKind k) {
  switch (k) {
    case TokenKind::kEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return true;
    default:
      return false;
  }
}

ComparisonOp ToComparisonOp(TokenKind k) {
  switch (k) {
    case TokenKind::kEq:
      return ComparisonOp::kEq;
    case TokenKind::kNe:
      return ComparisonOp::kNe;
    case TokenKind::kLt:
      return ComparisonOp::kLt;
    case TokenKind::kLe:
      return ComparisonOp::kLe;
    case TokenKind::kGt:
      return ComparisonOp::kGt;
    default:
      return ComparisonOp::kGe;
  }
}

class Parser {
 public:
  Parser(ValueStore* store, std::vector<Token> tokens)
      : store_(store), tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program prog;
    while (!Check(TokenKind::kEof)) {
      GDLOG_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
      prog.rules.push_back(std::move(rule));
    }
    return prog;
  }

  Result<Rule> ParseSingleRule() {
    GDLOG_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
    if (!Check(TokenKind::kEof)) {
      return Error("trailing input after rule");
    }
    return rule;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }
  bool Check(TokenKind k) const { return Peek().kind == k; }
  bool Match(TokenKind k) {
    if (!Check(k)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) +
                              " (found " +
                              std::string(TokenKindName(t.kind)) + ")");
  }

  Status Expect(TokenKind k, const char* context) {
    if (Match(k)) return Status::OK();
    return Error(std::string("expected ") + std::string(TokenKindName(k)) +
                 " " + context);
  }

  std::string FreshAnonymous() {
    return "_G" + std::to_string(anon_counter_++);
  }

  static SourceLoc LocOf(const Token& t) { return SourceLoc{t.line, t.column}; }

  Result<Rule> ParseOneRule() {
    anon_counter_ = 0;
    const SourceLoc loc = LocOf(Peek());
    GDLOG_ASSIGN_OR_RETURN(Literal head, ParseAtom(/*negated=*/false));
    Rule rule;
    rule.loc = loc;
    rule.head = std::move(head);
    if (Match(TokenKind::kArrow)) {
      GDLOG_ASSIGN_OR_RETURN(rule.body, ParseBody());
    }
    GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kDot, "to end rule"));
    return rule;
  }

  Result<std::vector<Literal>> ParseBody() {
    std::vector<Literal> body;
    do {
      GDLOG_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      body.push_back(std::move(lit));
    } while (Match(TokenKind::kComma));
    return body;
  }

  Result<Literal> ParseLiteral() {
    const SourceLoc loc = LocOf(Peek());
    GDLOG_ASSIGN_OR_RETURN(Literal lit, ParseLiteralImpl());
    lit.loc = loc;
    return lit;
  }

  Result<Literal> ParseLiteralImpl() {
    if (Check(TokenKind::kIdent)) {
      const std::string& word = Peek().text;
      if (word == "not") {
        ++pos_;
        if (Match(TokenKind::kLParen)) {
          GDLOG_ASSIGN_OR_RETURN(std::vector<Literal> conj, ParseBody());
          GDLOG_RETURN_IF_ERROR(
              Expect(TokenKind::kRParen, "to close 'not ('"));
          // `not (single_atom)` is just a negated atom.
          if (conj.size() == 1 && conj[0].kind == LiteralKind::kAtom &&
              !conj[0].negated) {
            conj[0].negated = true;
            return std::move(conj[0]);
          }
          return Literal::NotExists(std::move(conj));
        }
        return ParseAtom(/*negated=*/true);
      }
      if (word == "choice") {
        ++pos_;
        GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'choice'"));
        GDLOG_ASSIGN_OR_RETURN(TermNode left, ParseExpr());
        GDLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kComma, "between choice arguments"));
        GDLOG_ASSIGN_OR_RETURN(TermNode right, ParseExpr());
        GDLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "to close 'choice('"));
        return Literal::Choice(std::move(left), std::move(right));
      }
      if (word == "least" || word == "most") {
        const bool is_least = word == "least";
        ++pos_;
        GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after extremum"));
        GDLOG_ASSIGN_OR_RETURN(TermNode cost, ParseExpr());
        TermNode group = TermNode::Tuple({});
        if (Match(TokenKind::kComma)) {
          GDLOG_ASSIGN_OR_RETURN(group, ParseExpr());
        }
        GDLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "to close extremum goal"));
        return is_least ? Literal::Least(std::move(cost), std::move(group))
                        : Literal::Most(std::move(cost), std::move(group));
      }
      if (word == "next") {
        ++pos_;
        GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'next'"));
        if (!Check(TokenKind::kVariable)) {
          return Error("next(...) takes a single variable");
        }
        TermNode var = TermNode::Var(Peek().text == "_" ? FreshAnonymous()
                                                        : Peek().text);
        ++pos_;
        GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close 'next('"));
        return Literal::Next(std::move(var));
      }
    }
    // Either an atom or a comparison. Parse an expression first; if a
    // comparison operator follows, it is a comparison. Otherwise the
    // expression must have the shape of an atom.
    GDLOG_ASSIGN_OR_RETURN(TermNode expr, ParseExpr());
    if (IsComparisonToken(Peek().kind)) {
      const ComparisonOp op = ToComparisonOp(Peek().kind);
      ++pos_;
      GDLOG_ASSIGN_OR_RETURN(TermNode rhs, ParseExpr());
      return Literal::Comparison(op, std::move(expr), std::move(rhs));
    }
    // Atom shape: a compound with a non-arithmetic, non-tuple functor, or
    // a bare lowercase identifier (0-ary predicate, parsed as constant).
    if (expr.is_compound() && !expr.is_tuple() &&
        !IsArithmeticFunctor(expr.name)) {
      return Literal::Atom(expr.name, std::move(expr.args));
    }
    if (expr.is_const() && expr.constant.is_symbol()) {
      return Literal::Atom(std::string(store_->SymbolName(expr.constant)), {});
    }
    return Error("expected an atom or a comparison");
  }

  Result<Literal> ParseAtom(bool negated) {
    if (!Check(TokenKind::kIdent)) {
      return Error("expected a predicate name");
    }
    const SourceLoc loc = LocOf(Peek());
    std::string name = Peek().text;
    ++pos_;
    std::vector<TermNode> args;
    if (Match(TokenKind::kLParen)) {
      if (!Check(TokenKind::kRParen)) {
        do {
          GDLOG_ASSIGN_OR_RETURN(TermNode arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Match(TokenKind::kComma));
      }
      GDLOG_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "to close argument list"));
    }
    Literal atom = Literal::Atom(std::move(name), std::move(args), negated);
    atom.loc = loc;
    return atom;
  }

  // expr := mul { (+|-) mul }
  Result<TermNode> ParseExpr() {
    GDLOG_ASSIGN_OR_RETURN(TermNode lhs, ParseMul());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const std::string op = Check(TokenKind::kPlus) ? "+" : "-";
      ++pos_;
      GDLOG_ASSIGN_OR_RETURN(TermNode rhs, ParseMul());
      std::vector<TermNode> args;
      args.push_back(std::move(lhs));
      args.push_back(std::move(rhs));
      lhs = TermNode::Compound(op, std::move(args));
    }
    return lhs;
  }

  // mul := primary { (*|/|mod) primary }
  Result<TermNode> ParseMul() {
    GDLOG_ASSIGN_OR_RETURN(TermNode lhs, ParsePrimary());
    for (;;) {
      std::string op;
      if (Check(TokenKind::kStar)) {
        op = "*";
      } else if (Check(TokenKind::kSlash)) {
        op = "/";
      } else if (Check(TokenKind::kIdent) && Peek().text == "mod") {
        op = "mod";
      } else {
        break;
      }
      ++pos_;
      GDLOG_ASSIGN_OR_RETURN(TermNode rhs, ParsePrimary());
      std::vector<TermNode> args;
      args.push_back(std::move(lhs));
      args.push_back(std::move(rhs));
      lhs = TermNode::Compound(op, std::move(args));
    }
    return lhs;
  }

  Result<TermNode> ParsePrimary() {
    if (Check(TokenKind::kInteger)) {
      const int64_t v = Peek().int_value;
      ++pos_;
      return TermNode::Const(Value::Int(v));
    }
    if (Match(TokenKind::kMinus)) {
      GDLOG_ASSIGN_OR_RETURN(TermNode inner, ParsePrimary());
      if (inner.is_const() && inner.constant.is_int()) {
        return TermNode::Const(Value::Int(-inner.constant.AsInt()));
      }
      std::vector<TermNode> args;
      args.push_back(TermNode::Const(Value::Int(0)));
      args.push_back(std::move(inner));
      return TermNode::Compound("-", std::move(args));
    }
    if (Check(TokenKind::kVariable)) {
      std::string name = Peek().text;
      ++pos_;
      if (name == "_") name = FreshAnonymous();
      return TermNode::Var(std::move(name));
    }
    if (Check(TokenKind::kString)) {
      TermNode t = TermNode::Const(store_->MakeSymbol(Peek().text));
      ++pos_;
      return t;
    }
    if (Check(TokenKind::kIdent)) {
      std::string name = Peek().text;
      ++pos_;
      if (name == "nil") return TermNode::Const(Value::Nil());
      if (Match(TokenKind::kLParen)) {
        std::vector<TermNode> args;
        if (!Check(TokenKind::kRParen)) {
          do {
            GDLOG_ASSIGN_OR_RETURN(TermNode arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        GDLOG_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "to close argument list"));
        return TermNode::Compound(std::move(name), std::move(args));
      }
      return TermNode::Const(store_->MakeSymbol(name));
    }
    if (Match(TokenKind::kLParen)) {
      // () is the empty tuple; (e) is grouping; (e1, e2, ...) is a tuple.
      if (Match(TokenKind::kRParen)) return TermNode::Tuple({});
      std::vector<TermNode> elems;
      do {
        GDLOG_ASSIGN_OR_RETURN(TermNode e, ParseExpr());
        elems.push_back(std::move(e));
      } while (Match(TokenKind::kComma));
      GDLOG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close tuple"));
      if (elems.size() == 1) return std::move(elems[0]);
      return TermNode::Tuple(std::move(elems));
    }
    return Error("expected a term");
  }

  ValueStore* store_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(ValueStore* store, std::string_view source) {
  GDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(store, std::move(tokens)).ParseProgram();
}

Result<Rule> ParseRule(ValueStore* store, std::string_view source) {
  GDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(store, std::move(tokens)).ParseSingleRule();
}

}  // namespace gdlog
