// Prim's algorithm as a declarative choice program — the paper's
// Example 4, run on the gdlog engine.
//
//   prm(nil, root, 0, 0).
//   prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
//                      least(C, I), choice(Y, X).
//   new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
//
// The engine evaluates this with the (R,Q,L) structure of Section 6:
// candidates are new_g tuples keyed by cost, r-congruent on Y (the
// choice key), giving the paper's O(e log e) bound.
#ifndef GDLOG_GREEDY_PRIM_H_
#define GDLOG_GREEDY_PRIM_H_

#include <memory>

#include "api/engine.h"
#include "workload/graph.h"

namespace gdlog {

/// The program text (with a ROOT placeholder fact added by PrimMst).
extern const char kPrimProgramRules[];

struct MstEdge {
  int64_t parent = 0;
  int64_t node = 0;
  int64_t cost = 0;
  int64_t stage = 0;
};

struct DeclarativeMst {
  int64_t total_cost = 0;
  std::vector<MstEdge> edges;  // in stage order (root seed excluded)
  std::unique_ptr<Engine> engine;
};

/// Runs Example 4 on `graph` (undirected) from `root`. The graph must be
/// connected for a spanning tree; otherwise the reachable component is
/// spanned.
Result<DeclarativeMst> PrimMst(const Graph& graph, uint32_t root = 0,
                               const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_PRIM_H_
