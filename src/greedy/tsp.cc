#include "greedy/tsp.h"

#include <algorithm>

#include "greedy/graph.h"

namespace gdlog {

// Deviation from the paper's text (see tsp.h): the next rule carries a
// pop-time guard "Y not already entered". The exit rule's
// choice((), (X, Y)) and the next rule's choice(Y, X) are *separate*
// chosen predicates (the paper's footnote 1), so without the guard the
// exit arc's target can be re-entered later — a stable model of the
// paper's program, but not the intended greedy chain.
const char kTspProgram[] = R"(
  tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
  tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1,
                           least(C, I),
                           not (tsp_chain(_, Y, _, J2), J2 < I),
                           choice(Y, X).
  new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
  least_arcs(X, Y, C) <- g(X, Y, C), least(C).
)";

Result<DeclarativeTsp> GreedyTspChain(const Graph& graph,
                                      const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kTspProgram));
  GDLOG_RETURN_IF_ERROR(LoadGraphEdges(engine.get(), graph, {}));
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeTsp out;
  for (const auto& row : engine->Query("tsp_chain", 4)) {
    TspArc a;
    a.from = row[0].AsInt();
    a.to = row[1].AsInt();
    a.cost = row[2].AsInt();
    a.stage = row[3].AsInt();
    out.total_cost += a.cost;
    out.chain.push_back(a);
  }
  std::sort(out.chain.begin(), out.chain.end(),
            [](const TspArc& a, const TspArc& b) { return a.stage < b.stage; });
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
