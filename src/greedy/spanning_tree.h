// Arbitrary (not minimum) spanning tree via pure choice — the paper's
// Example 3, in the form without stage variables. This exercises the
// plain Choice Fixpoint of Section 2: a recursive rule with choice but
// neither next nor extrema.
//
//   st(nil, root, 0).
//   st(X, Y, C) <- st(_, X, _), g(X, Y, C), choice(Y, (X, C)).
#ifndef GDLOG_GREEDY_SPANNING_TREE_H_
#define GDLOG_GREEDY_SPANNING_TREE_H_

#include <memory>

#include "api/engine.h"
#include "workload/graph.h"

namespace gdlog {

extern const char kSpanningTreeProgram[];

struct SpanningTreeEdge {
  int64_t parent = 0, node = 0, cost = 0;
};

struct DeclarativeSpanningTree {
  std::vector<SpanningTreeEdge> edges;
  std::unique_ptr<Engine> engine;
};

Result<DeclarativeSpanningTree> ComputeSpanningTree(
    const Graph& graph, uint32_t root = 0, const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_SPANNING_TREE_H_
