#include "greedy/prim.h"

#include <algorithm>

#include "greedy/graph.h"

namespace gdlog {

const char kPrimProgramRules[] = R"(
  prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
                     least(C, I), choice(Y, X).
  new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
)";

Result<DeclarativeMst> PrimMst(const Graph& graph, uint32_t root,
                               const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kPrimProgramRules));
  GraphLoadOptions load;
  load.exclude_target = root;
  GDLOG_RETURN_IF_ERROR(LoadGraphEdges(engine.get(), graph, load));
  // Seed fact: the root enters the tree at stage 0 with no parent.
  GDLOG_RETURN_IF_ERROR(engine->AddFact(
      "prm", {Value::Nil(), Value::Int(root), Value::Int(0), Value::Int(0)}));
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeMst out;
  for (const auto& row : engine->Query("prm", 4)) {
    if (row[0].is_nil()) continue;  // root seed
    MstEdge e;
    e.parent = row[0].AsInt();
    e.node = row[1].AsInt();
    e.cost = row[2].AsInt();
    e.stage = row[3].AsInt();
    out.total_cost += e.cost;
    out.edges.push_back(e);
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const MstEdge& a, const MstEdge& b) { return a.stage < b.stage; });
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
