#include "greedy/dijkstra.h"

#include <algorithm>

#include "greedy/graph.h"

namespace gdlog {

const char kDijkstraProgram[] = R"(
  dist(Y, D, I) <- next(I), cand(Y, D, J), J < I, least(D, I),
                   not (dist(Y, _, J2), J2 < I).
  cand(Y, D, J) <- dist(X, DX, J), g(X, Y, C), D = DX + C.
)";

Result<DeclarativeSssp> DijkstraSssp(const Graph& graph, uint32_t root,
                                     const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kDijkstraProgram));
  GDLOG_RETURN_IF_ERROR(LoadGraphEdges(engine.get(), graph, {}));
  // The root settles at distance 0, stage 0 (the seed fact).
  GDLOG_RETURN_IF_ERROR(engine->AddFact(
      "dist", {Value::Int(root), Value::Int(0), Value::Int(0)}));
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeSssp out;
  for (const auto& row : engine->Query("dist", 3)) {
    out.settled.push_back({row[0].AsInt(), row[1].AsInt(), row[2].AsInt()});
  }
  std::sort(out.settled.begin(), out.settled.end(),
            [](const SettledNode& a, const SettledNode& b) {
              return a.stage < b.stage;
            });
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
