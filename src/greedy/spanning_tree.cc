#include "greedy/spanning_tree.h"

#include "greedy/graph.h"

namespace gdlog {

const char kSpanningTreeProgram[] = R"(
  st(X, Y, C) <- st(_, X, _), g(X, Y, C), choice(Y, (X, C)).
)";

Result<DeclarativeSpanningTree> ComputeSpanningTree(
    const Graph& graph, uint32_t root, const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kSpanningTreeProgram));
  GraphLoadOptions load;
  load.exclude_target = root;
  GDLOG_RETURN_IF_ERROR(LoadGraphEdges(engine.get(), graph, load));
  GDLOG_RETURN_IF_ERROR(engine->AddFact(
      "st", {Value::Nil(), Value::Int(root), Value::Int(0)}));
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeSpanningTree out;
  for (const auto& row : engine->Query("st", 3)) {
    if (row[0].is_nil()) continue;
    out.edges.push_back({row[0].AsInt(), row[1].AsInt(), row[2].AsInt()});
  }
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
