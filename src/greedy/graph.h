// Helpers for loading Graph workloads into an Engine as EDB facts.
// Nodes are Int values; edges become g(U, V, W) facts.
#ifndef GDLOG_GREEDY_GRAPH_H_
#define GDLOG_GREEDY_GRAPH_H_

#include <optional>

#include "api/engine.h"
#include "workload/graph.h"

namespace gdlog {

struct GraphLoadOptions {
  // Insert both g(u,v,w) and g(v,u,w) (undirected reading).
  bool both_directions = true;
  // Skip edges whose target equals this node. Rooted algorithms (Prim,
  // spanning tree) use this for the root: the root enters the tree via
  // its seed fact, not via a chosen edge, so edges into it would
  // otherwise admit a second entry (the choice FD only constrains rule
  // firings, not seed facts).
  std::optional<uint32_t> exclude_target;
};

/// Loads g/3 edge facts.
Status LoadGraphEdges(Engine* engine, const Graph& graph,
                      const GraphLoadOptions& options = {});

/// Loads node/1 facts for every node id.
Status LoadGraphNodes(Engine* engine, const Graph& graph);

}  // namespace gdlog

#endif  // GDLOG_GREEDY_GRAPH_H_
