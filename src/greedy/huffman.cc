#include "greedy/huffman.h"

namespace gdlog {

// Deviation from the paper's text (see huffman.h): the h rule re-checks
// subtree usage at firing time. The paper's feasible-time checks alone
// admit unintended stable models: choice(X, I) and choice(Y, I) are
// separate FDs, so a subtree used once as a left child may be reused as
// a right child (e.g. t(f,e) then t(e,f)), compounding costs forever.
// The stage-relative NotExists goals below mention I, so the engine
// evaluates them when the candidate pops — exactly the missing guard.
const char kHuffmanProgram[] = R"(
  h(X, C, 0) <- letter(X, C).
  h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I,
                      least(C, I),
                      not (subtree(X, L1), L1 < I),
                      not (subtree(Y, L2), L2 < I),
                      choice(X, I), choice(Y, I).
  feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
                             not (subtree(X, L1), L1 < I),
                             not (subtree(Y, L2), L2 < I),
                             I = max(J, K), X != Y, C = C1 + C2.
  subtree(X, I) <- h(t(X, _), _, I).
  subtree(X, I) <- h(t(_, X), _, I).
)";

namespace {

void AssignCodes(const ValueStore& store, Value node, const std::string& path,
                 std::map<std::string, std::string>* codes) {
  if (node.is_symbol()) {
    (*codes)[std::string(store.SymbolName(node))] = path.empty() ? "0" : path;
    return;
  }
  if (!node.is_term()) return;
  const auto args = store.TermArgs(node.AsTermId());
  if (args.size() != 2) return;
  AssignCodes(store, args[0], path + "0", codes);
  AssignCodes(store, args[1], path + "1", codes);
}

}  // namespace

Result<DeclarativeHuffman> HuffmanTree(
    const std::vector<std::pair<std::string, int64_t>>& frequencies,
    const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kHuffmanProgram));
  for (const auto& [name, freq] : frequencies) {
    GDLOG_RETURN_IF_ERROR(
        engine->AddFact("letter", {engine->Sym(name), Value::Int(freq)}));
  }
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeHuffman out;
  Value root;
  int64_t max_stage = -1;
  for (const auto& row : engine->Query("h", 3)) {
    if (row[0].is_term()) {
      out.total_cost += row[1].AsInt();
      ++out.merges;
    }
    if (row[2].is_int() && row[2].AsInt() > max_stage) {
      max_stage = row[2].AsInt();
      root = row[0];
    }
  }
  if (max_stage >= 0) {
    out.tree = engine->store().ToString(root);
    AssignCodes(engine->store(), root, "", &out.codes);
  }
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
