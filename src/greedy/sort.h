// Relation sorting as a stage-stratified program — the paper's
// Example 5. The fixpoint implementation is a heap-sort: all tuples
// enter the priority queue, and each stage extracts the minimum.
//
//   sp(nil, 0, 0).
//   sp(X, C, I) <- next(I), p(X, C), least(C, I).
#ifndef GDLOG_GREEDY_SORT_H_
#define GDLOG_GREEDY_SORT_H_

#include <memory>
#include <utility>
#include <vector>

#include "api/engine.h"

namespace gdlog {

extern const char kSortProgram[];

struct DeclarativeSortResult {
  // (id, cost) in ascending stage order — i.e. ascending cost.
  std::vector<std::pair<int64_t, int64_t>> sorted;
  std::unique_ptr<Engine> engine;
};

Result<DeclarativeSortResult> SortRelation(
    const std::vector<std::pair<int64_t, int64_t>>& tuples,
    const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_SORT_H_
