// Kruskal's algorithm as a declarative choice program (the paper's
// Example 8, reformulated to be fully stage-stratified).
//
// The paper's version tracks components through comp/last_comp with a
// most() aggregate whose flat rules are not strictly stage-stratified
// (Section 7 concedes this). We instead maintain the monotone
// connected-pair relation conn, stamped with the stage at which the pair
// became connected:
//
//   kruskal(nil, nil, 0, 0).      (anchors stage 0 for the rewriting)
//   conn(X, X, 0)    <- node(X).
//   conn(X, Y, I)    <- kruskal(A, B, _, I), conn(A, X, J1), J1 < I,
//                       conn(B, Y, J2), J2 < I.
//   conn(X, Y, I)    <- kruskal(A, B, _, I), conn(B, X, J1), J1 < I,
//                       conn(A, Y, J2), J2 < I.
//   kruskal(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
//                          not (conn(X, Y, J), J < I).
//
// This clique passes the full Section 4 test (the negated conn goal is
// strictly stage-stratified). Operationally it is exactly Kruskal: the
// candidate queue holds all edges ordered by cost; a popped edge fires
// iff its endpoints are not yet connected, else moves to R_r. The
// declarative component maintenance costs O(n^2) total conn tuples —
// the gap against procedural union-find that Section 7's analysis
// concedes (their formulation pays O(e·n)).
#ifndef GDLOG_GREEDY_KRUSKAL_H_
#define GDLOG_GREEDY_KRUSKAL_H_

#include "greedy/prim.h"

namespace gdlog {

extern const char kKruskalProgram[];

/// Runs declarative Kruskal on `graph` (undirected). Returns the forest
/// edges in selection (stage) order.
Result<DeclarativeMst> KruskalMst(const Graph& graph,
                                  const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_KRUSKAL_H_
