#include "greedy/scheduling.h"

#include <algorithm>

namespace gdlog {

const char kSchedulingProgram[] = R"(
  sched(nil, 0, 0).
  sched(S, F, I) <- next(I), job(S, F), least(F, I),
                    not (sched(_, F2, J), J < I, F2 > S).
)";

Result<DeclarativeSchedule> SelectActivities(
    const std::vector<std::pair<int64_t, int64_t>>& jobs,
    const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kSchedulingProgram));
  for (const auto& [start, finish] : jobs) {
    GDLOG_RETURN_IF_ERROR(
        engine->AddFact("job", {Value::Int(start), Value::Int(finish)}));
  }
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeSchedule out;
  for (const auto& row : engine->Query("sched", 3)) {
    if (row[0].is_nil()) continue;  // seed
    out.jobs.push_back({row[0].AsInt(), row[1].AsInt(), row[2].AsInt()});
  }
  std::sort(out.jobs.begin(), out.jobs.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              return a.stage < b.stage;
            });
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
