// Single-source shortest paths as a stage-stratified program — an
// extension beyond the paper's example list showing the framework
// covers Dijkstra, the other canonical priority-queue greedy:
//
//   dist(root, 0, 0).
//   dist(Y, D, I) <- next(I), cand(Y, D, J), J < I, least(D, I),
//                    not (dist(Y, _, J2), J2 < I).
//   cand(Y, D, J) <- dist(X, DX, J), g(X, Y, C), D = DX + C.
//
// Each stage settles the unsettled node with the smallest tentative
// distance (the least goal over the candidate queue); the negated goal
// is the "already settled" check, evaluated at pop time. This is
// textbook lazy-deletion Dijkstra running as a choice fixpoint.
#ifndef GDLOG_GREEDY_DIJKSTRA_H_
#define GDLOG_GREEDY_DIJKSTRA_H_

#include <memory>

#include "api/engine.h"
#include "workload/graph.h"

namespace gdlog {

extern const char kDijkstraProgram[];

struct SettledNode {
  int64_t node = 0, distance = 0, stage = 0;
};

struct DeclarativeSssp {
  std::vector<SettledNode> settled;  // in stage (= distance) order
  std::unique_ptr<Engine> engine;
};

/// Shortest distances from `root` over `graph` (undirected reading,
/// non-negative weights). Unreachable nodes are absent.
Result<DeclarativeSssp> DijkstraSssp(const Graph& graph, uint32_t root = 0,
                                     const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_DIJKSTRA_H_
