// Greedy TSP chain — the paper's "Computation of Sub-Optimals"
// program (Section 5): a greedy approximation that starts from the
// globally cheapest arc and repeatedly extends the chain's endpoint
// with the cheapest arc to a node not yet entered.
//
//   tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
//   tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1,
//                            least(C, I), choice(Y, X).
//   new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
//   least_arcs(X, Y, C) <- g(X, Y, C), least(C).
#ifndef GDLOG_GREEDY_TSP_H_
#define GDLOG_GREEDY_TSP_H_

#include <memory>

#include "api/engine.h"
#include "workload/graph.h"

namespace gdlog {

extern const char kTspProgram[];

struct TspArc {
  int64_t from = 0, to = 0, cost = 0, stage = 0;
};

struct DeclarativeTsp {
  int64_t total_cost = 0;
  std::vector<TspArc> chain;  // in stage order
  std::unique_ptr<Engine> engine;
};

/// Runs the greedy chain on `graph` (undirected reading).
Result<DeclarativeTsp> GreedyTspChain(const Graph& graph,
                                      const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_TSP_H_
