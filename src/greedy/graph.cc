#include "greedy/graph.h"

namespace gdlog {

Status LoadGraphEdges(Engine* engine, const Graph& graph,
                      const GraphLoadOptions& options) {
  for (const GraphEdge& e : graph.edges) {
    const Value u = Value::Int(e.u);
    const Value v = Value::Int(e.v);
    const Value w = Value::Int(e.w);
    if (!options.exclude_target || *options.exclude_target != e.v) {
      GDLOG_RETURN_IF_ERROR(engine->AddFact("g", {u, v, w}));
    }
    if (options.both_directions &&
        (!options.exclude_target || *options.exclude_target != e.u)) {
      GDLOG_RETURN_IF_ERROR(engine->AddFact("g", {v, u, w}));
    }
  }
  return Status::OK();
}

Status LoadGraphNodes(Engine* engine, const Graph& graph) {
  for (uint32_t i = 0; i < graph.num_nodes; ++i) {
    GDLOG_RETURN_IF_ERROR(engine->AddFact("node", {Value::Int(i)}));
  }
  return Status::OK();
}

}  // namespace gdlog
