// Huffman trees as a stage-stratified program — the paper's Example 6.
//
//   h(X, C, 0) <- letter(X, C).
//   h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I,
//                       least(C, I),
//                       not (subtree(X, L1), L1 < I),
//                       not (subtree(Y, L2), L2 < I),
//                       choice(X, I), choice(Y, I).
//   feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
//                              not (subtree(X, L1), L1 < I),
//                              not (subtree(Y, L2), L2 < I),
//                              I = max(J, K), X != Y, C = C1 + C2.
//   subtree(X, I) <- h(t(X, _), _, I).
//   subtree(X, I) <- h(t(_, X), _, I).
//
// Deviations from the paper's text (see DESIGN.md §7): (a) the extremum
// is least(C, I) rather than least(C) — with the global form the
// extremum's negated body copy shares no stage variable and the clique
// fails the Section 4 strictness test, the very point the paper makes
// for Prim ("if we replace this goal by least(C, _), the
// stage-stratification is lost"); grouping by the stage variable is
// semantically identical here. (b) The h rule re-checks subtree usage at
// firing time: choice(X, I) and choice(Y, I) are separate FDs, so the
// printed program admits stable models that reuse a subtree as a left
// child of one merge and the right child of another.
#ifndef GDLOG_GREEDY_HUFFMAN_H_
#define GDLOG_GREEDY_HUFFMAN_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"

namespace gdlog {

extern const char kHuffmanProgram[];

struct DeclarativeHuffman {
  // Sum of merged-node costs == weighted path length of the code.
  int64_t total_cost = 0;
  // Number of internal (merge) stages = k - 1 for k letters.
  size_t merges = 0;
  // The root tree value rendered as text, e.g. "t(t(l0,l1),l2)".
  std::string tree;
  // Prefix code per letter (0 = left, 1 = right).
  std::map<std::string, std::string> codes;
  std::unique_ptr<Engine> engine;
};

Result<DeclarativeHuffman> HuffmanTree(
    const std::vector<std::pair<std::string, int64_t>>& frequencies,
    const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_HUFFMAN_H_
