// Minimum-cost greedy matching — the paper's Example 7.
//
//   matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
//                           choice(Y, X), choice(X, Y).
//
// The two choice FDs make every node usable once as a source and once
// as a target; on bipartite inputs (sources disjoint from targets) the
// result is a matching in the classical sense. Arcs enter in ascending
// cost order, stamped with the selection stage.
#ifndef GDLOG_GREEDY_MATCHING_H_
#define GDLOG_GREEDY_MATCHING_H_

#include <memory>

#include "api/engine.h"
#include "workload/graph.h"

namespace gdlog {

extern const char kMatchingProgram[];

struct MatchingArc {
  int64_t source = 0, target = 0, cost = 0, stage = 0;
};

struct DeclarativeMatching {
  int64_t total_cost = 0;
  std::vector<MatchingArc> arcs;  // in stage (selection) order
  std::unique_ptr<Engine> engine;
};

/// Runs Example 7 on the directed arcs of `graph`.
Result<DeclarativeMatching> GreedyMatching(const Graph& graph,
                                           const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_MATCHING_H_
