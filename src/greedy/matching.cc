#include "greedy/matching.h"

#include <algorithm>

#include "greedy/graph.h"

namespace gdlog {

// The seed fact matching(nil, nil, 0, 0) is the paper's: it anchors the
// stage dimension at 0, so the first chosen arc's stage (1) has a
// predecessor and the stable-model rewriting's implicit
// matching(_,_,_,I1), I = I1 + 1 goal is satisfiable.
const char kMatchingProgram[] = R"(
  matching(nil, nil, 0, 0).
  matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
                          choice(Y, X), choice(X, Y).
)";

Result<DeclarativeMatching> GreedyMatching(const Graph& graph,
                                           const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kMatchingProgram));
  GraphLoadOptions load;
  load.both_directions = false;  // arcs are directed
  GDLOG_RETURN_IF_ERROR(LoadGraphEdges(engine.get(), graph, load));
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeMatching out;
  for (const auto& row : engine->Query("matching", 4)) {
    if (row[0].is_nil()) continue;  // seed
    MatchingArc a;
    a.source = row[0].AsInt();
    a.target = row[1].AsInt();
    a.cost = row[2].AsInt();
    a.stage = row[3].AsInt();
    out.total_cost += a.cost;
    out.arcs.push_back(a);
  }
  std::sort(
      out.arcs.begin(), out.arcs.end(),
      [](const MatchingArc& a, const MatchingArc& b) { return a.stage < b.stage; });
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
