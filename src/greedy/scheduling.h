// Activity selection (interval scheduling) as a stage-stratified
// program — one of the "several scheduling algorithms" the paper's
// Section 5 reports expressing in this style.
//
//   sched(nil, 0, 0).
//   sched(S, F, I) <- next(I), job(S, F), least(F, I),
//                     not (sched(_, F2, J), J < I, F2 > S).
//
// Stages pick jobs in increasing finish time; a candidate is admissible
// iff no already-selected job finishes after its start — the classical
// earliest-finish-first rule, which maximizes the number of compatible
// activities. The negated conjunction mentions the stage variable, so
// the engine evaluates it when the candidate pops (and a failure is
// permanent: selected jobs only accumulate).
#ifndef GDLOG_GREEDY_SCHEDULING_H_
#define GDLOG_GREEDY_SCHEDULING_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/engine.h"

namespace gdlog {

extern const char kSchedulingProgram[];

struct ScheduledJob {
  int64_t start = 0, finish = 0, stage = 0;
};

struct DeclarativeSchedule {
  std::vector<ScheduledJob> jobs;  // in stage (= finish) order
  std::unique_ptr<Engine> engine;
};

/// Selects a maximum set of pairwise-compatible jobs (half-open
/// intervals [start, finish)).
Result<DeclarativeSchedule> SelectActivities(
    const std::vector<std::pair<int64_t, int64_t>>& jobs,
    const EngineOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_GREEDY_SCHEDULING_H_
