#include "greedy/kruskal.h"

#include <algorithm>

#include "greedy/graph.h"

namespace gdlog {

const char kKruskalProgram[] = R"(
  kruskal(nil, nil, 0, 0).
  conn(X, X, 0) <- node(X).
  conn(X, Y, I) <- kruskal(A, B, _, I), conn(A, X, J1), J1 < I,
                   conn(B, Y, J2), J2 < I.
  conn(X, Y, I) <- kruskal(A, B, _, I), conn(B, X, J1), J1 < I,
                   conn(A, Y, J2), J2 < I.
  kruskal(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
                         not (conn(X, Y, J), J < I).
)";

Result<DeclarativeMst> KruskalMst(const Graph& graph,
                                  const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kKruskalProgram));
  // One direction per edge suffices: conn is maintained symmetrically.
  GraphLoadOptions load;
  load.both_directions = false;
  GDLOG_RETURN_IF_ERROR(LoadGraphEdges(engine.get(), graph, load));
  GDLOG_RETURN_IF_ERROR(LoadGraphNodes(engine.get(), graph));
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeMst out;
  for (const auto& row : engine->Query("kruskal", 4)) {
    if (row[0].is_nil()) continue;  // stage-0 seed
    MstEdge e;
    e.parent = row[0].AsInt();
    e.node = row[1].AsInt();
    e.cost = row[2].AsInt();
    e.stage = row[3].AsInt();
    out.total_cost += e.cost;
    out.edges.push_back(e);
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const MstEdge& a, const MstEdge& b) { return a.stage < b.stage; });
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
