#include "greedy/sort.h"

#include <algorithm>

namespace gdlog {

const char kSortProgram[] = R"(
  sp(nil, 0, 0).
  sp(X, C, I) <- next(I), p(X, C), least(C, I).
)";

Result<DeclarativeSortResult> SortRelation(
    const std::vector<std::pair<int64_t, int64_t>>& tuples,
    const EngineOptions& options) {
  auto engine = std::make_unique<Engine>(options);
  GDLOG_RETURN_IF_ERROR(engine->LoadProgram(kSortProgram));
  for (const auto& [id, cost] : tuples) {
    GDLOG_RETURN_IF_ERROR(
        engine->AddFact("p", {Value::Int(id), Value::Int(cost)}));
  }
  GDLOG_RETURN_IF_ERROR(engine->Run());

  DeclarativeSortResult out;
  struct Row {
    int64_t id, cost, stage;
  };
  std::vector<Row> rows;
  for (const auto& row : engine->Query("sp", 3)) {
    if (row[0].is_nil()) continue;  // seed
    rows.push_back({row[0].AsInt(), row[1].AsInt(), row[2].AsInt()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.stage < b.stage; });
  for (const Row& r : rows) out.sorted.emplace_back(r.id, r.cost);
  out.engine = std::move(engine);
  return out;
}

}  // namespace gdlog
