// Low-overhead metrics registry: named, label-bearing counters, gauges,
// and log-linear latency histograms with JSON and Prometheus exporters.
//
// Handles returned by the registry are stable for its lifetime, so hot
// paths resolve a metric once and then pay a single atomic add per
// event. Registration (the Get* calls) is mutex-guarded; recording
// through a handle is lock-free (relaxed atomics), so worker threads may
// hammer the same counter or histogram concurrently without losing
// updates. The registry is always on by default (ObsOptions::metrics_enabled);
// see docs/OBSERVABILITY.md for the bucket scheme and naming conventions.
#ifndef GDLOG_OBS_METRICS_H_
#define GDLOG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gdlog {

class JsonWriter;

/// Label set attached to a metric, e.g. {{"rule", "prm/4"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Keeps the running maximum (high-water marks).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Lock-free log-linear (HDR-style) histogram over non-negative integer
/// values (nanoseconds, row counts, queue depths).
///
/// Bucket scheme: values below kSubBuckets get one exact bucket each;
/// above that, every power-of-two octave [2^k, 2^(k+1)) splits into
/// kSubBuckets/2 equal-width sub-buckets, so the relative quantization
/// error is bounded by 2/kSubBuckets (~6.25%) across the whole uint64
/// range. Recording is one relaxed fetch_add on the bucket plus count,
/// sum, and CAS-maintained min/max — safe from any number of threads
/// with no lost updates.
class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 5;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;  // 32
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * (kSubBuckets / 2);  // 976

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Lock-free, wait-free on the common path.
  void Record(uint64_t v) noexcept {
    counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Legacy double entry point: clamps negatives to 0 and records.
  void Observe(double v) noexcept {
    Record(v <= 0 ? 0
           : v >= 9.2e18
               ? static_cast<uint64_t>(9'200'000'000'000'000'000ull)
               : static_cast<uint64_t>(v));
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Approximate quantile (0 <= q <= 1) by linear interpolation within
  /// the containing bucket, clamped to the observed [min, max]. Returns
  /// 0 on an empty histogram.
  double Quantile(double q) const;

  /// The bucket an observation of `v` lands in.
  static size_t BucketIndex(uint64_t v);
  /// Inclusive upper edge of bucket `i` (the Prometheus `le` value).
  static uint64_t BucketUpperEdge(size_t i);

  struct Bucket {
    uint64_t upper = 0;  // inclusive upper edge
    uint64_t count = 0;  // non-cumulative
  };
  /// Snapshot of the non-empty buckets in ascending edge order.
  std::vector<Bucket> NonZeroBuckets() const;

 private:
  std::atomic<uint64_t> counts_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of every metric's value, comparable across time:
/// Delta(before, after) yields the per-interval movement, which is what
/// bench reports and external scrapers want when one registry accumulates
/// over many runs.
struct MetricsSnapshot {
  struct Sample {
    enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
    Kind kind = Kind::kCounter;
    std::string name;
    MetricLabels labels;
    uint64_t value = 0;  // counter value; histogram observation count
    int64_t gauge = 0;   // gauge value
    uint64_t sum = 0;    // histogram sum
  };
  std::vector<Sample> samples;

  /// Monotonic difference: counters and histogram counts/sums subtract
  /// (clamped at 0); gauges keep the `after` value. Samples present only
  /// in `after` are kept whole.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  /// {"samples":[{"kind":..,"name":..,"labels":{..},"value":..}, ...]}
  void WriteJson(JsonWriter* w) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The same (name, labels) pair always returns the
  /// same handle; handles stay valid for the registry's lifetime.
  /// Thread-safe (mutex-guarded); the returned handles record lock-free.
  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  Histogram* GetHistogram(std::string_view name, MetricLabels labels = {});

  /// Read-only lookups: nullptr when the metric was never registered
  /// (unlike the Get* calls these never create).
  const Counter* FindCounter(std::string_view name,
                             const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(std::string_view name,
                         const MetricLabels& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const MetricLabels& labels = {}) const;

  size_t size() const;

  /// Appends the snapshot as one JSON object:
  ///   {"counters":[{"name":..,"labels":{..},"value":..}, ...],
  ///    "gauges":[...],
  ///    "histograms":[{"name":..,"labels":{..},"count":..,"sum":..,
  ///                   "min":..,"max":..,"p50":..,"p90":..,"p95":..,
  ///                   "p99":..,"buckets":[{"le":..,"count":..}, ...]}]}
  void SnapshotJson(JsonWriter* w) const;
  std::string SnapshotJson() const;

  /// Point-in-time value snapshot for delta computation.
  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (version 0.0.4): one `# TYPE`
  /// line per metric name, samples grouped by name, histogram
  /// `_bucket{le=..}` series cumulative with a `+Inf` terminator plus
  /// `_sum`/`_count`. Names are prefixed with `gdlog_` and sanitized to
  /// [a-zA-Z0-9_:]; counters gain the conventional `_total` suffix.
  void WriteText(std::string* out) const;
  std::string PrometheusText() const;

 private:
  template <typename T>
  struct Entry {
    Entry(std::string n, MetricLabels l)
        : name(std::move(n)), labels(std::move(l)) {}
    std::string name;
    MetricLabels labels;
    T metric;
  };

  static std::string KeyOf(std::string_view name, const MetricLabels& labels);

  mutable std::mutex mu_;
  // Deques keep handles stable across growth.
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
};

}  // namespace gdlog

#endif  // GDLOG_OBS_METRICS_H_
