// Low-overhead metrics registry: named, label-bearing counters, gauges,
// and latency histograms with a JSON snapshot exporter.
//
// Handles returned by the registry are stable for its lifetime, so hot
// paths resolve a metric once and then pay a single add/observe per
// event. The registry is not thread-safe — each Engine (and each bench
// process) owns one, matching the engine's single-threaded evaluation.
#ifndef GDLOG_OBS_METRICS_H_
#define GDLOG_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gdlog {

class JsonWriter;

/// Label set attached to a metric, e.g. {{"rule", "prm/4"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  /// Keeps the running maximum (high-water marks).
  void SetMax(int64_t v) {
    if (v > value_) value_ = v;
  }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Fixed-bound histogram. Bucket i counts observations <= bounds[i];
/// one overflow bucket counts the rest. The default bounds form a
/// base-4 exponential ladder from 250ns to ~4s, sized for call latencies.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = DefaultLatencyBoundsNs());

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Size bounds().size() + 1; the last entry is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Approximate quantile (0 <= q <= 1) by linear interpolation within
  /// the containing bucket. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  static std::vector<double> DefaultLatencyBoundsNs();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The same (name, labels) pair always returns the
  /// same handle; handles stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  Histogram* GetHistogram(std::string_view name, MetricLabels labels = {},
                          std::vector<double> bounds = {});

  size_t size() const { return counters_.size() + gauges_.size() +
                               histograms_.size(); }

  /// Appends the snapshot as one JSON object:
  ///   {"counters":[{"name":..,"labels":{..},"value":..}, ...],
  ///    "gauges":[...],
  ///    "histograms":[{"name":..,"labels":{..},"count":..,"sum":..,
  ///                   "min":..,"max":..,"p50":..,"p95":..,"p99":..}]}
  void SnapshotJson(JsonWriter* w) const;
  std::string SnapshotJson() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    MetricLabels labels;
    T metric;
  };

  static std::string KeyOf(std::string_view name, const MetricLabels& labels);

  // Deques keep handles stable across growth.
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
  std::unordered_map<std::string, Counter*> counter_index_;
  std::unordered_map<std::string, Gauge*> gauge_index_;
  std::unordered_map<std::string, Histogram*> histogram_index_;
};

}  // namespace gdlog

#endif  // GDLOG_OBS_METRICS_H_
