// Scoped-span tracer producing Chrome trace_event JSON.
//
// The tracer records a per-run phase timeline — parse → analyze →
// compile → per-clique Saturate/GammaPhase/stage advances, per-rule
// delta applications, per-queue pop/insert/lazy-delete — as complete
// ('X') and instant ('i') events on one timeline. Engine::WriteTrace
// dumps the buffer in the Chrome trace_event array format, loadable by
// chrome://tracing and Perfetto (see docs/OBSERVABILITY.md).
//
// High-frequency call sites gate themselves through Sample(), which
// keeps one event in every `sample_every`; phase-level spans are always
// recorded. A null Tracer* everywhere means tracing is off and the hot
// path pays a single pointer test.
#ifndef GDLOG_OBS_TRACE_H_
#define GDLOG_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gdlog {

class JsonWriter;
class MetricsRegistry;

struct TraceEvent {
  std::string name;
  const char* category = "";
  char phase = 'X';     // 'X' complete, 'i' instant
  uint64_t ts_ns = 0;   // start, relative to the tracer epoch
  uint64_t dur_ns = 0;  // 'X' only
  std::vector<std::pair<std::string, int64_t>> args;
};

class Tracer {
 public:
  explicit Tracer(uint32_t sample_every = 1)
      : sample_every_(sample_every == 0 ? 1 : sample_every),
        epoch_(std::chrono::steady_clock::now()) {}

  /// Nanoseconds since the tracer was created.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// True once every `sample_every` calls — the gate for per-candidate
  /// and per-queue-operation events.
  bool Sample() { return sample_every_ == 1 || (tick_++ % sample_every_) == 0; }
  uint32_t sample_every() const { return sample_every_; }

  void Complete(std::string name, const char* category, uint64_t start_ns,
                uint64_t end_ns,
                std::vector<std::pair<std::string, int64_t>> args = {}) {
    events_.push_back({std::move(name), category, 'X', start_ns,
                       end_ns >= start_ns ? end_ns - start_ns : 0,
                       std::move(args)});
  }

  void Instant(std::string name, const char* category,
               std::vector<std::pair<std::string, int64_t>> args = {}) {
    events_.push_back({std::move(name), category, 'i', NowNs(), 0,
                       std::move(args)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Writes {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome
  /// trace_event object format.
  void WriteJson(JsonWriter* w) const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  uint32_t sample_every_;
  uint64_t tick_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records a complete event over its lifetime when the tracer
/// is non-null; a no-op otherwise.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string name, const char* category)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    name_ = std::move(name);
    category_ = category;
    start_ns_ = tracer_->NowNs();
  }

  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    tracer_->Complete(std::move(name_), category_, start_ns_,
                      tracer_->NowNs(), std::move(args_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddArg(std::string key, int64_t value) {
    if (tracer_) args_.emplace_back(std::move(key), value);
  }

 private:
  Tracer* tracer_;
  std::string name_;
  const char* category_ = "";
  uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, int64_t>> args_;
};

// ---------------------------------------------------------------------------
// Engine-facing observability wiring
// ---------------------------------------------------------------------------

class FlightRecorder;
class ProgressTap;

/// Per-engine observability switches, carried on EngineOptions.
///
/// Metrics and the flight recorder are ALWAYS ON by default: histogram
/// recording is one relaxed atomic add per event and the recorder is one
/// slot claim plus four relaxed stores, both measured under 5% on the
/// bench kernels (tests/obs_overhead_test.cc keeps that honest). Tracing
/// stays opt-in via `enabled` — it allocates per event. Setting both
/// `metrics_enabled` and `recorder_enabled` false reproduces the old
/// fully-off behavior (every instrumented site reduces to one branch on
/// a null pointer).
struct ObsOptions {
  /// Enables the tracer (Chrome trace_event timeline). Opt-in.
  bool enabled = false;
  /// When non-empty, Engine::Run writes the Chrome trace here on
  /// completion (Engine::WriteTrace can re-export it elsewhere).
  std::string trace_path;
  /// Sampling period for high-frequency trace events (per-candidate γ
  /// fires, queue push/pop/lazy-delete). 1 = record everything.
  uint32_t sample_every = 16;
  /// External registry to record into (not owned; must outlive the
  /// Engine). Null = the engine owns a private registry. Lets callers
  /// (e.g. bench --json) accumulate metrics across many engine runs.
  MetricsRegistry* metrics = nullptr;
  /// Always-on histogram/counter metrics (latency, delta sizes, queue
  /// wait, admissibility). False = no registry at all.
  bool metrics_enabled = true;
  /// Always-on flight recorder (ring buffer of structured events, dumped
  /// on bounded stops). False = no recorder.
  bool recorder_enabled = true;
  /// Ring capacity (events retained); rounded up to a power of two.
  uint32_t recorder_capacity = 256;
  /// Auto-dump the recorder to stderr when a run ends in anything other
  /// than a completed fixpoint (cancel, limit, OOM, fault).
  bool recorder_dump_on_stop = true;
  /// Always-on progress tap (one wide event per saturation round /
  /// stage advance, single-writer lock-free ring) feeding the /progress
  /// SSE stream and the shell's --progress ticker. False = no tap.
  bool progress_enabled = true;
  /// Progress ring capacity (events retained); rounded up to a power of
  /// two.
  uint32_t progress_capacity = 512;
};

/// The sinks threaded through the evaluator; all null when observability
/// is fully disabled.
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  FlightRecorder* recorder = nullptr;
  ProgressTap* progress = nullptr;
  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

}  // namespace gdlog

#endif  // GDLOG_OBS_TRACE_H_
