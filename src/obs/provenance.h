// Derivation provenance: proof trees over the relation store's
// annotation column, and the choice-audit trail.
//
// When EngineOptions::provenance is on, the evaluator annotates every
// inserted row with (deriving rule, premise rows) — see
// Relation::Annotate. This module turns those annotations back into
// answers:
//
//   BuildProofTree  — follows premises row-by-row into a depth-bounded
//                     tree. Every premise row was inserted strictly
//                     before the row it justifies, so the recursion
//                     terminates even on recursive programs; the depth
//                     bound just keeps deep chains readable.
//   ProofTree*      — text / JSON / DOT renderers for the tree
//                     (shell `.why`, batch `--why`).
//   ChoiceAuditTrail — one entry per γ firing: candidate-set size,
//                     chosen witness, tie count, pops, and the
//                     admissibility rejections it took to get there.
#ifndef GDLOG_OBS_PROVENANCE_H_
#define GDLOG_OBS_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "value/value.h"

namespace gdlog {

class JsonWriter;

struct ProofNode {
  PredicateId pred = kNoPredicate;
  RowId row = kNoRow;
  std::string atom;  // rendered "pred(v1, ...)"
  // Relation::kEdbRule for asserted facts, Relation::kUnknownRule when
  // the row predates provenance or was derived by an unannotated path.
  uint32_t rule_index = Relation::kUnknownRule;
  std::string rule;       // rendered rule text (empty for facts)
  bool truncated = false;  // premises elided by the depth bound
  std::vector<ProofNode> premises;
};

/// Reconstructs the proof of `pred`'s row `row` from the provenance
/// column. `rule_text[i]` renders program rule i (missing/empty entries
/// degrade to "rule #i"). `max_depth` bounds the tree depth (the root is
/// depth 0); nodes at the bound with premises are marked truncated.
ProofNode BuildProofTree(const Catalog& catalog, const ValueStore& store,
                         PredicateId pred, RowId row,
                         const std::vector<std::string>& rule_text,
                         uint32_t max_depth);

/// Indented text rendering, one node per line with box-drawing guides.
std::string ProofTreeText(const ProofNode& root);
/// JSON object {atom, rule, fact, truncated, premises: [...]}.
void ProofTreeJson(const ProofNode& root, JsonWriter* w);
/// Graphviz DOT digraph; premise edges point at what they justify.
std::string ProofTreeDot(const ProofNode& root);

/// One γ firing as the choice audit saw it. "Candidate set" is the live
/// |Q| before this firing's pop sequence; "ties" counts the other live
/// candidates whose cost equals the winner's (0 for FIFO rules, where
/// cost carries no information).
struct ChoiceAuditEntry {
  uint32_t rule_index = 0;
  int gamma_index = -1;
  uint64_t firing = 0;   // 1-based global γ firing ordinal
  int64_t stage = -1;    // stage assigned (next rules only)
  uint64_t candidate_set = 0;
  uint64_t pops = 0;     // pops consumed to reach the winner
  uint64_t ties = 0;
  // Rejections on the way to this firing: extremum-filtered pops,
  // choice-FD (Admissible) failures, and candidates that derived
  // nothing — a next-rule post plan with no solution, or a head term
  // that failed to evaluate (untyped binding).
  uint64_t rejected_extremum = 0;
  uint64_t rejected_fd = 0;
  uint64_t rejected_post = 0;
  bool fired = true;
  Value cost;            // winner's extremum cost (Int(0) for FIFO)
  std::string witness;   // rendered head atom of the winner
  PredicateId head_pred = kNoPredicate;
  RowId head_row = kNoRow;
};

class ChoiceAuditTrail {
 public:
  void Add(ChoiceAuditEntry e) { entries_.push_back(std::move(e)); }
  const std::vector<ChoiceAuditEntry>& entries() const { return entries_; }
  size_t ApproxBytes() const {
    return entries_.capacity() * sizeof(ChoiceAuditEntry);
  }

 private:
  std::vector<ChoiceAuditEntry> entries_;
};

/// One line per firing, shell `.choices` format.
std::string ChoiceAuditText(const ChoiceAuditTrail& trail,
                            const ValueStore& store);

}  // namespace gdlog

#endif  // GDLOG_OBS_PROVENANCE_H_
