// Progress tap: a lock-free ring of per-round / per-stage progress
// events published by the fixpoint loop while it runs.
//
// Unlike the flight recorder (a post-mortem black box of terse
// kind/a0/a1 records), the tap carries a wide snapshot per event —
// round number, delta rows, cumulative tuples, gamma firings, stages,
// tracked memory — so live consumers (the /progress SSE stream, the
// shell's --progress stderr ticker) can render a useful line from any
// single event without replaying history.
//
// Concurrency contract: ONE writer (the evaluation thread) and any
// number of readers. Record() is O(1), lock-free, allocation-free; the
// per-slot sequence number is cleared first and stored last (release),
// so a reader that observes a slot's seq also observes a complete
// payload for that sequence number. Readers poll Since(cursor) and the
// monotonically increasing global sequence lets them catch up after
// being lapped (missed events are simply skipped — progress events are
// a sampled view, not a transaction log).
#ifndef GDLOG_OBS_PROGRESS_H_
#define GDLOG_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gdlog {

enum class ProgressKind : uint8_t {
  kNone = 0,
  kRunStart,     // rules / relations counted in `round` / `delta_rows`
  kRound,        // one saturation round completed
  kStage,        // a next-rule stage advance (gamma firing)
  kTermination,  // run ended; `termination` holds the TerminationReason
};

/// Stable lowercase name ("run-start", "round", "stage", "termination").
const char* ProgressKindName(ProgressKind k);

/// One progress sample. All cumulative counters are totals since the
/// run started, so any single event renders a complete status line.
struct ProgressEvent {
  uint64_t seq = 0;    // 1-based publication order
  uint64_t ts_ns = 0;  // since the tap was created
  ProgressKind kind = ProgressKind::kNone;
  uint64_t round = 0;          // saturation rounds so far
  uint64_t delta_rows = 0;     // delta size feeding this round
  uint64_t tuples = 0;         // cumulative tuples inserted
  uint64_t gamma_firings = 0;  // cumulative γ firings
  uint64_t stages = 0;         // cumulative stages assigned
  uint64_t memory_bytes = 0;   // tracked memory at publication
  int32_t termination = 0;     // TerminationReason (kTermination only)
};

class ProgressTap {
 public:
  static constexpr uint32_t kDefaultCapacity = 512;

  /// Capacity is rounded up to a power of two (slot masking).
  explicit ProgressTap(uint32_t capacity = kDefaultCapacity);

  /// Publishes one event (seq and ts_ns are assigned here). Single
  /// writer; lock-free and allocation-free.
  void Record(const ProgressEvent& e) noexcept;

  /// Events published since construction (may exceed capacity).
  uint64_t published() const { return next_.load(std::memory_order_acquire); }
  uint32_t capacity() const { return mask_ + 1; }

  /// The retained events with seq > after_seq, oldest first. Safe to
  /// call while the writer is active; slots mid-overwrite are skipped.
  std::vector<ProgressEvent> Since(uint64_t after_seq) const;

  /// The most recent complete event; false when none published yet.
  bool Last(ProgressEvent* out) const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint64_t> round{0};
    std::atomic<uint64_t> delta_rows{0};
    std::atomic<uint64_t> tuples{0};
    std::atomic<uint64_t> gamma_firings{0};
    std::atomic<uint64_t> stages{0};
    std::atomic<uint64_t> memory_bytes{0};
    std::atomic<int32_t> termination{0};
  };

  bool ReadSlot(const Slot& s, uint64_t want_seq, ProgressEvent* out) const;

  uint64_t NowNs() const noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  uint32_t mask_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_{0};
  std::unique_ptr<Slot[]> slots_;
};

/// One event as a JSON object ({"seq":1,"kind":"round",...}) — the SSE
/// `data:` payload and the machine side of the ticker.
std::string ProgressEventJson(const ProgressEvent& e);

/// One event as a human status line for the --progress stderr ticker:
///   % round 12  +345 delta  5678 tuples  3 stages  1.2 MiB
std::string ProgressEventLine(const ProgressEvent& e);

}  // namespace gdlog

#endif  // GDLOG_OBS_PROGRESS_H_
