// Flight recorder: a fixed-size ring buffer of cheap structured events,
// always on, for post-mortem diagnosis of bounded stops and crashes.
//
// Record() is O(1), lock-free, allocation-free, and noexcept: one
// fetch_add claims a slot, then four relaxed stores fill it. That makes
// it safe to call from worker threads and from async-signal context
// (Engine::RequestCancel records the cancellation from a SIGINT
// handler). The ring keeps the last `capacity` events; a dump renders
// them in sequence order with per-event decoding (the event taxonomy is
// documented in docs/OBSERVABILITY.md).
//
// Slightly racy by design: a reader may observe a slot mid-overwrite
// when the writer laps it. Dumps tolerate that (the sequence number is
// stored last and checked on read), and every field is a relaxed atomic
// so concurrent access is not a data race.
#ifndef GDLOG_OBS_FLIGHT_RECORDER_H_
#define GDLOG_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gdlog {

enum class FlightEventKind : uint8_t {
  kNone = 0,
  kRunStart,         // a0 = rule count,   a1 = relation count
  kRoundStart,       // a0 = round number, a1 = applications scheduled
  kRoundEnd,         // a0 = round number, a1 = tuples inserted so far
  kGuardCheck,       // a0 = checks so far, a1 = derived tuples so far
  kGuardTrip,        // a0 = TerminationReason, a1 = checks so far
  kPlanDecision,     // a0 = rule index,   a1 = goals in plan
  kFaultInjected,    // a0 = probe ordinal (FaultInjector::ProbeCatalog)
  kBatchStart,       // a0 = batch size (apps), a1 = worker tasks
  kBatchEnd,         // a0 = batch size (apps), a1 = worker tasks
  kCancelRequested,  // from Engine::RequestCancel (signal-safe path)
  kGammaFire,        // a0 = rule index,   a1 = stage counter (-1: none)
  kStageAdvance,     // a0 = rule index,   a1 = new stage counter
  kOom,              // bad_alloc reached the Run boundary
  kTermination,      // a0 = TerminationReason, a1 = status ok (0/1)
  kChoiceReject,     // a0 = rule index,   a1 = live candidates left in Q
  kRecovery,         // a0 = WAL records replayed, a1 = torn bytes dropped
  kCheckpoint,       // a0 = snapshot seq, a1 = snapshot bytes
  kWalRotate,        // a0 = new WAL seq,  a1 = old WAL bytes retired
  kDurabilityError,  // a0 = GD code (210/211/212), a1 = 0
};

/// Stable lowercase name for dumps ("round-start", "guard-trip", ...).
const char* FlightEventKindName(FlightEventKind k);

class FlightRecorder {
 public:
  static constexpr uint32_t kDefaultCapacity = 256;

  /// Capacity is rounded up to a power of two (slot masking).
  explicit FlightRecorder(uint32_t capacity = kDefaultCapacity);

  /// Records one event. Lock-free, allocation-free, async-signal-safe.
  void Record(FlightEventKind kind, int64_t a0 = 0, int64_t a1 = 0) noexcept {
    const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[seq & mask_];
    // seq is written last so a reader that sees it also sees a complete
    // (if possibly torn-by-lapping) payload for that sequence number.
    s.seq.store(0, std::memory_order_relaxed);
    s.ts_ns.store(NowNs(), std::memory_order_relaxed);
    s.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
    s.a0.store(a0, std::memory_order_relaxed);
    s.a1.store(a1, std::memory_order_relaxed);
    s.seq.store(seq + 1, std::memory_order_release);
  }

  /// Events recorded since construction (may exceed capacity).
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }
  uint32_t capacity() const { return mask_ + 1; }

  struct Event {
    uint64_t seq = 0;  // 1-based recording order
    uint64_t ts_ns = 0;
    FlightEventKind kind = FlightEventKind::kNone;
    int64_t a0 = 0;
    int64_t a1 = 0;
  };
  /// The retained events in recording order (oldest first). Safe to call
  /// while writers are active; events being overwritten are skipped.
  std::vector<Event> Snapshot() const;

  /// Human-readable dump, one line per event:
  ///   [seq] +12.345ms round-start a0=3 a1=17
  std::string DumpText() const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<int64_t> a0{0};
    std::atomic<int64_t> a1{0};
  };

  uint64_t NowNs() const noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  uint32_t mask_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace gdlog

#endif  // GDLOG_OBS_FLIGHT_RECORDER_H_
