#include "obs/progress.h"

#include <cstdio>

#include "common/guardrails.h"
#include "obs/json.h"

namespace gdlog {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 2) return 2;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

const char* ProgressKindName(ProgressKind k) {
  switch (k) {
    case ProgressKind::kNone: return "none";
    case ProgressKind::kRunStart: return "run-start";
    case ProgressKind::kRound: return "round";
    case ProgressKind::kStage: return "stage";
    case ProgressKind::kTermination: return "termination";
  }
  return "unknown";
}

ProgressTap::ProgressTap(uint32_t capacity)
    : mask_(RoundUpPow2(capacity) - 1),
      epoch_(std::chrono::steady_clock::now()),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

void ProgressTap::Record(const ProgressEvent& e) noexcept {
  const uint64_t seq = next_.load(std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  // Clear the slot's seq first so a concurrent reader never pairs the
  // old sequence number with a half-written payload; publish it last.
  s.seq.store(0, std::memory_order_relaxed);
  s.ts_ns.store(NowNs(), std::memory_order_relaxed);
  s.kind.store(static_cast<uint8_t>(e.kind), std::memory_order_relaxed);
  s.round.store(e.round, std::memory_order_relaxed);
  s.delta_rows.store(e.delta_rows, std::memory_order_relaxed);
  s.tuples.store(e.tuples, std::memory_order_relaxed);
  s.gamma_firings.store(e.gamma_firings, std::memory_order_relaxed);
  s.stages.store(e.stages, std::memory_order_relaxed);
  s.memory_bytes.store(e.memory_bytes, std::memory_order_relaxed);
  s.termination.store(e.termination, std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);
  next_.store(seq + 1, std::memory_order_release);
}

bool ProgressTap::ReadSlot(const Slot& s, uint64_t want_seq,
                           ProgressEvent* out) const {
  if (s.seq.load(std::memory_order_acquire) != want_seq) return false;
  out->seq = want_seq;
  out->ts_ns = s.ts_ns.load(std::memory_order_relaxed);
  out->kind = static_cast<ProgressKind>(s.kind.load(std::memory_order_relaxed));
  out->round = s.round.load(std::memory_order_relaxed);
  out->delta_rows = s.delta_rows.load(std::memory_order_relaxed);
  out->tuples = s.tuples.load(std::memory_order_relaxed);
  out->gamma_firings = s.gamma_firings.load(std::memory_order_relaxed);
  out->stages = s.stages.load(std::memory_order_relaxed);
  out->memory_bytes = s.memory_bytes.load(std::memory_order_relaxed);
  out->termination = s.termination.load(std::memory_order_relaxed);
  // Re-check after reading the payload: the single writer publishes seq
  // last, so an unchanged seq means the fields above were not torn.
  return s.seq.load(std::memory_order_acquire) == want_seq;
}

std::vector<ProgressEvent> ProgressTap::Since(uint64_t after_seq) const {
  std::vector<ProgressEvent> out;
  const uint64_t hi = next_.load(std::memory_order_acquire);
  if (hi == 0 || after_seq >= hi) return out;
  const uint64_t cap = mask_ + 1;
  uint64_t lo = after_seq;
  if (hi > cap && lo < hi - cap) lo = hi - cap;  // lapped: oldest retained
  out.reserve(static_cast<size_t>(hi - lo));
  for (uint64_t seq = lo + 1; seq <= hi; ++seq) {
    ProgressEvent e;
    if (ReadSlot(slots_[(seq - 1) & mask_], seq, &e)) out.push_back(e);
  }
  return out;
}

bool ProgressTap::Last(ProgressEvent* out) const {
  const uint64_t hi = next_.load(std::memory_order_acquire);
  for (uint64_t seq = hi; seq > 0 && seq + mask_ + 1 > hi; --seq) {
    if (ReadSlot(slots_[(seq - 1) & mask_], seq, out)) return true;
  }
  return false;
}

std::string ProgressEventJson(const ProgressEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("seq").UInt(e.seq);
  w.Key("ts_ms").Double(static_cast<double>(e.ts_ns) / 1e6);
  w.Key("kind").String(ProgressKindName(e.kind));
  w.Key("round").UInt(e.round);
  w.Key("delta_rows").UInt(e.delta_rows);
  w.Key("tuples").UInt(e.tuples);
  w.Key("gamma_firings").UInt(e.gamma_firings);
  w.Key("stages").UInt(e.stages);
  w.Key("memory_bytes").UInt(e.memory_bytes);
  if (e.kind == ProgressKind::kTermination) {
    w.Key("termination")
        .String(TerminationReasonName(
            static_cast<TerminationReason>(e.termination)));
  }
  w.EndObject();
  return w.Take();
}

std::string ProgressEventLine(const ProgressEvent& e) {
  char buf[256];
  const double mib = static_cast<double>(e.memory_bytes) / (1024.0 * 1024.0);
  if (e.kind == ProgressKind::kTermination) {
    std::snprintf(buf, sizeof(buf),
                  "%% run %s  round %llu  %llu tuples  %llu stages  %.1f MiB",
                  std::string(TerminationReasonName(
                                  static_cast<TerminationReason>(
                                      e.termination)))
                      .c_str(),
                  (unsigned long long)e.round, (unsigned long long)e.tuples,
                  (unsigned long long)e.stages, mib);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%% round %llu  +%llu delta  %llu tuples  %llu stages  "
                  "%.1f MiB",
                  (unsigned long long)e.round,
                  (unsigned long long)e.delta_rows,
                  (unsigned long long)e.tuples, (unsigned long long)e.stages,
                  mib);
  }
  return buf;
}

}  // namespace gdlog
