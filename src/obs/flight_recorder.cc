#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace gdlog {

const char* FlightEventKindName(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kNone:
      return "none";
    case FlightEventKind::kRunStart:
      return "run-start";
    case FlightEventKind::kRoundStart:
      return "round-start";
    case FlightEventKind::kRoundEnd:
      return "round-end";
    case FlightEventKind::kGuardCheck:
      return "guard-check";
    case FlightEventKind::kGuardTrip:
      return "guard-trip";
    case FlightEventKind::kPlanDecision:
      return "plan-decision";
    case FlightEventKind::kFaultInjected:
      return "fault-injected";
    case FlightEventKind::kBatchStart:
      return "batch-start";
    case FlightEventKind::kBatchEnd:
      return "batch-end";
    case FlightEventKind::kCancelRequested:
      return "cancel-requested";
    case FlightEventKind::kGammaFire:
      return "gamma-fire";
    case FlightEventKind::kStageAdvance:
      return "stage-advance";
    case FlightEventKind::kOom:
      return "oom";
    case FlightEventKind::kTermination:
      return "termination";
    case FlightEventKind::kChoiceReject:
      return "choice-reject";
    case FlightEventKind::kRecovery:
      return "recovery";
    case FlightEventKind::kCheckpoint:
      return "checkpoint";
    case FlightEventKind::kWalRotate:
      return "wal-rotate";
    case FlightEventKind::kDurabilityError:
      return "durability-error";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(uint32_t capacity)
    : epoch_(std::chrono::steady_clock::now()) {
  uint32_t cap = 1;
  while (cap < std::max(1u, capacity)) cap <<= 1;
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_relaxed);
  const uint64_t cap = mask_ + 1;
  const uint64_t begin = end > cap ? end - cap : 0;
  std::vector<Event> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& s = slots_[seq & mask_];
    // Acquire pairs with the release in Record: a matching sequence
    // number means the payload for this slot generation is visible. A
    // mismatch means a writer lapped us mid-read — skip the slot.
    if (s.seq.load(std::memory_order_acquire) != seq + 1) continue;
    Event e;
    e.seq = seq + 1;
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.kind = static_cast<FlightEventKind>(
        s.kind.load(std::memory_order_relaxed));
    e.a0 = s.a0.load(std::memory_order_relaxed);
    e.a1 = s.a1.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_relaxed) != seq + 1) continue;
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::DumpText() const {
  const std::vector<Event> events = Snapshot();
  std::string out;
  const uint64_t total = recorded();
  char line[160];
  std::snprintf(line, sizeof line,
                "flight recorder: %llu event(s) recorded, last %zu retained\n",
                static_cast<unsigned long long>(total), events.size());
  out += line;
  for (const Event& e : events) {
    std::snprintf(line, sizeof line,
                  "  [%6llu] +%10.3fms %-16s a0=%lld a1=%lld\n",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<double>(e.ts_ns) / 1e6,
                  FlightEventKindName(e.kind), static_cast<long long>(e.a0),
                  static_cast<long long>(e.a1));
    out += line;
  }
  return out;
}

}  // namespace gdlog
