#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace gdlog {

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

void JsonWriter::Escaped(std::string_view v) {
  out_ += '"';
  for (unsigned char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += static_cast<char>(c);
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  Separate();
  Escaped(k);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  Separate();
  Escaped(v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    GDLOG_ASSIGN_OR_RETURN(JsonValue v, Value());
    Skip();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing garbage at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  void Skip() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Err(const std::string& what) {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  bool Eat(char c) {
    Skip();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> Value() {
    Skip();
    if (pos_ >= text_.size()) return Err("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      GDLOG_ASSIGN_OR_RETURN(v.string, String());
      return v;
    }
    if (c == 't' || c == 'f') return Literal(c == 't');
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") return Err("bad literal");
      pos_ += 4;
      return JsonValue{};
    }
    return Number();
  }

  Result<JsonValue> Literal(bool value) {
    const std::string_view want = value ? "true" : "false";
    if (text_.substr(pos_, want.size()) != want) return Err("bad literal");
    pos_ += want.size();
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = value;
    return v;
  }

  Result<JsonValue> Number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Err("bad number");
    }
    return v;
  }

  Result<std::string> String() {
    if (!Eat('"')) return Err("expected string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Err("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Err("bad \\u escape");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // one-byte range and pass anything else through as '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    if (!Eat('"')) return Err("unterminated string");
    return out;
  }

  Result<JsonValue> Object() {
    if (!Eat('{')) return Err("expected object");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Skip();
    if (Eat('}')) return v;
    for (;;) {
      Skip();
      GDLOG_ASSIGN_OR_RETURN(std::string key, String());
      if (!Eat(':')) return Err("expected ':'");
      GDLOG_ASSIGN_OR_RETURN(JsonValue member, Value());
      v.fields.emplace_back(std::move(key), std::move(member));
      if (Eat(',')) continue;
      if (Eat('}')) return v;
      return Err("expected ',' or '}'");
    }
  }

  Result<JsonValue> Array() {
    if (!Eat('[')) return Err("expected array");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Skip();
    if (Eat(']')) return v;
    for (;;) {
      GDLOG_ASSIGN_OR_RETURN(JsonValue item, Value());
      v.items.push_back(std::move(item));
      if (Eat(',')) continue;
      if (Eat(']')) return v;
      return Err("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace gdlog
