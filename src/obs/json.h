// Minimal JSON support for the observability layer.
//
// JsonWriter is a streaming writer used by the metrics snapshot, the run
// report, and the Chrome trace exporter; it handles escaping, nesting,
// and comma placement. ParseJson is a small recursive-descent reader used
// by tests and tools to round-trip what the writer produced — it is not a
// general-purpose parser (no streaming, whole document in memory).
#ifndef GDLOG_OBS_JSON_H_
#define GDLOG_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gdlog {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next value call supplies its value.
  JsonWriter& Key(std::string_view k);

  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separate();
  void Escaped(std::string_view v);

  std::string out_;
  // One entry per open container: true until the first element is
  // written (no comma needed yet).
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Parsed JSON document. Objects keep insertion order.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> fields; // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace gdlog

#endif  // GDLOG_OBS_JSON_H_
