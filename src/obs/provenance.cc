#include "obs/provenance.h"

#include <deque>

#include "obs/json.h"
#include "storage/tuple.h"

namespace gdlog {

namespace {

std::string AtomText(const Catalog& catalog, const ValueStore& store,
                     PredicateId pred, RowId row) {
  const Relation& rel = catalog.relation(pred);
  if (row >= rel.size()) {
    return rel.name() + "(<row " + std::to_string(row) + " out of range>)";
  }
  return rel.name() + TupleToString(store, rel.Row(row));
}

std::string RuleLabel(uint32_t rule_index,
                      const std::vector<std::string>& rule_text) {
  if (rule_index < rule_text.size() && !rule_text[rule_index].empty()) {
    return rule_text[rule_index];
  }
  return "rule #" + std::to_string(rule_index);
}

void BuildNode(const Catalog& catalog, const ValueStore& store,
               const std::vector<std::string>& rule_text, uint32_t depth_left,
               ProofNode* node) {
  node->atom = AtomText(catalog, store, node->pred, node->row);
  const Relation& rel = catalog.relation(node->pred);
  const Relation::ProvView prov =
      node->row < rel.size() ? rel.ProvenanceOf(node->row)
                             : Relation::ProvView{};
  node->rule_index = prov.rule_index;
  if (prov.rule_index == Relation::kEdbRule ||
      prov.rule_index == Relation::kUnknownRule) {
    return;  // leaf: asserted fact or unannotated row
  }
  node->rule = RuleLabel(prov.rule_index, rule_text);
  if (prov.num_premises == 0) return;
  if (depth_left == 0) {
    node->truncated = true;
    return;
  }
  node->premises.resize(prov.num_premises);
  for (size_t i = 0; i < prov.num_premises; ++i) {
    ProofNode& child = node->premises[i];
    child.pred = prov.premises[i].pred;
    child.row = prov.premises[i].row;
    BuildNode(catalog, store, rule_text, depth_left - 1, &child);
  }
}

void RenderText(const ProofNode& node, const std::string& prefix, bool last,
                bool root, std::string* out) {
  if (!root) {
    out->append(prefix);
    out->append(last ? "└─ " : "├─ ");
  }
  out->append(node.atom);
  if (node.rule_index == Relation::kEdbRule) {
    out->append("   [fact]");
  } else if (node.rule_index == Relation::kUnknownRule) {
    out->append("   [unannotated]");
  } else {
    out->append("   [rule #");
    out->append(std::to_string(node.rule_index));
    if (!node.rule.empty()) {
      out->append(": ");
      out->append(node.rule);
    }
    out->append("]");
  }
  if (node.truncated) out->append("   [depth limit]");
  out->push_back('\n');
  const std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "│  ");
  for (size_t i = 0; i < node.premises.size(); ++i) {
    RenderText(node.premises[i], child_prefix,
               i + 1 == node.premises.size(), false, out);
  }
}

void DotEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

ProofNode BuildProofTree(const Catalog& catalog, const ValueStore& store,
                         PredicateId pred, RowId row,
                         const std::vector<std::string>& rule_text,
                         uint32_t max_depth) {
  ProofNode root;
  root.pred = pred;
  root.row = row;
  BuildNode(catalog, store, rule_text, max_depth, &root);
  return root;
}

std::string ProofTreeText(const ProofNode& root) {
  std::string out;
  RenderText(root, "", /*last=*/true, /*root=*/true, &out);
  return out;
}

void ProofTreeJson(const ProofNode& root, JsonWriter* w) {
  w->BeginObject();
  w->Key("atom").String(root.atom);
  if (root.rule_index == Relation::kEdbRule) {
    w->Key("fact").Bool(true);
  } else if (root.rule_index == Relation::kUnknownRule) {
    w->Key("unannotated").Bool(true);
  } else {
    w->Key("rule_index").UInt(root.rule_index);
    if (!root.rule.empty()) w->Key("rule").String(root.rule);
  }
  if (root.truncated) w->Key("truncated").Bool(true);
  if (!root.premises.empty()) {
    w->Key("premises").BeginArray();
    for (const ProofNode& p : root.premises) ProofTreeJson(p, w);
    w->EndArray();
  }
  w->EndObject();
}

std::string ProofTreeDot(const ProofNode& root) {
  // Breadth-first numbering keeps node ids stable and readable.
  std::string out = "digraph proof {\n  rankdir=BT;\n  node [fontsize=10];\n";
  struct Item {
    const ProofNode* node;
    size_t id;
  };
  std::deque<Item> queue{{&root, 0}};
  size_t next_id = 1;
  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop_front();
    const ProofNode& n = *item.node;
    out += "  n" + std::to_string(item.id) + " [label=\"";
    DotEscape(n.atom, &out);
    if (n.rule_index != Relation::kEdbRule &&
        n.rule_index != Relation::kUnknownRule) {
      out += "\\nrule #" + std::to_string(n.rule_index);
    }
    out += "\"";
    if (n.rule_index == Relation::kEdbRule) {
      out += " shape=box";  // asserted facts are boxes, derived rows ovals
    }
    if (n.truncated) out += " style=dashed";
    out += "];\n";
    for (const ProofNode& p : n.premises) {
      const size_t id = next_id++;
      out += "  n" + std::to_string(id) + " -> n" +
             std::to_string(item.id) + ";\n";
      queue.push_back({&p, id});
    }
  }
  out += "}\n";
  return out;
}

std::string ChoiceAuditText(const ChoiceAuditTrail& trail,
                            const ValueStore& store) {
  std::string out;
  if (trail.entries().empty()) {
    return "(no choice firings recorded)\n";
  }
  for (const ChoiceAuditEntry& e : trail.entries()) {
    out += "#" + std::to_string(e.firing) + " rule " +
           std::to_string(e.rule_index);
    if (e.stage >= 0) out += " stage " + std::to_string(e.stage);
    out += ": chose " + e.witness;
    out += "  cost=" + store.ToString(e.cost);
    out += "  candidates=" + std::to_string(e.candidate_set);
    out += " pops=" + std::to_string(e.pops);
    out += " ties=" + std::to_string(e.ties);
    if (e.rejected_extremum + e.rejected_fd + e.rejected_post > 0) {
      out += "  rejected[extremum=" + std::to_string(e.rejected_extremum) +
             " fd=" + std::to_string(e.rejected_fd) +
             " post=" + std::to_string(e.rejected_post) + "]";
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace gdlog
