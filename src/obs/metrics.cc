#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/json.h"

namespace gdlog {

size_t Histogram::BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<size_t>(v);
  // msb >= kSubBucketBits here. The octave [2^msb, 2^(msb+1)) holds
  // kSubBuckets/2 sub-buckets of width 2^shift each.
  const int msb = 63 - __builtin_clzll(v);
  const int shift = msb - static_cast<int>(kSubBucketBits) + 1;
  const uint64_t sub = v >> shift;  // in [kSubBuckets/2, kSubBuckets)
  return kSubBuckets +
         static_cast<size_t>(shift - 1) * (kSubBuckets / 2) +
         static_cast<size_t>(sub - kSubBuckets / 2);
}

uint64_t Histogram::BucketUpperEdge(size_t i) {
  if (i < kSubBuckets) return static_cast<uint64_t>(i);
  const size_t k = i - kSubBuckets;
  const size_t shift = k / (kSubBuckets / 2) + 1;
  const uint64_t sub = k % (kSubBuckets / 2) + kSubBuckets / 2;
  return ((sub + 1) << shift) - 1;
}

std::vector<Histogram::Bucket> Histogram::NonZeroBuckets() const {
  std::vector<Bucket> out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c != 0) out.push_back({BucketUpperEdge(i), c});
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  const double lo_clamp = static_cast<double>(min());
  const double hi_clamp = static_cast<double>(max());
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) < target) {
      seen += c;
      continue;
    }
    // Interpolate inside bucket i over its [lower, upper] edge range,
    // clamped to the observed extremes.
    const double upper = static_cast<double>(BucketUpperEdge(i));
    const double lower =
        i == 0 ? 0 : static_cast<double>(BucketUpperEdge(i - 1));
    const double lo = std::max(lower, lo_clamp);
    const double hi = std::min(upper, hi_clamp);
    if (hi <= lo) return std::clamp(hi, lo_clamp, hi_clamp);
    const double frac =
        (target - static_cast<double>(seen)) / static_cast<double>(c);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return hi_clamp;
}

std::string MetricsRegistry::KeyOf(std::string_view name,
                                   const MetricLabels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     MetricLabels labels) {
  const std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = counter_index_.find(key); it != counter_index_.end()) {
    return it->second;
  }
  counters_.emplace_back(std::string(name), std::move(labels));
  Counter* c = &counters_.back().metric;
  counter_index_.emplace(key, c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  const std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return it->second;
  }
  gauges_.emplace_back(std::string(name), std::move(labels));
  Gauge* g = &gauges_.back().metric;
  gauge_index_.emplace(key, g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         MetricLabels labels) {
  const std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = histogram_index_.find(key); it != histogram_index_.end()) {
    return it->second;
  }
  histograms_.emplace_back(std::string(name), std::move(labels));
  Histogram* h = &histograms_.back().metric;
  histogram_index_.emplace(key, h);
  return h;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name,
                                            const MetricLabels& labels) const {
  const std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counter_index_.find(key);
  return it == counter_index_.end() ? nullptr : it->second;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name,
                                        const MetricLabels& labels) const {
  const std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauge_index_.find(key);
  return it == gauge_index_.end() ? nullptr : it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name, const MetricLabels& labels) const {
  const std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histogram_index_.find(key);
  return it == histogram_index_.end() ? nullptr : it->second;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

void WriteLabels(JsonWriter* w, const MetricLabels& labels) {
  w->Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w->Key(k).String(v);
  w->EndObject();
}

}  // namespace

void MetricsRegistry::SnapshotJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters").BeginArray();
  for (const auto& e : counters_) {
    w->BeginObject();
    w->Key("name").String(e.name);
    WriteLabels(w, e.labels);
    w->Key("value").UInt(e.metric.value());
    w->EndObject();
  }
  w->EndArray();
  w->Key("gauges").BeginArray();
  for (const auto& e : gauges_) {
    w->BeginObject();
    w->Key("name").String(e.name);
    WriteLabels(w, e.labels);
    w->Key("value").Int(e.metric.value());
    w->EndObject();
  }
  w->EndArray();
  w->Key("histograms").BeginArray();
  for (const auto& e : histograms_) {
    const Histogram& h = e.metric;
    w->BeginObject();
    w->Key("name").String(e.name);
    WriteLabels(w, e.labels);
    w->Key("count").UInt(h.count());
    w->Key("sum").UInt(h.sum());
    w->Key("min").UInt(h.min());
    w->Key("max").UInt(h.max());
    w->Key("p50").Double(h.Quantile(0.50));
    w->Key("p90").Double(h.Quantile(0.90));
    w->Key("p95").Double(h.Quantile(0.95));
    w->Key("p99").Double(h.Quantile(0.99));
    w->Key("buckets").BeginArray();
    for (const Histogram::Bucket& b : h.NonZeroBuckets()) {
      w->BeginObject();
      w->Key("le").UInt(b.upper);
      w->Key("count").UInt(b.count);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter w;
  SnapshotJson(&w);
  return w.Take();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  using Kind = MetricsSnapshot::Sample::Kind;
  for (const auto& e : counters_) {
    MetricsSnapshot::Sample s;
    s.kind = Kind::kCounter;
    s.name = e.name;
    s.labels = e.labels;
    s.value = e.metric.value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& e : gauges_) {
    MetricsSnapshot::Sample s;
    s.kind = Kind::kGauge;
    s.name = e.name;
    s.labels = e.labels;
    s.gauge = e.metric.value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& e : histograms_) {
    MetricsSnapshot::Sample s;
    s.kind = Kind::kHistogram;
    s.name = e.name;
    s.labels = e.labels;
    s.value = e.metric.count();
    s.sum = e.metric.sum();
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  std::map<std::string, const Sample*> prior;
  for (const Sample& s : before.samples) {
    std::string key = s.name;
    for (const auto& [k, v] : s.labels) {
      key += '\x1f';
      key += k;
      key += '\x1e';
      key += v;
    }
    prior[key] = &s;
  }
  MetricsSnapshot out;
  for (const Sample& s : after.samples) {
    std::string key = s.name;
    for (const auto& [k, v] : s.labels) {
      key += '\x1f';
      key += k;
      key += '\x1e';
      key += v;
    }
    Sample d = s;
    const auto it = prior.find(key);
    if (it != prior.end() && s.kind != Sample::Kind::kGauge) {
      const Sample& p = *it->second;
      d.value = s.value >= p.value ? s.value - p.value : 0;
      d.sum = s.sum >= p.sum ? s.sum - p.sum : 0;
    }
    out.samples.push_back(std::move(d));
  }
  return out;
}

void MetricsSnapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("samples").BeginArray();
  for (const Sample& s : samples) {
    w->BeginObject();
    switch (s.kind) {
      case Sample::Kind::kCounter:
        w->Key("kind").String("counter");
        break;
      case Sample::Kind::kGauge:
        w->Key("kind").String("gauge");
        break;
      case Sample::Kind::kHistogram:
        w->Key("kind").String("histogram");
        break;
    }
    w->Key("name").String(s.name);
    WriteLabels(w, s.labels);
    if (s.kind == Sample::Kind::kGauge) {
      w->Key("value").Int(s.gauge);
    } else {
      w->Key("value").UInt(s.value);
    }
    if (s.kind == Sample::Kind::kHistogram) w->Key("sum").UInt(s.sum);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

namespace {

// -- Prometheus text exposition helpers ------------------------------------

std::string PromName(std::string_view name) {
  std::string out = "gdlog_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PromLabelName(std::string_view name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void AppendPromLabelValue(std::string* out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

/// Renders `{a="x",b="y"}` with `extra` ("le=...") appended; empty
/// string when there is nothing to render.
std::string PromLabels(const MetricLabels& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += PromLabelName(k);
    out += "=\"";
    AppendPromLabelValue(&out, v);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

void MetricsRegistry::WriteText(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The exposition format wants every sample of one metric name grouped
  // under a single # TYPE line, so bucket the entries by rendered name
  // first (std::map gives a deterministic emission order).
  std::map<std::string, std::vector<const Entry<Counter>*>> counters;
  for (const auto& e : counters_) {
    counters[PromName(e.name) + "_total"].push_back(&e);
  }
  std::map<std::string, std::vector<const Entry<Gauge>*>> gauges;
  for (const auto& e : gauges_) gauges[PromName(e.name)].push_back(&e);
  std::map<std::string, std::vector<const Entry<Histogram>*>> histograms;
  for (const auto& e : histograms_) {
    histograms[PromName(e.name)].push_back(&e);
  }

  for (const auto& [name, entries] : counters) {
    *out += "# TYPE " + name + " counter\n";
    for (const Entry<Counter>* e : entries) {
      *out += name + PromLabels(e->labels, "") + " " +
              std::to_string(e->metric.value()) + "\n";
    }
  }
  for (const auto& [name, entries] : gauges) {
    *out += "# TYPE " + name + " gauge\n";
    for (const Entry<Gauge>* e : entries) {
      *out += name + PromLabels(e->labels, "") + " " +
              std::to_string(e->metric.value()) + "\n";
    }
  }
  for (const auto& [name, entries] : histograms) {
    *out += "# TYPE " + name + " histogram\n";
    for (const Entry<Histogram>* e : entries) {
      const Histogram& h = e->metric;
      uint64_t cumulative = 0;
      for (const Histogram::Bucket& b : h.NonZeroBuckets()) {
        cumulative += b.count;
        *out += name + "_bucket" +
                PromLabels(e->labels,
                           "le=\"" + std::to_string(b.upper) + "\"") +
                " " + std::to_string(cumulative) + "\n";
      }
      // Live scrape: a writer may record between the bucket scan and
      // this read, in either order, so clamp the total to keep +Inf
      // cumulative and equal to _count — a torn mid-run scrape must
      // still be a valid exposition.
      const uint64_t total = std::max(cumulative, h.count());
      *out += name + "_bucket" + PromLabels(e->labels, "le=\"+Inf\"") + " " +
              std::to_string(total) + "\n";
      *out += name + "_sum" + PromLabels(e->labels, "") + " " +
              std::to_string(h.sum()) + "\n";
      *out += name + "_count" + PromLabels(e->labels, "") + " " +
              std::to_string(total) + "\n";
    }
  }
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  WriteText(&out);
  return out;
}

}  // namespace gdlog
