#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace gdlog {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

std::vector<double> Histogram::DefaultLatencyBoundsNs() {
  // 250ns, 1us, 4us, ... ~4.2s: 13 buckets spanning every latency the
  // engine can plausibly produce for one rule application or phase.
  std::vector<double> b;
  for (double v = 250; v < 5e9; v *= 4) b.push_back(v);
  return b;
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (static_cast<double>(seen + counts_[i]) < target) {
      seen += counts_[i];
      continue;
    }
    // Interpolate inside bucket i. Bucket edges: [lo, hi].
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
    if (hi <= lo) return hi;
    const double frac =
        counts_[i] == 0
            ? 0
            : (target - static_cast<double>(seen)) /
                  static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

std::string MetricsRegistry::KeyOf(std::string_view name,
                                   const MetricLabels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     MetricLabels labels) {
  const std::string key = KeyOf(name, labels);
  if (auto it = counter_index_.find(key); it != counter_index_.end()) {
    return it->second;
  }
  counters_.push_back({std::string(name), std::move(labels), Counter{}});
  Counter* c = &counters_.back().metric;
  counter_index_.emplace(key, c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  const std::string key = KeyOf(name, labels);
  if (auto it = gauge_index_.find(key); it != gauge_index_.end()) {
    return it->second;
  }
  gauges_.push_back({std::string(name), std::move(labels), Gauge{}});
  Gauge* g = &gauges_.back().metric;
  gauge_index_.emplace(key, g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         MetricLabels labels,
                                         std::vector<double> bounds) {
  const std::string key = KeyOf(name, labels);
  if (auto it = histogram_index_.find(key); it != histogram_index_.end()) {
    return it->second;
  }
  histograms_.push_back(
      {std::string(name), std::move(labels),
       bounds.empty() ? Histogram() : Histogram(std::move(bounds))});
  Histogram* h = &histograms_.back().metric;
  histogram_index_.emplace(key, h);
  return h;
}

namespace {

void WriteLabels(JsonWriter* w, const MetricLabels& labels) {
  w->Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w->Key(k).String(v);
  w->EndObject();
}

}  // namespace

void MetricsRegistry::SnapshotJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters").BeginArray();
  for (const auto& e : counters_) {
    w->BeginObject();
    w->Key("name").String(e.name);
    WriteLabels(w, e.labels);
    w->Key("value").UInt(e.metric.value());
    w->EndObject();
  }
  w->EndArray();
  w->Key("gauges").BeginArray();
  for (const auto& e : gauges_) {
    w->BeginObject();
    w->Key("name").String(e.name);
    WriteLabels(w, e.labels);
    w->Key("value").Int(e.metric.value());
    w->EndObject();
  }
  w->EndArray();
  w->Key("histograms").BeginArray();
  for (const auto& e : histograms_) {
    const Histogram& h = e.metric;
    w->BeginObject();
    w->Key("name").String(e.name);
    WriteLabels(w, e.labels);
    w->Key("count").UInt(h.count());
    w->Key("sum").Double(h.sum());
    w->Key("min").Double(h.min());
    w->Key("max").Double(h.max());
    w->Key("p50").Double(h.Quantile(0.50));
    w->Key("p95").Double(h.Quantile(0.95));
    w->Key("p99").Double(h.Quantile(0.99));
    w->Key("buckets").BeginArray();
    for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (h.bucket_counts()[i] == 0) continue;  // sparse encoding
      w->BeginObject();
      w->Key("le");
      if (i < h.bounds().size()) {
        w->Double(h.bounds()[i]);
      } else {
        w->String("+inf");
      }
      w->Key("count").UInt(h.bucket_counts()[i]);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter w;
  SnapshotJson(&w);
  return w.Take();
}

}  // namespace gdlog
