#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"

namespace gdlog {

void Tracer::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events_) {
    w->BeginObject();
    w->Key("name").String(e.name);
    w->Key("cat").String(e.category);
    w->Key("ph").String(std::string(1, e.phase));
    // trace_event timestamps are microseconds; fractional values keep
    // nanosecond resolution.
    w->Key("ts").Double(static_cast<double>(e.ts_ns) / 1e3);
    if (e.phase == 'X') {
      w->Key("dur").Double(static_cast<double>(e.dur_ns) / 1e3);
    }
    if (e.phase == 'i') w->Key("s").String("t");  // thread-scoped instant
    w->Key("pid").Int(1);
    w->Key("tid").Int(1);
    if (!e.args.empty()) {
      w->Key("args").BeginObject();
      for (const auto& [k, v] : e.args) w->Key(k).Int(v);
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndArray();
  w->Key("displayTimeUnit").String("ms");
  w->EndObject();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  JsonWriter w;
  WriteJson(&w);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::RuntimeError("cannot open trace file " + path);
  }
  const std::string& body = w.str();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::RuntimeError("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace gdlog
