#include "obs/http/http_parser.h"

#include <algorithm>
#include <cctype>

namespace gdlog {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsTokenChar(unsigned char c) {
  // RFC 7230 token characters; enough to validate methods and header
  // names without a lookup table.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool ValidToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

/// Request targets must be visible ASCII: control bytes (and the
/// spaces already consumed by the line split) have no business in an
/// origin-form path and usually signal request smuggling attempts.
bool ValidTarget(std::string_view s) {
  for (unsigned char c : s) {
    if (c <= 0x20 || c == 0x7f) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  const std::string lowered = ToLower(name);
  for (const auto& [k, v] : headers) {
    if (k == lowered) return v;
  }
  return {};
}

HttpParseStatus ParseHttpRequest(std::string_view data,
                                 const HttpLimits& limits, HttpRequest* out,
                                 size_t* consumed) {
  // Limit checks run against partial data too: a sender that streams an
  // endless request line is rejected as soon as it crosses the bound,
  // not kept in kIncomplete until its timeout.
  const size_t head_end = data.find("\r\n\r\n");
  const size_t line_end = data.find("\r\n");
  // A bare LF before any CRLF means the client uses LF-only line
  // endings; rejecting it now beats stalling in kIncomplete until the
  // read timeout (the CRLF terminator would never arrive).
  const size_t bare_lf = data.find('\n');
  if (bare_lf != std::string_view::npos &&
      (line_end == std::string_view::npos || bare_lf < line_end + 1)) {
    return HttpParseStatus::kBadRequest;
  }
  if (line_end == std::string_view::npos) {
    if (data.size() > limits.max_request_line) {
      return HttpParseStatus::kUriTooLong;
    }
    if (data.size() > limits.max_head_bytes) {
      return HttpParseStatus::kHeadersTooLarge;
    }
    return HttpParseStatus::kIncomplete;
  }
  if (line_end > limits.max_request_line) return HttpParseStatus::kUriTooLong;
  if (head_end == std::string_view::npos) {
    if (data.size() > limits.max_head_bytes) {
      return HttpParseStatus::kHeadersTooLarge;
    }
    return HttpParseStatus::kIncomplete;
  }
  if (head_end + 4 > limits.max_head_bytes) {
    return HttpParseStatus::kHeadersTooLarge;
  }

  // Request line: METHOD SP request-target SP HTTP/1.minor
  const std::string_view line = data.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return HttpParseStatus::kBadRequest;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!ValidToken(method) || target.empty() || !ValidTarget(target)) {
    return HttpParseStatus::kBadRequest;
  }
  if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
      !std::isdigit(static_cast<unsigned char>(version[7]))) {
    return HttpParseStatus::kBadVersion;
  }
  // Only origin-form targets ("/metrics"); no absolute-form proxying.
  if (target.front() != '/') return HttpParseStatus::kBadRequest;

  HttpRequest req;
  req.method = std::string(method);
  req.version_minor = version[7] - '0';
  const size_t q = target.find('?');
  req.path = std::string(target.substr(0, q));
  if (q != std::string_view::npos) req.query = std::string(target.substr(q + 1));

  // Headers: name ":" OWS value OWS, one per line, no obs-fold.
  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = data.find("\r\n", pos);
    const std::string_view h = data.substr(pos, eol - pos);
    pos = eol + 2;
    if (req.headers.size() >= limits.max_headers) {
      return HttpParseStatus::kHeadersTooLarge;
    }
    if (h.front() == ' ' || h.front() == '\t') {
      return HttpParseStatus::kBadRequest;  // obsolete line folding
    }
    const size_t colon = h.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpParseStatus::kBadRequest;
    }
    const std::string_view name = h.substr(0, colon);
    if (!ValidToken(name)) return HttpParseStatus::kBadRequest;
    const std::string_view value = Trim(h.substr(colon + 1));
    // No stray control bytes in values (a bare LF here means the line
    // terminators were inconsistent — a smuggling vector, not a value).
    for (unsigned char c : value) {
      if (c < 0x20 && c != '\t') return HttpParseStatus::kBadRequest;
    }
    req.headers.emplace_back(ToLower(name), std::string(value));
  }

  *out = std::move(req);
  *consumed = head_end + 4;
  return HttpParseStatus::kOk;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string BuildHttpResponseHead(
    int status, std::string_view content_type, size_t content_length,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(HttpReasonPhrase(status)) + "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: " + std::string(content_type) + "\r\n";
  }
  out += "Content-Length: " + std::to_string(content_length) + "\r\n";
  for (const auto& [k, v] : extra_headers) out += k + ": " + v + "\r\n";
  out += "Connection: close\r\n\r\n";
  return out;
}

}  // namespace gdlog
