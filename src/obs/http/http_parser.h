// HTTP/1.x request parsing for the observability server: the pure,
// socket-free half of src/obs/http, unit-tested without a listener.
//
// The parser handles exactly what a metrics scraper or curl sends — a
// request line plus headers, no body — and is deliberately strict:
// bounded sizes, no obsolete line folding, no transfer encodings.
// Anything outside that envelope maps to a 4xx the server can emit
// without further interpretation.
#ifndef GDLOG_OBS_HTTP_HTTP_PARSER_H_
#define GDLOG_OBS_HTTP_HTTP_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gdlog {

/// Bounds enforced while reading a request head. Defaults fit any
/// scraper; tests shrink them to exercise the 431/414 paths.
struct HttpLimits {
  uint32_t max_request_line = 2048;  // method + target + version
  uint32_t max_head_bytes = 8192;    // request line + all headers
  uint32_t max_headers = 64;
};

struct HttpRequest {
  std::string method;  // uppercase as received ("GET")
  std::string path;    // origin-form target, query string stripped
  std::string query;   // after '?', may be empty
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;  // names lowered

  /// First value of a header (case-insensitive name), or "".
  std::string_view Header(std::string_view name) const;
};

/// Outcome of parsing one request head.
enum class HttpParseStatus : uint8_t {
  kOk = 0,
  kIncomplete,       // need more bytes (no terminating CRLFCRLF yet)
  kBadRequest,       // malformed line or header        -> 400
  kUriTooLong,       // request line over the limit     -> 414
  kHeadersTooLarge,  // head bytes / count over limits  -> 431
  kBadVersion,       // not HTTP/1.x                    -> 505
};

/// Parses one request head from `data` (everything received so far).
/// Returns kIncomplete until the blank line arrives, unless a limit is
/// already exceeded by the partial data — limits are checked first so a
/// hostile sender cannot stall in kIncomplete forever. On kOk,
/// `consumed` is the head length including the terminating CRLFCRLF.
HttpParseStatus ParseHttpRequest(std::string_view data,
                                 const HttpLimits& limits, HttpRequest* out,
                                 size_t* consumed);

/// The canonical reason phrase ("Not Found" for 404, ...).
std::string_view HttpReasonPhrase(int status);

/// Serializes a response head (status line + headers + blank line).
/// `extra_headers` are emitted verbatim after Content-Type/Length.
std::string BuildHttpResponseHead(
    int status, std::string_view content_type, size_t content_length,
    const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

}  // namespace gdlog

#endif  // GDLOG_OBS_HTTP_HTTP_PARSER_H_
