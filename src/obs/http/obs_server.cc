#include "obs/http/obs_server.h"

#include <chrono>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace gdlog {

namespace {

HttpServer::Options ToHttpOptions(const ObsHttpOptions& o) {
  HttpServer::Options h;
  h.bind_address = o.bind_address;
  h.port = o.port;
  h.workers = o.workers;
  h.read_timeout_ms = o.read_timeout_ms;
  h.write_timeout_ms = o.write_timeout_ms;
  return h;
}

/// Clamps the path label to the known endpoint set so a client probing
/// random paths cannot mint unbounded label values in the registry.
const char* PathLabel(const std::string& path) {
  static const char* kKnown[] = {"/metrics", "/healthz", "/statusz",
                                 "/runs",    "/runs/last", "/trace",
                                 "/blackbox", "/progress"};
  for (const char* k : kKnown) {
    if (path == k) return k;
  }
  return "other";
}

}  // namespace

ObsServer::ObsServer(ObsHttpOptions options, Sources sources)
    : options_(std::move(options)),
      sources_(std::move(sources)),
      http_(ToHttpOptions(options_)) {
  if (options_.runs_retained == 0) options_.runs_retained = 1;
  if (sources_.metrics != nullptr) {
    MetricsRegistry* m = sources_.metrics;
    http_.set_request_observer([m](int status, const std::string& path) {
      m->GetCounter("http.requests", {{"path", PathLabel(path)},
                                      {"code", std::to_string(status)}})
          ->Add(1);
    });
  }
  RegisterEndpoints();
}

ObsServer::~ObsServer() { Stop(); }

Status ObsServer::Start() { return http_.Start(); }

void ObsServer::Stop() { http_.Stop(); }

void ObsServer::PushRunReport(std::string report_json) {
  std::lock_guard<std::mutex> lock(runs_mu_);
  runs_.push_back(std::move(report_json));
  while (runs_.size() > options_.runs_retained) runs_.pop_front();
}

void ObsServer::SetTrace(std::string trace_json) {
  std::lock_guard<std::mutex> lock(runs_mu_);
  trace_json_ = std::move(trace_json);
}

void ObsServer::RegisterEndpoints() {
  http_.HandleGet("/healthz", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });

  http_.HandleGet("/metrics", [this](const HttpRequest&) {
    HttpResponse r;
    std::string text = sources_.metrics_text ? sources_.metrics_text() : "";
    if (text.empty()) {
      r.status = 503;
      r.body = "metrics disabled\n";
      return r;
    }
    // The content type registered for the text exposition format 0.0.4.
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = std::move(text);
    return r;
  });

  http_.HandleGet("/statusz", [this](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = sources_.statusz ? sources_.statusz() : "{}";
    r.body += "\n";
    return r;
  });

  http_.HandleGet("/runs", [this](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "application/json";
    std::lock_guard<std::mutex> lock(runs_mu_);
    r.body = "[";
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (i) r.body += ",";
      r.body += runs_[i];
    }
    r.body += "]\n";
    return r;
  });

  http_.HandleGet("/runs/last", [this](const HttpRequest&) {
    HttpResponse r;
    std::lock_guard<std::mutex> lock(runs_mu_);
    if (runs_.empty()) {
      r.status = 404;
      r.body = "no completed runs\n";
      return r;
    }
    r.content_type = "application/json";
    r.body = runs_.back() + "\n";
    return r;
  });

  http_.HandleGet("/trace", [this](const HttpRequest&) {
    HttpResponse r;
    std::lock_guard<std::mutex> lock(runs_mu_);
    if (trace_json_.empty()) {
      r.status = 404;
      r.body = "no trace recorded (enable tracing and complete a run)\n";
      return r;
    }
    r.content_type = "application/json";
    r.extra_headers.emplace_back("Content-Disposition",
                                 "attachment; filename=\"gdlog-trace.json\"");
    r.body = trace_json_;
    return r;
  });

  http_.HandleGet("/blackbox", [this](const HttpRequest&) {
    HttpResponse r;
    if (sources_.recorder == nullptr) {
      r.status = 503;
      r.body = "flight recorder disabled\n";
      return r;
    }
    // Documented safe mid-run: the ring tolerates concurrent writers.
    r.body = sources_.recorder->DumpText();
    return r;
  });

  if (sources_.progress != nullptr) {
    http_.HandleGetStream("/progress",
                          [this](const HttpRequest& req, HttpStream* stream) {
                            ServeProgress(req, stream);
                          });
  } else {
    http_.HandleGet("/progress", [](const HttpRequest&) {
      HttpResponse r;
      r.status = 503;
      r.body = "progress tap disabled\n";
      return r;
    });
  }
}

void ObsServer::ServeProgress(const HttpRequest& req, HttpStream* stream) {
  (void)req;
  const ProgressTap& tap = *sources_.progress;
  if (!stream->Write("retry: 2000\n\n")) return;
  // Replay whatever the ring retains, then follow the live run. The
  // stream ends when the run terminates (the tap's termination event),
  // the client disconnects, or the server stops.
  uint64_t cursor = 0;
  auto last_keepalive = std::chrono::steady_clock::now();
  for (;;) {
    if (stream->ShouldStop()) return;
    const std::vector<ProgressEvent> events = tap.Since(cursor);
    bool terminated = false;
    for (const ProgressEvent& e : events) {
      cursor = e.seq;
      std::string frame = "event: progress\ndata: ";
      frame += ProgressEventJson(e);
      frame += "\n\n";
      if (!stream->Write(frame)) return;
      if (e.kind == ProgressKind::kTermination) terminated = true;
    }
    if (terminated) return;
    if (events.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_keepalive > std::chrono::seconds(2)) {
        // Comment frames keep intermediaries open and detect a client
        // that went away without a FIN reaching us yet.
        if (!stream->Write(": keepalive\n\n")) return;
        last_keepalive = now;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    } else {
      last_keepalive = std::chrono::steady_clock::now();
    }
  }
}

}  // namespace gdlog
