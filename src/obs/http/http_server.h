// Minimal dependency-free HTTP/1.1 server (POSIX sockets) for the
// observability endpoints.
//
// Design: one accept thread plus a small fixed worker pool. Accepted
// connections go through a bounded queue; when the queue is full the
// connection is closed immediately (load shedding — a scraper retries,
// and the engine's run must never wait on slow readers). Every
// connection is read with a receive timeout, parsed under the bounded
// HttpLimits, answered, and closed (Connection: close — no keep-alive,
// which keeps state machines trivial and hostile clients cheap).
//
// Handlers come in two shapes: plain (return a full HttpResponse) and
// streaming (take over the socket via HttpStream — used for the
// Server-Sent Events /progress endpoint). Streaming handlers must poll
// HttpStream::ShouldStop() so Stop() can complete promptly; Stop() also
// shuts down in-flight sockets so blocked sends return.
//
// The server is idle-cheap by construction: all threads block in
// accept()/queue-wait when no client is connected, so an enabled-but-
// unscraped server costs zero CPU on the evaluation path (the
// obs_overhead_test serve arm keeps that honest).
#ifndef GDLOG_OBS_HTTP_HTTP_SERVER_H_
#define GDLOG_OBS_HTTP_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/http/http_parser.h"

namespace gdlog {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Handed to streaming handlers: write chunks directly to the client,
/// observing ShouldStop() between writes.
class HttpStream {
 public:
  HttpStream(int fd, const std::atomic<bool>* stopping)
      : fd_(fd), stopping_(stopping) {}

  /// Sends raw bytes; false once the client disconnected, a write timed
  /// out, or the server is stopping (stop writing and return).
  bool Write(std::string_view data);
  bool ShouldStop() const {
    return failed_ || stopping_->load(std::memory_order_acquire);
  }

 private:
  int fd_;
  const std::atomic<bool>* stopping_;
  bool failed_ = false;
};

class HttpServer {
 public:
  struct Options {
    /// Loopback by default: the endpoint exposes internals and carries
    /// no authentication; binding wider is an explicit choice.
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral (read back via port())
    uint32_t workers = 2;
    uint32_t backlog = 16;
    uint32_t queue_depth = 16;
    uint32_t read_timeout_ms = 5000;
    uint32_t write_timeout_ms = 5000;
    HttpLimits limits;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using StreamHandler = std::function<void(const HttpRequest&, HttpStream*)>;

  explicit HttpServer(Options options);
  ~HttpServer();  // implies Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Exact-path GET handlers (HEAD is answered from the same handler
  /// with the body suppressed). Register before Start.
  void HandleGet(std::string path, Handler handler);
  void HandleGetStream(std::string path, StreamHandler handler);

  /// Binds, listens, and starts the accept/worker threads.
  Status Start();
  /// Graceful shutdown: stops accepting, wakes idle workers, shuts down
  /// in-flight connections, joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves ephemeral port 0); 0 before Start.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Connections accepted / requests answered / connections shed at the
  /// full queue, since Start.
  uint64_t connections_accepted() const { return accepted_.load(); }
  uint64_t requests_served() const { return served_.load(); }
  uint64_t connections_shed() const { return shed_.load(); }

  /// Observer invoked after every answered request (status code and
  /// path) — the hook the obs layer uses to count http.requests metrics.
  /// Must be thread-safe; set before Start.
  void set_request_observer(std::function<void(int, const std::string&)> fn) {
    observer_ = std::move(fn);
  }

 private:
  void AcceptLoop();
  void WorkerLoop(size_t slot);
  void ServeConnection(int fd, size_t slot);
  /// Sends head+body honoring the write timeout; best-effort.
  void SendResponse(int fd, const HttpRequest* req, const HttpResponse& resp);

  Options options_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  std::vector<std::pair<std::string, StreamHandler>> stream_handlers_;
  std::function<void(int, const std::string&)> observer_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  /// fd each worker is currently serving (-1 idle); Stop shuts these
  /// down so blocked reads/writes return promptly.
  std::unique_ptr<std::atomic<int>[]> active_fds_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace gdlog

#endif  // GDLOG_OBS_HTTP_HTTP_SERVER_H_
