// The observability endpoint: HttpServer wired to the engine's live
// surfaces. This is the serving half of server mode (ROADMAP) — the
// wire protocol for queries comes later; what lands here is everything
// a scraper, dashboard, or on-call human needs while a run is in
// flight.
//
//   GET /metrics    Prometheus 0.0.4 text (live registry scrape)
//   GET /healthz    "ok" — liveness only
//   GET /statusz    build info, uptime, run state, last progress (JSON)
//   GET /runs       recent completed RunReport JSONs (bounded ring)
//   GET /runs/last  the most recent RunReport
//   GET /trace      Chrome trace_event JSON of the last run
//   GET /blackbox   flight-recorder dump (safe mid-run)
//   GET /progress   Server-Sent Events stream of progress events
//
// Thread-safety contract: every handler reads only surfaces that are
// documented safe against a concurrent Run — the metrics registry, the
// flight recorder, the progress tap, atomics published by the engine,
// and strings pushed into the ring *after* a run ended. RunReport and
// the tracer are NOT mid-run-safe, which is exactly why /runs serves a
// ring of completed-run snapshots instead of calling Engine::RunReport.
#ifndef GDLOG_OBS_HTTP_OBS_SERVER_H_
#define GDLOG_OBS_HTTP_OBS_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/http/http_server.h"

namespace gdlog {

class MetricsRegistry;
class FlightRecorder;
class ProgressTap;

/// Engine-level switch for the endpoint, carried on EngineOptions.
struct ObsHttpOptions {
  /// Off by default: an engine embedded in tests or batch pipelines
  /// should not open sockets unless asked.
  bool enabled = false;
  /// Loopback by default (the endpoint has no authentication).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Engine::obs_http_port.
  uint16_t port = 0;
  uint32_t workers = 2;
  uint32_t read_timeout_ms = 5000;
  uint32_t write_timeout_ms = 5000;
  /// Completed RunReport JSONs retained for /runs.
  uint32_t runs_retained = 8;
};

class ObsServer {
 public:
  /// The pull-side surfaces the endpoints read. All pointers are
  /// borrowed, may be null (the endpoint degrades to 503/404), and must
  /// outlive the server. `statusz` supplies the engine-state JSON (it
  /// reads only atomics); `metrics_text` renders the live Prometheus
  /// scrape (the engine refreshes its runtime gauges inside it).
  struct Sources {
    /// Registry the server counts its own http.requests series into
    /// (also null-safe).
    MetricsRegistry* metrics = nullptr;
    std::function<std::string()> metrics_text;  // "" = disabled -> 503
    const FlightRecorder* recorder = nullptr;
    const ProgressTap* progress = nullptr;
    std::function<std::string()> statusz;  // JSON object, never fails
  };

  ObsServer(ObsHttpOptions options, Sources sources);
  ~ObsServer();  // stops the server

  /// Binds and starts serving. The bound port is available right after.
  Status Start();
  void Stop();

  uint16_t port() const { return http_.port(); }
  bool running() const { return http_.running(); }

  /// Pushes a completed run's report JSON into the /runs ring (called
  /// by Engine::Run after the run ended — never mid-run).
  void PushRunReport(std::string report_json);
  /// Publishes the last run's Chrome trace JSON for /trace.
  void SetTrace(std::string trace_json);

  const HttpServer& http() const { return http_; }

 private:
  void RegisterEndpoints();
  void ServeProgress(const HttpRequest& req, HttpStream* stream);

  ObsHttpOptions options_;
  Sources sources_;
  HttpServer http_;

  std::mutex runs_mu_;
  std::deque<std::string> runs_;  // oldest first, bounded
  std::string trace_json_;        // empty = no trace yet
};

}  // namespace gdlog

#endif  // GDLOG_OBS_HTTP_OBS_SERVER_H_
