#include "obs/http/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>

namespace gdlog {

namespace {

void SetTimeout(int fd, int optname, uint32_t ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

/// send() with MSG_NOSIGNAL (a dead client must surface as EPIPE, not
/// SIGPIPE) and short-write handling. False on error or timeout.
bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpStream::Write(std::string_view data) {
  if (ShouldStop()) return false;
  if (!SendAll(fd_, data)) {
    failed_ = true;
    return false;
  }
  return true;
}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::HandleGet(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

void HttpServer::HandleGetStream(std::string path, StreamHandler handler) {
  stream_handlers_.emplace_back(std::move(path), std::move(handler));
}

Status HttpServer::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind " + options_.bind_address + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(err));
  }
  if (::listen(listen_fd_, static_cast<int>(options_.backlog)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  // Resolve the ephemeral port before any client can connect.
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }

  active_fds_ = std::make_unique<std::atomic<int>[]>(options_.workers);
  for (uint32_t i = 0; i < options_.workers; ++i) active_fds_[i].store(-1);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.workers);
  for (uint32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener wakes the accept thread out of accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock workers stuck in recv/send on a live connection (includes
  // any in-flight SSE stream, which also polls ShouldStop).
  for (uint32_t i = 0; i < options_.workers; ++i) {
    const int fd = active_fds_[i].load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Drain connections that were queued but never picked up.
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed or broken beyond retry
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    SetTimeout(fd, SO_RCVTIMEO, options_.read_timeout_ms);
    SetTimeout(fd, SO_SNDTIMEO, options_.write_timeout_ms);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() < options_.queue_depth) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      cv_.notify_one();
    } else {
      // Load shedding: every worker busy and the queue full. Close
      // rather than stall — scrapers retry, and a pile of parked
      // sockets is exactly the state a hostile client wants.
      shed_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop(size_t slot) {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    active_fds_[slot].store(fd, std::memory_order_release);
    ServeConnection(fd, slot);
    active_fds_[slot].store(-1, std::memory_order_release);
    ::close(fd);
  }
}

void HttpServer::SendResponse(int fd, const HttpRequest* req,
                              const HttpResponse& resp) {
  const std::string head = BuildHttpResponseHead(
      resp.status, resp.content_type, resp.body.size(), resp.extra_headers);
  if (!SendAll(fd, head)) return;
  if (req == nullptr || req->method != "HEAD") SendAll(fd, resp.body);
}

void HttpServer::ServeConnection(int fd, size_t slot) {
  (void)slot;
  if (stopping_.load(std::memory_order_acquire)) return;
  std::string buf;
  buf.reserve(512);
  HttpRequest req;
  size_t consumed = 0;
  char chunk[1024];
  // Overall head deadline: the per-recv SO_RCVTIMEO resets on every
  // byte, so a drip-feeding client could otherwise hold a worker for
  // limits.max_head_bytes * timeout. One absolute deadline bounds it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.read_timeout_ms);
  for (;;) {
    const HttpParseStatus ps =
        ParseHttpRequest(buf, options_.limits, &req, &consumed);
    if (ps == HttpParseStatus::kOk) break;
    if (ps != HttpParseStatus::kIncomplete) {
      int status = 400;
      if (ps == HttpParseStatus::kUriTooLong) status = 414;
      if (ps == HttpParseStatus::kHeadersTooLarge) status = 431;
      if (ps == HttpParseStatus::kBadVersion) status = 505;
      HttpResponse resp;
      resp.status = status;
      resp.body = std::string(HttpReasonPhrase(status)) + "\n";
      SendResponse(fd, nullptr, resp);
      if (observer_) observer_(status, "(malformed)");
      return;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      HttpResponse resp;
      resp.status = 408;
      resp.body = "Request Timeout\n";
      SendResponse(fd, nullptr, resp);
      if (observer_) observer_(408, "(timeout)");
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Timeout (EAGAIN/EWOULDBLOCK), client reset, or half-open close
      // before a full head arrived: answer 408 best-effort for the
      // timeout case and drop the connection either way.
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          !stopping_.load(std::memory_order_acquire)) {
        HttpResponse resp;
        resp.status = 408;
        resp.body = "Request Timeout\n";
        SendResponse(fd, nullptr, resp);
        if (observer_) observer_(408, "(timeout)");
      }
      return;
    }
    buf.append(chunk, static_cast<size_t>(n));
  }

  served_.fetch_add(1, std::memory_order_relaxed);

  if (req.method != "GET" && req.method != "HEAD") {
    HttpResponse resp;
    resp.status = 405;
    resp.body = "Method Not Allowed\n";
    resp.extra_headers.emplace_back("Allow", "GET, HEAD");
    SendResponse(fd, &req, resp);
    if (observer_) observer_(405, req.path);
    return;
  }

  for (const auto& [path, handler] : stream_handlers_) {
    if (req.path != path) continue;
    if (req.method == "HEAD") {
      // A HEAD of a stream endpoint answers the head only.
      SendAll(fd, "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
                  "Cache-Control: no-store\r\nConnection: close\r\n\r\n");
      if (observer_) observer_(200, req.path);
      return;
    }
    if (!SendAll(fd, "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
                     "Cache-Control: no-store\r\nConnection: close\r\n\r\n")) {
      return;
    }
    HttpStream stream(fd, &stopping_);
    handler(req, &stream);
    if (observer_) observer_(200, req.path);
    return;
  }

  for (const auto& [path, handler] : handlers_) {
    if (req.path != path) continue;
    HttpResponse resp;
    try {
      resp = handler(req);
    } catch (const std::exception&) {
      resp = HttpResponse{};
      resp.status = 500;
      resp.body = "Internal Server Error\n";
    }
    SendResponse(fd, &req, resp);
    if (observer_) observer_(resp.status, req.path);
    return;
  }

  HttpResponse resp;
  resp.status = 404;
  resp.body = "Not Found\n";
  SendResponse(fd, &req, resp);
  if (observer_) observer_(404, req.path);
}

}  // namespace gdlog
