#include "eval/join_planner.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace gdlog {

RelationEstimate JoinPlanner::ScanRelation(const Relation& rel,
                                           size_t max_scan_rows) {
  RelationEstimate est;
  est.rows = static_cast<double>(rel.size());
  est.distinct.assign(rel.arity(), 1.0);
  if (rel.empty()) {
    est.rows = kDefaultRows;
    est.distinct.assign(rel.arity(), kDefaultDistinct);
    return est;
  }
  est.from_data = true;
  if (rel.size() > max_scan_rows) {
    const double d = std::max(1.0, std::sqrt(est.rows));
    est.distinct.assign(rel.arity(), d);
    return est;
  }
  std::unordered_set<uint64_t> seen;
  for (uint32_t c = 0; c < rel.arity(); ++c) {
    seen.clear();
    for (RowId r = 0; r < rel.size(); ++r) {
      seen.insert(rel.Row(r)[c].bits());
    }
    est.distinct[c] = static_cast<double>(std::max<size_t>(1, seen.size()));
  }
  return est;
}

double JoinPlanner::ScanRows(const RelationEstimate& est,
                             const std::vector<uint32_t>& bound_cols) {
  double rows = est.rows;
  for (uint32_t c : bound_cols) {
    const double d =
        c < est.distinct.size() ? est.distinct[c] : kDefaultDistinct;
    rows /= d;
  }
  return std::max(1.0, rows);
}

void JoinPlanner::SetPrior(PredicateId pred, uint64_t row_bound) {
  const Relation& rel = catalog_->relation(pred);
  if (!rel.empty()) return;  // exact stats beat the analysis bound
  if (cache_.find(pred) != cache_.end()) return;
  RelationEstimate est;
  est.rows = std::max(1.0, static_cast<double>(row_bound));
  // No column-level information in the bound: assume sqrt(rows) distinct
  // values per column, the same shape ScanRelation falls back to for
  // over-large relations.
  est.distinct.assign(rel.arity(), std::max(1.0, std::sqrt(est.rows)));
  est.from_prior = true;
  cache_.emplace(pred, std::move(est));
}

const RelationEstimate& JoinPlanner::Estimate(PredicateId pred) {
  auto it = cache_.find(pred);
  if (it == cache_.end()) {
    it = cache_.emplace(pred, ScanRelation(catalog_->relation(pred))).first;
  }
  return it->second;
}

double JoinPlanner::EstimateScanRows(PredicateId pred,
                                     const std::vector<uint32_t>& bound_cols) {
  return ScanRows(Estimate(pred), bound_cols);
}

}  // namespace gdlog
