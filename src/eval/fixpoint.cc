#include "eval/fixpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <unordered_map>

#include "common/logging.h"

namespace gdlog {

FixpointDriver::FixpointDriver(Catalog* catalog, ValueStore* store,
                               const StageAnalysis* analysis,
                               std::vector<CompiledRule> rules,
                               EvalOptions options)
    : catalog_(catalog),
      store_(store),
      analysis_(analysis),
      rules_(std::move(rules)),
      options_(options),
      exec_(catalog, store),
      choice_(store) {
  for (const CompiledRule& r : rules_) {
    if (!r.is_gamma) continue;
    choice_.Register(r);
    auto order = CandidateQueue::Order::kFifo;
    if (r.has_extremum) {
      order = r.is_least ? CandidateQueue::Order::kMin
                         : CandidateQueue::Order::kMax;
    }
    // Congruence merging only makes sense under a cost order (keep the
    // cheaper congruent candidate). Rules without an extremum use the
    // paper's "simple set" queue — plain duplicate elimination — so that
    // which instance of a class fires stays a free (seedable) choice.
    const bool merge = r.merge_by_choice_keys &&
                       options_.use_merge_congruence && r.has_extremum;
    auto g = std::make_unique<GammaState>();
    g->rule = &r;
    g->merge = merge;
    g->queue = std::make_unique<CandidateQueue>(
        store_, order, merge, options_.choice_seed,
        /*linear_scan=*/!options_.use_priority_queue);
    if (gamma_states_.size() <= static_cast<size_t>(r.gamma_index)) {
      gamma_states_.resize(r.gamma_index + 1);
    }
    gamma_states_[r.gamma_index] = std::move(g);
  }
}

Status FixpointDriver::Run() {
  for (uint32_t scc : analysis_->clique_order) {
    const CliqueStageInfo& cl = analysis_->cliques[scc];
    if (cl.cls == CliqueClass::kRejected) {
      return Status::AnalysisError("clique rejected: " + cl.diagnostic);
    }
    GDLOG_RETURN_IF_ERROR(EvalClique(scc));
  }
  exec_stats_view_ = exec_.stats();
  stats_.exec = exec_.stats();
  stats_.queues = AggregateQueueStats();
  return Status::OK();
}

CandidateQueueStats FixpointDriver::AggregateQueueStats() const {
  CandidateQueueStats total;
  for (const auto& g : gamma_states_) {
    if (!g) continue;
    const CandidateQueueStats& s = g->queue->stats();
    total.inserted += s.inserted;
    total.merged += s.merged;
    total.redundant += s.redundant;
    total.fired += s.fired;
    total.max_queue = std::max(total.max_queue, s.max_queue);
  }
  return total;
}

const CandidateQueueStats* FixpointDriver::QueueStats(int gamma_index) const {
  if (gamma_index < 0 ||
      static_cast<size_t>(gamma_index) >= gamma_states_.size() ||
      !gamma_states_[gamma_index]) {
    return nullptr;
  }
  return &gamma_states_[gamma_index]->queue->stats();
}

void FixpointDriver::RestoreSnapshot(const CompiledRule& rule,
                                     const std::vector<Value>& snapshot,
                                     BindingFrame* frame) {
  frame->Reset(rule.num_slots);
  GDLOG_CHECK_EQ(snapshot.size(), rule.snapshot_slots.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    frame->Bind(rule.snapshot_slots[i], snapshot[i]);
  }
}

void FixpointDriver::EvalPlain(const CompiledRule& rule,
                               uint32_t delta_occurrence) {
  static const bool kTrace = std::getenv("GDLOG_TRACE") != nullptr;
  const uint64_t rows_before = kTrace ? exec_.stats().scan_rows : 0;
  const size_t n = exec_.ApplyRule(rule, delta_occurrence);
  if (kTrace) {
    const Relation& head = catalog_->relation(rule.head_pred);
    fprintf(stderr,
            "[plain] rule#%u head=%s d=%d inserted=%zu size=%zu rows=%llu\n",
            rule.rule_index, head.name().c_str(),
            delta_occurrence == CompiledScan::kNoOccurrence
                ? -1
                : static_cast<int>(delta_occurrence),
            n, head.size(),
            static_cast<unsigned long long>(exec_.stats().scan_rows -
                                            rows_before));
  }
}

void FixpointDriver::EvalAggregate(const CompiledRule& rule) {
  // Enumerate the full body; keep, per group value, the extremum cost and
  // every head tuple achieving it (ties all survive, as least/most keep
  // every binding with no strictly better one).
  struct Group {
    Value best;
    std::vector<std::vector<Value>> heads;
  };
  std::unordered_map<Value, Group, ValueHash> groups;
  BindingFrame frame(rule.num_slots);
  exec_.Enumerate(rule, rule.generator, CompiledScan::kNoOccurrence, &frame,
                  [&](BindingFrame& f) {
                    Value cost, group;
                    if (!EvalTerm(rule.pool, rule.cost_term, f, store_,
                                  &cost) ||
                        !EvalTerm(rule.pool, rule.group_term, f, store_,
                                  &group)) {
                      return true;  // untyped binding: contributes nothing
                    }
                    std::vector<Value> head;
                    if (!exec_.BuildHead(rule, f, &head)) return true;
                    auto [it, fresh] = groups.try_emplace(group);
                    Group& g = it->second;
                    const int c =
                        fresh ? -1 : store_->Compare(cost, g.best);
                    const bool better =
                        fresh || (rule.is_least ? c < 0 : c > 0);
                    if (better) {
                      g.best = cost;
                      g.heads.clear();
                      g.heads.push_back(std::move(head));
                    } else if (c == 0) {
                      g.heads.push_back(std::move(head));
                    }
                    return true;
                  });
  Relation& head_rel = catalog_->relation(rule.head_pred);
  for (auto& [group, g] : groups) {
    for (auto& head : g.heads) {
      if (head_rel.Insert(TupleView(head)).inserted) ++exec_.stats().inserts;
    }
  }
}

void FixpointDriver::InsertCandidates(GammaState* g,
                                      uint32_t delta_occurrence) {
  const CompiledRule& rule = *g->rule;
  BindingFrame frame(rule.num_slots);
  const std::vector<CompiledLiteral>& plan =
      (delta_occurrence == CompiledScan::kNoOccurrence ||
       delta_occurrence >= rule.delta_plans.size())
          ? rule.generator
          : rule.delta_plans[delta_occurrence];
  exec_.Enumerate(rule, plan, delta_occurrence, &frame,
                  [&](BindingFrame& f) {
                    Value cost = Value::Int(0);
                    if (rule.has_extremum &&
                        !EvalTerm(rule.pool, rule.cost_term, f, store_,
                                  &cost)) {
                      return true;
                    }
                    std::vector<Value> snapshot;
                    snapshot.reserve(rule.snapshot_slots.size());
                    for (uint32_t s : rule.snapshot_slots) {
                      snapshot.push_back(f.Get(s));
                    }
                    Value key;
                    if (g->merge) {
                      std::vector<Value> kv;
                      kv.reserve(rule.congruence_slots.size());
                      for (uint32_t s : rule.congruence_slots) {
                        kv.push_back(f.Get(s));
                      }
                      key = store_->MakeTuple(kv);
                    } else {
                      key = store_->MakeTuple(snapshot);
                    }
                    g->queue->Push(cost, key, std::move(snapshot));
                    return true;
                  });
}

Status FixpointDriver::EvalClique(uint32_t scc) {
  const CliqueStageInfo& cl = analysis_->cliques[scc];
  const DependencyGraph& graph = *analysis_->graph;

  CliqueCtx ctx;
  for (PredIndex p : cl.members) {
    const PredicateId id = catalog_->Lookup(graph.name(p), graph.arity(p));
    if (id != kNoPredicate) ctx.relations.push_back(id);
  }
  for (const CompiledRule& r : rules_) {
    if (graph.scc_of(graph.Lookup(
            catalog_->relation(r.head_pred).name(),
            r.head_arity)) != scc) {
      continue;
    }
    if (r.is_gamma) {
      GammaState* g = gamma_states_[r.gamma_index].get();
      ctx.gammas.push_back(g);
      if (r.is_next) ctx.has_next = true;
    } else if (r.has_extremum) {
      ctx.aggregate.push_back(&r);
    } else {
      ctx.plain.push_back(&r);
    }
  }
  if (ctx.plain.empty() && ctx.aggregate.empty() && ctx.gammas.empty()) {
    // Pure EDB clique; seal so later cliques never see phantom deltas.
    for (PredicateId id : ctx.relations) catalog_->relation(id).SealEpoch();
    return Status::OK();
  }

  // Round 0: full evaluation of every rule.
  for (const CompiledRule* r : ctx.plain) {
    EvalPlain(*r, CompiledScan::kNoOccurrence);
  }
  for (const CompiledRule* r : ctx.aggregate) EvalAggregate(*r);
  for (GammaState* g : ctx.gammas) {
    InsertCandidates(g, CompiledScan::kNoOccurrence);
  }

  // Alternate Q∞ and γ until neither makes progress.
  for (;;) {
    Saturate(&ctx);
    if (ctx.has_next && ctx.stage_counter == 0) {
      // Initialize the stage counter past every stage value the exit
      // rules produced (e.g. prm(nil, a, 0, 0) puts 0 in play).
      int64_t max_stage = -1;
      for (PredicateId id : ctx.relations) {
        const Relation& rel = catalog_->relation(id);
        const PredIndex p = graph.Lookup(rel.name(), rel.arity());
        const int pos = analysis_->stage_arg[p];
        if (pos < 0) continue;
        for (RowId row = 0; row < rel.size(); ++row) {
          const Value v = rel.Row(row)[pos];
          if (v.is_int()) max_stage = std::max(max_stage, v.AsInt());
        }
      }
      ctx.stage_counter = max_stage + 1;
    }
    if (!GammaPhase(&ctx)) break;
  }

  for (PredicateId id : ctx.relations) catalog_->relation(id).SealEpoch();
  return Status::OK();
}

void FixpointDriver::Saturate(CliqueCtx* ctx) {
  for (;;) {
    bool any_delta = false;
    for (PredicateId id : ctx->relations) {
      if (catalog_->relation(id).AdvanceEpoch() > 0) any_delta = true;
    }
    if (!any_delta) return;
    ++stats_.saturation_rounds;
    const bool seminaive = options_.use_seminaive;
    for (const CompiledRule* r : ctx->plain) {
      if (!r->recursive) continue;
      if (seminaive) {
        for (uint32_t d = 0; d < r->num_clique_occurrences; ++d) {
          EvalPlain(*r, d);
        }
      } else {
        EvalPlain(*r, CompiledScan::kNoOccurrence);  // naive: full windows
      }
    }
    for (const CompiledRule* r : ctx->aggregate) {
      if (!r->recompute_full) continue;
      EvalAggregate(*r);
    }
    for (GammaState* g : ctx->gammas) {
      if (!g->rule->recursive) continue;
      if (seminaive) {
        for (uint32_t d = 0; d < g->rule->num_clique_occurrences; ++d) {
          InsertCandidates(g, d);
        }
      } else {
        InsertCandidates(g, CompiledScan::kNoOccurrence);
      }
    }
  }
}

size_t FixpointDriver::DrainChoiceRule(GammaState* g) {
  // One firing per call — the paper's γ fires a single chosen instance
  // per iteration, alternating with saturation; interleaving lets
  // different tie-break seeds explore different stable models.
  const CompiledRule& rule = *g->rule;
  BindingFrame frame;
  while (auto cand = g->queue->Pop()) {
    RestoreSnapshot(rule, cand->snapshot, &frame);
    if (rule.has_extremum) {
      // Extrema filtering: pops arrive in cost order, so the first
      // candidate ever seen in a group carries the group's true
      // extremum; any later candidate with a different cost was never a
      // valid instance of the rule. The per-group record persists across
      // calls in the GammaState.
      Value cost, group;
      const bool ok =
          EvalTerm(rule.pool, rule.cost_term, frame, store_, &cost) &&
          EvalTerm(rule.pool, rule.group_term, frame, store_, &group);
      GDLOG_CHECK(ok);
      auto [it, fresh] = g->group_best.try_emplace(group, cost);
      if (!fresh && it->second != cost) {
        g->queue->MarkRedundant(*cand);
        continue;
      }
    }
    if (!choice_.Admissible(rule, frame)) {
      g->queue->MarkRedundant(*cand);
      continue;
    }
    choice_.Commit(rule, frame);
    exec_.InsertHead(rule, frame);
    g->queue->MarkFired(*cand);
    ++stats_.gamma_firings;
    return 1;
  }
  return 0;
}

bool FixpointDriver::TryFireNext(CliqueCtx* ctx, GammaState* g,
                                 const Candidate& cand) {
  const CompiledRule& rule = *g->rule;
  BindingFrame frame;
  RestoreSnapshot(rule, cand.snapshot, &frame);
  frame.Bind(rule.stage_slot, Value::Int(ctx->stage_counter));

  bool fired = false;
  std::vector<Value> head;
  exec_.Enumerate(rule, rule.post, CompiledScan::kNoOccurrence, &frame,
                  [&](BindingFrame& f) {
                    if (!choice_.Admissible(rule, f)) return true;
                    choice_.Commit(rule, f);
                    // Build now, insert after: the post plan may hold
                    // index iterators on the head relation.
                    exec_.BuildHead(rule, f, &head);
                    fired = true;
                    return false;  // one firing per γ
                  });
  if (fired) {
    catalog_->relation(rule.head_pred).Insert(TupleView(head));
    static const bool kTrace = std::getenv("GDLOG_TRACE") != nullptr;
    if (kTrace) {
      fprintf(stderr, "[gamma] stage=%ld head=%s %s\n", ctx->stage_counter,
              catalog_->relation(rule.head_pred).name().c_str(),
              TupleToString(*store_, TupleView(head)).c_str());
    }
    g->queue->MarkFired(cand);
    ++ctx->stage_counter;
    ++stats_.gamma_firings;
    ++stats_.stages_assigned;
  } else {
    g->queue->MarkRedundant(cand);
  }
  return fired;
}

bool FixpointDriver::GammaPhase(CliqueCtx* ctx) {
  // Non-next choice rules: one firing, then back to saturation.
  for (GammaState* g : ctx->gammas) {
    if (g->rule->is_next) continue;
    if (DrainChoiceRule(g) > 0) return true;
  }
  // Next rules: exactly one firing.
  for (GammaState* g : ctx->gammas) {
    if (!g->rule->is_next) continue;
    while (auto cand = g->queue->Pop()) {
      if (TryFireNext(ctx, g, *cand)) return true;
    }
  }
  return false;
}

}  // namespace gdlog
