#include "eval/fixpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <unordered_map>

#include "common/logging.h"

namespace gdlog {

FixpointDriver::FixpointDriver(Catalog* catalog, ValueStore* store,
                               const StageAnalysis* analysis,
                               std::vector<CompiledRule> rules,
                               EvalOptions options, ObsContext obs,
                               RunGuard* guard)
    : catalog_(catalog),
      store_(store),
      analysis_(analysis),
      rules_(std::move(rules)),
      options_(options),
      exec_(catalog, store),
      choice_(store),
      obs_(obs),
      obs_enabled_(obs.enabled()),
      guard_(guard) {
  uint32_t max_rule = 0;
  for (const CompiledRule& r : rules_) {
    max_rule = std::max(max_rule, r.rule_index);
  }
  profiles_.resize(rules_.empty() ? 0 : max_rule + 1);
  for (const CompiledRule& r : rules_) {
    RuleProfile& p = profiles_[r.rule_index];
    const Relation& head = catalog_->relation(r.head_pred);
    p.head = head.name() + "/" + std::to_string(head.arity());
    p.kind = r.is_next ? "next"
             : r.is_gamma ? "gamma"
             : r.has_extremum ? "aggregate"
                              : "plain";
    p.recursive = r.recursive;
    if (obs_.metrics != nullptr) {
      p.latency = obs_.metrics->GetHistogram(
          "rule.apply_ns", {{"rule", p.head + "#" +
                                         std::to_string(r.rule_index)}});
    }
  }
  for (const CompiledRule& r : rules_) {
    if (!r.is_gamma) continue;
    choice_.Register(r);
    auto order = CandidateQueue::Order::kFifo;
    if (r.has_extremum) {
      order = r.is_least ? CandidateQueue::Order::kMin
                         : CandidateQueue::Order::kMax;
    }
    // Congruence merging only makes sense under a cost order (keep the
    // cheaper congruent candidate). Rules without an extremum use the
    // paper's "simple set" queue — plain duplicate elimination — so that
    // which instance of a class fires stays a free (seedable) choice.
    const bool merge = r.merge_by_choice_keys &&
                       options_.use_merge_congruence && r.has_extremum;
    auto g = std::make_unique<GammaState>();
    g->rule = &r;
    g->merge = merge;
    g->queue = std::make_unique<CandidateQueue>(
        store_, order, merge, options_.choice_seed,
        /*linear_scan=*/!options_.use_priority_queue);
    if (obs_.tracer != nullptr) {
      g->queue->set_tracer(obs_.tracer,
                           "q" + std::to_string(r.gamma_index));
    }
    if (gamma_states_.size() <= static_cast<size_t>(r.gamma_index)) {
      gamma_states_.resize(r.gamma_index + 1);
    }
    gamma_states_[r.gamma_index] = std::move(g);
  }
}

Status FixpointDriver::Run() {
  Status st = Status::OK();
  for (uint32_t scc : analysis_->clique_order) {
    const CliqueStageInfo& cl = analysis_->cliques[scc];
    if (cl.cls == CliqueClass::kRejected) {
      st = Status::AnalysisError("clique rejected: " + cl.diagnostic);
      break;
    }
    st = EvalClique(scc);
    if (!st.ok()) break;
  }
  // Fill statistics even on a bounded stop, so the partial evaluation is
  // fully reportable (RunReport, metrics, shell .stats).
  exec_stats_view_ = exec_.stats();
  stats_.exec = exec_.stats();
  stats_.queues = AggregateQueueStats();
  if (guard_ != nullptr) {
    stats_.termination = guard_->reason();
    stats_.guard_checks = guard_->checks();
    if (guard_->budget() != nullptr) {
      stats_.peak_memory_bytes = guard_->budget()->peak();
    }
  }
  if (obs_.metrics != nullptr) PublishMetrics();
  return st;
}

Status FixpointDriver::GuardCheck(std::string_view probe) {
  if (guard_ == nullptr) return Status::OK();
  GuardCounters c;
  c.tuples = exec_.stats().inserts;
  c.stages = stats_.stages_assigned;
  c.iterations = stats_.saturation_rounds;
  return guard_->Check(c, probe);
}

uint64_t FixpointDriver::ObsNowNs() const {
  if (obs_.tracer != nullptr) return obs_.tracer->NowNs();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void FixpointDriver::RecordApply(RuleProfile* prof, uint64_t start_ns,
                                 const char* cat) {
  const uint64_t end_ns = ObsNowNs();
  const uint64_t dur = end_ns - start_ns;
  prof->wall_ns += dur;
  if (prof->latency != nullptr) {
    prof->latency->Observe(static_cast<double>(dur));
  }
  if (obs_.tracer != nullptr && obs_.tracer->Sample()) {
    obs_.tracer->Complete(prof->head, cat, start_ns, end_ns);
  }
}

void FixpointDriver::PublishMetrics() {
  MetricsRegistry& m = *obs_.metrics;
  m.GetCounter("fixpoint.saturation_rounds")->Add(stats_.saturation_rounds);
  m.GetCounter("fixpoint.gamma_firings")->Add(stats_.gamma_firings);
  m.GetCounter("fixpoint.stages_assigned")->Add(stats_.stages_assigned);
  m.GetCounter("exec.solutions")->Add(exec_.stats().solutions);
  m.GetCounter("exec.inserts")->Add(exec_.stats().inserts);
  m.GetCounter("exec.scan_rows")->Add(exec_.stats().scan_rows);
  m.GetCounter("guard.checks")->Add(stats_.guard_checks);
  if (stats_.peak_memory_bytes > 0) {
    m.GetGauge("memory.tracked_peak_bytes")
        ->SetMax(static_cast<int64_t>(stats_.peak_memory_bytes));
  }
  for (const RuleProfile& p : profiles_) {
    if (p.head.empty()) continue;
    // Label by head + index so two rules with the same head stay apart.
    const size_t idx = static_cast<size_t>(&p - profiles_.data());
    const MetricLabels labels{{"rule", p.head + "#" + std::to_string(idx)}};
    m.GetCounter("rule.invocations", labels)->Add(p.invocations);
    m.GetCounter("rule.tuples", labels)->Add(p.tuples);
    m.GetCounter("rule.dedup_hits", labels)->Add(p.dedup_hits);
    if (p.firings > 0) m.GetCounter("rule.firings", labels)->Add(p.firings);
    m.GetCounter("rule.wall_ns", labels)->Add(p.wall_ns);
  }
  for (size_t i = 0; i < gamma_states_.size(); ++i) {
    if (!gamma_states_[i]) continue;
    const CandidateQueueStats& s = gamma_states_[i]->queue->stats();
    const MetricLabels labels{{"gamma", std::to_string(i)}};
    m.GetCounter("queue.inserted", labels)->Add(s.inserted);
    m.GetCounter("queue.merged", labels)->Add(s.merged);
    m.GetCounter("queue.redundant", labels)->Add(s.redundant);
    m.GetCounter("queue.fired", labels)->Add(s.fired);
    m.GetGauge("queue.max_queue", labels)
        ->SetMax(static_cast<int64_t>(s.max_queue));
  }
}

CandidateQueueStats FixpointDriver::AggregateQueueStats() const {
  CandidateQueueStats total;
  for (const auto& g : gamma_states_) {
    if (!g) continue;
    const CandidateQueueStats& s = g->queue->stats();
    total.inserted += s.inserted;
    total.merged += s.merged;
    total.redundant += s.redundant;
    total.fired += s.fired;
    total.max_queue = std::max(total.max_queue, s.max_queue);
  }
  return total;
}

const CandidateQueueStats* FixpointDriver::QueueStats(int gamma_index) const {
  if (gamma_index < 0 ||
      static_cast<size_t>(gamma_index) >= gamma_states_.size() ||
      !gamma_states_[gamma_index]) {
    return nullptr;
  }
  return &gamma_states_[gamma_index]->queue->stats();
}

void FixpointDriver::RestoreSnapshot(const CompiledRule& rule,
                                     const std::vector<Value>& snapshot,
                                     BindingFrame* frame) {
  frame->Reset(rule.num_slots);
  GDLOG_CHECK_EQ(snapshot.size(), rule.snapshot_slots.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    frame->Bind(rule.snapshot_slots[i], snapshot[i]);
  }
}

void FixpointDriver::EvalPlain(const CompiledRule& rule,
                               uint32_t delta_occurrence) {
  static const bool kTrace = std::getenv("GDLOG_TRACE") != nullptr;
  const uint64_t rows_before = kTrace ? exec_.stats().scan_rows : 0;
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  size_t attempted = 0;
  const size_t n = exec_.ApplyRule(rule, delta_occurrence, &attempted);
  prof.tuples += n;
  prof.dedup_hits += attempted - n;
  if (obs_enabled_) RecordApply(&prof, t0, "rule");
  if (kTrace) {
    const Relation& head = catalog_->relation(rule.head_pred);
    fprintf(stderr,
            "[plain] rule#%u head=%s d=%d inserted=%zu size=%zu rows=%llu\n",
            rule.rule_index, head.name().c_str(),
            delta_occurrence == CompiledScan::kNoOccurrence
                ? -1
                : static_cast<int>(delta_occurrence),
            n, head.size(),
            static_cast<unsigned long long>(exec_.stats().scan_rows -
                                            rows_before));
  }
}

void FixpointDriver::EvalAggregate(const CompiledRule& rule) {
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  // Enumerate the full body; keep, per group value, the extremum cost and
  // every head tuple achieving it (ties all survive, as least/most keep
  // every binding with no strictly better one).
  struct Group {
    Value best;
    std::vector<std::vector<Value>> heads;
  };
  std::unordered_map<Value, Group, ValueHash> groups;
  BindingFrame frame(rule.num_slots);
  exec_.Enumerate(rule, rule.generator, CompiledScan::kNoOccurrence, &frame,
                  [&](BindingFrame& f) {
                    Value cost, group;
                    if (!EvalTerm(rule.pool, rule.cost_term, f, store_,
                                  &cost) ||
                        !EvalTerm(rule.pool, rule.group_term, f, store_,
                                  &group)) {
                      return true;  // untyped binding: contributes nothing
                    }
                    std::vector<Value> head;
                    if (!exec_.BuildHead(rule, f, &head)) return true;
                    auto [it, fresh] = groups.try_emplace(group);
                    Group& g = it->second;
                    const int c =
                        fresh ? -1 : store_->Compare(cost, g.best);
                    const bool better =
                        fresh || (rule.is_least ? c < 0 : c > 0);
                    if (better) {
                      g.best = cost;
                      g.heads.clear();
                      g.heads.push_back(std::move(head));
                    } else if (c == 0) {
                      g.heads.push_back(std::move(head));
                    }
                    return true;
                  });
  Relation& head_rel = catalog_->relation(rule.head_pred);
  for (auto& [group, g] : groups) {
    for (auto& head : g.heads) {
      if (head_rel.Insert(TupleView(head)).inserted) {
        ++exec_.stats().inserts;
        ++prof.tuples;
      } else {
        ++prof.dedup_hits;
      }
    }
  }
  if (obs_enabled_) RecordApply(&prof, t0, "rule");
}

void FixpointDriver::InsertCandidates(GammaState* g,
                                      uint32_t delta_occurrence) {
  const CompiledRule& rule = *g->rule;
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  const uint64_t pushed_before = g->queue->stats().inserted;
  BindingFrame frame(rule.num_slots);
  const std::vector<CompiledLiteral>& plan =
      (delta_occurrence == CompiledScan::kNoOccurrence ||
       delta_occurrence >= rule.delta_plans.size())
          ? rule.generator
          : rule.delta_plans[delta_occurrence];
  exec_.Enumerate(rule, plan, delta_occurrence, &frame,
                  [&](BindingFrame& f) {
                    Value cost = Value::Int(0);
                    if (rule.has_extremum &&
                        !EvalTerm(rule.pool, rule.cost_term, f, store_,
                                  &cost)) {
                      return true;
                    }
                    std::vector<Value> snapshot;
                    snapshot.reserve(rule.snapshot_slots.size());
                    for (uint32_t s : rule.snapshot_slots) {
                      snapshot.push_back(f.Get(s));
                    }
                    Value key;
                    if (g->merge) {
                      std::vector<Value> kv;
                      kv.reserve(rule.congruence_slots.size());
                      for (uint32_t s : rule.congruence_slots) {
                        kv.push_back(f.Get(s));
                      }
                      key = store_->MakeTuple(kv);
                    } else {
                      key = store_->MakeTuple(snapshot);
                    }
                    g->queue->Push(cost, key, std::move(snapshot));
                    return true;
                  });
  prof.candidates += g->queue->stats().inserted - pushed_before;
  if (obs_enabled_) RecordApply(&prof, t0, "rule");
}

Status FixpointDriver::EvalClique(uint32_t scc) {
  const CliqueStageInfo& cl = analysis_->cliques[scc];
  const DependencyGraph& graph = *analysis_->graph;

  TraceSpan clique_span(obs_.tracer, "clique#" + std::to_string(scc),
                        "fixpoint");
  CliqueCtx ctx;
  for (PredIndex p : cl.members) {
    const PredicateId id = catalog_->Lookup(graph.name(p), graph.arity(p));
    if (id != kNoPredicate) ctx.relations.push_back(id);
  }
  for (const CompiledRule& r : rules_) {
    if (graph.scc_of(graph.Lookup(
            catalog_->relation(r.head_pred).name(),
            r.head_arity)) != scc) {
      continue;
    }
    if (r.is_gamma) {
      GammaState* g = gamma_states_[r.gamma_index].get();
      ctx.gammas.push_back(g);
      if (r.is_next) ctx.has_next = true;
    } else if (r.has_extremum) {
      ctx.aggregate.push_back(&r);
    } else {
      ctx.plain.push_back(&r);
    }
  }
  if (ctx.plain.empty() && ctx.aggregate.empty() && ctx.gammas.empty()) {
    // Pure EDB clique; seal so later cliques never see phantom deltas.
    for (PredicateId id : ctx.relations) catalog_->relation(id).SealEpoch();
    return Status::OK();
  }

  // Round 0: full evaluation of every rule.
  GDLOG_RETURN_IF_ERROR(GuardCheck(FaultInjector::kEvalSaturate));
  for (const CompiledRule* r : ctx.plain) {
    EvalPlain(*r, CompiledScan::kNoOccurrence);
  }
  for (const CompiledRule* r : ctx.aggregate) EvalAggregate(*r);
  for (GammaState* g : ctx.gammas) {
    InsertCandidates(g, CompiledScan::kNoOccurrence);
  }

  // Alternate Q∞ and γ until neither makes progress.
  for (;;) {
    GDLOG_RETURN_IF_ERROR(Saturate(&ctx));
    if (ctx.has_next && ctx.stage_counter == 0) {
      // Initialize the stage counter past every stage value the exit
      // rules produced (e.g. prm(nil, a, 0, 0) puts 0 in play).
      int64_t max_stage = -1;
      for (PredicateId id : ctx.relations) {
        const Relation& rel = catalog_->relation(id);
        const PredIndex p = graph.Lookup(rel.name(), rel.arity());
        const int pos = analysis_->stage_arg[p];
        if (pos < 0) continue;
        for (RowId row = 0; row < rel.size(); ++row) {
          const Value v = rel.Row(row)[pos];
          if (v.is_int()) max_stage = std::max(max_stage, v.AsInt());
        }
      }
      ctx.stage_counter = max_stage + 1;
    }
    GDLOG_RETURN_IF_ERROR(GuardCheck(FaultInjector::kEvalGamma));
    if (!GammaPhase(&ctx)) break;
  }

  clique_span.AddArg("relations", static_cast<int64_t>(ctx.relations.size()));
  clique_span.AddArg("stages", ctx.stage_counter);
  for (PredicateId id : ctx.relations) catalog_->relation(id).SealEpoch();
  return Status::OK();
}

Status FixpointDriver::Saturate(CliqueCtx* ctx) {
  TraceSpan span(obs_.tracer, "Saturate", "fixpoint");
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  const uint64_t rounds_before = stats_.saturation_rounds;
  Status guard_status = Status::OK();
  for (;;) {
    bool any_delta = false;
    for (PredicateId id : ctx->relations) {
      if (catalog_->relation(id).AdvanceEpoch() > 0) any_delta = true;
    }
    if (!any_delta) break;
    ++stats_.saturation_rounds;
    guard_status = GuardCheck(FaultInjector::kEvalSaturate);
    if (!guard_status.ok()) break;
    const bool seminaive = options_.use_seminaive;
    for (const CompiledRule* r : ctx->plain) {
      if (!r->recursive) continue;
      if (seminaive) {
        for (uint32_t d = 0; d < r->num_clique_occurrences; ++d) {
          EvalPlain(*r, d);
        }
      } else {
        EvalPlain(*r, CompiledScan::kNoOccurrence);  // naive: full windows
      }
    }
    for (const CompiledRule* r : ctx->aggregate) {
      if (!r->recompute_full) continue;
      EvalAggregate(*r);
    }
    for (GammaState* g : ctx->gammas) {
      if (!g->rule->recursive) continue;
      if (seminaive) {
        for (uint32_t d = 0; d < g->rule->num_clique_occurrences; ++d) {
          InsertCandidates(g, d);
        }
      } else {
        InsertCandidates(g, CompiledScan::kNoOccurrence);
      }
    }
  }
  span.AddArg("rounds",
              static_cast<int64_t>(stats_.saturation_rounds - rounds_before));
  if (obs_enabled_) stats_.saturate_ns += ObsNowNs() - t0;
  return guard_status;
}

size_t FixpointDriver::DrainChoiceRule(GammaState* g) {
  // One firing per call — the paper's γ fires a single chosen instance
  // per iteration, alternating with saturation; interleaving lets
  // different tie-break seeds explore different stable models.
  const CompiledRule& rule = *g->rule;
  BindingFrame frame;
  while (auto cand = g->queue->Pop()) {
    RestoreSnapshot(rule, cand->snapshot, &frame);
    if (rule.has_extremum) {
      // Extrema filtering: pops arrive in cost order, so the first
      // candidate ever seen in a group carries the group's true
      // extremum; any later candidate with a different cost was never a
      // valid instance of the rule. The per-group record persists across
      // calls in the GammaState.
      Value cost, group;
      const bool ok =
          EvalTerm(rule.pool, rule.cost_term, frame, store_, &cost) &&
          EvalTerm(rule.pool, rule.group_term, frame, store_, &group);
      GDLOG_CHECK(ok);
      auto [it, fresh] = g->group_best.try_emplace(group, cost);
      if (!fresh && it->second != cost) {
        g->queue->MarkRedundant(*cand);
        continue;
      }
    }
    if (!choice_.Admissible(rule, frame)) {
      g->queue->MarkRedundant(*cand);
      continue;
    }
    choice_.Commit(rule, frame);
    RuleProfile& prof = profiles_[rule.rule_index];
    if (exec_.InsertHead(rule, frame)) {
      ++prof.tuples;
    } else {
      ++prof.dedup_hits;
    }
    g->queue->MarkFired(*cand);
    ++stats_.gamma_firings;
    ++prof.firings;
    if (obs_.tracer != nullptr && obs_.tracer->Sample()) {
      obs_.tracer->Instant("gamma.fire", "gamma",
                           {{"rule", rule.rule_index}});
    }
    return 1;
  }
  return 0;
}

bool FixpointDriver::TryFireNext(CliqueCtx* ctx, GammaState* g,
                                 const Candidate& cand) {
  const CompiledRule& rule = *g->rule;
  BindingFrame frame;
  RestoreSnapshot(rule, cand.snapshot, &frame);
  frame.Bind(rule.stage_slot, Value::Int(ctx->stage_counter));

  bool fired = false;
  std::vector<Value> head;
  exec_.Enumerate(rule, rule.post, CompiledScan::kNoOccurrence, &frame,
                  [&](BindingFrame& f) {
                    if (!choice_.Admissible(rule, f)) return true;
                    choice_.Commit(rule, f);
                    // Build now, insert after: the post plan may hold
                    // index iterators on the head relation.
                    exec_.BuildHead(rule, f, &head);
                    fired = true;
                    return false;  // one firing per γ
                  });
  if (fired) {
    RuleProfile& prof = profiles_[rule.rule_index];
    if (catalog_->relation(rule.head_pred).Insert(TupleView(head)).inserted) {
      ++prof.tuples;
    } else {
      ++prof.dedup_hits;
    }
    static const bool kTrace = std::getenv("GDLOG_TRACE") != nullptr;
    if (kTrace) {
      fprintf(stderr, "[gamma] stage=%ld head=%s %s\n", ctx->stage_counter,
              catalog_->relation(rule.head_pred).name().c_str(),
              TupleToString(*store_, TupleView(head)).c_str());
    }
    g->queue->MarkFired(cand);
    ++prof.firings;
    if (obs_.tracer != nullptr && obs_.tracer->Sample()) {
      obs_.tracer->Instant("stage.advance", "gamma",
                           {{"rule", rule.rule_index},
                            {"stage", ctx->stage_counter}});
    }
    ++ctx->stage_counter;
    ++stats_.gamma_firings;
    ++stats_.stages_assigned;
  } else {
    g->queue->MarkRedundant(cand);
  }
  return fired;
}

bool FixpointDriver::GammaPhase(CliqueCtx* ctx) {
  TraceSpan span(obs_.tracer, "GammaPhase", "fixpoint");
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  bool fired = false;
  // Non-next choice rules: one firing, then back to saturation.
  for (GammaState* g : ctx->gammas) {
    if (g->rule->is_next) continue;
    if (DrainChoiceRule(g) > 0) {
      fired = true;
      break;
    }
  }
  // Next rules: exactly one firing.
  if (!fired) {
    for (GammaState* g : ctx->gammas) {
      if (!g->rule->is_next) continue;
      while (auto cand = g->queue->Pop()) {
        if (TryFireNext(ctx, g, *cand)) {
          fired = true;
          break;
        }
      }
      if (fired) break;
    }
  }
  if (obs_enabled_) stats_.gamma_ns += ObsNowNs() - t0;
  return fired;
}

}  // namespace gdlog
