#include "eval/fixpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "eval/ir/ir.h"
#include "eval/vm/vm.h"

namespace gdlog {

FixpointDriver::FixpointDriver(Catalog* catalog, ValueStore* store,
                               const StageAnalysis* analysis,
                               std::vector<CompiledRule> rules,
                               EvalOptions options, ObsContext obs,
                               RunGuard* guard)
    : catalog_(catalog),
      store_(store),
      analysis_(analysis),
      rules_(std::move(rules)),
      options_(options),
      exec_(catalog, store),
      choice_(store),
      obs_(obs),
      obs_enabled_(obs.enabled()),
      guard_(guard) {
  uint32_t max_rule = 0;
  for (const CompiledRule& r : rules_) {
    max_rule = std::max(max_rule, r.rule_index);
  }
  profiles_.resize(rules_.empty() ? 0 : max_rule + 1);
  for (const CompiledRule& r : rules_) {
    RuleProfile& p = profiles_[r.rule_index];
    const Relation& head = catalog_->relation(r.head_pred);
    p.head = head.name() + "/" + std::to_string(head.arity());
    p.kind = r.is_next ? "next"
             : r.is_gamma ? "gamma"
             : r.has_extremum ? "aggregate"
                              : "plain";
    p.recursive = r.recursive;
    if (obs_.metrics != nullptr) {
      p.latency = obs_.metrics->GetHistogram(
          "rule.apply_ns", {{"rule", p.head + "#" +
                                         std::to_string(r.rule_index)}});
    }
  }
  for (const CompiledRule& r : rules_) {
    if (!r.is_gamma) continue;
    choice_.Register(r);
    auto order = CandidateQueue::Order::kFifo;
    if (r.has_extremum) {
      order = r.is_least ? CandidateQueue::Order::kMin
                         : CandidateQueue::Order::kMax;
    }
    // Congruence merging only makes sense under a cost order (keep the
    // cheaper congruent candidate). Rules without an extremum use the
    // paper's "simple set" queue — plain duplicate elimination — so that
    // which instance of a class fires stays a free (seedable) choice.
    const bool merge = r.merge_by_choice_keys &&
                       options_.use_merge_congruence && r.has_extremum;
    auto g = std::make_unique<GammaState>();
    g->rule = &r;
    g->merge = merge;
    g->queue = std::make_unique<CandidateQueue>(
        store_, order, merge, options_.choice_seed,
        /*linear_scan=*/!options_.use_priority_queue);
    if (obs_.tracer != nullptr) {
      g->queue->set_tracer(obs_.tracer,
                           "q" + std::to_string(r.gamma_index));
    }
    if (gamma_states_.size() <= static_cast<size_t>(r.gamma_index)) {
      gamma_states_.resize(r.gamma_index + 1);
    }
    gamma_states_[r.gamma_index] = std::move(g);
  }
  // EXPLAIN ANALYZE: per-goal cardinality counters, one row per rule,
  // with a shared lock-free fan-out histogram per goal. Sized (and thus
  // enabled in the executor) only when metrics are on.
  goal_stats_.resize(profiles_.size());
  if (obs_.metrics != nullptr) {
    for (const CompiledRule& r : rules_) {
      auto& row = goal_stats_[r.rule_index];
      row.resize(r.num_goals);
      for (uint32_t g = 0; g < r.num_goals; ++g) {
        row[g].fanout = obs_.metrics->GetHistogram(
            "goal.fanout",
            {{"rule", profiles_[r.rule_index].head + "#" +
                          std::to_string(r.rule_index)},
             {"goal", std::to_string(g)}});
      }
    }
    exec_.set_goal_stats(&goal_stats_);
    delta_rows_hist_ = obs_.metrics->GetHistogram("seminaive.delta_rows");
    pops_per_fire_hist_ =
        obs_.metrics->GetHistogram("choice.pops_per_fire");
    admissible_ = obs_.metrics->GetCounter("choice.admissible");
    inadmissible_ = obs_.metrics->GetCounter("choice.inadmissible");
  }
  if (options_.provenance) {
    prov_ = true;
    exec_.set_provenance_trail(&prov_trail_);
    audit_ = std::make_unique<ChoiceAuditTrail>();
  }
  stats_.threads_used = options_.threads == 0
                            ? ThreadPool::HardwareThreads()
                            : std::max(1u, options_.threads);
  if (stats_.threads_used > 1) {
    pool_ = std::make_unique<ThreadPool>(stats_.threads_used);
    safety_.resize(profiles_.size());
    for (const CompiledRule& r : rules_) {
      safety_[r.rule_index] = AnalyzeRule(r);
    }
    if (obs_.metrics != nullptr) {
      Histogram* wait = obs_.metrics->GetHistogram("pool.queue_wait_ns");
      pool_->set_queue_wait_callback(
          [wait](uint64_t ns) { wait->Record(ns); });
    }
  }
  if (options_.backend == EvalBackend::kVm) {
    // Lower once, after rules_ reached its final address (the IR and
    // the compiled program alias its plans), and charge the program to
    // the run's memory budget like any other evaluation structure.
    vm_ir_ = std::make_unique<ir::ProgramIR>(
        ir::LowerProgram(rules_, *catalog_));
    vm_code_ = std::make_unique<vm::ProgramCode>(
        vm::Compile(*vm_ir_, *catalog_));
    exec_.set_vm_program(vm_code_.get());
    if (guard_ != nullptr && guard_->budget() != nullptr) {
      guard_->budget()->Update(&vm_charged_, vm_code_->MemoryBytes());
    }
  }
  // Backend visibility (gdlog_vm_* in the Prometheus export): which
  // executor runs the rules, how many rules the bytecode backend
  // lowered, and why the rest fell back to the interpreter. Published
  // at setup — lowering already happened — so a live /metrics scrape
  // sees the series mid-run, not only after PublishMetrics.
  if (obs_.metrics != nullptr) {
    MetricsRegistry& m = *obs_.metrics;
    m.GetGauge("vm.backend",
               {{"backend",
                 options_.backend == EvalBackend::kVm ? "vm" : "interp"}})
        ->Set(1);
    if (const ir::LoweringReport* cov = vm_coverage(); cov != nullptr) {
      m.GetGauge("vm.rules_total")
          ->Set(static_cast<int64_t>(cov->rules_total));
      m.GetGauge("vm.rules_lowered")
          ->Set(static_cast<int64_t>(cov->rules_lowered));
      for (const ir::LoweringReport::Rejection& rej : cov->rejections) {
        m.GetCounter("vm.rules_rejected", {{"reason", rej.reason}})->Add(1);
      }
    }
  }
}

FixpointDriver::~FixpointDriver() = default;

const ir::LoweringReport* FixpointDriver::vm_coverage() const {
  return vm_ir_ == nullptr ? nullptr : &vm_ir_->report;
}

const std::vector<CompiledLiteral>& FixpointDriver::PlanOf(
    const CompiledRule& rule, uint32_t delta) {
  return (delta == CompiledScan::kNoOccurrence ||
          delta >= rule.delta_plans.size())
             ? rule.generator
             : rule.delta_plans[delta];
}

Status FixpointDriver::Run() {
  Status st = Status::OK();
  for (uint32_t scc : analysis_->clique_order) {
    const CliqueStageInfo& cl = analysis_->cliques[scc];
    if (cl.cls == CliqueClass::kRejected) {
      st = Status::AnalysisError("clique rejected: " + cl.diagnostic);
      break;
    }
    st = EvalClique(scc);
    if (!st.ok()) break;
  }
  // Fill statistics even on a bounded stop, so the partial evaluation is
  // fully reportable (RunReport, metrics, shell .stats).
  exec_stats_view_ = exec_.stats();
  stats_.exec = exec_.stats();
  stats_.queues = AggregateQueueStats();
  if (guard_ != nullptr) {
    stats_.termination = guard_->reason();
    stats_.guard_checks = guard_->checks();
    if (guard_->budget() != nullptr) {
      stats_.peak_memory_bytes = guard_->budget()->peak();
    }
  }
  if (obs_.metrics != nullptr) PublishMetrics();
  return st;
}

Status FixpointDriver::GuardCheck(std::string_view probe) {
  if (guard_ == nullptr) return Status::OK();
  GuardCounters c;
  c.tuples = exec_.stats().inserts;
  c.stages = stats_.stages_assigned;
  c.iterations = stats_.saturation_rounds;
  const Status st = guard_->Check(c, probe);
  if (obs_.recorder != nullptr) {
    // Checks are sampled (they run per round and per γ step); trips are
    // always recorded, once, with the latched reason.
    if ((++guard_event_tick_ & 15u) == 0) {
      obs_.recorder->Record(FlightEventKind::kGuardCheck,
                            static_cast<int64_t>(guard_->checks()),
                            static_cast<int64_t>(c.tuples));
    }
    if (!st.ok() && !trip_recorded_) {
      trip_recorded_ = true;
      if (guard_->reason() == TerminationReason::kFault) {
        obs_.recorder->Record(FlightEventKind::kFaultInjected, 0, 0);
      }
      obs_.recorder->Record(FlightEventKind::kGuardTrip,
                            static_cast<int64_t>(guard_->reason()),
                            static_cast<int64_t>(guard_->checks()));
    }
  }
  return st;
}

uint64_t FixpointDriver::ObsNowNs() const {
  if (obs_.tracer != nullptr) return obs_.tracer->NowNs();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void FixpointDriver::RecordApply(RuleProfile* prof, uint64_t start_ns,
                                 const char* cat) {
  const uint64_t end_ns = ObsNowNs();
  const uint64_t dur = end_ns - start_ns;
  prof->wall_ns += dur;
  if (prof->latency != nullptr) {
    prof->latency->Observe(static_cast<double>(dur));
  }
  if (obs_.tracer != nullptr && obs_.tracer->Sample()) {
    obs_.tracer->Complete(prof->head, cat, start_ns, end_ns);
  }
}

void FixpointDriver::AddAuditEntry(ChoiceAuditEntry entry) {
  audit_->Add(std::move(entry));
  if (guard_ != nullptr && guard_->budget() != nullptr) {
    guard_->budget()->Update(&audit_charged_, audit_->ApproxBytes());
  }
}

void FixpointDriver::PublishProgress(ProgressKind kind, uint64_t delta_rows) {
  if (obs_.progress == nullptr) return;
  ProgressEvent e;
  e.kind = kind;
  e.round = stats_.saturation_rounds;
  e.delta_rows = delta_rows;
  e.tuples = exec_.stats().inserts;
  e.gamma_firings = stats_.gamma_firings;
  e.stages = stats_.stages_assigned;
  if (guard_ != nullptr && guard_->budget() != nullptr) {
    e.memory_bytes = guard_->budget()->used();
  }
  obs_.progress->Record(e);
}

void FixpointDriver::PublishMetrics() {
  MetricsRegistry& m = *obs_.metrics;
  m.GetCounter("fixpoint.saturation_rounds")->Add(stats_.saturation_rounds);
  m.GetCounter("fixpoint.gamma_firings")->Add(stats_.gamma_firings);
  m.GetCounter("fixpoint.stages_assigned")->Add(stats_.stages_assigned);
  m.GetCounter("exec.solutions")->Add(exec_.stats().solutions);
  m.GetCounter("exec.inserts")->Add(exec_.stats().inserts);
  m.GetCounter("exec.scan_rows")->Add(exec_.stats().scan_rows);
  m.GetCounter("guard.checks")->Add(stats_.guard_checks);
  // memory.tracked_peak_bytes is published by Engine::Run from
  // MemoryBudget::peak() — the single source of truth — so it is set
  // even when a bad_alloc bypasses this function.
  for (const RuleProfile& p : profiles_) {
    if (p.head.empty()) continue;
    // Label by head + index so two rules with the same head stay apart.
    const size_t idx = static_cast<size_t>(&p - profiles_.data());
    const MetricLabels labels{{"rule", p.head + "#" + std::to_string(idx)}};
    m.GetCounter("rule.invocations", labels)->Add(p.invocations);
    m.GetCounter("rule.tuples", labels)->Add(p.tuples);
    m.GetCounter("rule.dedup_hits", labels)->Add(p.dedup_hits);
    if (p.firings > 0) m.GetCounter("rule.firings", labels)->Add(p.firings);
    m.GetCounter("rule.wall_ns", labels)->Add(p.wall_ns);
  }
  for (size_t i = 0; i < gamma_states_.size(); ++i) {
    if (!gamma_states_[i]) continue;
    const CandidateQueueStats& s = gamma_states_[i]->queue->stats();
    const MetricLabels labels{{"gamma", std::to_string(i)}};
    m.GetCounter("queue.inserted", labels)->Add(s.inserted);
    m.GetCounter("queue.merged", labels)->Add(s.merged);
    m.GetCounter("queue.redundant", labels)->Add(s.redundant);
    m.GetCounter("queue.fired", labels)->Add(s.fired);
    m.GetGauge("queue.max_queue", labels)
        ->SetMax(static_cast<int64_t>(s.max_queue));
  }
  if (audit_ != nullptr) {
    // Choice-audit series (gdlog_choice_* in the Prometheus export).
    Histogram* cand_hist = m.GetHistogram("choice.candidate_set");
    Histogram* tie_hist = m.GetHistogram("choice.tie_count");
    uint64_t rej_ext = 0, rej_fd = 0, rej_post = 0;
    for (const ChoiceAuditEntry& e : audit_->entries()) {
      cand_hist->Record(e.candidate_set);
      tie_hist->Record(e.ties);
      rej_ext += e.rejected_extremum;
      rej_fd += e.rejected_fd;
      rej_post += e.rejected_post;
    }
    m.GetCounter("choice.audit_firings")->Add(audit_->entries().size());
    m.GetCounter("choice.audit_rejections", {{"reason", "extremum"}})
        ->Add(rej_ext);
    m.GetCounter("choice.audit_rejections", {{"reason", "fd"}})->Add(rej_fd);
    m.GetCounter("choice.audit_rejections", {{"reason", "post"}})
        ->Add(rej_post);
  }
}

CandidateQueueStats FixpointDriver::AggregateQueueStats() const {
  CandidateQueueStats total;
  for (const auto& g : gamma_states_) {
    if (!g) continue;
    const CandidateQueueStats& s = g->queue->stats();
    total.inserted += s.inserted;
    total.merged += s.merged;
    total.redundant += s.redundant;
    total.fired += s.fired;
    total.max_queue = std::max(total.max_queue, s.max_queue);
  }
  return total;
}

const CandidateQueueStats* FixpointDriver::QueueStats(int gamma_index) const {
  if (gamma_index < 0 ||
      static_cast<size_t>(gamma_index) >= gamma_states_.size() ||
      !gamma_states_[gamma_index]) {
    return nullptr;
  }
  return &gamma_states_[gamma_index]->queue->stats();
}

void FixpointDriver::RestoreSnapshot(const CompiledRule& rule,
                                     const std::vector<Value>& snapshot,
                                     BindingFrame* frame) {
  frame->Reset(rule.num_slots);
  GDLOG_CHECK_EQ(snapshot.size(), rule.snapshot_slots.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    frame->Bind(rule.snapshot_slots[i], snapshot[i]);
  }
}

void FixpointDriver::EvalPlain(const CompiledRule& rule,
                               uint32_t delta_occurrence) {
  static const bool kTrace = std::getenv("GDLOG_TRACE") != nullptr;
  const uint64_t rows_before = kTrace ? exec_.stats().scan_rows : 0;
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  size_t attempted = 0;
  const size_t n = exec_.ApplyRule(rule, delta_occurrence, &attempted);
  prof.tuples += n;
  prof.dedup_hits += attempted - n;
  if (obs_enabled_) RecordApply(&prof, t0, "rule");
  if (kTrace) {
    const Relation& head = catalog_->relation(rule.head_pred);
    fprintf(stderr,
            "[plain] rule#%u head=%s d=%d inserted=%zu size=%zu rows=%llu\n",
            rule.rule_index, head.name().c_str(),
            delta_occurrence == CompiledScan::kNoOccurrence
                ? -1
                : static_cast<int>(delta_occurrence),
            n, head.size(),
            static_cast<unsigned long long>(exec_.stats().scan_rows -
                                            rows_before));
  }
}

void FixpointDriver::EvalAggregate(const CompiledRule& rule) {
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  // Enumerate the full body; keep, per group value, the extremum cost and
  // every head tuple achieving it (ties all survive, as least/most keep
  // every binding with no strictly better one).
  struct Group {
    Value best;
    std::vector<std::vector<Value>> heads;
    // Premises per head, kept parallel to `heads` (provenance only).
    std::vector<std::vector<ProvPremise>> provs;
  };
  std::unordered_map<Value, Group, ValueHash> groups;
  BindingFrame frame(rule.num_slots);
  exec_.Enumerate(rule, rule.generator, CompiledScan::kNoOccurrence, &frame,
                  [&](BindingFrame& f) {
                    Value cost, group;
                    if (!EvalTerm(rule.pool, rule.cost_term, f, store_,
                                  &cost) ||
                        !EvalTerm(rule.pool, rule.group_term, f, store_,
                                  &group)) {
                      return true;  // untyped binding: contributes nothing
                    }
                    std::vector<Value> head;
                    if (!exec_.BuildHead(rule, f, &head)) return true;
                    auto [it, fresh] = groups.try_emplace(group);
                    Group& g = it->second;
                    const int c =
                        fresh ? -1 : store_->Compare(cost, g.best);
                    const bool better =
                        fresh || (rule.is_least ? c < 0 : c > 0);
                    if (better) {
                      g.best = cost;
                      g.heads.clear();
                      g.provs.clear();
                      g.heads.push_back(std::move(head));
                      if (prov_) g.provs.push_back(prov_trail_);
                    } else if (c == 0) {
                      g.heads.push_back(std::move(head));
                      if (prov_) g.provs.push_back(prov_trail_);
                    }
                    return true;
                  });
  Relation& head_rel = catalog_->relation(rule.head_pred);
  for (auto& [group, g] : groups) {
    for (size_t i = 0; i < g.heads.size(); ++i) {
      const auto res = head_rel.Insert(TupleView(g.heads[i]));
      if (res.inserted) {
        ++exec_.stats().inserts;
        ++prof.tuples;
        if (prov_) {
          head_rel.Annotate(res.row, rule.rule_index, g.provs[i].data(),
                            g.provs[i].size());
        }
      } else {
        ++prof.dedup_hits;
      }
    }
  }
  if (obs_enabled_) RecordApply(&prof, t0, "rule");
}

void FixpointDriver::InsertCandidates(GammaState* g,
                                      uint32_t delta_occurrence) {
  const CompiledRule& rule = *g->rule;
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  const uint64_t pushed_before = g->queue->stats().inserted;
  BindingFrame frame(rule.num_slots);
  const std::vector<CompiledLiteral>& plan =
      (delta_occurrence == CompiledScan::kNoOccurrence ||
       delta_occurrence >= rule.delta_plans.size())
          ? rule.generator
          : rule.delta_plans[delta_occurrence];
  exec_.Enumerate(rule, plan, delta_occurrence, &frame,
                  [&](BindingFrame& f) {
                    Value cost = Value::Int(0);
                    if (rule.has_extremum &&
                        !EvalTerm(rule.pool, rule.cost_term, f, store_,
                                  &cost)) {
                      return true;
                    }
                    std::vector<Value> snapshot;
                    snapshot.reserve(rule.snapshot_slots.size());
                    for (uint32_t s : rule.snapshot_slots) {
                      snapshot.push_back(f.Get(s));
                    }
                    Value key;
                    if (g->merge) {
                      std::vector<Value> kv;
                      kv.reserve(rule.congruence_slots.size());
                      for (uint32_t s : rule.congruence_slots) {
                        kv.push_back(f.Get(s));
                      }
                      key = store_->MakeTuple(kv);
                    } else {
                      key = store_->MakeTuple(snapshot);
                    }
                    g->queue->Push(cost, key, std::move(snapshot),
                                   prov_ ? prov_trail_
                                         : std::vector<ProvPremise>{});
                    return true;
                  });
  prof.candidates += g->queue->stats().inserted - pushed_before;
  if (obs_enabled_) RecordApply(&prof, t0, "rule");
}

void FixpointDriver::EvalSerial(const App& app) {
  switch (app.kind) {
    case App::Kind::kPlain:
      EvalPlain(*app.rule, app.delta);
      break;
    case App::Kind::kAggregate:
      EvalAggregate(*app.rule);
      break;
    case App::Kind::kGamma:
      InsertCandidates(app.g, app.delta);
      break;
  }
}

void FixpointDriver::RunApps(const std::vector<App>& apps) {
  if (pool_ == nullptr) {
    for (const App& a : apps) EvalSerial(a);
    return;
  }
  // Split the serial application sequence into batches: an application
  // joins the current batch only when nothing it reads through a full
  // (growing) window was written by an earlier batch member, so deferring
  // its enumeration to batch start cannot change what it sees. Gamma
  // applications write no relations (they only push candidates).
  size_t i = 0;
  std::vector<PredicateId> reads;
  std::unordered_set<PredicateId> writes;
  while (i < apps.size()) {
    writes.clear();
    if (apps[i].kind != App::Kind::kGamma) {
      writes.insert(apps[i].rule->head_pred);
    }
    size_t j = i + 1;
    for (; j < apps.size(); ++j) {
      const App& a = apps[j];
      reads.clear();
      CollectFullWindowReads(PlanOf(*a.rule, a.delta), a.delta, &reads);
      bool conflict = false;
      for (PredicateId p : reads) {
        if (writes.count(p) > 0) {
          conflict = true;
          break;
        }
      }
      if (conflict) break;
      if (a.kind != App::Kind::kGamma) writes.insert(a.rule->head_pred);
    }
    RunBatch(apps.data() + i, j - i);
    i = j;
  }
}

void FixpointDriver::RunWorkerTask(WorkerTask* task, const App& app) {
  const CompiledRule& rule = *app.rule;
  if (obs_enabled_) task->t0_ns = ObsNowNs();
  PlanExecutor exec(catalog_, store_);
  if (vm_code_ != nullptr) exec.set_vm_program(vm_code_.get());
  if (guard_ != nullptr) exec.set_cancel_token(guard_->cancel());
  if (task->ranged) {
    exec.set_scan_range(&(*task->plan)[0].scan, task->begin, task->end);
  }
  // Task-local goal counters (merged serially in MergeApp); the fan-out
  // histograms are lock-free and shared with the driver's table, so
  // workers record into them directly.
  std::vector<std::vector<GoalStats>> local_goals;
  if (!goal_stats_[rule.rule_index].empty()) {
    local_goals.resize(rule.rule_index + 1);
    auto& row = local_goals[rule.rule_index];
    row.resize(rule.num_goals);
    for (uint32_t g = 0; g < rule.num_goals; ++g) {
      row[g].fanout = goal_stats_[rule.rule_index][g].fanout;
    }
    exec.set_goal_stats(&local_goals);
  }
  // Task-local premise trail; per-solution contents are appended to the
  // task's flat premise buffer, mirroring the value capture.
  std::vector<ProvPremise> trail;
  if (prov_) exec.set_provenance_trail(&trail);
  const std::vector<uint32_t>& capture = task->safety->capture;
  BindingFrame frame(rule.num_slots);
  exec.Enumerate(rule, *task->plan, app.delta, &frame,
                 [&](BindingFrame& f) {
                   ++task->emitted;
                   for (uint32_t s : capture) {
                     task->values.push_back(f.Get(s));
                   }
                   if (prov_) {
                     task->premises.insert(task->premises.end(),
                                           trail.begin(), trail.end());
                   }
                   return true;
                 });
  task->solutions = exec.stats().solutions;
  task->scan_rows = exec.stats().scan_rows;
  if (!local_goals.empty()) {
    task->goal_stats = std::move(local_goals[rule.rule_index]);
  }
  if (guard_ != nullptr && guard_->budget() != nullptr) {
    guard_->budget()->Update(
        &task->charged,
        task->values.capacity() * sizeof(Value) +
            task->premises.capacity() * sizeof(ProvPremise));
  }
  if (obs_enabled_) task->t1_ns = ObsNowNs();
}

void FixpointDriver::RunBatch(const App* apps, size_t count) {
  std::vector<WorkerTask> tasks;
  std::vector<int> first_task(count, -1);  // -1 = serial at merge position
  std::vector<int> task_count(count, 0);
  for (size_t a = 0; a < count; ++a) {
    const App& app = apps[a];
    const CompiledRule& rule = *app.rule;
    const RuleParallelSafety& safety = safety_[rule.rule_index];
    const std::vector<CompiledLiteral>& plan = PlanOf(rule, app.delta);
    if (plan.empty() ||
        !safety.PlanSafe(app.delta, rule.delta_plans.size())) {
      continue;
    }
    first_task[a] = static_cast<int>(tasks.size());
    // Partition the leading scan across workers when it is an unindexed
    // full scan over enough rows: each range enumerates rows in
    // ascending order, so the concatenation of the range buffers equals
    // the serial enumeration. Indexed probes enumerate in chain order
    // and stay unpartitioned.
    uint32_t parts = 1;
    RowId begin = 0, end = 0;
    bool ranged = false;
    const CompiledLiteral& lead = plan[0];
    if (lead.kind == CompiledLiteral::Kind::kScan && !lead.scan.negated &&
        lead.scan.bound_cols.empty()) {
      const auto window = PlanExecutor::ScanWindow(
          lead.scan, catalog_->relation(lead.scan.pred), app.delta);
      begin = window.first;
      end = window.second;
      const RowId rows = end > begin ? end - begin : 0;
      if (rows >= std::max(2u, options_.parallel_min_rows)) {
        parts = std::min<uint32_t>(stats_.threads_used, rows);
        ranged = true;
      }
    }
    const uint64_t rows = end - begin;
    const uint64_t chunk = parts > 1 ? (rows + parts - 1) / parts : rows;
    for (uint32_t p = 0; p < parts; ++p) {
      WorkerTask t;
      t.app = a;
      t.plan = &plan;
      t.safety = &safety;
      if (ranged) {
        t.ranged = true;
        t.begin = static_cast<RowId>(begin + p * chunk);
        t.end = static_cast<RowId>(
            std::min<uint64_t>(begin + (p + 1) * chunk, end));
      }
      tasks.push_back(std::move(t));
    }
    task_count[a] = static_cast<int>(tasks.size()) - first_task[a];
  }

  if (!tasks.empty()) {
    ++stats_.parallel_batches;
    stats_.parallel_tasks += tasks.size();
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(FlightEventKind::kBatchStart,
                            static_cast<int64_t>(count),
                            static_cast<int64_t>(tasks.size()));
    }
    pool_->Run(tasks.size(), [&](size_t t) {
      RunWorkerTask(&tasks[t], apps[tasks[t].app]);
    });
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(FlightEventKind::kBatchEnd,
                            static_cast<int64_t>(count),
                            static_cast<int64_t>(tasks.size()));
    }
  }

  // Merge in serial application order; applications without tasks run
  // serially right here, at exactly their serial position.
  for (size_t a = 0; a < count; ++a) {
    if (first_task[a] < 0) {
      ++stats_.serial_apps;
      EvalSerial(apps[a]);
    } else {
      ++stats_.parallel_apps;
      MergeApp(apps[a], tasks.data() + first_task[a],
               static_cast<size_t>(task_count[a]));
    }
  }
}

void FixpointDriver::MergeApp(const App& app, WorkerTask* tasks,
                              size_t count) {
  const CompiledRule& rule = *app.rule;
  RuleProfile& prof = profiles_[rule.rule_index];
  ++prof.invocations;
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  uint64_t worker_ns = 0;

  const std::vector<uint32_t>& capture = safety_[rule.rule_index].capture;
  const size_t width = capture.size();
  // Premises per solution: one per positive top-level scan of the plan
  // (fixed for a given plan — see PlanExecutor::set_provenance_trail).
  size_t prov_width = 0;
  if (prov_ && count > 0) {
    for (const CompiledLiteral& lit : *tasks[0].plan) {
      if (lit.kind == CompiledLiteral::Kind::kScan && !lit.scan.negated) {
        ++prov_width;
      }
    }
  }
  BindingFrame frame(rule.num_slots);

  // kAggregate fold state (mirrors EvalAggregate exactly).
  struct Group {
    Value best;
    std::vector<std::vector<Value>> heads;
    std::vector<std::vector<ProvPremise>> provs;
  };
  std::unordered_map<Value, Group, ValueHash> groups;

  GammaState* g = app.g;
  const uint64_t pushed_before =
      app.kind == App::Kind::kGamma ? g->queue->stats().inserted : 0;
  size_t attempted = 0;
  size_t inserted = 0;
  std::vector<Value> head;

  for (size_t ti = 0; ti < count; ++ti) {
    WorkerTask& task = tasks[ti];
    exec_.stats().solutions += task.solutions;
    exec_.stats().scan_rows += task.scan_rows;
    if (!task.goal_stats.empty()) {
      auto& row = goal_stats_[rule.rule_index];
      for (size_t gi = 0; gi < task.goal_stats.size() && gi < row.size();
           ++gi) {
        row[gi].probes += task.goal_stats[gi].probes;
        row[gi].rows += task.goal_stats[gi].rows;
        row[gi].matches += task.goal_stats[gi].matches;
      }
    }
    worker_ns += task.t1_ns - task.t0_ns;
    const Value* vals = task.values.data();
    const ProvPremise* prem = task.premises.data();
    for (uint64_t s = 0; s < task.emitted;
         ++s, vals += width, prem += prov_width) {
      const size_t mark = frame.Mark();
      for (size_t k = 0; k < width; ++k) frame.Bind(capture[k], vals[k]);
      switch (app.kind) {
        case App::Kind::kPlain: {
          if (exec_.BuildHead(rule, frame, &head)) {
            ++attempted;
            Relation& head_rel = catalog_->relation(rule.head_pred);
            const auto res = head_rel.Insert(TupleView(head));
            if (res.inserted) {
              ++inserted;
              ++exec_.stats().inserts;
              if (prov_) {
                head_rel.Annotate(res.row, rule.rule_index, prem, prov_width);
              }
            }
          }
          break;
        }
        case App::Kind::kAggregate: {
          Value cost, group;
          if (!EvalTerm(rule.pool, rule.cost_term, frame, store_, &cost) ||
              !EvalTerm(rule.pool, rule.group_term, frame, store_, &group)) {
            break;  // untyped binding: contributes nothing
          }
          std::vector<Value> agg_head;
          if (!exec_.BuildHead(rule, frame, &agg_head)) break;
          auto [it, fresh] = groups.try_emplace(group);
          Group& grp = it->second;
          const int c = fresh ? -1 : store_->Compare(cost, grp.best);
          const bool better = fresh || (rule.is_least ? c < 0 : c > 0);
          if (better) {
            grp.best = cost;
            grp.heads.clear();
            grp.provs.clear();
            grp.heads.push_back(std::move(agg_head));
            if (prov_) grp.provs.emplace_back(prem, prem + prov_width);
          } else if (c == 0) {
            grp.heads.push_back(std::move(agg_head));
            if (prov_) grp.provs.emplace_back(prem, prem + prov_width);
          }
          break;
        }
        case App::Kind::kGamma: {
          Value cost = Value::Int(0);
          if (rule.has_extremum &&
              !EvalTerm(rule.pool, rule.cost_term, frame, store_, &cost)) {
            break;
          }
          std::vector<Value> snapshot;
          snapshot.reserve(rule.snapshot_slots.size());
          for (uint32_t slot : rule.snapshot_slots) {
            snapshot.push_back(frame.Get(slot));
          }
          Value key;
          if (g->merge) {
            std::vector<Value> kv;
            kv.reserve(rule.congruence_slots.size());
            for (uint32_t slot : rule.congruence_slots) {
              kv.push_back(frame.Get(slot));
            }
            key = store_->MakeTuple(kv);
          } else {
            key = store_->MakeTuple(snapshot);
          }
          g->queue->Push(cost, key, std::move(snapshot),
                         prov_ ? std::vector<ProvPremise>(prem,
                                                          prem + prov_width)
                               : std::vector<ProvPremise>{});
          break;
        }
      }
      frame.UndoTo(mark);
    }
    if (guard_ != nullptr && guard_->budget() != nullptr) {
      guard_->budget()->Update(&task.charged, 0);
    }
    std::vector<Value>().swap(task.values);
    std::vector<ProvPremise>().swap(task.premises);
  }

  switch (app.kind) {
    case App::Kind::kPlain:
      prof.tuples += inserted;
      prof.dedup_hits += attempted - inserted;
      break;
    case App::Kind::kAggregate: {
      Relation& head_rel = catalog_->relation(rule.head_pred);
      for (auto& [group, grp] : groups) {
        for (size_t i = 0; i < grp.heads.size(); ++i) {
          const auto res = head_rel.Insert(TupleView(grp.heads[i]));
          if (res.inserted) {
            ++exec_.stats().inserts;
            ++prof.tuples;
            if (prov_) {
              head_rel.Annotate(res.row, rule.rule_index,
                                grp.provs[i].data(), grp.provs[i].size());
            }
          } else {
            ++prof.dedup_hits;
          }
        }
      }
      break;
    }
    case App::Kind::kGamma:
      prof.candidates += g->queue->stats().inserted - pushed_before;
      break;
  }

  if (obs_enabled_) {
    prof.wall_ns += worker_ns;
    if (obs_.tracer != nullptr) {
      for (size_t ti = 0; ti < count; ++ti) {
        if (tasks[ti].t1_ns > tasks[ti].t0_ns && obs_.tracer->Sample()) {
          obs_.tracer->Complete(prof.head + ".worker#" + std::to_string(ti),
                                "parallel", tasks[ti].t0_ns, tasks[ti].t1_ns);
        }
      }
    }
    RecordApply(&prof, t0, "rule");
  }
}

Status FixpointDriver::EvalClique(uint32_t scc) {
  const CliqueStageInfo& cl = analysis_->cliques[scc];
  const DependencyGraph& graph = *analysis_->graph;

  TraceSpan clique_span(obs_.tracer, "clique#" + std::to_string(scc),
                        "fixpoint");
  CliqueCtx ctx;
  for (PredIndex p : cl.members) {
    const PredicateId id = catalog_->Lookup(graph.name(p), graph.arity(p));
    if (id != kNoPredicate) ctx.relations.push_back(id);
  }
  for (const CompiledRule& r : rules_) {
    if (graph.scc_of(graph.Lookup(
            catalog_->relation(r.head_pred).name(),
            r.head_arity)) != scc) {
      continue;
    }
    if (r.is_gamma) {
      GammaState* g = gamma_states_[r.gamma_index].get();
      ctx.gammas.push_back(g);
      if (r.is_next) ctx.has_next = true;
    } else if (r.has_extremum) {
      ctx.aggregate.push_back(&r);
    } else {
      ctx.plain.push_back(&r);
    }
  }
  if (ctx.plain.empty() && ctx.aggregate.empty() && ctx.gammas.empty()) {
    // Pure EDB clique; seal so later cliques never see phantom deltas.
    for (PredicateId id : ctx.relations) catalog_->relation(id).SealEpoch();
    return Status::OK();
  }

  // Round 0: full evaluation of every rule.
  GDLOG_RETURN_IF_ERROR(GuardCheck(FaultInjector::kEvalSaturate));
  std::vector<App> apps;
  for (const CompiledRule* r : ctx.plain) {
    apps.push_back({App::Kind::kPlain, r, nullptr, CompiledScan::kNoOccurrence});
  }
  for (const CompiledRule* r : ctx.aggregate) {
    apps.push_back({App::Kind::kAggregate, r, nullptr,
                    CompiledScan::kNoOccurrence});
  }
  for (GammaState* g : ctx.gammas) {
    apps.push_back({App::Kind::kGamma, g->rule, g,
                    CompiledScan::kNoOccurrence});
  }
  RunApps(apps);

  // Alternate Q∞ and γ until neither makes progress.
  for (;;) {
    GDLOG_RETURN_IF_ERROR(Saturate(&ctx));
    if (ctx.has_next && ctx.stage_counter == 0) {
      // Initialize the stage counter past every stage value the exit
      // rules produced (e.g. prm(nil, a, 0, 0) puts 0 in play).
      int64_t max_stage = -1;
      for (PredicateId id : ctx.relations) {
        const Relation& rel = catalog_->relation(id);
        const PredIndex p = graph.Lookup(rel.name(), rel.arity());
        const int pos = analysis_->stage_arg[p];
        if (pos < 0) continue;
        for (RowId row = 0; row < rel.size(); ++row) {
          const Value v = rel.Row(row)[pos];
          if (v.is_int()) max_stage = std::max(max_stage, v.AsInt());
        }
      }
      ctx.stage_counter = max_stage + 1;
    }
    GDLOG_RETURN_IF_ERROR(GuardCheck(FaultInjector::kEvalGamma));
    if (!GammaPhase(&ctx)) break;
  }

  clique_span.AddArg("relations", static_cast<int64_t>(ctx.relations.size()));
  clique_span.AddArg("stages", ctx.stage_counter);
  for (PredicateId id : ctx.relations) catalog_->relation(id).SealEpoch();
  return Status::OK();
}

Status FixpointDriver::Saturate(CliqueCtx* ctx) {
  TraceSpan span(obs_.tracer, "Saturate", "fixpoint");
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  const uint64_t rounds_before = stats_.saturation_rounds;
  Status guard_status = Status::OK();
  std::vector<App> apps;
  for (;;) {
    bool any_delta = false;
    uint64_t delta_total = 0;
    for (PredicateId id : ctx->relations) {
      const size_t d = catalog_->relation(id).AdvanceEpoch();
      if (d > 0) {
        any_delta = true;
        delta_total += d;
        if (delta_rows_hist_ != nullptr) {
          delta_rows_hist_->Record(static_cast<uint64_t>(d));
        }
      }
    }
    if (!any_delta) break;
    ++stats_.saturation_rounds;
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(FlightEventKind::kRoundStart,
                            static_cast<int64_t>(stats_.saturation_rounds),
                            static_cast<int64_t>(delta_total));
    }
    guard_status = GuardCheck(FaultInjector::kEvalSaturate);
    if (!guard_status.ok()) break;
    const bool seminaive = options_.use_seminaive;
    apps.clear();
    for (const CompiledRule* r : ctx->plain) {
      if (!r->recursive) continue;
      if (seminaive) {
        for (uint32_t d = 0; d < r->num_clique_occurrences; ++d) {
          apps.push_back({App::Kind::kPlain, r, nullptr, d});
        }
      } else {
        // Naive ablation: full windows every round.
        apps.push_back({App::Kind::kPlain, r, nullptr,
                        CompiledScan::kNoOccurrence});
      }
    }
    for (const CompiledRule* r : ctx->aggregate) {
      if (!r->recompute_full) continue;
      apps.push_back({App::Kind::kAggregate, r, nullptr,
                      CompiledScan::kNoOccurrence});
    }
    for (GammaState* g : ctx->gammas) {
      if (!g->rule->recursive) continue;
      if (seminaive) {
        for (uint32_t d = 0; d < g->rule->num_clique_occurrences; ++d) {
          apps.push_back({App::Kind::kGamma, g->rule, g, d});
        }
      } else {
        apps.push_back({App::Kind::kGamma, g->rule, g,
                        CompiledScan::kNoOccurrence});
      }
    }
    const uint64_t inserts_before = exec_.stats().inserts;
    RunApps(apps);
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(
          FlightEventKind::kRoundEnd,
          static_cast<int64_t>(stats_.saturation_rounds),
          static_cast<int64_t>(exec_.stats().inserts - inserts_before));
    }
    PublishProgress(ProgressKind::kRound, delta_total);
  }
  span.AddArg("rounds",
              static_cast<int64_t>(stats_.saturation_rounds - rounds_before));
  if (obs_enabled_) stats_.saturate_ns += ObsNowNs() - t0;
  return guard_status;
}

size_t FixpointDriver::DrainChoiceRule(GammaState* g) {
  // One firing per call — the paper's γ fires a single chosen instance
  // per iteration, alternating with saturation; interleaving lets
  // different tie-break seeds explore different stable models.
  const CompiledRule& rule = *g->rule;
  BindingFrame frame;
  uint64_t pops = 0;
  uint64_t rej_ext = 0, rej_fd = 0, rej_post = 0;
  const uint64_t live_before =
      audit_ != nullptr ? g->queue->LiveSize() : 0;
  while (auto cand = g->queue->Pop()) {
    ++pops;
    RestoreSnapshot(rule, cand->snapshot, &frame);
    if (rule.has_extremum) {
      // Extrema filtering: pops arrive in cost order, so the first
      // candidate ever seen in a group carries the group's true
      // extremum; any later candidate with a different cost was never a
      // valid instance of the rule. The per-group record persists across
      // calls in the GammaState.
      Value cost, group;
      // Cost evaluated at enqueue, so it evaluates again here; the
      // group term is first evaluated on this path and can fail on an
      // untyped binding — such a candidate was never a valid instance.
      const bool ok =
          EvalTerm(rule.pool, rule.cost_term, frame, store_, &cost) &&
          EvalTerm(rule.pool, rule.group_term, frame, store_, &group);
      if (!ok) {
        ++rej_post;
        g->queue->MarkRedundant(*cand);
        continue;
      }
      auto [it, fresh] = g->group_best.try_emplace(group, cost);
      if (!fresh && it->second != cost) {
        ++rej_ext;
        if (obs_.recorder != nullptr) {
          obs_.recorder->Record(
              FlightEventKind::kChoiceReject,
              static_cast<int64_t>(rule.rule_index),
              static_cast<int64_t>(g->queue->LiveSize()));
        }
        g->queue->MarkRedundant(*cand);
        continue;
      }
    }
    if (!choice_.Admissible(rule, frame)) {
      if (inadmissible_ != nullptr) inadmissible_->Add(1);
      ++rej_fd;
      if (obs_.recorder != nullptr) {
        obs_.recorder->Record(FlightEventKind::kChoiceReject,
                              static_cast<int64_t>(rule.rule_index),
                              static_cast<int64_t>(g->queue->LiveSize()));
      }
      g->queue->MarkRedundant(*cand);
      continue;
    }
    if (admissible_ != nullptr) admissible_->Add(1);
    // Build the head before committing the FD: a candidate whose head
    // term fails to evaluate (untyped binding, e.g. arithmetic over a
    // symbol) derives nothing and must not burn the choice.
    std::vector<Value> head;
    if (!exec_.BuildHead(rule, frame, &head)) {
      ++rej_post;
      g->queue->MarkRedundant(*cand);
      continue;
    }
    choice_.Commit(rule, frame);
    RuleProfile& prof = profiles_[rule.rule_index];
    Relation& head_rel = catalog_->relation(rule.head_pred);
    const auto res = head_rel.Insert(TupleView(head));
    if (res.inserted) {
      ++exec_.stats().inserts;
      ++prof.tuples;
      if (prov_) {
        head_rel.Annotate(res.row, rule.rule_index, cand->premises.data(),
                          cand->premises.size());
      }
    } else {
      ++prof.dedup_hits;
    }
    g->queue->MarkFired(*cand);
    ++stats_.gamma_firings;
    ++prof.firings;
    if (pops_per_fire_hist_ != nullptr) pops_per_fire_hist_->Record(pops);
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(FlightEventKind::kGammaFire,
                            static_cast<int64_t>(rule.rule_index),
                            static_cast<int64_t>(stats_.gamma_firings));
    }
    if (obs_.tracer != nullptr && obs_.tracer->Sample()) {
      obs_.tracer->Instant("gamma.fire", "gamma",
                           {{"rule", rule.rule_index}});
    }
    if (audit_ != nullptr) {
      ChoiceAuditEntry e;
      e.rule_index = rule.rule_index;
      e.gamma_index = rule.gamma_index;
      e.firing = stats_.gamma_firings;
      e.candidate_set = live_before;
      e.pops = pops;
      e.ties = rule.has_extremum ? g->queue->CountLiveEqualCost(cand->cost)
                                 : 0;
      e.rejected_extremum = rej_ext;
      e.rejected_fd = rej_fd;
      e.rejected_post = rej_post;
      e.cost = rule.has_extremum ? cand->cost : Value::Int(0);
      e.witness = head_rel.name() + TupleToString(*store_, TupleView(head));
      e.head_pred = rule.head_pred;
      e.head_row = res.row;
      AddAuditEntry(std::move(e));
    }
    return 1;
  }
  return 0;
}

bool FixpointDriver::TryFireNext(CliqueCtx* ctx, GammaState* g,
                                 const Candidate& cand,
                                 ChoiceAuditEntry* audit) {
  const CompiledRule& rule = *g->rule;
  BindingFrame frame;
  RestoreSnapshot(rule, cand.snapshot, &frame);
  frame.Bind(rule.stage_slot, Value::Int(ctx->stage_counter));

  bool fired = false;
  bool saw_solution = false;
  std::vector<Value> head;
  std::vector<ProvPremise> post_prov;
  exec_.Enumerate(rule, rule.post, CompiledScan::kNoOccurrence, &frame,
                  [&](BindingFrame& f) {
                    saw_solution = true;
                    if (!choice_.Admissible(rule, f)) {
                      if (inadmissible_ != nullptr) inadmissible_->Add(1);
                      if (audit != nullptr) ++audit->rejected_fd;
                      return true;
                    }
                    if (admissible_ != nullptr) admissible_->Add(1);
                    // Build now, insert after: the post plan may hold
                    // index iterators on the head relation. Build before
                    // Commit — a solution whose head term fails to
                    // evaluate derives nothing and must not burn the
                    // choice.
                    if (!exec_.BuildHead(rule, f, &head)) {
                      if (audit != nullptr) ++audit->rejected_post;
                      return true;
                    }
                    choice_.Commit(rule, f);
                    // The firing's post premises; the trail pops back to
                    // empty as the enumeration unwinds, so copy here.
                    if (prov_) post_prov = prov_trail_;
                    fired = true;
                    return false;  // one firing per γ
                  });
  if (fired) {
    RuleProfile& prof = profiles_[rule.rule_index];
    Relation& head_rel = catalog_->relation(rule.head_pred);
    const auto res = head_rel.Insert(TupleView(head));
    if (res.inserted) {
      ++prof.tuples;
      if (prov_) {
        // Full justification: the generator premises carried by the
        // candidate plus the post plan's premises at the firing.
        std::vector<ProvPremise> prems = cand.premises;
        prems.insert(prems.end(), post_prov.begin(), post_prov.end());
        head_rel.Annotate(res.row, rule.rule_index, prems.data(),
                          prems.size());
      }
    } else {
      ++prof.dedup_hits;
    }
    if (audit != nullptr) {
      audit->stage = ctx->stage_counter;
      audit->cost = rule.has_extremum ? cand.cost : Value::Int(0);
      audit->witness =
          head_rel.name() + TupleToString(*store_, TupleView(head));
      audit->head_pred = rule.head_pred;
      audit->head_row = res.row;
    }
    static const bool kTrace = std::getenv("GDLOG_TRACE") != nullptr;
    if (kTrace) {
      fprintf(stderr, "[gamma] stage=%ld head=%s %s\n", ctx->stage_counter,
              catalog_->relation(rule.head_pred).name().c_str(),
              TupleToString(*store_, TupleView(head)).c_str());
    }
    g->queue->MarkFired(cand);
    ++prof.firings;
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(FlightEventKind::kStageAdvance,
                            static_cast<int64_t>(rule.rule_index),
                            ctx->stage_counter);
    }
    if (obs_.tracer != nullptr && obs_.tracer->Sample()) {
      obs_.tracer->Instant("stage.advance", "gamma",
                           {{"rule", rule.rule_index},
                            {"stage", ctx->stage_counter}});
    }
    ++ctx->stage_counter;
    ++stats_.gamma_firings;
    ++stats_.stages_assigned;
    PublishProgress(ProgressKind::kStage, 0);
  } else {
    if (audit != nullptr && !saw_solution) ++audit->rejected_post;
    if (obs_.recorder != nullptr) {
      obs_.recorder->Record(FlightEventKind::kChoiceReject,
                            static_cast<int64_t>(rule.rule_index),
                            static_cast<int64_t>(g->queue->LiveSize()));
    }
    g->queue->MarkRedundant(cand);
  }
  return fired;
}

bool FixpointDriver::GammaPhase(CliqueCtx* ctx) {
  TraceSpan span(obs_.tracer, "GammaPhase", "fixpoint");
  const uint64_t t0 = obs_enabled_ ? ObsNowNs() : 0;
  bool fired = false;
  // Non-next choice rules: one firing, then back to saturation.
  for (GammaState* g : ctx->gammas) {
    if (g->rule->is_next) continue;
    if (DrainChoiceRule(g) > 0) {
      fired = true;
      break;
    }
  }
  // Next rules: exactly one firing.
  if (!fired) {
    for (GammaState* g : ctx->gammas) {
      if (!g->rule->is_next) continue;
      uint64_t pops = 0;
      ChoiceAuditEntry entry;  // accumulates across rejected pops
      const uint64_t live_before =
          audit_ != nullptr ? g->queue->LiveSize() : 0;
      while (auto cand = g->queue->Pop()) {
        ++pops;
        const Value cand_cost = cand->cost;
        if (TryFireNext(ctx, g, *cand,
                        audit_ != nullptr ? &entry : nullptr)) {
          fired = true;
          if (pops_per_fire_hist_ != nullptr) {
            pops_per_fire_hist_->Record(pops);
          }
          if (audit_ != nullptr) {
            entry.rule_index = g->rule->rule_index;
            entry.gamma_index = g->rule->gamma_index;
            entry.firing = stats_.gamma_firings;
            entry.candidate_set = live_before;
            entry.pops = pops;
            entry.ties = g->rule->has_extremum
                             ? g->queue->CountLiveEqualCost(cand_cost)
                             : 0;
            AddAuditEntry(std::move(entry));
          }
          break;
        }
      }
      if (fired) break;
    }
  }
  if (obs_enabled_) stats_.gamma_ns += ObsNowNs() - t0;
  return fired;
}

}  // namespace gdlog
