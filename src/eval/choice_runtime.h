// Chosen-tuple memoization: the runtime realization of the paper's
// chosen/diffChoice predicates.
//
// Per Section 2, "an efficient implementation for choice programs only
// requires memorization of the chosen predicates; from these, the
// diffChoice predicates can be generated on-the-fly". Each choice goal
// choice(L, R) of a gamma rule owns a hash map from the interned value
// of L to the interned value of R. A candidate firing is admissible iff
// for every goal the map either lacks L's value or maps it to exactly
// R's value; firing commits all pairs and records the chosen$ tuple for
// the stable-model checker.
#ifndef GDLOG_EVAL_CHOICE_RUNTIME_H_
#define GDLOG_EVAL_CHOICE_RUNTIME_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "eval/rule_compiler.h"

namespace gdlog {

class ChoiceRuntime {
 public:
  explicit ChoiceRuntime(ValueStore* store) : store_(store) {}

  /// Registers a gamma rule; returns its handle (== rule.gamma_index).
  int Register(const CompiledRule& rule);

  /// True iff firing `rule` under `frame` violates no FD recorded so far.
  /// All choice-goal variables must be bound.
  bool Admissible(const CompiledRule& rule, const BindingFrame& frame);

  /// Commits the FD pairs of a firing and records its chosen$ tuple.
  /// Call only after Admissible returned true under the same frame.
  void Commit(const CompiledRule& rule, const BindingFrame& frame);

  /// The chosen$ tuples recorded for gamma rule `gamma_index`, each laid
  /// out per CompiledRule::chosen_slots.
  const std::vector<std::vector<Value>>& ChosenTuples(int gamma_index) const;

  size_t TotalChosen() const;

 private:
  struct GoalMemo {
    std::unordered_map<Value, Value, ValueHash> fd;
  };
  struct RuleMemo {
    std::vector<GoalMemo> goals;  // parallel to CompiledRule::choices
    std::vector<std::vector<Value>> chosen;
  };

  /// Evaluates the pair (left, right) of a choice goal under `frame`.
  bool EvalPair(const CompiledRule& rule, const ChoiceSpec& spec,
                const BindingFrame& frame, Value* left, Value* right);

  ValueStore* store_;
  std::vector<RuleMemo> memos_;  // by gamma_index
};

}  // namespace gdlog

#endif  // GDLOG_EVAL_CHOICE_RUNTIME_H_
