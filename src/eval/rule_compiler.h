// Rule compilation: turns AST rules into executable plans.
//
// Variables become dense slots; terms become nodes in a per-rule pool;
// body literals become a left-to-right join plan with per-goal index
// selection (the "availability of indices" assumed by Section 6).
//
// Meta goals are lifted out of the plan into rule metadata:
//   * next(I)        -> is_next / stage_slot; the fixpoint driver assigns
//                       I from the clique's stage counter at fire time
//   * least/most     -> extremum metadata; in next rules this selects the
//                       (R,Q,L) priority-queue discipline, elsewhere a
//                       grouped aggregate over the rule's bindings
//   * choice(L, R)   -> an FD spec checked against the chosen memo
//
// For a next rule the body splits into the *generator* (literals whose
// variables are independent of the stage variable — evaluated when
// candidates are inserted into the queue, exactly the paper's "insertion
// into D_r") and the *post* plan (stage-dependent comparisons and negated
// conjunctions — evaluated when a candidate is popped, after the stage
// variable is bound).
#ifndef GDLOG_EVAL_RULE_COMPILER_H_
#define GDLOG_EVAL_RULE_COMPILER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/stage.h"
#include "ast/ast.h"
#include "common/status.h"
#include "eval/binding.h"
#include "eval/join_planner.h"
#include "storage/catalog.h"

namespace gdlog {

// ---------------------------------------------------------------------------
// Compiled terms
// ---------------------------------------------------------------------------

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod, kMin, kMax };

struct CTerm {
  enum class Kind : uint8_t { kConst, kVar, kConstruct, kArith };
  Kind kind = Kind::kConst;
  Value constant;                // kConst
  uint32_t var_slot = 0;         // kVar
  SymbolId functor = 0;          // kConstruct ($tuple for tuples)
  ArithOp op = ArithOp::kAdd;    // kArith
  std::vector<uint32_t> args;    // kConstruct / kArith: pool indices
};

/// Evaluates pool[t] under `frame`. Returns false (leaving *out
/// untouched) if an unbound variable is reached or arithmetic is applied
/// to a non-integer.
bool EvalTerm(const std::vector<CTerm>& pool, uint32_t t,
              const BindingFrame& frame, ValueStore* store, Value* out);

/// Matches value `v` against pool[t]: unbound variables bind (recorded on
/// the frame's trail), bound ones compare, constructors destructure, and
/// arithmetic subterms evaluate-and-compare. Returns false on mismatch
/// (callers unwind the trail).
bool MatchTerm(const std::vector<CTerm>& pool, uint32_t t, Value v,
               BindingFrame* frame, ValueStore* store);

// ---------------------------------------------------------------------------
// Compiled literals
// ---------------------------------------------------------------------------

struct CompiledScan {
  PredicateId pred = kNoPredicate;
  std::vector<uint32_t> arg_terms;   // one CTerm per column
  std::vector<uint32_t> bound_cols;  // columns evaluable before the scan
  int index_id = -1;                 // relation index; -1 = full scan
  bool negated = false;
  // Among positive same-clique atoms of this plan: occurrence number used
  // for seminaive delta variants; kNoOccurrence otherwise.
  static constexpr uint32_t kNoOccurrence = UINT32_MAX;
  uint32_t clique_occurrence = kNoOccurrence;
  // Dense per-rule id of the body atom this scan compiles (stable across
  // the generator, delta, and post plan variants of one rule) — the key
  // the executor's per-goal cardinality counters are indexed by for
  // EXPLAIN ANALYZE. kNoGoal for negated scans and subplan scans.
  static constexpr uint32_t kNoGoal = UINT32_MAX;
  uint32_t goal_id = kNoGoal;
};

struct CompiledCompare {
  ComparisonOp op = ComparisonOp::kEq;
  uint32_t lhs = 0, rhs = 0;  // pool indices
  // kEq with one statically-unbound side that is a bare variable becomes
  // an assignment of the evaluated other side.
  bool is_assignment = false;
  uint32_t assign_slot = 0;
  uint32_t value_term = 0;  // term to evaluate when assigning
};

struct CompiledLiteral {
  enum class Kind : uint8_t { kScan, kCompare, kNotExists };
  Kind kind = Kind::kScan;
  CompiledScan scan;
  CompiledCompare cmp;
  std::vector<CompiledLiteral> sub;  // kNotExists subplan
};

// ---------------------------------------------------------------------------
// Compiled rules
// ---------------------------------------------------------------------------

struct ChoiceSpec {
  uint32_t left_term = 0;   // CTerm (tuples for compound keys)
  uint32_t right_term = 0;
  // True for the two FD goals synthesized by next expansion,
  // choice(I, W) and choice(W, I). The latter is what bounds the number
  // of γ firings (each W value fires at most once — the termination
  // argument behind Theorem 2); neither contributes congruence keys.
  bool from_next = false;
};

struct CompiledRule {
  uint32_t rule_index = 0;        // position in the analyzed Program
  PredicateId head_pred = kNoPredicate;
  std::vector<uint32_t> head_terms;
  uint32_t head_arity = 0;

  std::vector<CTerm> pool;
  uint32_t num_slots = 0;
  std::vector<std::string> slot_names;  // slot -> variable name (debug)

  std::vector<CompiledLiteral> generator;
  std::vector<CompiledLiteral> post;    // next rules: stage-dependent part
  // Seminaive variant plans: delta_plans[d] evaluates the generator with
  // the d-th same-clique atom *leading* the join (the delta atom is the
  // smallest input, so it drives), remaining goals greedily reordered.
  std::vector<std::vector<CompiledLiteral>> delta_plans;

  // Slots bound by the generator, in binding order.
  std::vector<uint32_t> generator_bound_slots;
  // The live subset of generator_bound_slots (variables the head, post
  // plan, choice goals, or extremum actually read) — the candidate
  // snapshot layout for gamma rules. Dead join variables are excluded so
  // congruence is insensitive to them.
  std::vector<uint32_t> snapshot_slots;

  // Choice.
  std::vector<ChoiceSpec> choices;
  bool is_gamma = false;              // has choice goals and/or next
  // Index i of this rule's chosen$i predicate, matching RewriteChoice's
  // numbering over the expanded program; -1 for non-gamma rules.
  int gamma_index = -1;
  // chosen$ bookkeeping for the stable-model checker: V slots in the
  // canonical order of RewriteChoice over the expanded rule.
  std::vector<uint32_t> chosen_slots;

  // Extremum.
  bool has_extremum = false;
  bool is_least = true;
  uint32_t cost_term = 0;
  uint32_t group_term = 0;

  // Next.
  bool is_next = false;
  uint32_t stage_slot = 0;
  int head_stage_pos = -1;

  // Congruence merging for the (R,Q,L) queue: enabled when the choice
  // keys (plus cost and FD-determined attributes) provably determine the
  // whole candidate, reproducing the paper's r-congruence classes.
  bool merge_by_choice_keys = false;
  std::vector<uint32_t> congruence_slots;

  // Recursion shape.
  bool recursive = false;       // generator mentions a same-clique pred
  uint32_t num_clique_occurrences = 0;
  // Aggregate rules inside a recursive clique (extrema in flat rules —
  // the relaxed Kruskal shape) are re-evaluated over full windows.
  bool recompute_full = false;

  // Goal order chosen for the generator plan, one entry per compiled
  // body literal in plan order. Populated only when a JoinPlanner drove
  // the ordering; surfaced in the run report.
  std::vector<PlanDecision> plan_decisions;

  // Number of distinct goal_id values assigned to this rule's positive
  // body atoms — the size of the per-rule GoalStats row.
  uint32_t num_goals = 0;
};

struct CompileProgramOptions {
  // Predicates whose head arguments are call parameters, pre-bound in
  // the frame before the plan runs (used by the stable-model checker for
  // the parameterized aux$ predicates, which are not range-restricted).
  // Matched against the head predicate name.
  std::function<bool(const std::string&)> head_params_bound;
  // Cost-based goal ordering: when set, the "next goal" pick among ready
  // positive atoms is the one with the smallest estimated scan size
  // (filters still run first, delta atoms stay pinned). Null keeps the
  // legacy parser-order pick.
  JoinPlanner* planner = nullptr;
};

/// Compiles every rule of the analyzed program. Predicates are created
/// in `catalog`; scan indices are created on their relations.
/// `analysis.expanded` supplies the canonical choice-goal order for
/// chosen$ bookkeeping.
Result<std::vector<CompiledRule>> CompileProgram(
    const Program& program, const StageAnalysis& analysis, Catalog* catalog,
    ValueStore* store, const CompileProgramOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_EVAL_RULE_COMPILER_H_
