// Typed relational-algebra IR: the lowering target between compiled
// rules (eval/rule_compiler) and the bytecode VM (eval/vm).
//
// A CompiledRule's plans are nested-loop joins whose per-row work the
// interpreter re-discovers on every row: each column match re-inspects
// its CTerm, each probe key re-evaluates its term, each head tuple
// re-walks the head terms. Lowering runs that discovery ONCE, by
// simulating the binding state left-to-right through the plan — exact
// for straight-line plans, because every path through a literal binds
// the same slot set (scans undo their bindings between rows, compares
// between branches) — and records the residual per-column action:
//
//   kBind          column binds a fresh slot
//   kCompareSlot   column equals an already-bound slot
//   kCompareConst  column equals a constant
//   kMatch         structural fallback (construct/arith): MatchTerm
//
// and per probe-key column:
//
//   kSlot          key value is a bound slot
//   kConst         key value is a constant
//   kEval          general term: EvalTerm at probe time (its failure
//                  reproduces the interpreter's key_ok=false skip)
//
// Lowering is all-or-nothing per rule; shapes outside the encodable
// core are rejected with a reason and stay on the interpreter (the
// differential oracle). The coverage report is surfaced in RunReport.
#ifndef GDLOG_EVAL_IR_IR_H_
#define GDLOG_EVAL_IR_IR_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/rule_compiler.h"

namespace gdlog {
namespace ir {

// ---------------------------------------------------------------------------
// Ops
// ---------------------------------------------------------------------------

/// One probe-key column (in CompiledScan::bound_cols order).
struct KeyOp {
  enum class Kind : uint8_t { kSlot, kConst, kEval };
  Kind kind = Kind::kSlot;
  uint32_t slot = 0;   // kSlot
  Value constant;      // kConst
  uint32_t term = 0;   // kEval: pool index
};

/// One scanned-row column action (column order; short-circuits like the
/// interpreter's MatchTerm loop).
struct ColOp {
  enum class Kind : uint8_t { kBind, kCompareSlot, kCompareConst, kMatch };
  Kind kind = Kind::kBind;
  uint32_t col = 0;
  uint32_t slot = 0;   // kBind / kCompareSlot
  Value constant;      // kCompareConst
  uint32_t term = 0;   // kMatch: pool index
};

/// One head-tuple column for the emit fast path.
struct HeadOp {
  enum class Kind : uint8_t { kSlot, kConst, kEval };
  Kind kind = Kind::kSlot;
  uint32_t slot = 0;   // kSlot
  Value constant;      // kConst
  uint32_t term = 0;   // kEval: pool index
};

// ---------------------------------------------------------------------------
// Levels and plans
// ---------------------------------------------------------------------------

struct PlanIR;

struct ScanIR {
  const CompiledScan* scan = nullptr;  // windows, identity, fallbacks
  std::vector<KeyOp> keys;             // empty for full scans
  std::vector<ColOp> cols;             // one per column
};

/// One plan literal. Compares keep the interpreter's CompiledCompare
/// (already a small decision tree); NotExists carries its lowered
/// subplan.
struct LevelIR {
  CompiledLiteral::Kind kind = CompiledLiteral::Kind::kScan;
  ScanIR scan;
  const CompiledCompare* cmp = nullptr;
  /// kCompare assignments: whether assign_slot is bound on arrival. The
  /// simulation decides the interpreter's runtime IsBound branch
  /// statically — bound tests equality, unbound always (re)binds.
  bool assign_bound = false;
  /// kCompare operands resolved against the static bound state, KeyOp
  /// micro-op style: a bound variable reads its slot, a constant is
  /// inlined, anything else falls back to EvalTerm (whose failure skips
  /// the comparison, exactly like the interpreter). General comparisons
  /// use lhs/rhs; assignments use cmp_value.
  KeyOp cmp_lhs, cmp_rhs, cmp_value;
  std::unique_ptr<PlanIR> sub;
};

struct PlanIR {
  enum class Role : uint8_t { kGenerator, kDelta, kPost };
  Role role = Role::kGenerator;
  uint32_t delta = 0;  // kDelta: which delta variant
  /// The CompiledRule plan this lowers — the executor's dispatch key.
  const std::vector<CompiledLiteral>* source = nullptr;
  std::vector<LevelIR> levels;
};

struct RuleIR {
  const CompiledRule* rule = nullptr;
  std::vector<PlanIR> plans;     // generator, delta variants, post
  std::vector<HeadOp> head_ops;  // emit ops at generator/delta end-state
};

// ---------------------------------------------------------------------------
// Program lowering
// ---------------------------------------------------------------------------

/// Coverage of the lowering over a compiled program (echoed in
/// RunReport; asserted non-vacuous by the differential fleet).
struct LoweringReport {
  struct Rejection {
    uint32_t rule_index = 0;
    std::string head;    // "pred/arity"
    std::string reason;
  };
  uint32_t rules_total = 0;
  uint32_t rules_lowered = 0;
  std::vector<Rejection> rejections;
};

struct ProgramIR {
  std::vector<RuleIR> rules;  // lowered rules only
  LoweringReport report;
};

/// Encoding limits; plans outside them fall back to the interpreter.
inline constexpr size_t kMaxPlanLiterals = 64;  // incl. subplan literals
inline constexpr uint32_t kMaxSlots = 256;
inline constexpr size_t kMaxNotExistsDepth = 1;

/// Lowers every encodable rule. `catalog` supplies head display names
/// for the report. Pointers in the result alias `rules`, which must
/// stay alive and unmoved for the lifetime of the IR (and of any
/// vm::ProgramCode compiled from it).
ProgramIR LowerProgram(const std::vector<CompiledRule>& rules,
                       const Catalog& catalog);

/// Deterministic disassembly of the lowered program (plus the rejection
/// list) — the shell's `--dump-plan` text and the `.plan` golden
/// format.
std::string Disassemble(const ProgramIR& ir, const Catalog& catalog,
                        const ValueStore& store);

}  // namespace ir
}  // namespace gdlog

#endif  // GDLOG_EVAL_IR_IR_H_
