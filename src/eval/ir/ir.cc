#include "eval/ir/ir.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"
#include "storage/catalog.h"

namespace gdlog {
namespace ir {

namespace {

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Slots a MatchTerm against pool[t] binds when every bind succeeds:
/// bare variables at any construct depth. Arithmetic subterms
/// evaluate-and-compare, so they bind nothing.
void MarkMatchBinds(const std::vector<CTerm>& pool, uint32_t t,
                    std::vector<bool>* bound) {
  const CTerm& ct = pool[t];
  switch (ct.kind) {
    case CTerm::Kind::kVar:
      (*bound)[ct.var_slot] = true;
      break;
    case CTerm::Kind::kConstruct:
      for (uint32_t a : ct.args) MarkMatchBinds(pool, a, bound);
      break;
    case CTerm::Kind::kConst:
    case CTerm::Kind::kArith:
      break;
  }
}

size_t CountLiterals(const std::vector<CompiledLiteral>& plan) {
  size_t n = 0;
  for (const CompiledLiteral& lit : plan) {
    ++n;
    if (lit.kind == CompiledLiteral::Kind::kNotExists) {
      n += CountLiterals(lit.sub);
    }
  }
  return n;
}

size_t NotExistsDepth(const std::vector<CompiledLiteral>& plan) {
  size_t depth = 0;
  for (const CompiledLiteral& lit : plan) {
    if (lit.kind == CompiledLiteral::Kind::kNotExists) {
      depth = std::max(depth, 1 + NotExistsDepth(lit.sub));
    }
  }
  return depth;
}

class RuleLowerer {
 public:
  explicit RuleLowerer(const CompiledRule& rule) : rule_(rule) {}

  /// Lowers every plan of the rule; false with `reason` set on the
  /// first unencodable shape (all-or-nothing).
  bool Lower(RuleIR* out, std::string* reason) {
    if (rule_.num_slots > kMaxSlots) {
      *reason = "rule exceeds " + std::to_string(kMaxSlots) + " slots";
      return false;
    }
    out->rule = &rule_;

    std::vector<bool> bound(rule_.num_slots, false);
    if (!LowerPlan(rule_.generator, PlanIR::Role::kGenerator, 0, &bound,
                   out, reason)) {
      return false;
    }
    const std::vector<bool> generator_end = bound;
    for (uint32_t d = 0; d < rule_.delta_plans.size(); ++d) {
      std::vector<bool> dbound(rule_.num_slots, false);
      if (!LowerPlan(rule_.delta_plans[d], PlanIR::Role::kDelta, d, &dbound,
                     out, reason)) {
        return false;
      }
      if (dbound != generator_end) {
        // Delta plans permute the generator's literals, so their end
        // binding state must agree; anything else is a compiler
        // invariant we refuse to encode against.
        *reason = "delta plan end bindings differ from generator";
        return false;
      }
    }
    if (rule_.is_next) {
      // The post plan runs from a restored candidate snapshot with the
      // stage slot bound (FixpointDriver::TryFireNext).
      std::vector<bool> pbound(rule_.num_slots, false);
      for (uint32_t s : rule_.snapshot_slots) pbound[s] = true;
      pbound[rule_.stage_slot] = true;
      if (!LowerPlan(rule_.post, PlanIR::Role::kPost, 0, &pbound, out,
                     reason)) {
        return false;
      }
    }

    // Emit ops against the generator/delta end-state (BuildHead runs on
    // complete solutions of those plans).
    out->head_ops.reserve(rule_.head_terms.size());
    for (uint32_t t : rule_.head_terms) {
      out->head_ops.push_back(HeadTermOp(t, generator_end));
    }
    return true;
  }

 private:
  bool LowerPlan(const std::vector<CompiledLiteral>& plan,
                 PlanIR::Role role, uint32_t delta, std::vector<bool>* bound,
                 RuleIR* out, std::string* reason) {
    if (CountLiterals(plan) > kMaxPlanLiterals) {
      *reason = "plan exceeds " + std::to_string(kMaxPlanLiterals) +
                " literals";
      return false;
    }
    if (NotExistsDepth(plan) > kMaxNotExistsDepth) {
      *reason = "nested negated conjunction";
      return false;
    }
    PlanIR pir;
    pir.role = role;
    pir.delta = delta;
    pir.source = &plan;
    if (!LowerLevels(plan, bound, &pir.levels, reason)) return false;
    out->plans.push_back(std::move(pir));
    return true;
  }

  bool LowerLevels(const std::vector<CompiledLiteral>& plan,
                   std::vector<bool>* bound, std::vector<LevelIR>* levels,
                   std::string* reason) {
    for (const CompiledLiteral& lit : plan) {
      LevelIR level;
      level.kind = lit.kind;
      switch (lit.kind) {
        case CompiledLiteral::Kind::kScan:
          LowerScan(lit.scan, bound, &level.scan);
          break;
        case CompiledLiteral::Kind::kCompare:
          level.cmp = &lit.cmp;
          if (lit.cmp.is_assignment) {
            level.assign_bound = (*bound)[lit.cmp.assign_slot];
            level.cmp_value = KeyTermOp(lit.cmp.value_term, *bound);
            (*bound)[lit.cmp.assign_slot] = true;
          } else {
            level.cmp_lhs = KeyTermOp(lit.cmp.lhs, *bound);
            level.cmp_rhs = KeyTermOp(lit.cmp.rhs, *bound);
          }
          break;
        case CompiledLiteral::Kind::kNotExists: {
          // Subplan bindings are local (the interpreter unwinds to the
          // pre-literal mark either way), so simulate on a copy.
          std::vector<bool> sub_bound = *bound;
          level.sub = std::make_unique<PlanIR>();
          level.sub->source = &lit.sub;
          if (!LowerLevels(lit.sub, &sub_bound, &level.sub->levels,
                           reason)) {
            return false;
          }
          break;
        }
      }
      levels->push_back(std::move(level));
    }
    return true;
  }

  void LowerScan(const CompiledScan& scan, std::vector<bool>* bound,
                 ScanIR* out) {
    out->scan = &scan;
    // Probe keys evaluate against the pre-scan binding state.
    if (scan.index_id >= 0) {
      out->keys.reserve(scan.bound_cols.size());
      for (uint32_t col : scan.bound_cols) {
        out->keys.push_back(KeyTermOp(scan.arg_terms[col], *bound));
      }
    }
    // Column actions, in column order. Negated scans undo their
    // bindings before returning, so they mutate only a scratch copy.
    std::vector<bool> scratch;
    std::vector<bool>* b = bound;
    if (scan.negated) {
      scratch = *bound;
      b = &scratch;
    }
    out->cols.reserve(scan.arg_terms.size());
    for (uint32_t col = 0; col < scan.arg_terms.size(); ++col) {
      const uint32_t t = scan.arg_terms[col];
      const CTerm& ct = rule_.pool[t];
      ColOp op;
      op.col = col;
      switch (ct.kind) {
        case CTerm::Kind::kConst:
          op.kind = ColOp::Kind::kCompareConst;
          op.constant = ct.constant;
          break;
        case CTerm::Kind::kVar:
          if ((*b)[ct.var_slot]) {
            op.kind = ColOp::Kind::kCompareSlot;
          } else {
            op.kind = ColOp::Kind::kBind;
            (*b)[ct.var_slot] = true;
          }
          op.slot = ct.var_slot;
          break;
        case CTerm::Kind::kConstruct:
        case CTerm::Kind::kArith:
          op.kind = ColOp::Kind::kMatch;
          op.term = t;
          MarkMatchBinds(rule_.pool, t, b);
          break;
      }
      out->cols.push_back(op);
    }
  }

  KeyOp KeyTermOp(uint32_t t, const std::vector<bool>& bound) const {
    const CTerm& ct = rule_.pool[t];
    KeyOp op;
    if (ct.kind == CTerm::Kind::kConst) {
      op.kind = KeyOp::Kind::kConst;
      op.constant = ct.constant;
    } else if (ct.kind == CTerm::Kind::kVar && bound[ct.var_slot]) {
      op.kind = KeyOp::Kind::kSlot;
      op.slot = ct.var_slot;
    } else {
      // General term (or a statically-unbound variable, whose runtime
      // EvalTerm failure reproduces the interpreter's key_ok skip).
      op.kind = KeyOp::Kind::kEval;
      op.term = t;
    }
    return op;
  }

  HeadOp HeadTermOp(uint32_t t, const std::vector<bool>& bound) const {
    const CTerm& ct = rule_.pool[t];
    HeadOp op;
    if (ct.kind == CTerm::Kind::kConst) {
      op.kind = HeadOp::Kind::kConst;
      op.constant = ct.constant;
    } else if (ct.kind == CTerm::Kind::kVar && bound[ct.var_slot]) {
      op.kind = HeadOp::Kind::kSlot;
      op.slot = ct.var_slot;
    } else {
      op.kind = HeadOp::Kind::kEval;
      op.term = t;
    }
    return op;
  }

  const CompiledRule& rule_;
};

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

class Printer {
 public:
  Printer(const ProgramIR& ir, const Catalog& catalog,
          const ValueStore& store)
      : ir_(ir), catalog_(catalog), store_(store) {}

  std::string Text() {
    out_ << "vm lowering: " << ir_.report.rules_lowered << "/"
         << ir_.report.rules_total << " rules\n";
    for (const RuleIR& r : ir_.rules) PrintRule(r);
    if (!ir_.report.rejections.empty()) {
      out_ << "\nnot lowered:\n";
      for (const auto& rej : ir_.report.rejections) {
        out_ << "  rule " << rej.rule_index << " (" << rej.head
             << "): " << rej.reason << "\n";
      }
    }
    return out_.str();
  }

 private:
  std::string SlotName(uint32_t slot) const {
    if (slot < rule_->slot_names.size() &&
        !rule_->slot_names[slot].empty()) {
      return rule_->slot_names[slot];
    }
    return "s" + std::to_string(slot);
  }

  std::string Term(uint32_t t) const {
    const CTerm& ct = rule_->pool[t];
    switch (ct.kind) {
      case CTerm::Kind::kConst:
        return store_.ToString(ct.constant);
      case CTerm::Kind::kVar:
        return SlotName(ct.var_slot);
      case CTerm::Kind::kConstruct: {
        std::string s(store_.SymbolName(ct.functor));
        s += "(";
        for (size_t i = 0; i < ct.args.size(); ++i) {
          if (i != 0) s += ", ";
          s += Term(ct.args[i]);
        }
        s += ")";
        return s;
      }
      case CTerm::Kind::kArith: {
        const char* op = "?";
        bool prefix = false;
        switch (ct.op) {
          case ArithOp::kAdd: op = "+"; break;
          case ArithOp::kSub: op = "-"; break;
          case ArithOp::kMul: op = "*"; break;
          case ArithOp::kDiv: op = "/"; break;
          case ArithOp::kMod: op = "mod"; prefix = true; break;
          case ArithOp::kMin: op = "min"; prefix = true; break;
          case ArithOp::kMax: op = "max"; prefix = true; break;
        }
        const std::string a = Term(ct.args[0]);
        const std::string b = Term(ct.args[1]);
        if (prefix) return std::string(op) + "(" + a + ", " + b + ")";
        return "(" + a + " " + op + " " + b + ")";
      }
    }
    return "?";
  }

  void PrintRule(const RuleIR& r) {
    rule_ = r.rule;
    out_ << "\nrule " << rule_->rule_index << ": "
         << catalog_.DisplayName(rule_->head_pred);
    const char* kind = rule_->is_next          ? " [next]"
                       : rule_->is_gamma       ? " [gamma]"
                       : rule_->has_extremum   ? " [aggregate]"
                                               : "";
    out_ << kind << "\n";
    out_ << "  emit [";
    for (size_t i = 0; i < r.head_ops.size(); ++i) {
      if (i != 0) out_ << ", ";
      const HeadOp& h = r.head_ops[i];
      switch (h.kind) {
        case HeadOp::Kind::kSlot:
          out_ << SlotName(h.slot);
          break;
        case HeadOp::Kind::kConst:
          out_ << store_.ToString(h.constant);
          break;
        case HeadOp::Kind::kEval:
          out_ << "eval " << Term(h.term);
          break;
      }
    }
    out_ << "]\n";
    for (const PlanIR& p : r.plans) PrintPlan(p);
  }

  void PrintPlan(const PlanIR& p) {
    out_ << "  plan ";
    switch (p.role) {
      case PlanIR::Role::kGenerator:
        out_ << "generator";
        break;
      case PlanIR::Role::kDelta:
        out_ << "delta[" << p.delta << "]";
        break;
      case PlanIR::Role::kPost:
        out_ << "post";
        break;
    }
    out_ << ":\n";
    PrintLevels(p.levels, 4);
  }

  void PrintLevels(const std::vector<LevelIR>& levels, int indent) {
    const std::string pad(indent, ' ');
    for (size_t i = 0; i < levels.size(); ++i) {
      const LevelIR& l = levels[i];
      out_ << pad << "L" << i << ": ";
      switch (l.kind) {
        case CompiledLiteral::Kind::kScan:
          PrintScan(l.scan);
          break;
        case CompiledLiteral::Kind::kCompare:
          PrintCompare(*l.cmp);
          break;
        case CompiledLiteral::Kind::kNotExists:
          out_ << "not-exists:\n";
          PrintLevels(l.sub->levels, indent + 2);
          continue;
      }
      out_ << "\n";
    }
  }

  void PrintScan(const ScanIR& s) {
    const CompiledScan& scan = *s.scan;
    if (scan.negated) out_ << "refute ";
    if (scan.index_id >= 0) {
      out_ << "probe " << catalog_.DisplayName(scan.pred) << " idx#"
           << scan.index_id << " key=[";
      for (size_t i = 0; i < s.keys.size(); ++i) {
        if (i != 0) out_ << ", ";
        const KeyOp& k = s.keys[i];
        switch (k.kind) {
          case KeyOp::Kind::kSlot:
            out_ << SlotName(k.slot);
            break;
          case KeyOp::Kind::kConst:
            out_ << store_.ToString(k.constant);
            break;
          case KeyOp::Kind::kEval:
            out_ << "eval " << Term(k.term);
            break;
        }
      }
      out_ << "]";
    } else {
      out_ << "scan " << catalog_.DisplayName(scan.pred) << " full";
    }
    if (scan.clique_occurrence != CompiledScan::kNoOccurrence) {
      out_ << " occ=" << scan.clique_occurrence;
    }
    if (scan.goal_id != CompiledScan::kNoGoal) {
      out_ << " goal=" << scan.goal_id;
    }
    out_ << " cols=[";
    for (size_t i = 0; i < s.cols.size(); ++i) {
      if (i != 0) out_ << ", ";
      const ColOp& c = s.cols[i];
      switch (c.kind) {
        case ColOp::Kind::kBind:
          out_ << "bind " << SlotName(c.slot);
          break;
        case ColOp::Kind::kCompareSlot:
          out_ << "eq " << SlotName(c.slot);
          break;
        case ColOp::Kind::kCompareConst:
          out_ << "eq " << store_.ToString(c.constant);
          break;
        case ColOp::Kind::kMatch:
          out_ << "match " << Term(c.term);
          break;
      }
    }
    out_ << "]";
  }

  void PrintCompare(const CompiledCompare& cmp) {
    if (cmp.is_assignment) {
      out_ << SlotName(cmp.assign_slot) << " := " << Term(cmp.value_term);
      return;
    }
    const char* op = "?";
    switch (cmp.op) {
      case ComparisonOp::kEq: op = "=="; break;
      case ComparisonOp::kNe: op = "!="; break;
      case ComparisonOp::kLt: op = "<"; break;
      case ComparisonOp::kLe: op = "<="; break;
      case ComparisonOp::kGt: op = ">"; break;
      case ComparisonOp::kGe: op = ">="; break;
    }
    out_ << "filter " << Term(cmp.lhs) << " " << op << " " << Term(cmp.rhs);
  }

  const ProgramIR& ir_;
  const Catalog& catalog_;
  const ValueStore& store_;
  const CompiledRule* rule_ = nullptr;
  std::ostringstream out_;
};

}  // namespace

ProgramIR LowerProgram(const std::vector<CompiledRule>& rules,
                       const Catalog& catalog) {
  ProgramIR out;
  out.report.rules_total = static_cast<uint32_t>(rules.size());
  for (const CompiledRule& rule : rules) {
    RuleIR rir;
    std::string reason;
    if (RuleLowerer(rule).Lower(&rir, &reason)) {
      out.rules.push_back(std::move(rir));
      ++out.report.rules_lowered;
    } else {
      out.report.rejections.push_back({rule.rule_index,
                                       catalog.DisplayName(rule.head_pred),
                                       std::move(reason)});
    }
  }
  return out;
}

std::string Disassemble(const ProgramIR& ir, const Catalog& catalog,
                        const ValueStore& store) {
  return Printer(ir, catalog, store).Text();
}

}  // namespace ir
}  // namespace gdlog
