#include "eval/stable_model.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/rewriter.h"
#include "analysis/stage.h"
#include "common/logging.h"
#include "eval/rule_compiler.h"
#include "eval/seminaive.h"

namespace gdlog {

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// On-the-fly diffChoice$i evaluation: true iff some chosen$i tuple
/// agrees with `v` on a goal's left positions but differs on its right
/// positions.
bool DiffChoiceHolds(const ChoiceRewriteInfo::Entry& entry,
                     const std::vector<std::vector<Value>>& chosen,
                     TupleView v) {
  for (const ChoiceGoalSig& goal : entry.goals) {
    for (const std::vector<Value>& c : chosen) {
      bool left_match = true;
      for (uint32_t pos : goal.left_positions) {
        if (c[pos] != v[pos]) {
          left_match = false;
          break;
        }
      }
      if (!left_match) continue;
      for (uint32_t pos : goal.right_positions) {
        if (c[pos] != v[pos]) return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<StableCheckResult> CheckStableModel(
    const Program& original, const Catalog& model_catalog, ValueStore* store,
    const std::vector<std::vector<std::vector<Value>>>& chosen_by_rule,
    const std::vector<size_t>& seed_watermarks) {
  // ---- 1. Rewrite to normal form -----------------------------------------
  GDLOG_ASSIGN_OR_RETURN(Program p1, ExpandNext(original));
  ChoiceRewriteInfo info;
  Program p2 = RewriteChoice(p1, &info);
  GDLOG_ASSIGN_OR_RETURN(Program p3, RewriteExtrema(p2));
  Program full = NormalizeNotExists(p3);

  if (info.entries.size() != chosen_by_rule.size()) {
    return Status::InvalidArgument(
        "chosen tuple sets (" + std::to_string(chosen_by_rule.size()) +
        ") do not match the program's choice rules (" +
        std::to_string(info.entries.size()) + ")");
  }
  std::unordered_map<std::string, size_t> diff_index;   // name -> entry
  std::unordered_map<std::string, size_t> chosen_index; // name -> entry
  for (size_t i = 0; i < info.entries.size(); ++i) {
    diff_index[info.entries[i].diff_name] = i;
    chosen_index[info.entries[i].chosen_name] = i;
  }

  // diffChoice$ rules are unsafe by construction (they exist for
  // display) — stripped; diffChoice$ is evaluated on the fly. aux$ rules
  // are parameterized (their head variables are call parameters, not
  // range-restricted) — split out and evaluated on the fly as well.
  Program checkable;
  Program aux_prog;
  for (Rule& r : full.rules) {
    if (StartsWith(r.head.predicate, "diffChoice$")) continue;
    if (StartsWith(r.head.predicate, "aux$")) {
      aux_prog.rules.push_back(std::move(r));
    } else {
      checkable.rules.push_back(std::move(r));
    }
  }

  // ---- 2. Assemble the candidate model M+ --------------------------------
  // The model catalog for oracle lookups: original relations + chosen$ +
  // aux$ (computed below).
  Catalog cm;
  // Copy every original relation present in the model.
  for (PredicateId id = 0; id < model_catalog.size(); ++id) {
    const Relation& rel = model_catalog.relation(id);
    const PredicateId nid = cm.Ensure(rel.name(), rel.arity());
    Relation& nrel = cm.relation(nid);
    for (RowId row = 0; row < rel.size(); ++row) nrel.Insert(rel.Row(row));
  }
  // chosen$ facts.
  for (size_t i = 0; i < info.entries.size(); ++i) {
    const PredicateId id =
        cm.Ensure(info.entries[i].chosen_name, info.entries[i].arity);
    Relation& rel = cm.relation(id);
    for (const std::vector<Value>& t : chosen_by_rule[i]) {
      if (t.size() != info.entries[i].arity) {
        return Status::InvalidArgument("chosen tuple arity mismatch for " +
                                       info.entries[i].chosen_name);
      }
      rel.Insert(TupleView(t));
    }
  }

  // aux$ rules compile against the model catalog with their head
  // variables treated as pre-bound call parameters; the oracle evaluates
  // them on demand (top-down) when a negated aux$ goal is tested.
  std::vector<CompiledRule> aux_rules;
  std::unordered_map<std::string, std::vector<const CompiledRule*>> aux_plans;
  if (!aux_prog.rules.empty()) {
    GDLOG_ASSIGN_OR_RETURN(StageAnalysis aux_analysis,
                           AnalyzeStages(aux_prog));
    CompileProgramOptions copts;
    copts.head_params_bound = [](const std::string& name) {
      return StartsWith(name, "aux$");
    };
    GDLOG_ASSIGN_OR_RETURN(
        aux_rules, CompileProgram(aux_prog, aux_analysis, &cm, store, copts));
    for (const CompiledRule& r : aux_rules) {
      aux_plans[cm.relation(r.head_pred).name() + "/" +
                std::to_string(r.head_arity)]
          .push_back(&r);
    }
  }

  // Oracle over M+ with virtual diffChoice$ and virtual aux$.
  PlanExecutor aux_exec(&cm, store);
  std::function<bool(const std::string&, uint32_t, TupleView)> holds_in_model =
      [&](const std::string& name, uint32_t arity, TupleView tuple) -> bool {
    auto dit = diff_index.find(name);
    if (dit != diff_index.end()) {
      return DiffChoiceHolds(info.entries[dit->second],
                             chosen_by_rule[dit->second], tuple);
    }
    auto ait = aux_plans.find(name + "/" + std::to_string(arity));
    if (ait != aux_plans.end()) {
      for (const CompiledRule* r : ait->second) {
        BindingFrame frame(r->num_slots);
        bool bound_ok = true;
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (!MatchTerm(r->pool, r->head_terms[i], tuple[i], &frame,
                         store)) {
            bound_ok = false;
            break;
          }
        }
        if (!bound_ok) continue;
        bool witness = false;
        aux_exec.Enumerate(*r, r->generator, CompiledScan::kNoOccurrence,
                           &frame, [&witness](BindingFrame&) {
                             witness = true;
                             return false;
                           });
        if (witness) return true;
      }
      return false;
    }
    const PredicateId mid = cm.Lookup(name, arity);
    if (mid == kNoPredicate) return false;
    return cm.relation(mid).Contains(tuple);
  };
  auto make_oracle = [&](Catalog* bound_catalog) {
    return [&, bound_catalog](PredicateId pred, TupleView tuple) -> bool {
      const Relation& rel = bound_catalog->relation(pred);
      return holds_in_model(rel.name(), rel.arity(), tuple);
    };
  };
  aux_exec.set_negation_oracle(make_oracle(&cm));

  // ---- 3. Least fixpoint of the reduct ------------------------------------
  Catalog cd;
  // Seed: every tuple that existed before evaluation (user facts and
  // program facts) is extensional input to the reduct.
  if (seed_watermarks.size() != model_catalog.size()) {
    return Status::InvalidArgument("seed watermark count mismatch");
  }
  for (PredicateId id = 0; id < model_catalog.size(); ++id) {
    const Relation& rel = model_catalog.relation(id);
    const PredicateId nid = cd.Ensure(rel.name(), rel.arity());
    Relation& nrel = cd.relation(nid);
    const size_t limit = std::min(seed_watermarks[id], rel.size());
    for (RowId row = 0; row < limit; ++row) nrel.Insert(rel.Row(row));
  }

  GDLOG_ASSIGN_OR_RETURN(StageAnalysis analysis, AnalyzeStages(checkable));
  GDLOG_ASSIGN_OR_RETURN(std::vector<CompiledRule> compiled,
                         CompileProgram(checkable, analysis, &cd, store));
  PlanExecutor exec(&cd, store);
  exec.set_negation_oracle(make_oracle(&cd));
  for (;;) {
    size_t inserted = 0;
    for (const CompiledRule& r : compiled) {
      inserted += exec.ApplyRule(r, CompiledScan::kNoOccurrence);
    }
    if (inserted == 0) break;
  }

  // ---- 4. Compare M+ with lfp(P^{M+}) -------------------------------------
  StableCheckResult result;
  result.stable = true;
  auto count_facts = [](const Catalog& c) {
    size_t n = 0;
    for (PredicateId id = 0; id < c.size(); ++id) {
      n += c.relation(id).size();
    }
    return n;
  };
  result.model_facts = count_facts(cm);
  result.reduct_facts = count_facts(cd);

  auto compare_pred = [&](const Relation& a, const Catalog& other,
                          const char* dir) {
    const PredicateId oid = other.Lookup(a.name(), a.arity());
    for (RowId row = 0; row < a.size(); ++row) {
      const TupleView t = a.Row(row);
      const bool present =
          oid != kNoPredicate && other.relation(oid).Contains(t);
      if (!present) {
        result.stable = false;
        if (result.diagnostic.empty()) {
          result.diagnostic = std::string(dir) + ": " + a.name() +
                              TupleToString(*store, t);
        }
        return;
      }
    }
  };
  for (PredicateId id = 0; id < cm.size(); ++id) {
    compare_pred(cm.relation(id), cd, "in model but not re-derived");
    if (!result.stable) break;
  }
  if (result.stable) {
    for (PredicateId id = 0; id < cd.size(); ++id) {
      compare_pred(cd.relation(id), cm, "derived but not in model");
      if (!result.stable) break;
    }
  }
  return result;
}

}  // namespace gdlog
