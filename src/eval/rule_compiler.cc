#include "eval/rule_compiler.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace gdlog {

// ---------------------------------------------------------------------------
// Term evaluation and matching
// ---------------------------------------------------------------------------

namespace {

// Arithmetic over the inline-int domain. Overflow — of int64 itself or
// of Value's 61-bit payload — makes the term fail to evaluate (the rule
// body simply doesn't match, like division by zero), never a crash.
bool EvalArith(ArithOp op, int64_t a, int64_t b, int64_t* out) {
  int64_t r = 0;
  switch (op) {
    case ArithOp::kAdd:
      if (__builtin_add_overflow(a, b, &r)) return false;
      break;
    case ArithOp::kSub:
      if (__builtin_sub_overflow(a, b, &r)) return false;
      break;
    case ArithOp::kMul:
      if (__builtin_mul_overflow(a, b, &r)) return false;
      break;
    case ArithOp::kDiv:
      if (b == 0) return false;
      if (a == INT64_MIN && b == -1) return false;
      r = a / b;
      break;
    case ArithOp::kMod:
      if (b == 0) return false;
      if (a == INT64_MIN && b == -1) return false;
      r = a % b;
      break;
    case ArithOp::kMin:
      r = a < b ? a : b;
      break;
    case ArithOp::kMax:
      r = a > b ? a : b;
      break;
  }
  if (!Value::IntInRange(r)) return false;
  *out = r;
  return true;
}

}  // namespace

bool EvalTerm(const std::vector<CTerm>& pool, uint32_t t,
              const BindingFrame& frame, ValueStore* store, Value* out) {
  const CTerm& ct = pool[t];
  switch (ct.kind) {
    case CTerm::Kind::kConst:
      *out = ct.constant;
      return true;
    case CTerm::Kind::kVar:
      if (!frame.IsBound(ct.var_slot)) return false;
      *out = frame.Get(ct.var_slot);
      return true;
    case CTerm::Kind::kConstruct: {
      std::vector<Value> args(ct.args.size());
      for (size_t i = 0; i < ct.args.size(); ++i) {
        if (!EvalTerm(pool, ct.args[i], frame, store, &args[i])) return false;
      }
      *out = store->MakeTerm(ct.functor, args);
      return true;
    }
    case CTerm::Kind::kArith: {
      GDLOG_CHECK_EQ(ct.args.size(), 2u);
      Value a, b;
      if (!EvalTerm(pool, ct.args[0], frame, store, &a)) return false;
      if (!EvalTerm(pool, ct.args[1], frame, store, &b)) return false;
      if (!a.is_int() || !b.is_int()) return false;
      int64_t r;
      if (!EvalArith(ct.op, a.AsInt(), b.AsInt(), &r)) return false;
      *out = Value::Int(r);
      return true;
    }
  }
  return false;
}

bool MatchTerm(const std::vector<CTerm>& pool, uint32_t t, Value v,
               BindingFrame* frame, ValueStore* store) {
  const CTerm& ct = pool[t];
  switch (ct.kind) {
    case CTerm::Kind::kConst:
      return ct.constant == v;
    case CTerm::Kind::kVar:
      if (frame->IsBound(ct.var_slot)) return frame->Get(ct.var_slot) == v;
      frame->Bind(ct.var_slot, v);
      return true;
    case CTerm::Kind::kConstruct: {
      if (!v.is_term()) return false;
      const TermId id = v.AsTermId();
      if (store->TermFunctor(id) != ct.functor) return false;
      auto args = store->TermArgs(id);
      if (args.size() != ct.args.size()) return false;
      for (size_t i = 0; i < args.size(); ++i) {
        if (!MatchTerm(pool, ct.args[i], args[i], frame, store)) return false;
      }
      return true;
    }
    case CTerm::Kind::kArith: {
      Value computed;
      if (!EvalTerm(pool, t, *frame, store, &computed)) return false;
      return computed == v;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-rule compiler
// ---------------------------------------------------------------------------

namespace {

Result<ArithOp> ArithOpOf(const std::string& name) {
  if (name == "+") return ArithOp::kAdd;
  if (name == "-") return ArithOp::kSub;
  if (name == "*") return ArithOp::kMul;
  if (name == "/") return ArithOp::kDiv;
  if (name == "mod") return ArithOp::kMod;
  if (name == "min") return ArithOp::kMin;
  if (name == "max") return ArithOp::kMax;
  return Status::Internal("unknown arithmetic functor " + name);
}

class RuleCompiler {
 public:
  RuleCompiler(const Program& program, const StageAnalysis& analysis,
               uint32_t rule_index, Catalog* catalog, ValueStore* store,
               bool head_params_bound, JoinPlanner* planner)
      : program_(program),
        analysis_(analysis),
        rule_(program.rules[rule_index]),
        catalog_(catalog),
        store_(store),
        planner_(planner),
        head_params_bound_(head_params_bound) {
    out_.rule_index = rule_index;
  }

  Result<CompiledRule> Compile() {
    const RuleStageInfo& info = analysis_.rule_info[out_.rule_index];
    out_.is_next = info.kind == RuleKind::kNext;
    out_.head_stage_pos = info.head_stage_pos;

    head_pred_index_ = analysis_.graph->Lookup(
        rule_.head.predicate, static_cast<uint32_t>(rule_.head.args.size()));
    GDLOG_CHECK_NE(head_pred_index_, kNoPred);
    head_scc_ = analysis_.graph->scc_of(head_pred_index_);

    out_.head_pred = catalog_->Ensure(
        rule_.head.predicate, static_cast<uint32_t>(rule_.head.args.size()));
    out_.head_arity = static_cast<uint32_t>(rule_.head.args.size());

    if (out_.is_next) {
      out_.stage_slot = SlotOf(info.stage_var);
      stage_var_name_ = info.stage_var;
    }

    if (head_params_bound_) {
      // Head arguments are call parameters: mark their variables bound
      // before the body compiles (checker-only aux$ mode).
      std::vector<std::string> head_vars;
      for (const TermNode& t : rule_.head.args) CollectVariables(t, &head_vars);
      for (const std::string& v : head_vars) {
        MarkBound(SlotOf(v), /*in_generator=*/true);
      }
    }

    // Pass 1: compile body literals, greedily reordering so every
    // literal runs only once its inputs are bound (the paper's Example 6
    // writes `I = max(J, K)` after the negated conjunctions that read
    // I). Meta goals are extracted first; for next rules, literals that
    // need the stage variable wait for the post phase.
    GDLOG_RETURN_IF_ERROR(CompileBodyReordered());

    // Implicit + explicit choice specs and chosen$ slots, in the order
    // RewriteChoice sees them on the expanded rule.
    GDLOG_RETURN_IF_ERROR(BuildChoiceSpecs());
    out_.is_gamma = out_.is_next || !out_.choices.empty();

    // Head.
    std::vector<std::string> head_vars;
    for (const TermNode& t : rule_.head.args) CollectVariables(t, &head_vars);
    for (const std::string& v : head_vars) {
      if (!IsBoundAnywhere(v)) {
        return Error("head variable " + v + " is never bound in the body");
      }
    }
    for (const TermNode& t : rule_.head.args) {
      out_.head_terms.push_back(CompileTerm(t));
    }

    // Extremum bookkeeping.
    if (out_.has_extremum && out_.is_next) {
      const CTerm& cost = out_.pool[out_.cost_term];
      if (cost.kind != CTerm::Kind::kVar ||
          !generator_bound_.count(cost.var_slot)) {
        return Error("extremum cost must be bound by the rule body");
      }
    }

    // Recursion shape.
    out_.recursive = out_.num_clique_occurrences > 0;
    out_.recompute_full =
        out_.has_extremum && !out_.is_next &&
        analysis_.graph->IsRecursive(head_scc_);

    ComputeSnapshotSlots();
    ComputeCongruence();
    out_.num_slots = static_cast<uint32_t>(out_.slot_names.size());
    return std::move(out_);
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::AnalysisError("rule for " + rule_.head.predicate + ": " +
                                 msg);
  }

  uint32_t SlotOf(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    const auto s = static_cast<uint32_t>(out_.slot_names.size());
    slots_.emplace(name, s);
    out_.slot_names.push_back(name);
    return s;
  }

  uint32_t CompileTerm(const TermNode& t) {
    CTerm ct;
    switch (t.kind) {
      case TermKind::kVariable:
        ct.kind = CTerm::Kind::kVar;
        ct.var_slot = SlotOf(t.name);
        break;
      case TermKind::kConstant:
        ct.kind = CTerm::Kind::kConst;
        ct.constant = t.constant;
        break;
      case TermKind::kCompound: {
        if (IsArithmeticFunctor(t.name) && t.args.size() == 2) {
          ct.kind = CTerm::Kind::kArith;
          auto op = ArithOpOf(t.name);
          GDLOG_CHECK(op.ok());
          ct.op = *op;
        } else {
          ct.kind = CTerm::Kind::kConstruct;
          ct.functor = t.is_tuple()
                           ? static_cast<SymbolId>(store_->tuple_functor())
                           : store_->MakeSymbol(t.name).AsSymbolId();
        }
        for (const TermNode& a : t.args) ct.args.push_back(CompileTerm(a));
        break;
      }
    }
    out_.pool.push_back(std::move(ct));
    return static_cast<uint32_t>(out_.pool.size() - 1);
  }

  /// True when pool[t] contains an arithmetic node.
  bool ContainsArith(uint32_t t) const {
    const CTerm& ct = out_.pool[t];
    if (ct.kind == CTerm::Kind::kArith) return true;
    for (uint32_t a : ct.args) {
      if (ContainsArith(a)) return true;
    }
    return false;
  }

  /// True when every variable of pool[t] is in `bound`.
  bool TermBound(uint32_t t,
                 const std::unordered_set<uint32_t>& bound) const {
    const CTerm& ct = out_.pool[t];
    switch (ct.kind) {
      case CTerm::Kind::kConst:
        return true;
      case CTerm::Kind::kVar:
        return bound.count(ct.var_slot) > 0;
      default:
        for (uint32_t a : ct.args) {
          if (!TermBound(a, bound)) return false;
        }
        return true;
    }
  }

  void CollectSlots(uint32_t t, std::vector<uint32_t>* out) const {
    const CTerm& ct = out_.pool[t];
    if (ct.kind == CTerm::Kind::kVar) {
      out->push_back(ct.var_slot);
    } else {
      for (uint32_t a : ct.args) CollectSlots(a, out);
    }
  }

  void MarkBound(uint32_t slot, bool in_generator) {
    if (in_generator) {
      if (generator_bound_.insert(slot).second) {
        out_.generator_bound_slots.push_back(slot);
      }
    } else {
      post_bound_.insert(slot);
    }
  }

  bool IsBoundAnywhere(const std::string& var) const {
    auto it = slots_.find(var);
    if (it == slots_.end()) return false;
    if (generator_bound_.count(it->second) || post_bound_.count(it->second)) {
      return true;
    }
    return out_.is_next && var == stage_var_name_;
  }

  /// Mentions the stage variable (or a post-bound variable)?
  bool MentionsPostVars(const Literal& lit) const {
    std::vector<std::string> vars;
    CollectLiteralVariables(lit, &vars);
    for (const std::string& v : vars) {
      if (out_.is_next && v == stage_var_name_) return true;
      auto it = slots_.find(v);
      if (it != slots_.end() && post_bound_.count(it->second)) return true;
    }
    return false;
  }

  /// Drops post comparisons that are guaranteed true by the stage-counter
  /// discipline: J < I and J <= I and J != I where I is the stage
  /// variable and J is bound from a same-clique stage column (the stage
  /// counter always exceeds every stage value in the database).
  bool AlwaysTruePostComparison(const Literal& lit) const {
    if (lit.kind != LiteralKind::kComparison || !out_.is_next) return false;
    const TermNode* stage_side = nullptr;
    const TermNode* other = nullptr;
    ComparisonOp op = lit.op;
    if (lit.args[1].is_var() && lit.args[1].name == stage_var_name_) {
      stage_side = &lit.args[1];
      other = &lit.args[0];
    } else if (lit.args[0].is_var() && lit.args[0].name == stage_var_name_) {
      stage_side = &lit.args[0];
      other = &lit.args[1];
      op = FlipComparison(op);
    } else {
      return false;
    }
    (void)stage_side;
    // Now the obligation reads: other OP stage.
    if (op != ComparisonOp::kLt && op != ComparisonOp::kLe &&
        op != ComparisonOp::kNe) {
      return false;
    }
    if (!other->is_var()) return false;
    auto it = slots_.find(other->name);
    if (it == slots_.end()) return false;
    return stage_derived_.count(it->second) > 0;
  }

  Status CompileBodyReordered() {
    // Occurrence counts across the whole rule, for local-existential
    // detection in negated goals.
    {
      std::vector<std::string> all;
      CollectLiteralVariables(rule_.head, &all);
      for (const Literal& l : rule_.body) CollectLiteralVariables(l, &all);
      for (const std::string& v : all) ++total_var_count_[v];
    }
    std::vector<const Literal*> work;
    for (const Literal& lit : rule_.body) {
      switch (lit.kind) {
        case LiteralKind::kNext:
          break;  // metadata handled via StageAnalysis
        case LiteralKind::kLeast:
        case LiteralKind::kMost: {
          if (out_.has_extremum) return Error("multiple extrema goals");
          out_.has_extremum = true;
          out_.is_least = lit.kind == LiteralKind::kLeast;
          out_.cost_term = CompileTerm(lit.args[0]);
          out_.group_term = CompileTerm(lit.args[1]);
          break;
        }
        case LiteralKind::kChoice:
          break;  // handled in BuildChoiceSpecs
        default:
          work.push_back(&lit);
      }
    }

    // Pre-assign delta occurrence numbers in original body order, so the
    // same atom carries the same window across every plan variant.
    for (const Literal* lit : work) {
      if (!lit->is_positive_atom()) continue;
      if (out_.is_next && MentionsPostVars(*lit)) continue;
      const PredIndex p = analysis_.graph->Lookup(
          lit->predicate, static_cast<uint32_t>(lit->args.size()));
      if (p == kNoPred || analysis_.graph->scc_of(p) != head_scc_) continue;
      occurrence_of_[lit] = out_.num_clique_occurrences++;
    }

    auto main_work = work;
    GDLOG_RETURN_IF_ERROR(CompilePhase(&main_work, &out_.generator,
                                       /*in_post=*/false, nullptr,
                                       /*record=*/planner_ != nullptr));
    if (out_.is_next) {
      GDLOG_RETURN_IF_ERROR(CompilePhase(&main_work, &out_.post,
                                         /*in_post=*/true, nullptr));
    }
    if (!main_work.empty()) {
      return Error("cannot order body goals: '" +
                   DescribeLiteral(*main_work.front()) +
                   "' has unbound variables");
    }

    // Delta-first variants: one generator plan per clique occurrence,
    // with that atom leading the join.
    out_.delta_plans.resize(out_.num_clique_occurrences);
    for (const auto& [pinned, occ] : occurrence_of_) {
      auto variant_work = work;
      const auto saved_gen = generator_bound_;
      const auto saved_post = post_bound_;
      const auto saved_stage = stage_derived_;
      const auto saved_slots = out_.generator_bound_slots;
      generator_bound_.clear();
      post_bound_.clear();
      stage_derived_.clear();
      out_.generator_bound_slots.clear();
      if (head_params_bound_) {
        std::vector<std::string> head_vars;
        for (const TermNode& t : rule_.head.args) {
          CollectVariables(t, &head_vars);
        }
        for (const std::string& v : head_vars) {
          MarkBound(SlotOf(v), /*in_generator=*/true);
        }
      }
      Status st = CompilePhase(&variant_work, &out_.delta_plans[occ],
                               /*in_post=*/false, pinned);
      generator_bound_ = saved_gen;
      post_bound_ = saved_post;
      stage_derived_ = saved_stage;
      out_.generator_bound_slots = saved_slots;
      GDLOG_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }

  std::string DescribeLiteral(const Literal& lit) const {
    switch (lit.kind) {
      case LiteralKind::kAtom:
        return (lit.negated ? std::string("not ") : std::string()) +
               lit.predicate;
      case LiteralKind::kComparison:
        return std::string(ComparisonOpName(lit.op)) + " comparison";
      case LiteralKind::kNotExists:
        return "negated conjunction";
      default:
        return "goal";
    }
  }

  /// Bound columns of an (uncompiled) atom under the current bound set —
  /// the same analysis CompileAtom performs on compiled terms, applied to
  /// the AST so candidate scans can be costed before committing to one.
  std::vector<uint32_t> BoundColsOf(const Literal& lit, bool in_post) const {
    const auto bound = VisibleBound(in_post);
    auto is_bound = [&](const std::string& name) {
      auto it = slots_.find(name);
      if (it != slots_.end() && bound.count(it->second)) return true;
      return in_post && out_.is_next && name == stage_var_name_;
    };
    std::vector<uint32_t> cols;
    for (size_t col = 0; col < lit.args.size(); ++col) {
      std::vector<std::string> vars;
      CollectVariables(lit.args[col], &vars);
      if (std::all_of(vars.begin(), vars.end(), is_bound)) {
        cols.push_back(static_cast<uint32_t>(col));
      }
    }
    return cols;
  }

  /// Dense per-rule id for a positive body atom, assigned on first sight
  /// and stable thereafter (delta plans recompile the same Literal
  /// pointers, so they resolve to the generator's ids).
  uint32_t GoalIdOf(const Literal* lit) {
    const auto [it, inserted] = goal_id_of_.emplace(lit, out_.num_goals);
    if (inserted) ++out_.num_goals;
    return it->second;
  }

  double EstimateAtomCost(const Literal& lit, bool in_post) const {
    const PredicateId pred = catalog_->Ensure(
        lit.predicate, static_cast<uint32_t>(lit.args.size()));
    return planner_->EstimateScanRows(pred, BoundColsOf(lit, in_post));
  }

  void RecordDecision(const Literal& lit, bool in_post) {
    PlanDecision d;
    switch (lit.kind) {
      case LiteralKind::kAtom:
        d.goal = lit.predicate + "/" + std::to_string(lit.args.size());
        d.negated = lit.negated;
        d.filter = lit.negated;
        d.arity = static_cast<uint32_t>(lit.args.size());
        d.bound_cols =
            static_cast<uint32_t>(BoundColsOf(lit, in_post).size());
        if (!lit.negated) {
          d.est_rows = EstimateAtomCost(lit, in_post);
          d.goal_id = static_cast<int>(GoalIdOf(&lit));
        }
        break;
      case LiteralKind::kComparison:
        d.goal = std::string(ComparisonOpName(lit.op));
        d.filter = true;
        break;
      default:
        d.goal = "not-exists";
        d.filter = true;
        break;
    }
    out_.plan_decisions.push_back(std::move(d));
  }

  Status CompilePhase(std::vector<const Literal*>* work,
                      std::vector<CompiledLiteral>* plan, bool in_post,
                      const Literal* pinned_first, bool record = false) {
    bool progress = true;
    bool pin_pending = pinned_first != nullptr;
    while (progress && !work->empty()) {
      progress = false;
      // Push selections down: among ready literals prefer (1) pure
      // filters — comparisons, negated atoms, negated conjunctions —
      // over (2) positive scans, so cheap tests run before joins widen.
      // With a planner, the scan pick is the ready atom with the
      // smallest estimated result (ties keep original order); without,
      // it is the first ready atom in original order.
      size_t pick = work->size();
      double pick_cost = 0;
      for (size_t i = 0; i < work->size(); ++i) {
        const Literal& lit = *(*work)[i];
        if (pin_pending && &lit != pinned_first) continue;
        if (!Ready(lit, in_post)) continue;
        const bool is_filter = lit.kind == LiteralKind::kComparison ||
                               lit.kind == LiteralKind::kNotExists ||
                               (lit.kind == LiteralKind::kAtom &&
                                lit.negated);
        if (is_filter) {
          pick = i;
          break;  // first ready filter in original order wins
        }
        if (pin_pending) {
          pick = i;
          break;  // the delta atom leads its plan variant unconditionally
        }
        if (planner_ != nullptr) {
          const double cost = EstimateAtomCost(lit, in_post);
          if (pick == work->size() || cost < pick_cost) {
            pick = i;
            pick_cost = cost;
          }
        } else if (pick == work->size()) {
          pick = i;  // first ready scan, fallback
        }
      }
      if (pick < work->size()) {
        const Literal& lit = *(*work)[pick];
        pin_pending = false;
        if (record) RecordDecision(lit, in_post);
        switch (lit.kind) {
          case LiteralKind::kAtom:
            GDLOG_RETURN_IF_ERROR(CompileAtom(lit, plan, in_post));
            break;
          case LiteralKind::kComparison:
            if (in_post && AlwaysTruePostComparison(lit)) break;
            GDLOG_RETURN_IF_ERROR(CompileComparison(lit, plan, in_post));
            break;
          case LiteralKind::kNotExists:
            GDLOG_RETURN_IF_ERROR(CompileNotExists(lit, plan, in_post));
            break;
          default:
            return Status::Internal("meta goal in work list");
        }
        work->erase(work->begin() + pick);
        progress = true;
      }
    }
    return Status::OK();
  }

  /// True when the variable's only occurrences in the rule are within one
  /// literal holding `count_inside` of them.
  bool IsLocalVariable(const std::string& name, int count_inside) const {
    auto it = total_var_count_.find(name);
    return it != total_var_count_.end() && it->second == count_inside;
  }

  bool Ready(const Literal& lit, bool in_post) {
    // In the generator phase of a next rule, stage-dependent literals
    // wait for the post phase.
    if (!in_post && out_.is_next && MentionsPostVars(lit)) return false;
    const auto bound = VisibleBound(in_post);
    auto is_bound = [&](const std::string& name) {
      auto it = slots_.find(name);
      if (it != slots_.end() && bound.count(it->second)) return true;
      return in_post && out_.is_next && name == stage_var_name_;
    };
    switch (lit.kind) {
      case LiteralKind::kAtom: {
        if (!lit.negated) return true;
        // Negated atom: every variable must be bound or literal-local.
        std::vector<std::string> vars;
        CollectLiteralVariables(lit, &vars);
        std::unordered_map<std::string, int> inside;
        for (const std::string& v : vars) ++inside[v];
        for (const auto& [v, n] : inside) {
          if (!is_bound(v) && !IsLocalVariable(v, n)) return false;
        }
        return true;
      }
      case LiteralKind::kComparison: {
        std::vector<std::string> lv, rv;
        CollectVariables(lit.args[0], &lv);
        CollectVariables(lit.args[1], &rv);
        const bool lhs_bound = std::all_of(lv.begin(), lv.end(), is_bound);
        const bool rhs_bound = std::all_of(rv.begin(), rv.end(), is_bound);
        if (lhs_bound && rhs_bound) return true;
        if (lit.op != ComparisonOp::kEq) return false;
        // Assignment: one side bound, other a bare variable.
        if (rhs_bound && lit.args[0].is_var()) return true;
        if (lhs_bound && lit.args[1].is_var()) return true;
        return false;
      }
      case LiteralKind::kNotExists: {
        // Every variable shared with the rest of the rule must be bound.
        std::vector<std::string> vars;
        CollectLiteralVariables(lit, &vars);
        std::unordered_map<std::string, int> inside;
        for (const std::string& v : vars) ++inside[v];
        for (const auto& [v, n] : inside) {
          if (is_bound(v)) continue;
          if (IsLocalVariable(v, n)) continue;  // purely internal
          return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  /// The bound set visible to a plan segment: generator bindings, plus
  /// stage/post bindings when compiling the post segment, plus
  /// subplan-local bindings inside a NotExists.
  std::unordered_set<uint32_t> VisibleBound(bool in_post) const {
    std::unordered_set<uint32_t> b = generator_bound_;
    if (in_post) {
      if (out_.is_next) b.insert(out_.stage_slot);
      for (uint32_t s : post_bound_) b.insert(s);
    }
    if (in_subplan_) {
      for (uint32_t s : subplan_bound_) b.insert(s);
    }
    return b;
  }

  Status CompileAtom(const Literal& lit,
                     std::vector<CompiledLiteral>* plan, bool in_post) {
    CompiledLiteral cl;
    cl.kind = CompiledLiteral::Kind::kScan;
    CompiledScan& scan = cl.scan;
    scan.negated = lit.negated;
    scan.pred = catalog_->Ensure(lit.predicate,
                                 static_cast<uint32_t>(lit.args.size()));

    const PredIndex pidx = analysis_.graph->Lookup(
        lit.predicate, static_cast<uint32_t>(lit.args.size()));
    const bool same_clique =
        pidx != kNoPred && analysis_.graph->scc_of(pidx) == head_scc_;
    const auto occ_it = occurrence_of_.find(&lit);
    if (occ_it != occurrence_of_.end()) {
      scan.clique_occurrence = occ_it->second;
    }
    // Goal ids key off the AST literal, so every plan variant (generator,
    // delta plans, post) compiling the same body atom shares one id and
    // the executor's cardinality counters aggregate across variants.
    if (!lit.negated) scan.goal_id = GoalIdOf(&lit);

    const auto bound = VisibleBound(in_post);
    for (size_t col = 0; col < lit.args.size(); ++col) {
      const uint32_t t = CompileTerm(lit.args[col]);
      scan.arg_terms.push_back(t);
      if (TermBound(t, bound)) {
        scan.bound_cols.push_back(static_cast<uint32_t>(col));
      } else if (ContainsArith(t)) {
        return Error("arithmetic with unbound variables in an argument of " +
                     lit.predicate);
      }
    }
    if (!scan.bound_cols.empty()) {
      Relation& rel = catalog_->relation(scan.pred);
      scan.index_id = static_cast<int>(rel.EnsureIndex(scan.bound_cols));
    }

    if (!lit.negated) {
      // New bindings from unbound columns.
      for (size_t col = 0; col < lit.args.size(); ++col) {
        std::vector<uint32_t> slots;
        CollectSlots(scan.arg_terms[col], &slots);
        for (uint32_t s : slots) {
          if (!bound.count(s) && !generator_bound_.count(s) &&
              !post_bound_.count(s)) {
            MarkBound(s, !in_post);
            // Track stage-derived slots: bound from the stage column of a
            // same-clique predicate.
            if (same_clique && pidx != kNoPred &&
                analysis_.stage_arg[pidx] == static_cast<int>(col)) {
              stage_derived_.insert(s);
            }
          }
        }
      }
    }
    // (Unbound variables in a negated atom are local existentials —
    // Ready() admitted this literal only if they occur nowhere else.)
    plan->push_back(std::move(cl));
    return Status::OK();
  }

  Status CompileComparison(const Literal& lit,
                           std::vector<CompiledLiteral>* plan, bool in_post) {
    CompiledLiteral cl;
    cl.kind = CompiledLiteral::Kind::kCompare;
    CompiledCompare& cmp = cl.cmp;
    cmp.op = lit.op;
    cmp.lhs = CompileTerm(lit.args[0]);
    cmp.rhs = CompileTerm(lit.args[1]);

    const auto bound = VisibleBound(in_post);
    const bool lhs_bound = TermBound(cmp.lhs, bound);
    const bool rhs_bound = TermBound(cmp.rhs, bound);
    if (lhs_bound && rhs_bound) {
      plan->push_back(std::move(cl));
      return Status::OK();
    }
    if (lit.op == ComparisonOp::kEq) {
      const CTerm& l = out_.pool[cmp.lhs];
      const CTerm& r = out_.pool[cmp.rhs];
      if (!lhs_bound && rhs_bound && l.kind == CTerm::Kind::kVar) {
        cmp.is_assignment = true;
        cmp.assign_slot = l.var_slot;
        cmp.value_term = cmp.rhs;
        if (in_subplan_) {
          subplan_bound_.insert(l.var_slot);
        } else {
          MarkBound(l.var_slot, !in_post);
        }
        plan->push_back(std::move(cl));
        return Status::OK();
      }
      if (!rhs_bound && lhs_bound && r.kind == CTerm::Kind::kVar) {
        cmp.is_assignment = true;
        cmp.assign_slot = r.var_slot;
        cmp.value_term = cmp.lhs;
        if (in_subplan_) {
          subplan_bound_.insert(r.var_slot);
        } else {
          MarkBound(r.var_slot, !in_post);
        }
        plan->push_back(std::move(cl));
        return Status::OK();
      }
      // Unbound-but-matchable patterns (e.g. T = t(X, Y) destructuring)
      // are handled by MatchTerm at runtime if the other side is bound;
      // otherwise the rule is unsafe.
    }
    return Error("comparison " + std::string(ComparisonOpName(lit.op)) +
                 " has unbound variables");
  }

  Status CompileNotExists(const Literal& lit,
                          std::vector<CompiledLiteral>* plan, bool in_post) {
    CompiledLiteral cl;
    cl.kind = CompiledLiteral::Kind::kNotExists;
    const bool saved = in_subplan_;
    in_subplan_ = true;
    auto saved_bound = subplan_bound_;
    for (size_t i = 0; i < lit.body.size(); ++i) {
      const Literal& inner = lit.body[i];
      switch (inner.kind) {
        case LiteralKind::kAtom:
          GDLOG_RETURN_IF_ERROR(
              CompileSubAtom(inner, &cl.sub, in_post));
          break;
        case LiteralKind::kComparison:
          GDLOG_RETURN_IF_ERROR(CompileComparison(inner, &cl.sub, in_post));
          break;
        case LiteralKind::kNotExists:
          GDLOG_RETURN_IF_ERROR(CompileNotExists(inner, &cl.sub, in_post));
          break;
        default:
          in_subplan_ = saved;
          return Error("meta goal inside a negated conjunction");
      }
    }
    in_subplan_ = saved;
    subplan_bound_ = std::move(saved_bound);
    plan->push_back(std::move(cl));
    return Status::OK();
  }

  /// Atom inside a NotExists subplan: like CompileAtom but new variables
  /// are subplan-local.
  Status CompileSubAtom(const Literal& lit,
                        std::vector<CompiledLiteral>* plan, bool in_post) {
    CompiledLiteral cl;
    cl.kind = CompiledLiteral::Kind::kScan;
    CompiledScan& scan = cl.scan;
    scan.negated = lit.negated;
    scan.pred = catalog_->Ensure(lit.predicate,
                                 static_cast<uint32_t>(lit.args.size()));
    const auto bound = VisibleBound(in_post);
    for (size_t col = 0; col < lit.args.size(); ++col) {
      const uint32_t t = CompileTerm(lit.args[col]);
      scan.arg_terms.push_back(t);
      if (TermBound(t, bound)) {
        scan.bound_cols.push_back(static_cast<uint32_t>(col));
      }
    }
    if (!scan.bound_cols.empty()) {
      Relation& rel = catalog_->relation(scan.pred);
      scan.index_id = static_cast<int>(rel.EnsureIndex(scan.bound_cols));
    }
    if (!lit.negated) {
      std::vector<uint32_t> slots;
      for (uint32_t t : scan.arg_terms) CollectSlots(t, &slots);
      for (uint32_t s : slots) {
        if (!bound.count(s)) subplan_bound_.insert(s);
      }
    }
    plan->push_back(std::move(cl));
    return Status::OK();
  }

  Status BuildChoiceSpecs() {
    // Walk original body in order; next(I) contributes the implicit
    // choice(I, W), choice(W, I) pair at its position, matching the order
    // produced by ExpandNext + RewriteChoice.
    std::vector<std::string> chosen_vars;
    auto add_choice = [&](const TermNode& left, const TermNode& right,
                          bool from_next) {
      ChoiceSpec spec;
      spec.left_term = CompileTerm(left);
      spec.right_term = CompileTerm(right);
      spec.from_next = from_next;
      out_.choices.push_back(spec);
      CollectVariables(left, &chosen_vars);
      CollectVariables(right, &chosen_vars);
    };
    for (const Literal& lit : rule_.body) {
      if (lit.kind == LiteralKind::kNext) {
        // Reconstruct W = head args minus the stage position.
        std::vector<TermNode> w_elems;
        for (size_t j = 0; j < rule_.head.args.size(); ++j) {
          if (static_cast<int>(j) != out_.head_stage_pos) {
            w_elems.push_back(rule_.head.args[j]);
          }
        }
        TermNode w = w_elems.size() == 1 ? w_elems[0]
                                         : TermNode::Tuple(std::move(w_elems));
        const TermNode stage = TermNode::Var(stage_var_name_);
        add_choice(stage, w, /*from_next=*/true);
        add_choice(w, stage, /*from_next=*/true);
      } else if (lit.kind == LiteralKind::kChoice) {
        add_choice(lit.args[0], lit.args[1], /*from_next=*/false);
      }
    }
    // chosen$ argument slots (distinct, first occurrence).
    std::unordered_set<std::string> seen;
    for (const std::string& v : chosen_vars) {
      if (seen.insert(v).second) {
        out_.chosen_slots.push_back(SlotOf(v));
      }
    }
    // Validate: choice variables must be bound by generator or stage.
    for (uint32_t s : out_.chosen_slots) {
      if (generator_bound_.count(s)) continue;
      if (out_.is_next && s == out_.stage_slot) continue;
      if (post_bound_.count(s)) continue;
      return Error("choice variable " + out_.slot_names[s] +
                   " is not bound by the rule body");
    }
    return Status::OK();
  }

  void ComputeSnapshotSlots() {
    if (!out_.is_gamma) return;
    std::unordered_set<uint32_t> live;
    auto add_term = [&](uint32_t t) { CollectSlots(t, &live_scratch_); };
    for (uint32_t t : out_.head_terms) add_term(t);
    for (const ChoiceSpec& spec : out_.choices) {
      add_term(spec.left_term);
      add_term(spec.right_term);
    }
    if (out_.has_extremum) {
      add_term(out_.cost_term);
      add_term(out_.group_term);
    }
    std::function<void(const CompiledLiteral&)> visit =
        [&](const CompiledLiteral& l) {
          switch (l.kind) {
            case CompiledLiteral::Kind::kScan:
              for (uint32_t t : l.scan.arg_terms) add_term(t);
              break;
            case CompiledLiteral::Kind::kCompare:
              add_term(l.cmp.lhs);
              add_term(l.cmp.rhs);
              break;
            case CompiledLiteral::Kind::kNotExists:
              for (const CompiledLiteral& inner : l.sub) visit(inner);
              break;
          }
        };
    for (const CompiledLiteral& l : out_.post) visit(l);
    for (uint32_t s : live_scratch_) live.insert(s);
    for (uint32_t s : out_.generator_bound_slots) {
      if (live.count(s)) out_.snapshot_slots.push_back(s);
    }
  }

  void ComputeCongruence() {
    if (!out_.is_gamma) return;
    // Candidate congruence-key slots: variables of non-stage-keyed choice
    // left-hand sides that are generator-bound.
    std::unordered_set<uint32_t> keys;
    for (const ChoiceSpec& spec : out_.choices) {
      if (spec.from_next) continue;
      std::vector<uint32_t> slots;
      CollectSlots(spec.left_term, &slots);
      bool all_gen = true;
      for (uint32_t s : slots) {
        if (!generator_bound_.count(s)) all_gen = false;
      }
      if (!all_gen) continue;
      for (uint32_t s : slots) keys.insert(s);
    }
    if (keys.empty()) return;

    // Coverage closure: keys + cost + FD-determined attributes must cover
    // every generator-bound, non-stage-derived slot, and the post plan
    // must be empty (a nonempty post can distinguish congruent
    // candidates, e.g. TSP's I = J + 1).
    if (!out_.post.empty()) return;
    std::unordered_set<uint32_t> covered = keys;
    if (out_.has_extremum) {
      const CTerm& cost = out_.pool[out_.cost_term];
      if (cost.kind == CTerm::Kind::kVar) covered.insert(cost.var_slot);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const ChoiceSpec& spec : out_.choices) {
        if (spec.from_next) continue;
        std::vector<uint32_t> lslots, rslots;
        CollectSlots(spec.left_term, &lslots);
        CollectSlots(spec.right_term, &rslots);
        bool left_covered = true;
        for (uint32_t s : lslots) {
          if (!covered.count(s)) left_covered = false;
        }
        if (!left_covered) continue;
        for (uint32_t s : rslots) {
          if (generator_bound_.count(s) && covered.insert(s).second) {
            changed = true;
          }
        }
      }
    }
    for (uint32_t s : out_.snapshot_slots) {
      if (stage_derived_.count(s)) continue;
      if (!covered.count(s)) return;  // not safe to merge
    }
    out_.merge_by_choice_keys = true;
    out_.congruence_slots.assign(keys.begin(), keys.end());
    std::sort(out_.congruence_slots.begin(), out_.congruence_slots.end());
  }

  const Program& program_;
  const StageAnalysis& analysis_;
  const Rule& rule_;
  Catalog* catalog_;
  ValueStore* store_;

  JoinPlanner* planner_ = nullptr;

  CompiledRule out_;
  std::unordered_map<std::string, uint32_t> slots_;
  std::unordered_set<uint32_t> generator_bound_;
  std::unordered_set<uint32_t> post_bound_;
  std::unordered_set<uint32_t> stage_derived_;
  std::unordered_set<uint32_t> subplan_bound_;
  std::vector<uint32_t> live_scratch_;
  std::unordered_map<std::string, int> total_var_count_;
  std::unordered_map<const Literal*, uint32_t> occurrence_of_;
  std::unordered_map<const Literal*, uint32_t> goal_id_of_;
  std::string stage_var_name_;
  PredIndex head_pred_index_ = kNoPred;
  uint32_t head_scc_ = 0;
  bool in_subplan_ = false;
  bool head_params_bound_ = false;
};

}  // namespace

Result<std::vector<CompiledRule>> CompileProgram(
    const Program& program, const StageAnalysis& analysis, Catalog* catalog,
    ValueStore* store, const CompileProgramOptions& options) {
  std::vector<CompiledRule> out;
  out.reserve(program.rules.size());
  // Ensure head relations exist even for predicates that are never read.
  for (const Rule& r : program.rules) {
    catalog->Ensure(r.head.predicate,
                    static_cast<uint32_t>(r.head.args.size()));
  }
  int gamma_counter = 0;
  for (uint32_t ri = 0; ri < program.rules.size(); ++ri) {
    if (program.rules[ri].is_fact()) continue;  // loaded directly
    const bool head_bound =
        options.head_params_bound &&
        options.head_params_bound(program.rules[ri].head.predicate);
    RuleCompiler rc(program, analysis, ri, catalog, store, head_bound,
                    options.planner);
    GDLOG_ASSIGN_OR_RETURN(CompiledRule cr, rc.Compile());
    if (cr.is_gamma) cr.gamma_index = gamma_counter++;
    out.push_back(std::move(cr));
  }
  return out;
}

}  // namespace gdlog
