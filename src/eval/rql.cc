#include "eval/rql.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace gdlog {

CandidateQueue::CandidateQueue(const ValueStore* store, Order order,
                               bool merge, uint64_t tie_seed,
                               bool linear_scan)
    : store_(store),
      order_(order),
      merge_(merge),
      tie_seed_(tie_seed),
      linear_scan_(linear_scan) {}

bool CandidateQueue::After(const HeapEntry& a, const HeapEntry& b) const {
  if (order_ != Order::kFifo) {
    const int c = store_->Compare(a.cost, b.cost);
    if (c != 0) {
      return order_ == Order::kMin ? c > 0 : c < 0;
    }
  }
  return a.tie > b.tie;
}

void CandidateQueue::Push(Value cost, Value congruence_key,
                          std::vector<Value> snapshot,
                          std::vector<ProvPremise> premises) {
  ++stats_.inserted;
  if (fired_.count(congruence_key)) {
    ++stats_.merged;
    return;  // L-hit at insertion: straight to R (paper's insertion rule)
  }
  const uint64_t seq = next_seq_++;
  bool superseding = false;
  auto it = live_.find(congruence_key);
  if (it != live_.end()) {
    if (!merge_) {
      // Full mode: the key is the whole candidate — exact duplicate.
      ++stats_.merged;
      return;
    }
    // Merge mode: keep the better of the congruent pair in Q.
    // Find the authoritative entry's cost via a linear probe is too
    // slow; we track it in the live map instead.
    const Value old_cost = live_cost_[congruence_key];
    const int c = store_->Compare(cost, old_cost);
    const bool new_better = order_ == Order::kMin ? c < 0 : c > 0;
    if (!new_better) {
      ++stats_.merged;
      return;
    }
    // Supersede: the old heap entry goes stale.
    ++stats_.merged;
    superseding = true;
  }
  live_[congruence_key] = seq;
  live_cost_[congruence_key] = cost;
  if (!superseding) ++live_count_;

  HeapEntry e;
  e.cost = cost;
  e.seq = seq;
  e.tie = tie_seed_ ? Mix64(seq ^ tie_seed_) : seq;
  e.key = congruence_key;
  e.snapshot = std::move(snapshot);
  e.premises = std::move(premises);
  heap_.push_back(std::move(e));
  if (!linear_scan_) {
    // Sift up.
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!After(heap_[parent], heap_[i])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }
  stats_.max_queue = std::max(stats_.max_queue, live_count_);
  if (tracer_ != nullptr) TraceOp(".push");
}

void CandidateQueue::SkimDead() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    const auto it = live_.find(top.key);
    const bool stale = it == live_.end() || it->second != top.seq;
    const bool l_hit = fired_.count(top.key) > 0;
    if (!stale && !l_hit) return;
    ++stats_.redundant;
    if (tracer_ != nullptr) TraceOp(".lazy_delete");
    // Remove top: move last to root and sift down.
    heap_[0] = std::move(heap_.back());
    heap_.pop_back();
    size_t i = 0;
    for (;;) {
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      size_t best = i;
      if (l < heap_.size() && After(heap_[best], heap_[l])) best = l;
      if (r < heap_.size() && After(heap_[best], heap_[r])) best = r;
      if (best == i) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }
}

std::optional<Candidate> CandidateQueue::Pop() {
  if (linear_scan_) return PopLinear();
  SkimDead();
  if (heap_.empty()) return std::nullopt;
  HeapEntry top = std::move(heap_[0]);
  heap_[0] = std::move(heap_.back());
  heap_.pop_back();
  size_t i = 0;
  for (;;) {
    const size_t l = 2 * i + 1, r = 2 * i + 2;
    size_t best = i;
    if (l < heap_.size() && After(heap_[best], heap_[l])) best = l;
    if (r < heap_.size() && After(heap_[best], heap_[r])) best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  Candidate c;
  c.cost = top.cost;
  c.seq = top.seq;
  c.congruence_key = top.key;
  c.snapshot = std::move(top.snapshot);
  c.premises = std::move(top.premises);
  if (live_count_ > 0) --live_count_;
  if (tracer_ != nullptr) TraceOp(".pop");
  return c;
}

bool CandidateQueue::EntryLive(const HeapEntry& e) const {
  const auto it = live_.find(e.key);
  return it != live_.end() && it->second == e.seq && fired_.count(e.key) == 0;
}

size_t CandidateQueue::CountLiveEqualCost(const Value& cost) const {
  if (heap_.empty()) return 0;
  if (linear_scan_ || order_ == Order::kFifo) {
    // FIFO heaps order by seq, not cost, so there is nothing to prune;
    // the linear ablation has no heap order at all.
    size_t n = 0;
    for (const HeapEntry& e : heap_) {
      if (EntryLive(e) && store_->Compare(e.cost, cost) == 0) ++n;
    }
    return n;
  }
  // Min/max heap: walk from the root, pruning any subtree whose root is
  // already strictly worse than `cost` (its descendants are worse still).
  // Stale entries may be better than `cost`, so "better" roots are
  // traversed without being counted.
  size_t n = 0;
  std::vector<size_t> stack{0};
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    if (i >= heap_.size()) continue;
    const int c = store_->Compare(heap_[i].cost, cost);
    const bool worse = order_ == Order::kMin ? c > 0 : c < 0;
    if (worse) continue;
    if (c == 0 && EntryLive(heap_[i])) ++n;
    stack.push_back(2 * i + 1);
    stack.push_back(2 * i + 2);
  }
  return n;
}

void CandidateQueue::MarkFired(const Candidate& c) {
  fired_.insert(c.congruence_key);
  ++stats_.fired;
}

void CandidateQueue::MarkRedundant(const Candidate& c) {
  ++stats_.redundant;
  if (merge_) {
    // The FD that rejected this candidate is keyed by the congruence key,
    // so the whole class is dead: block future congruent insertions.
    fired_.insert(c.congruence_key);
  }
  // Full mode: the key stays in live_ as a seen-set entry, so exact
  // re-derivations keep being dropped at insertion.
}

std::optional<Candidate> CandidateQueue::PopLinear() {
  for (;;) {
    if (heap_.empty()) return std::nullopt;
    size_t best = heap_.size();
    for (size_t i = 0; i < heap_.size(); ++i) {
      const auto it = live_.find(heap_[i].key);
      const bool dead = it == live_.end() || it->second != heap_[i].seq ||
                        fired_.count(heap_[i].key) > 0;
      if (dead) continue;
      if (best == heap_.size() || After(heap_[best], heap_[i])) best = i;
    }
    if (best == heap_.size()) {
      // Everything left is dead.
      stats_.redundant += heap_.size();
      heap_.clear();
      return std::nullopt;
    }
    HeapEntry e = std::move(heap_[best]);
    heap_[best] = std::move(heap_.back());
    heap_.pop_back();
    Candidate c;
    c.cost = e.cost;
    c.seq = e.seq;
    c.congruence_key = e.key;
    c.snapshot = std::move(e.snapshot);
    c.premises = std::move(e.premises);
    if (live_count_ > 0) --live_count_;
    if (tracer_ != nullptr) TraceOp(".pop");
    return c;
  }
}

bool CandidateQueue::Empty() {
  if (linear_scan_) {
    for (const HeapEntry& e : heap_) {
      const auto it = live_.find(e.key);
      if (it != live_.end() && it->second == e.seq && !fired_.count(e.key)) {
        return false;
      }
    }
    return true;
  }
  SkimDead();
  return heap_.empty();
}

}  // namespace gdlog
