// Binding frames: the variable environment threaded through rule
// execution. Rule variables are compiled to dense slot numbers; a frame
// is a flat array of slots plus a trail for backtracking.
#ifndef GDLOG_EVAL_BINDING_H_
#define GDLOG_EVAL_BINDING_H_

#include <cstdint>
#include <vector>

#include "value/value.h"

namespace gdlog {

class BindingFrame {
 public:
  explicit BindingFrame(uint32_t num_slots = 0) { Reset(num_slots); }

  void Reset(uint32_t num_slots) {
    slots_.assign(num_slots, Value());
    bound_.assign(num_slots, false);
    trail_.clear();
  }

  bool IsBound(uint32_t slot) const { return bound_[slot]; }
  Value Get(uint32_t slot) const { return slots_[slot]; }

  /// Binds an unbound slot and records it on the trail.
  void Bind(uint32_t slot, Value v) {
    GDLOG_CHECK(!bound_[slot]);
    slots_[slot] = v;
    bound_[slot] = true;
    trail_.push_back(slot);
  }

  /// Scratch fast path (eval/vm): writes a slot without the checked
  /// invariant or the trail. The caller guarantees the slot is unbound
  /// here (the VM's lowering proves it statically) and clears it itself
  /// on every exit path, so Bind/UndoTo never observe a stale scratch
  /// slot.
  void BindScratch(uint32_t slot, Value v) {
    slots_[slot] = v;
    bound_[slot] = true;
  }
  void ClearScratch(uint32_t slot) { bound_[slot] = false; }

  /// Pure-slot fast path (eval/vm): value write only, no bound flag.
  /// Legal only when the executing plan provably never evaluates a
  /// term against the frame (no EvalTerm/MatchTerm reachable — see
  /// vm::PlanCode::pure_slots): nothing reads IsBound, so the flag can
  /// stay false throughout and there is nothing to clear on row exit.
  void BindValueOnly(uint32_t slot, Value v) { slots_[slot] = v; }

  /// Current trail depth; pass to UndoTo to unwind.
  size_t Mark() const { return trail_.size(); }

  /// Unbinds every slot bound after `mark`.
  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bound_[trail_.back()] = false;
      trail_.pop_back();
    }
  }

  size_t num_slots() const { return slots_.size(); }

 private:
  std::vector<Value> slots_;
  std::vector<bool> bound_;
  std::vector<uint32_t> trail_;
};

}  // namespace gdlog

#endif  // GDLOG_EVAL_BINDING_H_
