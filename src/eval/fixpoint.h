// Fixpoint drivers: the Choice Fixpoint (Section 2) and the Alternating
// Stage-Choice Fixpoint (Section 4), unified over one per-clique loop.
//
// Cliques are saturated in dependency order (stratum by stratum). Within
// a clique the driver alternates:
//
//   Saturate (Q∞)  — seminaive rounds over the clique's flat rules; new
//                    tuples also flow into the gamma rules' candidate
//                    queues (the paper's insertion into D_r);
//   GammaPhase (γ) — non-next choice rules drain every admissible
//                    candidate (each drain step is a γ application whose
//                    interleaving with Q∞ is immaterial because their
//                    saturation adds only candidates, never invalidates
//                    them); next rules fire exactly ONE candidate — the
//                    best live queue entry passing its post conditions
//                    and choice FDs — then the stage counter advances.
//
// The loop ends when γ produces nothing. For stage-stratified programs
// this computes a stable model (Theorem 1); each Pop/fire is O(log |Q|),
// giving the Section 6 complexity bounds.
#ifndef GDLOG_EVAL_FIXPOINT_H_
#define GDLOG_EVAL_FIXPOINT_H_

#include <memory>
#include <vector>

#include "analysis/stage.h"
#include "common/guardrails.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "eval/choice_runtime.h"
#include "eval/parallel_eval.h"
#include "eval/rql.h"
#include "eval/rule_compiler.h"
#include "eval/seminaive.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace gdlog {

namespace ir {
struct LoweringReport;
struct ProgramIR;
}  // namespace ir
namespace vm {
struct ProgramCode;
}  // namespace vm

/// Rule-execution backend (EvalOptions::backend, shell --backend).
enum class EvalBackend : uint8_t {
  kInterp,  // tree-walking interpreter — the differential oracle
  kVm,      // bytecode VM (eval/ir lowering + eval/vm execution);
            // rejected rule shapes fall back to the interpreter per rule
};

struct EvalOptions {
  /// Perturbs equal-cost / FIFO candidate ordering; different seeds
  /// explore different stable models. 0 = deterministic program order.
  uint64_t choice_seed = 0;
  /// Allow congruence-merge insertion where the compiler proved it safe
  /// (the paper's r-congruence classes). Off = full lazy-deletion queues.
  bool use_merge_congruence = true;
  /// Use priority-queue retrieval for least/most (Section 6). Off = the
  /// naive O(|Q|) linear re-scan per retrieval — the ablation baseline.
  bool use_priority_queue = true;
  /// Use the seminaive refinement (delta-driven rule variants). Off =
  /// naive evaluation: every saturation round re-runs every recursive
  /// rule over full windows — the ablation baseline for the abstract's
  /// "through seminaive refinements ... low asymptotic complexity".
  bool use_seminaive = true;
  /// Worker threads for rule-application enumeration. 1 = the exact
  /// legacy serial path; N > 1 evaluates independent applications of a
  /// saturation round concurrently and partitions large leading scans,
  /// with results merged in serial order so the run is bit-identical to
  /// threads=1. 0 = hardware concurrency.
  uint32_t threads = 1;
  /// Cost-based join planning (goal reordering by boundness + estimated
  /// selectivity). Off = parser order with filters-first — the planner
  /// ablation baseline. Consumed by Engine when compiling; the driver
  /// itself only echoes it into reports.
  bool use_join_planner = true;
  /// Feed static-analysis cardinality upper bounds (analysis/absint) to
  /// the join planner as priors for empty IDB relations, replacing the
  /// neutral 256-row default. Pure function of program + loaded EDB, so
  /// planning stays deterministic. Off = the priors ablation baseline.
  /// No effect when use_join_planner is off.
  bool use_cardinality_priors = true;
  /// Minimum leading-scan window (rows) before one application is split
  /// across workers; below it the application still runs as a single
  /// parallel task. Tests lower this to force partitioning on tiny data.
  uint32_t parallel_min_rows = 64;
  /// Derivation provenance + choice audit: annotate every derived row
  /// with (rule, premises) and record one ChoiceAuditEntry per γ firing.
  /// Annotations are pure metadata — evaluation order, insert order, and
  /// the fixpoint itself are bit-identical with the flag off, at any
  /// thread count. The caller must also enable the catalog's provenance
  /// column (Engine does both from EngineOptions::provenance).
  bool provenance = false;
  /// Which executor runs rule plans. Both backends are bit-identical
  /// (model, stats, audit trail, provenance) at any thread count — the
  /// differential fleet in tests/differential_test.cc enforces it. The
  /// interpreter stays the default and the oracle.
  EvalBackend backend = EvalBackend::kInterp;
};

struct FixpointStats {
  uint64_t saturation_rounds = 0;
  uint64_t gamma_firings = 0;
  uint64_t stages_assigned = 0;
  // Why the run ended (guardrails): kCompleted is a genuine fixpoint,
  // anything else a bounded stop with the partial state retained.
  TerminationReason termination = TerminationReason::kCompleted;
  uint64_t guard_checks = 0;          // limit/cancel polls performed
  uint64_t peak_memory_bytes = 0;     // MemoryBudget high-water (0 = untracked)
  // Wall time split between the two alternating phases; collected only
  // when observability is enabled (0 otherwise).
  uint64_t saturate_ns = 0;
  uint64_t gamma_ns = 0;
  // Parallel evaluation: resolved worker count and how much work went
  // through the pool (zero everywhere when threads == 1).
  uint32_t threads_used = 1;
  uint64_t parallel_batches = 0;  // batches with at least one worker task
  uint64_t parallel_tasks = 0;    // worker tasks run (partitions count)
  uint64_t parallel_apps = 0;     // applications enumerated off-thread
  uint64_t serial_apps = 0;       // applications kept on the main thread
  ExecStats exec;
  CandidateQueueStats queues;  // aggregated over all gamma rules
};

/// Per-rule evaluation profile, indexed by CompiledRule::rule_index.
/// Counts are always maintained (they are O(1) per rule application);
/// wall_ns is collected only when observability is enabled.
struct RuleProfile {
  std::string head;            // "pred/arity"; empty = no compiled rule
  const char* kind = "";       // "plain" | "aggregate" | "gamma" | "next"
  bool recursive = false;
  uint64_t invocations = 0;    // plan evaluations (delta variants count)
  uint64_t firings = 0;        // γ firings (gamma rules only)
  uint64_t tuples = 0;         // new head tuples produced
  uint64_t dedup_hits = 0;     // head tuples rejected as duplicates
  uint64_t candidates = 0;     // queue insertions (gamma rules only)
  uint64_t wall_ns = 0;
  Histogram* latency = nullptr;  // per-application latency (metrics mode)
};

class FixpointDriver {
 public:
  /// `obs` carries the (optional) metrics registry and tracer; default
  /// both null, in which case every instrumented site reduces to one
  /// branch.
  /// `guard` (optional) is polled at fixpoint-iteration and gamma-step
  /// boundaries; when a check trips, Run returns the guard's status with
  /// all statistics for the partial evaluation filled in.
  FixpointDriver(Catalog* catalog, ValueStore* store,
                 const StageAnalysis* analysis,
                 std::vector<CompiledRule> rules, EvalOptions options,
                 ObsContext obs = {}, RunGuard* guard = nullptr);
  // Out-of-line: members hold forward-declared ir/vm types.
  ~FixpointDriver();

  /// Evaluates the whole program to its (choice) fixpoint, or to the
  /// first guard stop. Statistics are valid either way.
  Status Run();

  const ChoiceRuntime& choice_runtime() const { return choice_; }
  const std::vector<CompiledRule>& rules() const { return rules_; }
  const FixpointStats& stats() const { return stats_; }
  const ExecStats& exec_stats() const { return exec_stats_view_; }
  /// Indexed by rule_index; entries with an empty `head` had no compiled
  /// rule (program facts).
  const std::vector<RuleProfile>& rule_profiles() const { return profiles_; }

  /// Actual per-goal cardinalities, indexed [rule_index][goal_id]
  /// (matching PlanDecision::goal_id). Empty rows when metrics are
  /// disabled — the EXPLAIN ANALYZE source of truth otherwise.
  const std::vector<std::vector<GoalStats>>& goal_stats() const {
    return goal_stats_;
  }

  /// The choice-audit trail (one entry per γ firing), or nullptr when
  /// EvalOptions::provenance is off.
  const ChoiceAuditTrail* choice_audit() const { return audit_.get(); }

  /// Lowering coverage of the bytecode backend (how many rules run on
  /// the VM, and why the rest fell back), or nullptr under kInterp.
  const ir::LoweringReport* vm_coverage() const;

  /// Sums candidate-queue statistics over every gamma rule.
  CandidateQueueStats AggregateQueueStats() const;
  /// Queue statistics of one gamma rule (by gamma index); nullptr if the
  /// index has no queue.
  const CandidateQueueStats* QueueStats(int gamma_index) const;

 private:
  struct GammaState {
    const CompiledRule* rule;
    std::unique_ptr<CandidateQueue> queue;
    bool merge = false;  // effective congruence-merge mode
    // For non-next extrema rules: first-seen (= true) extremum per group.
    std::unordered_map<Value, Value, ValueHash> group_best;
  };

  struct CliqueCtx {
    std::vector<const CompiledRule*> plain;      // no meta behavior
    std::vector<const CompiledRule*> aggregate;  // extrema, non-gamma
    std::vector<GammaState*> gammas;
    std::vector<PredicateId> relations;  // clique head relations
    int64_t stage_counter = 0;
    bool has_next = false;
  };

  /// One rule application of a saturation round, in serial order.
  struct App {
    enum class Kind : uint8_t { kPlain, kAggregate, kGamma };
    Kind kind = Kind::kPlain;
    const CompiledRule* rule = nullptr;
    GammaState* g = nullptr;  // kGamma only
    uint32_t delta = UINT32_MAX;
  };
  /// One worker task: a (possibly row-partitioned) enumeration of one
  /// application, capturing per-solution slot values for the merge.
  struct WorkerTask {
    size_t app = 0;  // index into the batch
    const std::vector<CompiledLiteral>* plan = nullptr;
    const RuleParallelSafety* safety = nullptr;
    bool ranged = false;
    RowId begin = 0, end = 0;  // leading-scan partition when ranged
    std::vector<Value> values;  // emitted * capture.size(), in order
    // Provenance premises, emitted * (positive scans in plan), in order
    // (empty when provenance is off).
    std::vector<ProvPremise> premises;
    uint64_t emitted = 0;       // top-level solutions (buffered rows)
    // Executor stat counters; `solutions` also counts NotExists
    // sub-enumeration witnesses, so it is NOT the buffered-row count.
    uint64_t solutions = 0;
    uint64_t scan_rows = 0;
    // Task-local per-goal cardinality counters for this task's rule
    // (indexed by goal_id), merged serially in MergeApp.
    std::vector<GoalStats> goal_stats;
    uint64_t t0_ns = 0, t1_ns = 0;  // worker span (obs)
    size_t charged = 0;             // MemoryBudget charge for `values`
  };

  /// Runs consecutive applications, preserving their serial semantics:
  /// with a pool, splits them into order-independent batches, enumerates
  /// each batch's safe applications on workers, and merges in order;
  /// without one, falls back to plain serial evaluation.
  void RunApps(const std::vector<App>& apps);
  void RunBatch(const App* apps, size_t count);
  void RunWorkerTask(WorkerTask* task, const App& app);
  /// Replays one application's captured solutions on the main thread,
  /// reproducing the serial interning/insert/push order exactly.
  void MergeApp(const App& app, WorkerTask* tasks, size_t count);
  void EvalSerial(const App& app);
  /// The plan variant an application runs (generator or delta plan).
  static const std::vector<CompiledLiteral>& PlanOf(const CompiledRule& rule,
                                                    uint32_t delta);

  Status EvalClique(uint32_t scc);
  /// Polls the guard (no-op OK when no guard is installed). `probe` names
  /// the boundary for fault injection.
  Status GuardCheck(std::string_view probe);
  /// Seminaive rounds until no clique relation grows or the guard trips.
  Status Saturate(CliqueCtx* ctx);
  /// One γ application; false when the clique is exhausted.
  bool GammaPhase(CliqueCtx* ctx);

  void EvalPlain(const CompiledRule& rule, uint32_t delta_occurrence);
  void EvalAggregate(const CompiledRule& rule);
  void InsertCandidates(GammaState* g, uint32_t delta_occurrence);

  /// Restores a candidate snapshot into `frame`.
  void RestoreSnapshot(const CompiledRule& rule,
                       const std::vector<Value>& snapshot,
                       BindingFrame* frame);

  /// Attempts to fire one popped candidate of a next rule; true on fire.
  /// `audit` (audit mode only, else null) accumulates per-candidate
  /// rejections and, on fire, receives the witness/stage/cost fields.
  bool TryFireNext(CliqueCtx* ctx, GammaState* g, const Candidate& cand,
                   ChoiceAuditEntry* audit);

  /// Drains a non-next gamma rule's queue, firing every admissible
  /// candidate (extrema-filtered when the rule has one). Returns the
  /// number of firings.
  size_t DrainChoiceRule(GammaState* g);

  /// Clock for profile timing: tracer time when tracing (so spans and
  /// profiles share an epoch), raw steady_clock otherwise.
  uint64_t ObsNowNs() const;
  /// Closes one timed rule application: profile wall time, latency
  /// histogram, and a sampled trace span.
  void RecordApply(RuleProfile* prof, uint64_t start_ns, const char* cat);
  /// Appends an audit entry and re-charges the trail to the MemoryBudget.
  void AddAuditEntry(ChoiceAuditEntry entry);
  /// Publishes end-of-run totals into the metrics registry.
  void PublishMetrics();
  /// Publishes one wide progress event (round / stage) to the tap.
  void PublishProgress(ProgressKind kind, uint64_t delta_rows);

  Catalog* catalog_;
  ValueStore* store_;
  const StageAnalysis* analysis_;
  std::vector<CompiledRule> rules_;
  EvalOptions options_;

  PlanExecutor exec_;
  ChoiceRuntime choice_;
  std::vector<std::unique_ptr<GammaState>> gamma_states_;  // by gamma_index
  FixpointStats stats_;
  ExecStats exec_stats_view_;  // snapshot filled when Run completes

  ObsContext obs_;
  bool obs_enabled_ = false;  // == obs_.enabled(), cached for the hot path
  RunGuard* guard_ = nullptr;
  std::vector<RuleProfile> profiles_;  // by rule_index

  // EXPLAIN ANALYZE actuals, indexed [rule_index][goal_id]; rows are
  // sized (enabling counting) only when metrics are on.
  std::vector<std::vector<GoalStats>> goal_stats_;
  // Cached metric handles (null when metrics are off).
  Histogram* delta_rows_hist_ = nullptr;   // per-relation delta rows/round
  Histogram* pops_per_fire_hist_ = nullptr;  // choice pops per γ firing
  Counter* admissible_ = nullptr;          // candidates passing Admissible
  Counter* inadmissible_ = nullptr;        // candidates rejected by FDs
  // Flight-recorder bookkeeping.
  uint32_t guard_event_tick_ = 0;  // samples kGuardCheck events 1/16
  bool trip_recorded_ = false;

  // Provenance (see EvalOptions::provenance). `prov_trail_` is the
  // serial executor's premise trail; worker executors get task-local
  // trails. `audit_` is allocated iff provenance is on.
  bool prov_ = false;
  std::vector<ProvPremise> prov_trail_;
  std::unique_ptr<ChoiceAuditTrail> audit_;
  size_t audit_charged_ = 0;  // MemoryBudget charge for the trail

  // Parallel evaluation (null / empty when threads == 1).
  std::unique_ptr<ThreadPool> pool_;
  std::vector<RuleParallelSafety> safety_;  // by rule_index

  // Bytecode backend (null under kInterp): the lowered IR (owns the
  // coverage report and op lists) and the executable program compiled
  // from it. Shared read-only with every worker executor.
  std::unique_ptr<ir::ProgramIR> vm_ir_;
  std::unique_ptr<vm::ProgramCode> vm_code_;
  size_t vm_charged_ = 0;  // MemoryBudget charge for the program
};

}  // namespace gdlog

#endif  // GDLOG_EVAL_FIXPOINT_H_
