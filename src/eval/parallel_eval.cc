#include "eval/parallel_eval.h"

#include <algorithm>
#include <unordered_set>

namespace gdlog {

namespace {

/// No kConstruct anywhere: evaluating the term via EvalTerm cannot
/// intern (kArith over ints, constants, bound variables).
bool TermInternFree(const std::vector<CTerm>& pool, uint32_t t) {
  const CTerm& ct = pool[t];
  if (ct.kind == CTerm::Kind::kConstruct) return false;
  for (uint32_t a : ct.args) {
    if (!TermInternFree(pool, a)) return false;
  }
  return true;
}

/// Safe to MatchTerm against: constructors destructure (read-only), but
/// any arithmetic subterm switches to EvalTerm, whose arguments must
/// then be intern-free.
bool TermMatchSafe(const std::vector<CTerm>& pool, uint32_t t) {
  const CTerm& ct = pool[t];
  switch (ct.kind) {
    case CTerm::Kind::kConst:
    case CTerm::Kind::kVar:
      return true;
    case CTerm::Kind::kArith:
      return TermInternFree(pool, t);
    case CTerm::Kind::kConstruct:
      for (uint32_t a : ct.args) {
        if (!TermMatchSafe(pool, a)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace

bool PlanInternFree(const CompiledRule& rule,
                    const std::vector<CompiledLiteral>& plan) {
  for (const CompiledLiteral& lit : plan) {
    switch (lit.kind) {
      case CompiledLiteral::Kind::kScan: {
        const CompiledScan& scan = lit.scan;
        std::unordered_set<uint32_t> bound(scan.bound_cols.begin(),
                                           scan.bound_cols.end());
        for (size_t col = 0; col < scan.arg_terms.size(); ++col) {
          // Bound columns are evaluated into the probe key (EvalTerm);
          // unbound ones are matched against stored tuples.
          if (bound.count(static_cast<uint32_t>(col))
                  ? !TermInternFree(rule.pool, scan.arg_terms[col])
                  : !TermMatchSafe(rule.pool, scan.arg_terms[col])) {
            return false;
          }
        }
        break;
      }
      case CompiledLiteral::Kind::kCompare:
        if (lit.cmp.is_assignment) {
          if (!TermInternFree(rule.pool, lit.cmp.value_term)) return false;
        } else if (!TermInternFree(rule.pool, lit.cmp.lhs) ||
                   !TermInternFree(rule.pool, lit.cmp.rhs)) {
          return false;
        }
        break;
      case CompiledLiteral::Kind::kNotExists:
        if (!PlanInternFree(rule, lit.sub)) return false;
        break;
    }
  }
  return true;
}

RuleParallelSafety AnalyzeRule(const CompiledRule& rule) {
  RuleParallelSafety s;

  // Capture set: everything the merge phase reads off the frame.
  std::unordered_set<uint32_t> capture;
  std::function<void(uint32_t)> add_term = [&](uint32_t t) {
    const CTerm& ct = rule.pool[t];
    if (ct.kind == CTerm::Kind::kVar) {
      capture.insert(ct.var_slot);
    } else {
      for (uint32_t a : ct.args) add_term(a);
    }
  };
  if (rule.is_gamma) {
    for (uint32_t slot : rule.snapshot_slots) capture.insert(slot);
    for (uint32_t slot : rule.congruence_slots) capture.insert(slot);
    if (rule.has_extremum) add_term(rule.cost_term);
  } else {
    for (uint32_t t : rule.head_terms) add_term(t);
    if (rule.has_extremum) {
      add_term(rule.cost_term);
      add_term(rule.group_term);
    }
  }
  s.capture.assign(capture.begin(), capture.end());
  std::sort(s.capture.begin(), s.capture.end());

  const std::unordered_set<uint32_t> gen_bound(
      rule.generator_bound_slots.begin(), rule.generator_bound_slots.end());
  s.capture_ok = std::all_of(s.capture.begin(), s.capture.end(),
                             [&](uint32_t slot) {
                               return gen_bound.count(slot) > 0;
                             });

  s.generator_safe = PlanInternFree(rule, rule.generator);
  s.delta_safe.reserve(rule.delta_plans.size());
  for (const auto& plan : rule.delta_plans) {
    s.delta_safe.push_back(PlanInternFree(rule, plan));
  }
  return s;
}

void CollectFullWindowReads(const std::vector<CompiledLiteral>& plan,
                            uint32_t delta_occurrence,
                            std::vector<PredicateId>* out) {
  for (const CompiledLiteral& lit : plan) {
    switch (lit.kind) {
      case CompiledLiteral::Kind::kScan: {
        const CompiledScan& scan = lit.scan;
        // Delta variants freeze positive same-clique scans at the
        // round-start watermarks; everything else reads [0, size).
        const bool frozen =
            delta_occurrence != CompiledScan::kNoOccurrence &&
            !scan.negated &&
            scan.clique_occurrence != CompiledScan::kNoOccurrence;
        if (!frozen) out->push_back(scan.pred);
        break;
      }
      case CompiledLiteral::Kind::kCompare:
        break;
      case CompiledLiteral::Kind::kNotExists:
        // Subplans always run with kNoOccurrence — full windows.
        CollectFullWindowReads(lit.sub, CompiledScan::kNoOccurrence, out);
        break;
    }
  }
}

}  // namespace gdlog
