#include "eval/binding.h"

// BindingFrame is header-only; this translation unit anchors the target.
