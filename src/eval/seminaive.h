// Plan execution: nested-loop joins with index probes and seminaive
// delta windowing.
//
// A plan (a CompiledRule's generator or post segment) is enumerated left
// to right; positive scans probe the hash index on their bound columns
// ("assuming availability of indices", Section 6), negated scans perform
// an any-match refutation, NotExists literals run their subplan to the
// first solution.
//
// Delta windowing implements the seminaive refinement: pass
// `delta_occurrence = d` to evaluate the variant where the d-th positive
// same-clique atom reads only the delta window, earlier ones read the
// pre-delta region, and later ones read up to the delta's end.
#ifndef GDLOG_EVAL_SEMINAIVE_H_
#define GDLOG_EVAL_SEMINAIVE_H_

#include <functional>
#include <utility>

#include "common/guardrails.h"
#include "eval/binding.h"
#include "eval/rule_compiler.h"
#include "storage/catalog.h"

namespace gdlog {

class Histogram;

namespace vm {
struct ProgramCode;
struct PlanCode;
struct RuleCode;
struct ExecCtx;
}  // namespace vm

struct ExecStats {
  uint64_t solutions = 0;   // complete body bindings enumerated
  uint64_t inserts = 0;     // new head tuples
  uint64_t scan_rows = 0;   // rows touched by scans (work measure)
};

/// Actual per-goal cardinality counters for EXPLAIN ANALYZE, accumulated
/// by RunScan for positive scans carrying a goal_id. Counters are plain
/// (each executor writes its own table; parallel workers merge their
/// task-local tables serially); the fan-out histogram, when set, is
/// lock-free and may be shared across executors.
struct GoalStats {
  uint64_t probes = 0;   // scan invocations (outer-binding probes)
  uint64_t rows = 0;     // rows touched (window rows / index postings)
  uint64_t matches = 0;  // rows matching every term (join fan-out)
  Histogram* fanout = nullptr;  // per-probe match count distribution
};

class PlanExecutor {
 public:
  PlanExecutor(Catalog* catalog, ValueStore* store)
      : catalog_(catalog), store_(store) {}

  /// Membership oracle for negated goals, used by the stable-model
  /// checker to test negation against a *fixed* model instead of the
  /// growing database. Negated scans must be ground when an oracle is
  /// installed.
  using NegationOracle = std::function<bool(PredicateId, TupleView)>;
  void set_negation_oracle(NegationOracle oracle) {
    oracle_ = std::move(oracle);
  }

  /// Restricts one scan of the plan to rows [begin, end) ∩ its seminaive
  /// window — the row-range partitioning hook of parallel evaluation
  /// (each worker gets its own executor with its own range).
  void set_scan_range(const CompiledScan* scan, RowId begin, RowId end) {
    range_scan_ = scan;
    range_begin_ = begin;
    range_end_ = end;
  }

  /// When set, scans poll the token every ~4k rows and abort the
  /// enumeration on cancellation (workers observe a cancel mid-scan
  /// instead of running their partition to completion).
  void set_cancel_token(const CancelToken* cancel) { cancel_ = cancel; }

  /// Per-goal cardinality sink, indexed [rule_index][goal_id]. Rows
  /// shorter than a rule's goal count (or missing) disable counting for
  /// that rule. Not owned.
  void set_goal_stats(std::vector<std::vector<GoalStats>>* table) {
    goal_stats_ = table;
  }

  /// Provenance premise trail (not owned; null = provenance off). While
  /// set, every positive top-level scan pushes its matched (pred, row)
  /// before descending and pops it on the way back, so at each complete
  /// solution the trail holds exactly one premise per positive goal, in
  /// plan order. Negated scans and NotExists subplans contribute nothing
  /// (the subplan enumeration runs with the trail detached).
  void set_provenance_trail(std::vector<ProvPremise>* trail) {
    trail_ = trail;
  }
  std::vector<ProvPremise>* provenance_trail() { return trail_; }

  /// Installs a compiled bytecode program (EvalOptions::backend = vm).
  /// Plans found in it run on the VM; plans the lowering rejected — and
  /// every plan while a negation oracle is installed — keep running on
  /// the interpreter. The program is shared, immutable, and not owned.
  void set_vm_program(const vm::ProgramCode* program) { vm_ = program; }
  const vm::ProgramCode* vm_program() const { return vm_; }

  /// The seminaive row window `scan` reads under `delta_occurrence`
  /// (exposed for partition planning).
  static std::pair<RowId, RowId> ScanWindow(const CompiledScan& scan,
                                            const Relation& rel,
                                            uint32_t delta_occurrence);

  /// Enumerates all solutions of `plan` extending `frame`, invoking
  /// `on_solution` for each; the callback returns false to abort the
  /// enumeration. Returns false iff aborted.
  bool Enumerate(const CompiledRule& rule,
                 const std::vector<CompiledLiteral>& plan,
                 uint32_t delta_occurrence, BindingFrame* frame,
                 const std::function<bool(BindingFrame&)>& on_solution);

  /// Evaluates a plain rule (no meta behavior) into its head relation.
  /// Returns the number of new tuples; when `attempted` is non-null it
  /// receives the number of head tuples built before duplicate
  /// elimination (attempted - returned = dedup hits).
  size_t ApplyRule(const CompiledRule& rule, uint32_t delta_occurrence,
                   size_t* attempted = nullptr);

  /// Builds the head tuple under `frame` into `out`. Returns false if a
  /// head term fails to evaluate (engine bug for compiled rules).
  bool BuildHead(const CompiledRule& rule, const BindingFrame& frame,
                 std::vector<Value>* out);

  ExecStats& stats() { return stats_; }
  ValueStore* store() { return store_; }
  Catalog* catalog() { return catalog_; }

 private:
  bool RunFrom(const CompiledRule& rule,
               const std::vector<CompiledLiteral>& plan, size_t idx,
               uint32_t delta_occurrence, BindingFrame* frame,
               const std::function<bool(BindingFrame&)>& on_solution);

  bool RunScan(const CompiledRule& rule, const CompiledScan& scan,
               uint32_t delta_occurrence, BindingFrame* frame,
               const std::function<bool()>& on_match);

  bool RunCompare(const CompiledRule& rule, const CompiledCompare& cmp,
                  BindingFrame* frame);

  /// The execution context handed to the VM: this executor's own
  /// counters, cancel tick, trail, and scan-range state, so both
  /// backends are indistinguishable to callers.
  vm::ExecCtx VmCtx();
  size_t ApplyRuleVm(const CompiledRule& rule, const vm::PlanCode& code,
                     const vm::RuleCode& rcode, uint32_t delta_occurrence,
                     size_t* attempted);

  Catalog* catalog_;
  ValueStore* store_;
  NegationOracle oracle_;
  ExecStats stats_;

  const CompiledScan* range_scan_ = nullptr;
  RowId range_begin_ = 0;
  RowId range_end_ = 0;
  const CancelToken* cancel_ = nullptr;
  uint32_t cancel_tick_ = 0;
  std::vector<std::vector<GoalStats>>* goal_stats_ = nullptr;
  std::vector<ProvPremise>* trail_ = nullptr;
  const vm::ProgramCode* vm_ = nullptr;
};

}  // namespace gdlog

#endif  // GDLOG_EVAL_SEMINAIVE_H_
