#include "eval/seminaive.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "eval/vm/vm.h"
#include "obs/metrics.h"

namespace gdlog {

namespace {

/// The row window a scan reads under a given delta variant.
struct Window {
  RowId begin = 0;
  RowId end = 0;
};

Window WindowFor(const CompiledScan& scan, const Relation& rel,
                 uint32_t delta_occurrence) {
  const auto size = static_cast<RowId>(rel.size());
  if (delta_occurrence == CompiledScan::kNoOccurrence ||
      scan.clique_occurrence == CompiledScan::kNoOccurrence) {
    return {0, size};
  }
  if (scan.clique_occurrence == delta_occurrence) {
    return {rel.delta_begin(), rel.delta_end()};
  }
  if (scan.clique_occurrence < delta_occurrence) {
    return {0, rel.delta_begin()};
  }
  return {0, rel.delta_end()};
}

}  // namespace

std::pair<RowId, RowId> PlanExecutor::ScanWindow(const CompiledScan& scan,
                                                 const Relation& rel,
                                                 uint32_t delta_occurrence) {
  const Window w = WindowFor(scan, rel, delta_occurrence);
  return {w.begin, w.end};
}

bool PlanExecutor::RunCompare(const CompiledRule& rule,
                              const CompiledCompare& cmp,
                              BindingFrame* frame) {
  if (cmp.is_assignment) {
    Value v;
    if (!EvalTerm(rule.pool, cmp.value_term, *frame, store_, &v)) {
      return false;  // arithmetic failure (e.g. non-int operand)
    }
    if (frame->IsBound(cmp.assign_slot)) {
      return frame->Get(cmp.assign_slot) == v;
    }
    frame->Bind(cmp.assign_slot, v);
    return true;
  }
  Value a, b;
  if (!EvalTerm(rule.pool, cmp.lhs, *frame, store_, &a)) return false;
  if (!EvalTerm(rule.pool, cmp.rhs, *frame, store_, &b)) return false;
  switch (cmp.op) {
    case ComparisonOp::kEq:
      return a == b;
    case ComparisonOp::kNe:
      return a != b;
    case ComparisonOp::kLt:
      return store_->Compare(a, b) < 0;
    case ComparisonOp::kLe:
      return store_->Compare(a, b) <= 0;
    case ComparisonOp::kGt:
      return store_->Compare(a, b) > 0;
    case ComparisonOp::kGe:
      return store_->Compare(a, b) >= 0;
  }
  return false;
}

bool PlanExecutor::RunScan(const CompiledRule& rule, const CompiledScan& scan,
                           uint32_t delta_occurrence, BindingFrame* frame,
                           const std::function<bool()>& on_match) {
  const Relation& rel = catalog_->relation(scan.pred);

  // Negated scan with an installed oracle: ground membership test.
  if (scan.negated && oracle_) {
    std::vector<Value> tuple(scan.arg_terms.size());
    for (size_t i = 0; i < scan.arg_terms.size(); ++i) {
      const bool ok =
          EvalTerm(rule.pool, scan.arg_terms[i], *frame, store_, &tuple[i]);
      GDLOG_CHECK(ok) << "non-ground negated goal under oracle";
    }
    if (oracle_(scan.pred, TupleView(tuple))) return true;  // in model: fail
    return on_match();  // absent: negation holds, continue (no bindings)
  }

  Window window = WindowFor(scan, rel, delta_occurrence);
  if (&scan == range_scan_) {
    window.begin = std::max(window.begin, range_begin_);
    window.end = std::min(window.end, range_end_);
  }

  GoalStats* gs = nullptr;
  if (goal_stats_ != nullptr && !scan.negated &&
      scan.goal_id != CompiledScan::kNoGoal &&
      rule.rule_index < goal_stats_->size() &&
      scan.goal_id < (*goal_stats_)[rule.rule_index].size()) {
    gs = &(*goal_stats_)[rule.rule_index][scan.goal_id];
    ++gs->probes;
  }
  uint64_t probe_matches = 0;

  auto try_row = [&](RowId row) -> int {
    // Returns -1 mismatch, 0 matched-and-continue, 1 aborted.
    if (cancel_ != nullptr && (++cancel_tick_ & 4095u) == 0 &&
        cancel_->cancelled()) {
      return 1;
    }
    ++stats_.scan_rows;
    if (gs != nullptr) ++gs->rows;
    const size_t mark = frame->Mark();
    TupleView tuple = rel.Row(row);
    bool ok = true;
    for (size_t i = 0; i < scan.arg_terms.size(); ++i) {
      if (!MatchTerm(rule.pool, scan.arg_terms[i], tuple[i], frame, store_)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      frame->UndoTo(mark);
      return -1;
    }
    if (scan.negated) {
      frame->UndoTo(mark);
      return 1;  // a witness refutes the negation — abort with failure
    }
    if (gs != nullptr) {
      ++gs->matches;
      ++probe_matches;
    }
    // Provenance: this row justifies everything derived under it.
    if (trail_ != nullptr) trail_->push_back({scan.pred, row});
    const bool keep_going = on_match();
    if (trail_ != nullptr) trail_->pop_back();
    frame->UndoTo(mark);
    return keep_going ? 0 : 1;
  };

  // Debug/ablation switch: GDLOG_NO_INDEX=1 forces full scans.
  static const bool kNoIndex = std::getenv("GDLOG_NO_INDEX") != nullptr;
  bool aborted = false;
  if (scan.index_id >= 0 && !kNoIndex) {
    // Evaluate the probe key.
    std::vector<Value> key;
    key.reserve(scan.bound_cols.size());
    bool key_ok = true;
    for (uint32_t col : scan.bound_cols) {
      Value v;
      if (!EvalTerm(rule.pool, scan.arg_terms[col], *frame, store_, &v)) {
        key_ok = false;
        break;
      }
      key.push_back(v);
    }
    if (!key_ok) return !scan.negated ? true : on_match();
    const Index& index = rel.index(static_cast<size_t>(scan.index_id));
    auto it = index.Probe(Index::HashKey(TupleView(key)));
    for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
      if (row < window.begin || row >= window.end) continue;
      const int r = try_row(row);
      if (r == 1) {
        aborted = true;
        break;
      }
    }
  } else {
    for (RowId row = window.begin; row < window.end; ++row) {
      const int r = try_row(row);
      if (r == 1) {
        aborted = true;
        break;
      }
    }
  }

  if (scan.negated) {
    // Aborted means a witness was found: the negation fails (but the
    // enumeration itself continues, so return true upward only when the
    // negation holds).
    if (aborted) return true;  // literal failed; caller continues siblings
    return on_match();
  }
  if (gs != nullptr && gs->fanout != nullptr) gs->fanout->Record(probe_matches);
  return !aborted;
}

bool PlanExecutor::RunFrom(
    const CompiledRule& rule, const std::vector<CompiledLiteral>& plan,
    size_t idx, uint32_t delta_occurrence, BindingFrame* frame,
    const std::function<bool(BindingFrame&)>& on_solution) {
  if (idx == plan.size()) {
    ++stats_.solutions;
    return on_solution(*frame);
  }
  const CompiledLiteral& lit = plan[idx];
  switch (lit.kind) {
    case CompiledLiteral::Kind::kCompare: {
      const size_t mark = frame->Mark();
      if (!RunCompare(rule, lit.cmp, frame)) {
        frame->UndoTo(mark);
        return true;
      }
      const bool r =
          RunFrom(rule, plan, idx + 1, delta_occurrence, frame, on_solution);
      frame->UndoTo(mark);
      return r;
    }
    case CompiledLiteral::Kind::kNotExists: {
      bool witness = false;
      const size_t mark = frame->Mark();
      // The subplan's rows refute, they don't justify: detach the
      // provenance trail for the sub-enumeration.
      std::vector<ProvPremise>* trail = trail_;
      trail_ = nullptr;
      Enumerate(rule, lit.sub, CompiledScan::kNoOccurrence, frame,
                [&witness](BindingFrame&) {
                  witness = true;
                  return false;  // first witness suffices
                });
      trail_ = trail;
      frame->UndoTo(mark);
      if (witness) return true;  // negation fails; siblings continue
      return RunFrom(rule, plan, idx + 1, delta_occurrence, frame,
                     on_solution);
    }
    case CompiledLiteral::Kind::kScan: {
      return RunScan(rule, lit.scan, delta_occurrence, frame, [&]() {
        return RunFrom(rule, plan, idx + 1, delta_occurrence, frame,
                       on_solution);
      });
    }
  }
  return true;
}

vm::ExecCtx PlanExecutor::VmCtx() {
  vm::ExecCtx ctx;
  ctx.catalog = catalog_;
  ctx.store = store_;
  ctx.stats = &stats_;
  ctx.cancel = cancel_;
  ctx.cancel_tick = &cancel_tick_;
  ctx.goal_stats = goal_stats_;
  ctx.trail = trail_;
  ctx.range_scan = range_scan_;
  ctx.range_begin = range_begin_;
  ctx.range_end = range_end_;
  return ctx;
}

bool PlanExecutor::Enumerate(
    const CompiledRule& rule, const std::vector<CompiledLiteral>& plan,
    uint32_t delta_occurrence, BindingFrame* frame,
    const std::function<bool(BindingFrame&)>& on_solution) {
  // Bytecode dispatch: lowered plans run on the VM. Never under a
  // negation oracle — the stable-model checker's ground membership
  // semantics stay with the interpreter.
  if (vm_ != nullptr && oracle_ == nullptr) {
    if (const vm::PlanCode* code = vm_->Find(&plan)) {
      return vm::ExecutePlan(*code, delta_occurrence, frame, VmCtx(),
                             on_solution);
    }
  }
  return RunFrom(rule, plan, 0, delta_occurrence, frame, on_solution);
}

bool PlanExecutor::BuildHead(const CompiledRule& rule,
                             const BindingFrame& frame,
                             std::vector<Value>* out) {
  out->clear();
  out->reserve(rule.head_terms.size());
  for (uint32_t t : rule.head_terms) {
    Value v;
    if (!EvalTerm(rule.pool, t, frame, store_, &v)) return false;
    out->push_back(v);
  }
  return true;
}

size_t PlanExecutor::ApplyRuleVm(const CompiledRule& rule,
                                 const vm::PlanCode& code,
                                 const vm::RuleCode& rcode,
                                 uint32_t delta_occurrence,
                                 size_t* attempted) {
  // The VM emit path: head tuples land in one flat buffer (no
  // per-solution allocation), buffered like the interpreter so index
  // iterators stay valid and recursive rules see a stable head window.
  std::vector<Value> pending;
  std::vector<std::vector<ProvPremise>> pending_prov;
  BindingFrame frame(rule.num_slots);
  size_t emitted = 0;
  vm::ExecuteEmit(code, rcode, delta_occurrence, &frame, VmCtx(), &pending,
                  trail_ != nullptr ? &pending_prov : nullptr, &emitted);
  if (attempted != nullptr) *attempted = emitted;
  size_t inserted = 0;
  Relation& head_rel = catalog_->relation(rule.head_pred);
  const size_t arity = rule.head_terms.size();
  for (size_t i = 0; i < emitted; ++i) {
    const auto res =
        head_rel.Insert(TupleView(pending.data() + i * arity, arity));
    if (res.inserted) {
      ++inserted;
      ++stats_.inserts;
      if (trail_ != nullptr) {
        head_rel.Annotate(res.row, rule.rule_index, pending_prov[i].data(),
                          pending_prov[i].size());
      }
    }
  }
  return inserted;
}

size_t PlanExecutor::ApplyRule(const CompiledRule& rule,
                               uint32_t delta_occurrence, size_t* attempted) {
  // Head tuples are buffered and inserted only after the enumeration
  // finishes: inserting into a relation invalidates any live index
  // iterator on it (a rehash rewrites the chains), and recursive rules
  // scan their own head relation.
  std::vector<std::vector<Value>> pending;
  // Per-pending-head premises, parallel to `pending` (provenance only).
  std::vector<std::vector<ProvPremise>> pending_prov;
  BindingFrame frame(rule.num_slots);
  // Delta variants run their delta-first plan (the Δ atom leads).
  const std::vector<CompiledLiteral>& plan =
      (delta_occurrence == CompiledScan::kNoOccurrence ||
       delta_occurrence >= rule.delta_plans.size())
          ? rule.generator
          : rule.delta_plans[delta_occurrence];
  if (vm_ != nullptr && oracle_ == nullptr) {
    const vm::PlanCode* code = vm_->Find(&plan);
    const vm::RuleCode* rcode = vm_->FindRule(&rule);
    if (code != nullptr && rcode != nullptr) {
      return ApplyRuleVm(rule, *code, *rcode, delta_occurrence, attempted);
    }
  }
  Enumerate(rule, plan, delta_occurrence, &frame,
            [&](BindingFrame& f) {
              std::vector<Value> head;
              if (BuildHead(rule, f, &head)) {
                pending.push_back(std::move(head));
                if (trail_ != nullptr) pending_prov.push_back(*trail_);
              }
              return true;
            });
  if (attempted != nullptr) *attempted = pending.size();
  size_t inserted = 0;
  Relation& head_rel = catalog_->relation(rule.head_pred);
  for (size_t i = 0; i < pending.size(); ++i) {
    const auto res = head_rel.Insert(TupleView(pending[i]));
    if (res.inserted) {
      ++inserted;
      ++stats_.inserts;
      if (trail_ != nullptr) {
        head_rel.Annotate(res.row, rule.rule_index, pending_prov[i].data(),
                          pending_prov[i].size());
      }
    }
  }
  return inserted;
}

}  // namespace gdlog
