// Bytecode VM: executes lowered rule plans (eval/ir) over the concrete
// Relation/Index storage with fused scan/filter/probe/emit ops.
//
// The VM is an exact drop-in for PlanExecutor's interpreter loop: it
// runs on the same live BindingFrame (so driver callbacks observe
// identical binding state), buffers inserts the same way, polls the
// same CancelToken at the same ~4k-row cadence through a shared tick
// counter, charges the same GoalStats/ExecStats counters, and pushes
// the same provenance premises. `threads=N` bit-identity is inherited:
// PlanCode is immutable after Compile and every mutable execution state
// lives on the caller's stack, so worker executors share one program.
//
// The interpreter (eval/seminaive) stays the semantics oracle: rules
// the lowering rejects simply never appear in the ProgramCode map and
// keep interpreting. See docs/VM.md.
#ifndef GDLOG_EVAL_VM_VM_H_
#define GDLOG_EVAL_VM_VM_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "eval/ir/ir.h"
#include "eval/seminaive.h"

namespace gdlog {
namespace vm {

/// One lowered plan, ready to run: IR ops plus resolved storage
/// pointers (Relation and Index addresses are stable — the catalog owns
/// them behind unique_ptrs).
struct PlanCode {
  struct Level {
    CompiledLiteral::Kind kind = CompiledLiteral::Kind::kScan;
    // kScan.
    const CompiledScan* scan = nullptr;  // windows, goal id, identity
    const Relation* rel = nullptr;
    const Index* index = nullptr;        // null = full scan
    std::vector<ir::KeyOp> keys;
    uint32_t key_offset = 0;             // slice of the per-run key buffer
    std::vector<ir::ColOp> cols;
    /// Fused row ops: `cols` split into typed arrays so the match loop
    /// runs compare-then-bind without per-column dispatch. Legal only
    /// when the verdict and bindings are order-independent — no kMatch
    /// op (may bind pattern variables mid-row and short-circuit) and no
    /// kCompareSlot reading a slot bound earlier in the same row
    /// (repeated variable, e.g. e(X, X)); `generic` keeps those on the
    /// ordered `cols` interpretation with the mark/undo pair.
    struct SlotCol {
      uint32_t col = 0;
      uint32_t slot = 0;
    };
    struct ConstCol {
      uint32_t col = 0;
      Value constant;
    };
    std::vector<SlotCol> eq_slots;
    std::vector<ConstCol> eq_consts;
    std::vector<SlotCol> binds;
    bool generic = false;
    /// Slots the kBind ops write. They bypass the frame trail
    /// (BindScratch) and are cleared explicitly on every row exit, so
    /// the per-row Mark/Bind/UndoTo bookkeeping disappears from the hot
    /// loop; kMatch ops still bind through the trail, so rows of a
    /// generic level keep the mark/undo pair around the match.
    std::vector<uint32_t> bind_slots;
    bool has_match = false;
    /// Static half of the goal-stats gate (negated / kNoGoal folded).
    bool track_goal = false;
    /// Every probe-key op is kSlot: the key loop needs no dispatch and
    /// cannot fail.
    bool keys_all_slot = false;
    // kCompare.
    const CompiledCompare* cmp = nullptr;
    /// Assignment with assign_slot statically bound on arrival: pure
    /// equality test. Unbound: scratch-bind, cleared after the subtree.
    bool assign_bound = false;
    /// Operand micro-ops from the lowering (see ir::LevelIR).
    ir::KeyOp cmp_lhs, cmp_rhs, cmp_value;
    /// Fused filter: non-assignment compare levels that immediately
    /// followed this (non-negated) scan, folded into the row loop. A
    /// failing filter behaves exactly like the standalone level — the
    /// row is already a match (goal stats count it), it just never
    /// recurses — so fusing is unobservable apart from the saved
    /// dispatch.
    struct FusedCmp {
      ComparisonOp op = ComparisonOp::kEq;
      ir::KeyOp lhs, rhs;
    };
    std::vector<FusedCmp> filters;
    // kNotExists.
    std::unique_ptr<PlanCode> sub;
  };
  const CompiledRule* rule = nullptr;
  std::vector<Level> levels;
  uint32_t key_buffer_size = 0;  // sum of keys.size() over levels
  /// No kEval/kMatch op anywhere in the plan (keys, filters, compare
  /// operands, subplans): execution never calls EvalTerm/MatchTerm, so
  /// nothing reads the frame's bound flags and scratch binds can skip
  /// flag maintenance (BindValueOnly, no per-row clears). Emit-path
  /// runs additionally require RuleCode::head_pure — a kEval head term
  /// reads the flags through EvalTerm. Driver-callback runs
  /// (ExecutePlan) never use this: callbacks may evaluate terms.
  bool pure_slots = false;
};

/// Per-rule emit program for the ApplyRule fast path.
struct RuleCode {
  const CompiledRule* rule = nullptr;
  std::vector<ir::HeadOp> head_ops;
  bool head_pure = false;  // no kEval head op (see PlanCode::pure_slots)
};

/// The compiled program: plan address -> bytecode. PlanExecutor keys
/// the dispatch on the address of the CompiledRule plan vector it was
/// handed, so lowered and rejected rules coexist transparently.
struct ProgramCode {
  const PlanCode* Find(const std::vector<CompiledLiteral>* plan) const {
    const auto it = plans.find(plan);
    return it == plans.end() ? nullptr : it->second.get();
  }
  const RuleCode* FindRule(const CompiledRule* rule) const {
    const auto it = rules.find(rule);
    return it == rules.end() ? nullptr : &it->second;
  }
  size_t MemoryBytes() const;

  std::unordered_map<const void*, std::unique_ptr<PlanCode>> plans;
  std::unordered_map<const CompiledRule*, RuleCode> rules;
  ir::LoweringReport report;
};

/// Resolves storage pointers and registers every plan of `pir` (which
/// must outlive the result, along with the CompiledRule vector it
/// aliases). Honors GDLOG_NO_INDEX like the interpreter.
ProgramCode Compile(const ir::ProgramIR& pir, const Catalog& catalog);

/// Execution context, assembled by PlanExecutor from its own state so
/// both backends share one set of counters, one cancel tick, and one
/// provenance trail.
struct ExecCtx {
  Catalog* catalog = nullptr;
  ValueStore* store = nullptr;
  ExecStats* stats = nullptr;
  const CancelToken* cancel = nullptr;
  uint32_t* cancel_tick = nullptr;  // shared poll cadence with the interpreter
  std::vector<std::vector<GoalStats>>* goal_stats = nullptr;
  std::vector<ProvPremise>* trail = nullptr;
  const CompiledScan* range_scan = nullptr;  // worker row partition
  RowId range_begin = 0;
  RowId range_end = 0;
};

/// Enumerates `code` extending `frame`, calling `on_solution` per
/// complete solution. Exact contract of PlanExecutor::Enumerate:
/// returns false iff aborted.
bool ExecutePlan(const PlanCode& code, uint32_t delta_occurrence,
                 BindingFrame* frame, const ExecCtx& ctx,
                 const std::function<bool(BindingFrame&)>& on_solution);

/// ApplyRule emission fast path: enumerates and appends head tuples to
/// `pending` (flat, stride head_arity). Rows whose head fails to
/// evaluate are skipped, like BuildHead. When `pending_prov` is
/// non-null, one premise vector per emitted row is appended. `emitted`
/// receives the row count (ApplyRule's `attempted`). An abort (cancel)
/// keeps the rows emitted so far, like the interpreter.
void ExecuteEmit(const PlanCode& code, const RuleCode& rcode,
                 uint32_t delta_occurrence, BindingFrame* frame,
                 const ExecCtx& ctx, std::vector<Value>* pending,
                 std::vector<std::vector<ProvPremise>>* pending_prov,
                 size_t* emitted);

}  // namespace vm
}  // namespace gdlog

#endif  // GDLOG_EVAL_VM_VM_H_
