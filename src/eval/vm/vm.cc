#include "eval/vm/vm.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <type_traits>

#include "obs/metrics.h"
#include "storage/index.h"

namespace gdlog {
namespace vm {

namespace {

struct Window {
  RowId begin = 0;
  RowId end = 0;
};

/// Exact WindowFor of eval/seminaive.cc.
Window WindowOf(const CompiledScan& scan, const Relation& rel,
                uint32_t delta_occurrence) {
  const auto size = static_cast<RowId>(rel.size());
  if (delta_occurrence == CompiledScan::kNoOccurrence ||
      scan.clique_occurrence == CompiledScan::kNoOccurrence) {
    return {0, size};
  }
  if (scan.clique_occurrence == delta_occurrence) {
    return {rel.delta_begin(), rel.delta_end()};
  }
  if (scan.clique_occurrence < delta_occurrence) {
    return {0, rel.delta_begin()};
  }
  return {0, rel.delta_end()};
}

/// Key-buffer storage for one plan execution: stack for the common
/// case, heap above it. Each level owns a fixed slice (key_offset), so
/// one buffer serves the whole nested enumeration.
class KeyBuffer {
 public:
  explicit KeyBuffer(uint32_t size) {
    if (size > kStack) {
      heap_.resize(size);
      data_ = heap_.data();
    }
  }
  Value* data() { return data_; }

 private:
  static constexpr uint32_t kStack = 16;
  Value stack_[kStack];
  std::vector<Value> heap_;
  Value* data_ = stack_;
};

struct WitnessSink {
  bool* witness;
  bool OnSolution(BindingFrame&) {
    *witness = true;
    return false;  // first witness suffices
  }
};

struct CallbackSink {
  const std::function<bool(BindingFrame&)>* fn;
  bool OnSolution(BindingFrame& f) { return (*fn)(f); }
};

/// The emit fast path: head ops into a flat pending buffer, no
/// per-solution allocation (provenance copies excepted).
struct EmitSink {
  const RuleCode* rcode;
  ValueStore* store;
  std::vector<Value>* out;
  std::vector<std::vector<ProvPremise>>* prov;  // null = provenance off
  std::vector<ProvPremise>* trail;
  size_t emitted = 0;

  bool OnSolution(BindingFrame& f) {
    const size_t base = out->size();
    for (const ir::HeadOp& h : rcode->head_ops) {
      switch (h.kind) {
        case ir::HeadOp::Kind::kSlot:
          out->push_back(f.Get(h.slot));
          break;
        case ir::HeadOp::Kind::kConst:
          out->push_back(h.constant);
          break;
        case ir::HeadOp::Kind::kEval: {
          Value v;
          if (!EvalTerm(rcode->rule->pool, h.term, f, store, &v)) {
            // Head term failed to evaluate: the row is dropped, exactly
            // like a false BuildHead.
            out->resize(base);
            return true;
          }
          out->push_back(v);
          break;
        }
      }
    }
    ++emitted;
    if (prov != nullptr) prov->push_back(*trail);
    return true;
  }
};

/// kPure instantiations are the ExecuteEmit fast mode, legal only for
/// plans compiled with pure_slots (and head_pure rules):
///  - scratch binds skip the frame's bound-flag writes and the per-row
///    clears (nothing calls EvalTerm/MatchTerm);
///  - per-level scan windows and goal-stats pointers hoist into the
///    constructor — ExecuteEmit buffers all inserts in `pending`, so
///    relation sizes and delta windows are frozen for the whole run.
/// ExecutePlan never instantiates kPure: driver callbacks may evaluate
/// terms and may insert into scanned relations mid-enumeration, so the
/// windows must be recomputed per scan like the interpreter does.
template <class Sink, bool kPure = false>
class Runner {
 public:
  Runner(const PlanCode& code, uint32_t delta, BindingFrame* frame,
         const ExecCtx& ctx, Value* keybuf,
         std::vector<ProvPremise>* trail, Sink* sink)
      : code_(code),
        ctx_(ctx),
        frame_(frame),
        keybuf_(keybuf),
        trail_(trail),
        sink_(sink),
        delta_(delta) {
    if constexpr (kPure) {
      for (size_t i = 0; i < code.levels.size(); ++i) {
        const PlanCode::Level& level = code.levels[i];
        if (level.kind != CompiledLiteral::Kind::kScan) continue;
        LevelRt& rt = rt_[i];
        Window w = WindowOf(*level.scan, *level.rel, delta_);
        if (level.scan == ctx.range_scan) {
          w.begin = std::max(w.begin, ctx.range_begin);
          w.end = std::min(w.end, ctx.range_end);
        }
        rt.begin = w.begin;
        rt.end = w.end;
        rt.gs = nullptr;
        if (level.track_goal && ctx.goal_stats != nullptr &&
            code.rule->rule_index < ctx.goal_stats->size() &&
            level.scan->goal_id <
                (*ctx.goal_stats)[code.rule->rule_index].size()) {
          rt.gs =
              &(*ctx.goal_stats)[code.rule->rule_index][level.scan->goal_id];
        }
      }
    }
  }

  bool Run() { return RunLevel(0); }

 private:
  bool RunLevel(size_t idx) {
    if (idx == code_.levels.size()) {
      ++ctx_.stats->solutions;
      return sink_->OnSolution(*frame_);
    }
    const PlanCode::Level& level = code_.levels[idx];
    switch (level.kind) {
      case CompiledLiteral::Kind::kCompare:
        return RunCompareLevel(level, idx);
      case CompiledLiteral::Kind::kNotExists:
        return RunNotExists(level, idx);
      case CompiledLiteral::Kind::kScan:
        return RunScan(level, idx);
    }
    return true;
  }

  /// Evaluates a compare/key operand micro-op. False only on kEval
  /// failure (the interpreter's EvalTerm-failed path).
  bool EvalOperand(const ir::KeyOp& op, Value* out) {
    switch (op.kind) {
      case ir::KeyOp::Kind::kSlot:
        *out = frame_->Get(op.slot);
        return true;
      case ir::KeyOp::Kind::kConst:
        *out = op.constant;
        return true;
      case ir::KeyOp::Kind::kEval:
        return EvalTerm(code_.rule->pool, op.term, *frame_, ctx_.store, out);
    }
    return false;
  }

  /// Semantic order with an inline fast path: two ints compare
  /// numerically (exactly ValueStore::Compare's kInt branch); everything
  /// else takes the store's full ordering.
  int Order(Value a, Value b) {
    if (a.is_int() && b.is_int()) {
      const int64_t x = a.AsInt();
      const int64_t y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    return ctx_.store->Compare(a, b);
  }

  /// Exact PlanExecutor::RunCompare under the static binding state: the
  /// interpreter's runtime IsBound branch on an assignment is decided by
  /// the lowering (assign_bound), operands are pre-resolved micro-ops,
  /// and a failed comparison has nothing to unwind (general comparisons
  /// bind no slots), so the per-level mark/undo pair disappears.
  bool RunCompareLevel(const PlanCode::Level& level, size_t idx) {
    const CompiledCompare& cmp = *level.cmp;
    if (cmp.is_assignment) {
      Value v;
      if (!EvalOperand(level.cmp_value, &v)) {
        return true;  // comparison failed; siblings continue
      }
      if (level.assign_bound) {
        if (frame_->Get(cmp.assign_slot) != v) return true;
        return RunLevel(idx + 1);
      }
      BindRow(cmp.assign_slot, v);
      const bool r = RunLevel(idx + 1);
      if (!kPure) frame_->ClearScratch(cmp.assign_slot);
      return r;
    }
    Value a, b;
    if (!EvalOperand(level.cmp_lhs, &a) || !EvalOperand(level.cmp_rhs, &b)) {
      return true;
    }
    if (!CompareValues(cmp.op, a, b)) return true;
    return RunLevel(idx + 1);
  }

  bool CompareValues(ComparisonOp op, Value a, Value b) {
    switch (op) {
      case ComparisonOp::kEq:
        return a == b;
      case ComparisonOp::kNe:
        return a != b;
      case ComparisonOp::kLt:
        return Order(a, b) < 0;
      case ComparisonOp::kLe:
        return Order(a, b) <= 0;
      case ComparisonOp::kGt:
        return Order(a, b) > 0;
      case ComparisonOp::kGe:
        return Order(a, b) >= 0;
    }
    return false;
  }

  bool RunNotExists(const PlanCode::Level& level, size_t idx) {
    bool witness = false;
    const size_t mark = frame_->Mark();
    // The subplan refutes, it doesn't justify: run it with a detached
    // trail, full windows, and its own key buffer. A pure parent has a
    // pure subplan (purity is computed over subplans too).
    WitnessSink wsink{&witness};
    KeyBuffer keys(level.sub->key_buffer_size);
    Runner<WitnessSink, kPure> sub(*level.sub, CompiledScan::kNoOccurrence,
                                   frame_, ctx_, keys.data(), nullptr, &wsink);
    sub.Run();
    frame_->UndoTo(mark);
    if (witness) return true;  // negation fails; siblings continue
    return RunLevel(idx + 1);
  }

  bool RunScan(const PlanCode::Level& level, size_t idx) {
    const CompiledScan& scan = *level.scan;

    Window window;
    GoalStats* gs = nullptr;
    if constexpr (kPure) {
      // Hoisted in the constructor: relations are frozen for the whole
      // emit run, so the window and stats pointer are loop invariants.
      window.begin = rt_[idx].begin;
      window.end = rt_[idx].end;
      gs = rt_[idx].gs;
      if (gs != nullptr) ++gs->probes;
    } else {
      window = WindowOf(scan, *level.rel, delta_);
      if (&scan == ctx_.range_scan) {
        window.begin = std::max(window.begin, ctx_.range_begin);
        window.end = std::min(window.end, ctx_.range_end);
      }
      if (level.track_goal && ctx_.goal_stats != nullptr &&
          code_.rule->rule_index < ctx_.goal_stats->size() &&
          scan.goal_id < (*ctx_.goal_stats)[code_.rule->rule_index].size()) {
        gs = &(*ctx_.goal_stats)[code_.rule->rule_index][scan.goal_id];
        ++gs->probes;
      }
    }
    uint64_t probe_matches = 0;
    // Rows and matches accumulate in locals and flush once per scan:
    // nothing reads the counters mid-scan (reports, EXPLAIN ANALYZE and
    // the worker capture all read them between rule applications), so
    // the flushed totals are bit-identical to per-row increments.
    uint64_t rows_seen = 0;

    bool aborted = false;
    if (level.index != nullptr) {
      Value* key = keybuf_ + level.key_offset;
      bool key_ok = true;
      if (level.keys_all_slot) {
        size_t n = 0;
        for (const ir::KeyOp& k : level.keys) key[n++] = frame_->Get(k.slot);
      } else {
        size_t n = 0;
        for (const ir::KeyOp& k : level.keys) {
          switch (k.kind) {
            case ir::KeyOp::Kind::kSlot:
              key[n] = frame_->Get(k.slot);
              break;
            case ir::KeyOp::Kind::kConst:
              key[n] = k.constant;
              break;
            case ir::KeyOp::Kind::kEval:
              if (!EvalTerm(code_.rule->pool, k.term, *frame_, ctx_.store,
                            &key[n])) {
                key_ok = false;
              }
              break;
          }
          if (!key_ok) break;
          ++n;
        }
      }
      if (!key_ok) return !scan.negated ? true : RunLevel(idx + 1);
      // Index::HashKey, unrolled for the 1- and 2-column keys that
      // dominate join plans.
      const size_t nk = level.keys.size();
      uint64_t h = 0xabcdef0123456789ull ^ nk;
      if (nk == 1) {
        h = HashCombine(h, key[0].Hash());
      } else if (nk == 2) {
        h = HashCombine(HashCombine(h, key[0].Hash()), key[1].Hash());
      } else {
        h = Index::HashKey(TupleView(key, nk));
      }
      auto it = level.index->Probe(h);
      for (RowId row = it.Next(); row != kNoRow; row = it.Next()) {
        if (row < window.begin || row >= window.end) continue;
        ++rows_seen;
        if (TryRow(level, idx, row, gs, &probe_matches) == 1) {
          aborted = true;
          break;
        }
      }
    } else {
      for (RowId row = window.begin; row < window.end; ++row) {
        ++rows_seen;
        if (TryRow(level, idx, row, gs, &probe_matches) == 1) {
          aborted = true;
          break;
        }
      }
    }

    ctx_.stats->scan_rows += rows_seen;
    if (gs != nullptr) {
      gs->rows += rows_seen;
      gs->matches += probe_matches;
    }
    if (scan.negated) {
      if (aborted) return true;  // witness found: literal failed
      return RunLevel(idx + 1);
    }
    if (gs != nullptr && gs->fanout != nullptr) {
      gs->fanout->Record(probe_matches);
    }
    return !aborted;
  }

  /// Scratch-binds a row value; pure plans skip the bound flag (nothing
  /// reads it — see PlanCode::pure_slots).
  void BindRow(uint32_t slot, Value v) {
    if (kPure) {
      frame_->BindValueOnly(slot, v);
    } else {
      frame_->BindScratch(slot, v);
    }
  }

  /// Unbinds this level's kBind slots. Statically unbound at level
  /// entry, so clearing is correct on every exit path, even when a
  /// mismatch stopped the op loop before some of them ran. Pure plans
  /// never set the flags, so there is nothing to clear.
  void ClearBinds(const PlanCode::Level& level) {
    if (kPure) return;
    for (uint32_t s : level.bind_slots) frame_->ClearScratch(s);
  }

  /// Exact try_row of PlanExecutor::RunScan: -1 mismatch, 0 matched and
  /// continue, 1 aborted. kBind columns write scratch slots (cleared on
  /// exit via bind_slots); only kMatch columns bind through the trail,
  /// so the mark/undo pair exists only on levels that have one.
  int TryRow(const PlanCode::Level& level, size_t idx, RowId row,
             GoalStats* gs, uint64_t* probe_matches) {
    if (ctx_.cancel != nullptr && (++*ctx_.cancel_tick & 4095u) == 0 &&
        ctx_.cancel->cancelled()) {
      return 1;
    }
    const size_t mark = level.has_match ? frame_->Mark() : 0;
    const TupleView tuple = level.rel->Row(row);
    if (!level.generic) {
      // Fused fast path: all compares, then all binds. Reordering is
      // unobservable here (no kMatch, no intra-row slot dependency), and
      // a mismatch exits before any bind, so it needs no cleanup at all.
      for (const PlanCode::Level::SlotCol& c : level.eq_slots) {
        if (frame_->Get(c.slot) != tuple[c.col]) return -1;
      }
      for (const PlanCode::Level::ConstCol& c : level.eq_consts) {
        if (c.constant != tuple[c.col]) return -1;
      }
      for (const PlanCode::Level::SlotCol& c : level.binds) {
        BindRow(c.slot, tuple[c.col]);
      }
    } else {
      bool ok = true;
      for (const ir::ColOp& c : level.cols) {
        switch (c.kind) {
          case ir::ColOp::Kind::kBind:
            // A level can be generic without kMatch (intra-row slot
            // dependency), so a pure plan can reach here: BindRow keeps
            // bind and clear symmetric either way.
            BindRow(c.slot, tuple[c.col]);
            break;
          case ir::ColOp::Kind::kCompareSlot:
            ok = frame_->Get(c.slot) == tuple[c.col];
            break;
          case ir::ColOp::Kind::kCompareConst:
            ok = c.constant == tuple[c.col];
            break;
          case ir::ColOp::Kind::kMatch:
            ok = MatchTerm(code_.rule->pool, c.term, tuple[c.col], frame_,
                           ctx_.store);
            break;
        }
        if (!ok) break;
      }
      if (!ok) {
        if (level.has_match) frame_->UndoTo(mark);
        ClearBinds(level);
        return -1;
      }
    }
    if (level.scan->negated) {
      if (level.has_match) frame_->UndoTo(mark);
      ClearBinds(level);
      return 1;  // a witness refutes the negation
    }
    if (gs != nullptr) ++*probe_matches;  // flushed to gs->matches per scan
    // Fused filters run after the match is counted (the standalone
    // compare level also ran after the scan had matched) and before the
    // premise push — a failing filter derives nothing, so the skipped
    // push/pop pair was unobservable.
    for (const PlanCode::Level::FusedCmp& f : level.filters) {
      Value a, b;
      const bool holds = EvalOperand(f.lhs, &a) && EvalOperand(f.rhs, &b) &&
                         CompareValues(f.op, a, b);
      if (!holds) {
        if (level.has_match) frame_->UndoTo(mark);
        ClearBinds(level);
        return -1;
      }
    }
    if (trail_ != nullptr) trail_->push_back({level.scan->pred, row});
    const bool keep_going = RunLevel(idx + 1);
    if (trail_ != nullptr) trail_->pop_back();
    if (level.has_match) frame_->UndoTo(mark);
    ClearBinds(level);
    return keep_going ? 0 : 1;
  }

  const PlanCode& code_;
  const ExecCtx& ctx_;
  BindingFrame* frame_;
  Value* keybuf_;
  std::vector<ProvPremise>* trail_;
  Sink* sink_;
  const uint32_t delta_;
  /// Per-level runtime state precomputed by the kPure constructor. Only
  /// kScan entries are written and read; the members are deliberately
  /// trivial so the array costs nothing to construct (not-exists
  /// subplans build a Runner per parent row).
  struct LevelRt {
    RowId begin;
    RowId end;
    GoalStats* gs;
  };
  struct NoLevelRt {};
  std::conditional_t<kPure, std::array<LevelRt, ir::kMaxPlanLiterals>, NoLevelRt>
      rt_;
};

std::unique_ptr<PlanCode> CompilePlanLevels(const ir::PlanIR& pir,
                                            const CompiledRule* rule,
                                            const Catalog& catalog,
                                            bool no_index) {
  auto code = std::make_unique<PlanCode>();
  code->rule = rule;
  uint32_t key_off = 0;
  code->levels.reserve(pir.levels.size());
  const auto op_pure = [](const ir::KeyOp& op) {
    return op.kind != ir::KeyOp::Kind::kEval;
  };
  bool pure = true;
  for (size_t li = 0; li < pir.levels.size(); ++li) {
    const ir::LevelIR& l = pir.levels[li];
    PlanCode::Level level;
    level.kind = l.kind;
    switch (l.kind) {
      case CompiledLiteral::Kind::kScan: {
        const CompiledScan& scan = *l.scan.scan;
        level.scan = &scan;
        const Relation& rel = catalog.relation(scan.pred);
        level.rel = &rel;
        if (scan.index_id >= 0 && !no_index) {
          level.index = &rel.index(static_cast<size_t>(scan.index_id));
          level.keys = l.scan.keys;
          level.key_offset = key_off;
          key_off += static_cast<uint32_t>(level.keys.size());
          level.keys_all_slot = std::all_of(
              level.keys.begin(), level.keys.end(), [](const ir::KeyOp& k) {
                return k.kind == ir::KeyOp::Kind::kSlot;
              });
        }
        level.track_goal =
            !scan.negated && scan.goal_id != CompiledScan::kNoGoal;
        level.cols = l.scan.cols;
        for (const ir::ColOp& c : level.cols) {
          switch (c.kind) {
            case ir::ColOp::Kind::kBind:
              level.bind_slots.push_back(c.slot);
              level.binds.push_back({c.col, c.slot});
              break;
            case ir::ColOp::Kind::kCompareSlot: {
              level.eq_slots.push_back({c.col, c.slot});
              // A compare against a slot this same row binds (repeated
              // variable, e.g. e(X, X)) is order-dependent: only the
              // ordered `cols` loop sees the fresh binding.
              const auto& bs = level.bind_slots;
              if (std::find(bs.begin(), bs.end(), c.slot) != bs.end()) {
                level.generic = true;
              }
              break;
            }
            case ir::ColOp::Kind::kCompareConst:
              level.eq_consts.push_back({c.col, c.constant});
              break;
            case ir::ColOp::Kind::kMatch:
              level.has_match = true;
              level.generic = true;
              pure = false;  // MatchTerm reads/writes bound flags
              break;
          }
        }
        if (!std::all_of(level.keys.begin(), level.keys.end(), op_pure)) {
          pure = false;  // kEval keys call EvalTerm
        }
        // Fuse trailing non-assignment compares into this scan's row
        // loop. A negated scan never recurses past its rows, so only
        // positive scans absorb filters.
        if (!scan.negated) {
          while (li + 1 < pir.levels.size()) {
            const ir::LevelIR& next = pir.levels[li + 1];
            if (next.kind != CompiledLiteral::Kind::kCompare ||
                next.cmp->is_assignment) {
              break;
            }
            level.filters.push_back({next.cmp->op, next.cmp_lhs, next.cmp_rhs});
            if (!op_pure(next.cmp_lhs) || !op_pure(next.cmp_rhs)) pure = false;
            ++li;
          }
        }
        break;
      }
      case CompiledLiteral::Kind::kCompare:
        level.cmp = l.cmp;
        level.assign_bound = l.assign_bound;
        level.cmp_lhs = l.cmp_lhs;
        level.cmp_rhs = l.cmp_rhs;
        level.cmp_value = l.cmp_value;
        if (l.cmp->is_assignment) {
          if (!op_pure(level.cmp_value)) pure = false;
        } else if (!op_pure(level.cmp_lhs) || !op_pure(level.cmp_rhs)) {
          pure = false;
        }
        break;
      case CompiledLiteral::Kind::kNotExists:
        level.sub = CompilePlanLevels(*l.sub, rule, catalog, no_index);
        if (!level.sub->pure_slots) pure = false;
        break;
    }
    code->levels.push_back(std::move(level));
  }
  code->key_buffer_size = key_off;
  code->pure_slots = pure;
  return code;
}

size_t PlanBytes(const PlanCode& code) {
  size_t n = sizeof(PlanCode) + code.levels.capacity() * sizeof(PlanCode::Level);
  for (const PlanCode::Level& l : code.levels) {
    n += l.keys.capacity() * sizeof(ir::KeyOp);
    n += l.cols.capacity() * sizeof(ir::ColOp);
    n += l.eq_slots.capacity() * sizeof(PlanCode::Level::SlotCol);
    n += l.eq_consts.capacity() * sizeof(PlanCode::Level::ConstCol);
    n += l.binds.capacity() * sizeof(PlanCode::Level::SlotCol);
    n += l.bind_slots.capacity() * sizeof(uint32_t);
    n += l.filters.capacity() * sizeof(PlanCode::Level::FusedCmp);
    if (l.sub) n += PlanBytes(*l.sub);
  }
  return n;
}

}  // namespace

ProgramCode Compile(const ir::ProgramIR& pir, const Catalog& catalog) {
  // Same debug/ablation switch as the interpreter's RunScan, folded at
  // compile time: with GDLOG_NO_INDEX set, every scan is a full scan.
  static const bool kNoIndex = std::getenv("GDLOG_NO_INDEX") != nullptr;
  ProgramCode out;
  out.report = pir.report;
  for (const ir::RuleIR& r : pir.rules) {
    const bool head_pure =
        std::all_of(r.head_ops.begin(), r.head_ops.end(),
                    [](const ir::HeadOp& h) {
                      return h.kind != ir::HeadOp::Kind::kEval;
                    });
    out.rules.emplace(r.rule, RuleCode{r.rule, r.head_ops, head_pure});
    for (const ir::PlanIR& p : r.plans) {
      out.plans.emplace(p.source,
                        CompilePlanLevels(p, r.rule, catalog, kNoIndex));
    }
  }
  return out;
}

size_t ProgramCode::MemoryBytes() const {
  size_t n = sizeof(ProgramCode);
  for (const auto& [key, plan] : plans) {
    n += sizeof(key) + sizeof(plan) + PlanBytes(*plan);
  }
  for (const auto& [key, rcode] : rules) {
    n += sizeof(key) + sizeof(rcode) +
         rcode.head_ops.capacity() * sizeof(ir::HeadOp);
  }
  return n;
}

bool ExecutePlan(const PlanCode& code, uint32_t delta_occurrence,
                 BindingFrame* frame, const ExecCtx& ctx,
                 const std::function<bool(BindingFrame&)>& on_solution) {
  CallbackSink sink{&on_solution};
  KeyBuffer keys(code.key_buffer_size);
  Runner<CallbackSink> r(code, delta_occurrence, frame, ctx, keys.data(),
                         ctx.trail, &sink);
  return r.Run();
}

void ExecuteEmit(const PlanCode& code, const RuleCode& rcode,
                 uint32_t delta_occurrence, BindingFrame* frame,
                 const ExecCtx& ctx, std::vector<Value>* pending,
                 std::vector<std::vector<ProvPremise>>* pending_prov,
                 size_t* emitted) {
  EmitSink sink{&rcode, ctx.store, pending, pending_prov, ctx.trail};
  KeyBuffer keys(code.key_buffer_size);
  if (code.pure_slots && rcode.head_pure) {
    Runner<EmitSink, /*kPure=*/true> r(code, delta_occurrence, frame, ctx,
                                       keys.data(), ctx.trail, &sink);
    r.Run();  // an abort keeps rows emitted so far, like the interpreter
  } else {
    Runner<EmitSink> r(code, delta_occurrence, frame, ctx, keys.data(),
                       ctx.trail, &sink);
    r.Run();
  }
  *emitted = sink.emitted;
}

}  // namespace vm
}  // namespace gdlog
