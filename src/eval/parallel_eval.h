// Static analysis behind deterministic parallel evaluation.
//
// The parallel evaluator keeps runs bit-identical to serial evaluation
// by a strict division of labor: worker threads only *enumerate* — they
// match tuples, evaluate integer arithmetic, and snapshot binding-frame
// values into an ordered buffer — while the main thread replays the
// buffers in serial application order, doing everything that mutates
// shared state (term interning in the ValueStore, head construction,
// relation inserts, candidate-queue pushes). That keeps every TermId,
// hash-map iteration order, and insertion order exactly as the serial
// engine produces them.
//
// A rule application may run on workers only when its plan provably
// never interns during enumeration (no term constructor reachable via
// EvalTerm — probe keys, comparisons, arithmetic over constructors) and
// every value the merge phase needs is generator-bound. AnalyzeRule
// checks this per plan variant; unsafe applications simply run on the
// main thread at their merge position, preserving order.
#ifndef GDLOG_EVAL_PARALLEL_EVAL_H_
#define GDLOG_EVAL_PARALLEL_EVAL_H_

#include <cstdint>
#include <vector>

#include "eval/rule_compiler.h"

namespace gdlog {

struct RuleParallelSafety {
  // Every slot the merge phase reads is bound by the generator.
  bool capture_ok = false;
  // Plan variants whose enumeration never interns.
  bool generator_safe = false;
  std::vector<bool> delta_safe;  // parallel to CompiledRule::delta_plans

  // Sorted slots whose values a worker snapshots per solution — the
  // union of what the merge phase needs to rebuild the binding frame.
  std::vector<uint32_t> capture;

  /// Safe to enumerate the given plan variant on a worker?
  bool PlanSafe(uint32_t delta_occurrence, size_t num_delta_plans) const {
    if (!capture_ok) return false;
    if (delta_occurrence == UINT32_MAX || delta_occurrence >= num_delta_plans) {
      return generator_safe;
    }
    return delta_safe[delta_occurrence];
  }
};

/// Computes the parallel-safety verdict and capture set for one rule.
RuleParallelSafety AnalyzeRule(const CompiledRule& rule);

/// True when enumerating `plan` performs no term interning (safe off the
/// main thread). Exposed for unit tests; AnalyzeRule covers all plans.
bool PlanInternFree(const CompiledRule& rule,
                    const std::vector<CompiledLiteral>& plan);

/// Predicates `plan` reads through a *full* (growing) window under the
/// given delta variant: negated scans, NotExists subplan scans, and —
/// when delta_occurrence is kNoOccurrence — every positive scan. Scans
/// whose seminaive window is frozen for the round are excluded. Used to
/// group consecutive rule applications into batches that are mutually
/// order-independent.
void CollectFullWindowReads(const std::vector<CompiledLiteral>& plan,
                            uint32_t delta_occurrence,
                            std::vector<PredicateId>* out);

}  // namespace gdlog

#endif  // GDLOG_EVAL_PARALLEL_EVAL_H_
