// Cost-based join planning: cardinality estimates for goal reordering.
//
// The rule compiler orders body goals greedily; with a JoinPlanner
// attached, the "next goal" pick among ready positive atoms is the one
// with the smallest estimated result size instead of parser order. The
// estimate is the classic System-R independence model over exact
// statistics: for a scan of relation R with bound columns B,
//
//   est(R, B) = max(1, |R| / prod_{c in B} distinct(R, c))
//
// |R| and the per-column distinct counts are computed from the actual
// relation contents at compile time (the engine loads EDB facts before
// compiling, so base relations carry real cardinalities; IDB relations
// are still empty and get a neutral default that ranks them after
// comparably-bound EDB scans). Estimates are computed once per predicate
// and cached, so planning is deterministic for a given database — and in
// particular identical across thread counts, which the parallel
// evaluator's bit-identical contract relies on.
#ifndef GDLOG_EVAL_JOIN_PLANNER_H_
#define GDLOG_EVAL_JOIN_PLANNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/catalog.h"

namespace gdlog {

/// Cardinality statistics for one relation.
struct RelationEstimate {
  double rows = 0;
  std::vector<double> distinct;  // per column, each >= 1
  bool from_data = false;        // computed from actual rows (vs default)
  bool from_prior = false;       // seeded from a static-analysis bound
};

/// One planner pick, recorded per rule for the run report.
struct PlanDecision {
  std::string goal;            // predicate display name or filter kind
  bool filter = false;         // comparison / negation (always first)
  bool negated = false;
  uint32_t bound_cols = 0;     // bound columns at pick time
  uint32_t arity = 0;
  double est_rows = -1;        // estimated matching rows; -1 for filters
  // Per-rule goal id of the positive scan this decision placed (matches
  // CompiledScan::goal_id), linking the estimate to the executor's
  // actual cardinality counters for EXPLAIN ANALYZE; -1 for filters.
  int goal_id = -1;
};

class JoinPlanner {
 public:
  explicit JoinPlanner(const Catalog* catalog) : catalog_(catalog) {}

  /// Statistics for `pred`, computed on first use and cached.
  const RelationEstimate& Estimate(PredicateId pred);

  /// Seeds the estimate cache for `pred` with a static-analysis row
  /// bound, replacing the neutral default an empty (IDB) relation would
  /// otherwise get. Non-empty relations keep their exact scanned stats:
  /// the prior is ignored for them. Priors are a pure function of the
  /// program and the loaded EDB, so planning stays deterministic (and
  /// identical across thread counts). Call before the first Estimate()
  /// for the predicate.
  void SetPrior(PredicateId pred, uint64_t row_bound);

  /// Estimated matching rows for a scan of `pred` with `bound_cols`
  /// bound to values.
  double EstimateScanRows(PredicateId pred,
                          const std::vector<uint32_t>& bound_cols);

  /// Exact statistics from the relation's current contents. Distinct
  /// counts scan every row; relations larger than `max_scan_rows` fall
  /// back to sqrt(rows) per column to bound compile time.
  static RelationEstimate ScanRelation(const Relation& rel,
                                       size_t max_scan_rows = 1u << 20);

  /// The independence-model estimate over precomputed statistics.
  static double ScanRows(const RelationEstimate& est,
                         const std::vector<uint32_t>& bound_cols);

  // Empty (IDB) relations: assumed row count and per-bound-column
  // selectivity divisor. Chosen so an unbound IDB scan ranks after a
  // bound EDB probe but before a huge unbound EDB scan.
  static constexpr double kDefaultRows = 256.0;
  static constexpr double kDefaultDistinct = 16.0;

 private:
  const Catalog* catalog_;
  std::unordered_map<PredicateId, RelationEstimate> cache_;
};

}  // namespace gdlog

#endif  // GDLOG_EVAL_JOIN_PLANNER_H_
