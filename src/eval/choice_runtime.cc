#include "eval/choice_runtime.h"

#include "common/logging.h"

namespace gdlog {

int ChoiceRuntime::Register(const CompiledRule& rule) {
  GDLOG_CHECK_GE(rule.gamma_index, 0);
  if (memos_.size() <= static_cast<size_t>(rule.gamma_index)) {
    memos_.resize(rule.gamma_index + 1);
  }
  memos_[rule.gamma_index].goals.resize(rule.choices.size());
  return rule.gamma_index;
}

bool ChoiceRuntime::EvalPair(const CompiledRule& rule, const ChoiceSpec& spec,
                             const BindingFrame& frame, Value* left,
                             Value* right) {
  if (!EvalTerm(rule.pool, spec.left_term, frame, store_, left)) return false;
  if (!EvalTerm(rule.pool, spec.right_term, frame, store_, right)) {
    return false;
  }
  return true;
}

bool ChoiceRuntime::Admissible(const CompiledRule& rule,
                               const BindingFrame& frame) {
  RuleMemo& memo = memos_[rule.gamma_index];
  for (size_t g = 0; g < rule.choices.size(); ++g) {
    Value left, right;
    if (!EvalPair(rule, rule.choices[g], frame, &left, &right)) {
      // A choice pair that fails to evaluate (unbound variable, or an
      // arithmetic term that overflowed) has no FD witness; treat the
      // candidate as inadmissible rather than aborting — the queue marks
      // it redundant and moves on.
      return false;
    }
    auto it = memo.goals[g].fd.find(left);
    if (it != memo.goals[g].fd.end() && it->second != right) return false;
  }
  return true;
}

void ChoiceRuntime::Commit(const CompiledRule& rule,
                           const BindingFrame& frame) {
  RuleMemo& memo = memos_[rule.gamma_index];
  for (size_t g = 0; g < rule.choices.size(); ++g) {
    Value left, right;
    const bool ok = EvalPair(rule, rule.choices[g], frame, &left, &right);
    GDLOG_CHECK(ok);
    memo.goals[g].fd.emplace(left, right);
  }
  std::vector<Value> tuple;
  tuple.reserve(rule.chosen_slots.size());
  for (uint32_t s : rule.chosen_slots) {
    GDLOG_CHECK(frame.IsBound(s));
    tuple.push_back(frame.Get(s));
  }
  memo.chosen.push_back(std::move(tuple));
}

const std::vector<std::vector<Value>>& ChoiceRuntime::ChosenTuples(
    int gamma_index) const {
  GDLOG_CHECK_GE(gamma_index, 0);
  GDLOG_CHECK_LT(static_cast<size_t>(gamma_index), memos_.size());
  return memos_[gamma_index].chosen;
}

size_t ChoiceRuntime::TotalChosen() const {
  size_t n = 0;
  for (const RuleMemo& m : memos_) n += m.chosen.size();
  return n;
}

}  // namespace gdlog
