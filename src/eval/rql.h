// The D_r = (R_r, Q_r, L_r) structure of Section 6.
//
// One CandidateQueue backs each gamma rule r:
//
//   Q_r — the priority queue of candidate rule instances, keyed by the
//         extremum cost (least: min-heap, most: max-heap; rules without
//         an extremum degrade Q_r to FIFO retrieval, the paper's
//         "retrieve any");
//   L_r — the congruence keys of instances that fired;
//   R_r — redundant instances: merged away at insertion (a congruent,
//         no-better candidate), superseded in place, or discarded at pop
//         (stale, L-hit, FD-violating, failed post conditions).
//
// Congruence: in merge mode (CompiledRule::merge_by_choice_keys, enabled
// only when provably semantics-preserving) the key is the tuple of choice
// FD keys — the paper's r-congruence — and insertion keeps the best
// candidate per class, exactly the paper's insertion operation. In full
// mode the key is the whole candidate (pure duplicate elimination) and
// competition is resolved lazily at pop.
//
// Complexity: insertion and pop are O(log |Q|) plus O(1) hash work —
// the bound Section 6 assumes.
#ifndef GDLOG_EVAL_RQL_H_
#define GDLOG_EVAL_RQL_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "storage/relation.h"
#include "value/value.h"

namespace gdlog {

struct Candidate {
  Value cost;                   // extremum key (Int(seq) for FIFO rules)
  uint64_t seq = 0;             // insertion order; ties and staleness
  Value congruence_key;         // interned tuple
  std::vector<Value> snapshot;  // generator-bound slot values
  // Generator premises (provenance mode only; empty otherwise). Carried
  // through supersede/pop so a firing can annotate its head row.
  std::vector<ProvPremise> premises;
};

struct CandidateQueueStats {
  uint64_t inserted = 0;    // calls to Push
  uint64_t merged = 0;      // insertion-time R moves (congruence merge)
  uint64_t redundant = 0;   // pop-time R moves (stale/L-hit), plus
                            // discards recorded via MarkRedundant
  uint64_t fired = 0;       // moves into L
  // High-water mark of |Q| counting *live* candidates — one per
  // congruence class in merge mode, matching the paper's bound (e.g. at
  // most n for Prim). Superseded entries pending lazy removal from the
  // physical heap are excluded.
  size_t max_queue = 0;
};

class CandidateQueue {
 public:
  enum class Order : uint8_t { kMin, kMax, kFifo };

  /// `merge` selects congruence-merge insertion; `tie_seed` perturbs
  /// equal-cost (and FIFO) ordering to explore different stable models
  /// (0 = plain insertion order). `linear_scan` disables the heap and
  /// finds the best candidate by an O(|Q|) scan per retrieval — the
  /// naive baseline the Section 6 structure is benchmarked against.
  CandidateQueue(const ValueStore* store, Order order, bool merge,
                 uint64_t tie_seed = 0, bool linear_scan = false);

  /// Inserts a candidate. In merge mode a congruent entry in L sends the
  /// candidate to R; a congruent better entry in Q sends it to R; a
  /// congruent worse entry is superseded. In full mode exact duplicates
  /// (same key) are dropped.
  void Push(Value cost, Value congruence_key, std::vector<Value> snapshot,
            std::vector<ProvPremise> premises = {});

  /// Pops the best live candidate (skipping stale/L-hit entries into R).
  /// Returns nullopt when the queue is drained.
  std::optional<Candidate> Pop();

  /// Moves a popped candidate's class into L (it fired).
  void MarkFired(const Candidate& c);

  /// Records that a popped candidate was discarded (FD violation or
  /// failed post conditions) — the paper's move into R_r.
  void MarkRedundant(const Candidate& c);

  bool Empty();
  size_t QueueSize() const { return heap_.size(); }
  /// Live (non-stale, non-fired) candidates currently in Q — the
  /// candidate-set size the choice audit reports.
  size_t LiveSize() const { return live_count_; }
  /// Live candidates whose cost compares equal to `cost` — the audit's
  /// tie count. O(|heap|) worst case, but heap order prunes subtrees
  /// that cannot hold equal-cost entries; called only in audit mode.
  size_t CountLiveEqualCost(const Value& cost) const;
  const CandidateQueueStats& stats() const { return stats_; }

  /// Attaches a tracer for sampled push/pop/lazy-delete instant events;
  /// `tag` prefixes event names (e.g. "q0" -> "q0.push"). Null detaches.
  void set_tracer(Tracer* tracer, std::string tag) {
    tracer_ = tracer;
    trace_tag_ = std::move(tag);
  }

 private:
  struct HeapEntry {
    Value cost;
    uint64_t tie;  // perturbed seq
    uint64_t seq;
    Value key;
    std::vector<Value> snapshot;
    std::vector<ProvPremise> premises;
  };

  /// True when a comes after b in pop order (std::priority_queue keeps
  /// the "largest"; we invert so the best pops first).
  bool After(const HeapEntry& a, const HeapEntry& b) const;

  void SkimDead();
  std::optional<Candidate> PopLinear();
  bool EntryLive(const HeapEntry& e) const;

  const ValueStore* store_;
  Order order_;
  bool merge_;
  uint64_t tie_seed_;
  bool linear_scan_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;  // authoritative (non-stale, non-fired) entries

  std::vector<HeapEntry> heap_;  // binary heap managed manually
  // Live-entry registry: congruence key -> seq of the authoritative
  // entry. A popped entry whose seq mismatches is stale (superseded).
  std::unordered_map<Value, uint64_t, ValueHash> live_;
  std::unordered_map<Value, Value, ValueHash> live_cost_;
  std::unordered_set<Value, ValueHash> fired_;  // L
  CandidateQueueStats stats_;
  Tracer* tracer_ = nullptr;
  std::string trace_tag_;

  void TraceOp(const char* op) {
    if (tracer_ != nullptr && tracer_->Sample()) {
      tracer_->Instant(trace_tag_ + op, "queue",
                       {{"live", static_cast<int64_t>(live_count_)},
                        {"heap", static_cast<int64_t>(heap_.size())}});
    }
  }
};

}  // namespace gdlog

#endif  // GDLOG_EVAL_RQL_H_
