// Stable-model verification via the Gelfond-Lifschitz reduct.
//
// Theorem 1 asserts that every fact set produced by the Choice Fixpoint
// on a stage-stratified program is a stable model of the program's
// first-order rewriting. This checker verifies that claim directly for a
// concrete run:
//
//   1. the program is rewritten to its normal form (next expanded,
//      choice -> chosen$/diffChoice$, extrema -> negation, NotExists ->
//      aux$ predicates);
//   2. the candidate model M+ is assembled from the engine's relations,
//      the recorded chosen$ tuples, and the aux$ extension computed
//      against M; diffChoice$ is evaluated on the fly from chosen$
//      (never materialized — its defining rules are unsafe by design);
//   3. the reduct P^{M+} is evaluated to its least fixpoint (negation
//      tested against the *fixed* M+), and the result is compared with
//      M+ — equality is stability.
//
// Intended for tests at small scale: the fixpoint here is naive.
#ifndef GDLOG_EVAL_STABLE_MODEL_H_
#define GDLOG_EVAL_STABLE_MODEL_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "storage/catalog.h"

namespace gdlog {

struct StableCheckResult {
  bool stable = false;
  // When not stable: which predicate disagreed and an example tuple.
  std::string diagnostic;
  size_t model_facts = 0;
  size_t reduct_facts = 0;
};

/// Verifies that the contents of `model_catalog` (plus `chosen_by_rule`,
/// indexed like RewriteChoice's chosen$i) form a stable model of
/// `original`. `store` must be the ValueStore the model was built with.
/// `seed_watermarks[pred]` is the number of rows of each relation that
/// existed before evaluation (user facts + program facts): those rows
/// seed the reduct's least fixpoint as extensional input.
Result<StableCheckResult> CheckStableModel(
    const Program& original, const Catalog& model_catalog, ValueStore* store,
    const std::vector<std::vector<std::vector<Value>>>& chosen_by_rule,
    const std::vector<size_t>& seed_watermarks);

}  // namespace gdlog

#endif  // GDLOG_EVAL_STABLE_MODEL_H_
