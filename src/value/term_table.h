// Hash-consing table for ground functor terms, e.g. the Huffman tree
// constructor t(t(a,b), c). Interning makes deep term equality a 64-bit
// compare, which keeps tuple storage flat and the choice runtime O(1)
// per FD probe even when choice keys are structured values.
#ifndef GDLOG_VALUE_TERM_TABLE_H_
#define GDLOG_VALUE_TERM_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/guardrails.h"
#include "value/value.h"

namespace gdlog {

class TermTable {
 public:
  TermTable();

  TermTable(const TermTable&) = delete;
  TermTable& operator=(const TermTable&) = delete;

  /// Interns functor(args...) and returns its dense id.
  TermId Intern(SymbolId functor, std::span<const Value> args);

  /// Charges the term storage to `budget`.
  void set_memory_budget(MemoryBudget* budget);

  SymbolId Functor(TermId id) const;
  std::span<const Value> Args(TermId id) const;
  uint32_t Arity(TermId id) const;

  size_t size() const { return headers_.size(); }

 private:
  struct Header {
    SymbolId functor;
    uint32_t arity;
    uint64_t args_offset;  // into args_ backing store
    uint64_t hash;
  };

  uint64_t ContentHash(SymbolId functor, std::span<const Value> args) const;
  bool Equals(TermId id, SymbolId functor, std::span<const Value> args) const;
  void Rehash(size_t new_bucket_count);
  void Recount();

  static constexpr uint32_t kEmpty = UINT32_MAX;

  MemoryBudget* budget_ = nullptr;
  size_t charged_bytes_ = 0;
  std::vector<Header> headers_;
  std::vector<Value> args_;      // flattened argument storage
  std::vector<uint32_t> buckets_;
  size_t bucket_mask_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_VALUE_TERM_TABLE_H_
