#include "value/term_table.h"

#include "common/hash.h"
#include "common/logging.h"

namespace gdlog {

TermTable::TermTable() {
  buckets_.assign(64, kEmpty);
  bucket_mask_ = buckets_.size() - 1;
}

uint64_t TermTable::ContentHash(SymbolId functor,
                                std::span<const Value> args) const {
  uint64_t h = Mix64(0xfeedface00000000ull ^ functor);
  for (Value v : args) h = HashCombine(h, v.Hash());
  return h;
}

bool TermTable::Equals(TermId id, SymbolId functor,
                       std::span<const Value> args) const {
  const Header& hd = headers_[id];
  if (hd.functor != functor || hd.arity != args.size()) return false;
  const Value* stored = args_.data() + hd.args_offset;
  for (size_t i = 0; i < args.size(); ++i) {
    if (stored[i] != args[i]) return false;
  }
  return true;
}

void TermTable::Rehash(size_t new_bucket_count) {
  buckets_.assign(new_bucket_count, kEmpty);
  bucket_mask_ = new_bucket_count - 1;
  for (uint32_t id = 0; id < headers_.size(); ++id) {
    size_t slot = headers_[id].hash & bucket_mask_;
    while (buckets_[slot] != kEmpty) slot = (slot + 1) & bucket_mask_;
    buckets_[slot] = id;
  }
}

TermId TermTable::Intern(SymbolId functor, std::span<const Value> args) {
  const uint64_t h = ContentHash(functor, args);
  size_t slot = h & bucket_mask_;
  while (buckets_[slot] != kEmpty) {
    uint32_t id = buckets_[slot];
    if (headers_[id].hash == h && Equals(id, functor, args)) return id;
    slot = (slot + 1) & bucket_mask_;
  }
  Header hd;
  hd.functor = functor;
  hd.arity = static_cast<uint32_t>(args.size());
  hd.args_offset = args_.size();
  hd.hash = h;
  // `args` may alias args_ (e.g. a term built from another term's args), so
  // copy through a local buffer before the potentially-reallocating insert.
  std::vector<Value> local(args.begin(), args.end());
  args_.insert(args_.end(), local.begin(), local.end());
  const auto id = static_cast<uint32_t>(headers_.size());
  headers_.push_back(hd);
  buckets_[slot] = id;
  if (headers_.size() * 10 > buckets_.size() * 7) Rehash(buckets_.size() * 2);
  Recount();
  return id;
}

void TermTable::set_memory_budget(MemoryBudget* budget) {
  budget_ = budget;
  Recount();
}

void TermTable::Recount() {
  if (budget_ == nullptr) return;
  budget_->Update(&charged_bytes_,
                  headers_.capacity() * sizeof(Header) +
                      args_.capacity() * sizeof(Value) +
                      buckets_.capacity() * sizeof(uint32_t));
}

SymbolId TermTable::Functor(TermId id) const {
  GDLOG_CHECK_LT(id, headers_.size());
  return headers_[id].functor;
}

std::span<const Value> TermTable::Args(TermId id) const {
  GDLOG_CHECK_LT(id, headers_.size());
  const Header& hd = headers_[id];
  return std::span<const Value>(args_.data() + hd.args_offset, hd.arity);
}

uint32_t TermTable::Arity(TermId id) const {
  GDLOG_CHECK_LT(id, headers_.size());
  return headers_[id].arity;
}

}  // namespace gdlog
