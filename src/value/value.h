// Value: a 64-bit tagged handle over the engine's Herbrand universe.
//
// The paper's programs range over integers (costs, grades, stage values),
// constants (node names like `a`, `nil`), and ground functor terms (the
// Huffman tree constructor `t(X,Y)` of Example 6). We represent all of
// them as one 8-byte handle:
//
//   tag 0 kInt    : payload is a signed 61-bit integer, stored inline
//   tag 1 kSymbol : payload is an id into the engine's SymbolTable
//   tag 2 kTerm   : payload is an id into the engine's TermTable
//   tag 3 kNil    : the distinguished constant `nil`
//
// Symbols and terms are hash-consed (interned), so Value equality is raw
// 64-bit equality and tuples are flat arrays of Value. Everything that
// needs the *content* of a symbol or term (ordering, printing) goes
// through the owning ValueStore.
#ifndef GDLOG_VALUE_VALUE_H_
#define GDLOG_VALUE_VALUE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace gdlog {

enum class ValueKind : uint8_t { kInt = 0, kSymbol = 1, kTerm = 2, kNil = 3 };

using SymbolId = uint32_t;
using TermId = uint32_t;

class Value {
 public:
  /// Default-constructed Value is the integer 0.
  constexpr Value() : bits_(0) {}

  static constexpr int64_t kMinInt = -(int64_t{1} << 60);
  static constexpr int64_t kMaxInt = (int64_t{1} << 60) - 1;

  /// True iff `v` fits the inline 61-bit payload. Paths fed by user input
  /// (the lexer, arithmetic builtins) must test this and report an error
  /// instead of relying on the CHECK in Int().
  static constexpr bool IntInRange(int64_t v) {
    return v >= kMinInt && v <= kMaxInt;
  }

  static Value Int(int64_t v) {
    GDLOG_CHECK(IntInRange(v)) << "int value out of range";
    return Value(static_cast<uint64_t>(v) << 3 |
                 static_cast<uint64_t>(ValueKind::kInt));
  }
  static Value Symbol(SymbolId id) {
    return Value(static_cast<uint64_t>(id) << 3 |
                 static_cast<uint64_t>(ValueKind::kSymbol));
  }
  static Value Term(TermId id) {
    return Value(static_cast<uint64_t>(id) << 3 |
                 static_cast<uint64_t>(ValueKind::kTerm));
  }
  static constexpr Value Nil() {
    return Value(static_cast<uint64_t>(ValueKind::kNil));
  }

  ValueKind kind() const { return static_cast<ValueKind>(bits_ & 0x7); }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_symbol() const { return kind() == ValueKind::kSymbol; }
  bool is_term() const { return kind() == ValueKind::kTerm; }
  bool is_nil() const { return kind() == ValueKind::kNil; }

  int64_t AsInt() const {
    GDLOG_CHECK(is_int());
    return static_cast<int64_t>(bits_) >> 3;  // arithmetic shift keeps sign
  }
  SymbolId AsSymbolId() const {
    GDLOG_CHECK(is_symbol());
    return static_cast<SymbolId>(bits_ >> 3);
  }
  TermId AsTermId() const {
    GDLOG_CHECK(is_term());
    return static_cast<TermId>(bits_ >> 3);
  }

  uint64_t bits() const { return bits_; }
  uint64_t Hash() const { return Mix64(bits_); }

  friend bool operator==(Value a, Value b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Value a, Value b) { return a.bits_ != b.bits_; }
  /// Raw bit order — suitable for hash-set tie-breaking, NOT the semantic
  /// order used by comparison builtins (see ValueStore::Compare).
  friend bool operator<(Value a, Value b) { return a.bits_ < b.bits_; }

 private:
  explicit constexpr Value(uint64_t bits) : bits_(bits) {}
  uint64_t bits_;
};

struct ValueHash {
  size_t operator()(Value v) const { return static_cast<size_t>(v.Hash()); }
};

class MemoryBudget;  // common/guardrails.h
class SymbolTable;
class TermTable;

/// Owns the interning tables for one Engine; the context needed to
/// create, compare, and print Values.
class ValueStore {
 public:
  ValueStore();
  ~ValueStore();

  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  /// Charges the interning tables (symbols, terms) to `budget`, which
  /// must outlive this store.
  void set_memory_budget(MemoryBudget* budget);

  // -- Construction ------------------------------------------------------
  Value MakeInt(int64_t v) const { return Value::Int(v); }
  Value MakeNil() const { return Value::Nil(); }
  Value MakeSymbol(std::string_view name);
  /// Interns the ground term functor(args...). A 0-ary term is distinct
  /// from the symbol of the same name.
  Value MakeTerm(std::string_view functor, std::span<const Value> args);
  Value MakeTerm(SymbolId functor, std::span<const Value> args);
  /// The anonymous grouping tuple (a, b, ...) used by choice goals such as
  /// choice((X,C), Y) — a term with the reserved functor "$tuple".
  Value MakeTuple(std::span<const Value> args);

  // -- Inspection --------------------------------------------------------
  std::string_view SymbolName(SymbolId id) const;
  std::string_view SymbolName(Value v) const { return SymbolName(v.AsSymbolId()); }
  SymbolId TermFunctor(TermId id) const;
  std::span<const Value> TermArgs(TermId id) const;
  bool IsTuple(Value v) const;

  /// Semantic total order: nil < ints (by value) < symbols (by name) <
  /// terms (by functor name, then arity, then args lexicographically).
  /// This is the order implemented by the <, <=, >, >= builtins and the
  /// least/most extrema.
  int Compare(Value a, Value b) const;
  bool Less(Value a, Value b) const { return Compare(a, b) < 0; }

  std::string ToString(Value v) const;

  size_t num_symbols() const;
  size_t num_terms() const;

  SymbolId tuple_functor() const { return tuple_functor_; }

 private:
  std::unique_ptr<SymbolTable> symbols_;
  std::unique_ptr<TermTable> terms_;
  SymbolId tuple_functor_;
};

}  // namespace gdlog

#endif  // GDLOG_VALUE_VALUE_H_
