#include "value/value.h"

#include <memory>
#include <sstream>

#include "value/symbol_table.h"
#include "value/term_table.h"

namespace gdlog {

ValueStore::ValueStore()
    : symbols_(std::make_unique<SymbolTable>()),
      terms_(std::make_unique<TermTable>()) {
  tuple_functor_ = symbols_->Intern("$tuple");
}

ValueStore::~ValueStore() = default;

void ValueStore::set_memory_budget(MemoryBudget* budget) {
  symbols_->set_memory_budget(budget);
  terms_->set_memory_budget(budget);
}

Value ValueStore::MakeSymbol(std::string_view name) {
  return Value::Symbol(symbols_->Intern(name));
}

Value ValueStore::MakeTerm(std::string_view functor,
                           std::span<const Value> args) {
  return MakeTerm(symbols_->Intern(functor), args);
}

Value ValueStore::MakeTerm(SymbolId functor, std::span<const Value> args) {
  return Value::Term(terms_->Intern(functor, args));
}

Value ValueStore::MakeTuple(std::span<const Value> args) {
  return Value::Term(terms_->Intern(tuple_functor_, args));
}

std::string_view ValueStore::SymbolName(SymbolId id) const {
  return symbols_->Name(id);
}

SymbolId ValueStore::TermFunctor(TermId id) const {
  return terms_->Functor(id);
}

std::span<const Value> ValueStore::TermArgs(TermId id) const {
  return terms_->Args(id);
}

bool ValueStore::IsTuple(Value v) const {
  return v.is_term() && terms_->Functor(v.AsTermId()) == tuple_functor_;
}

namespace {
// Rank in the semantic cross-kind order: nil < int < symbol < term.
int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kInt:
      return 1;
    case ValueKind::kSymbol:
      return 2;
    case ValueKind::kTerm:
      return 3;
  }
  return 4;
}
}  // namespace

int ValueStore::Compare(Value a, Value b) const {
  if (a == b) return 0;
  const int ra = KindRank(a.kind());
  const int rb = KindRank(b.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.kind()) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kInt: {
      const int64_t x = a.AsInt();
      const int64_t y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueKind::kSymbol: {
      const int c = SymbolName(a.AsSymbolId()).compare(SymbolName(b.AsSymbolId()));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kTerm: {
      const TermId ta = a.AsTermId();
      const TermId tb = b.AsTermId();
      const int fc =
          SymbolName(terms_->Functor(ta)).compare(SymbolName(terms_->Functor(tb)));
      if (fc != 0) return fc < 0 ? -1 : 1;
      auto xs = terms_->Args(ta);
      auto ys = terms_->Args(tb);
      if (xs.size() != ys.size()) return xs.size() < ys.size() ? -1 : 1;
      for (size_t i = 0; i < xs.size(); ++i) {
        const int c = Compare(xs[i], ys[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

std::string ValueStore::ToString(Value v) const {
  switch (v.kind()) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kInt:
      return std::to_string(v.AsInt());
    case ValueKind::kSymbol:
      return std::string(SymbolName(v.AsSymbolId()));
    case ValueKind::kTerm: {
      const TermId id = v.AsTermId();
      std::ostringstream out;
      const bool tuple = terms_->Functor(id) == tuple_functor_;
      if (!tuple) out << SymbolName(terms_->Functor(id));
      out << "(";
      auto args = terms_->Args(id);
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out << ",";
        out << ToString(args[i]);
      }
      out << ")";
      return out.str();
    }
  }
  return "?";
}

size_t ValueStore::num_symbols() const { return symbols_->size(); }
size_t ValueStore::num_terms() const { return terms_->size(); }

}  // namespace gdlog
