#include "value/symbol_table.h"

#include "common/hash.h"
#include "common/logging.h"

namespace gdlog {

SymbolTable::SymbolTable() {
  buckets_.assign(64, kEmpty);
  bucket_mask_ = buckets_.size() - 1;
}

void SymbolTable::set_memory_budget(MemoryBudget* budget) {
  budget_ = budget;
  arena_.set_memory_budget(budget);
  RecountAux();
}

void SymbolTable::RecountAux() {
  if (budget_ == nullptr) return;
  budget_->Update(&charged_aux_bytes_,
                  names_.capacity() * sizeof(std::string_view) +
                      hashes_.capacity() * sizeof(uint64_t) +
                      buckets_.capacity() * sizeof(uint32_t));
}

void SymbolTable::Rehash(size_t new_bucket_count) {
  buckets_.assign(new_bucket_count, kEmpty);
  bucket_mask_ = new_bucket_count - 1;
  for (uint32_t id = 0; id < names_.size(); ++id) {
    size_t slot = hashes_[id] & bucket_mask_;
    while (buckets_[slot] != kEmpty) slot = (slot + 1) & bucket_mask_;
    buckets_[slot] = id;
  }
}

uint32_t SymbolTable::Intern(std::string_view name) {
  const uint64_t h = HashString(name);
  size_t slot = h & bucket_mask_;
  while (buckets_[slot] != kEmpty) {
    uint32_t id = buckets_[slot];
    if (hashes_[id] == h && names_[id] == name) return id;
    slot = (slot + 1) & bucket_mask_;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.push_back(arena_.CopyString(name));
  hashes_.push_back(h);
  buckets_[slot] = id;
  // Keep load factor under 0.7.
  if (names_.size() * 10 > buckets_.size() * 7) Rehash(buckets_.size() * 2);
  RecountAux();
  return id;
}

uint32_t SymbolTable::Lookup(std::string_view name) const {
  const uint64_t h = HashString(name);
  size_t slot = h & bucket_mask_;
  while (buckets_[slot] != kEmpty) {
    uint32_t id = buckets_[slot];
    if (hashes_[id] == h && names_[id] == name) return id;
    slot = (slot + 1) & bucket_mask_;
  }
  return kEmpty;
}

std::string_view SymbolTable::Name(uint32_t id) const {
  GDLOG_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace gdlog
