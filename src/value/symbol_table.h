// Hash-consing table for symbols (constants and functor names).
#ifndef GDLOG_VALUE_SYMBOL_TABLE_H_
#define GDLOG_VALUE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"

namespace gdlog {

/// Interns strings to dense 32-bit ids. Names live in an arena owned by
/// the table; returned string_views stay valid for the table's lifetime.
/// Open-addressing (linear probing) over a power-of-two bucket array.
class SymbolTable {
 public:
  SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first sight.
  uint32_t Intern(std::string_view name);

  /// Charges the name arena and auxiliary tables to `budget`.
  void set_memory_budget(MemoryBudget* budget);

  /// Returns the id for `name` or UINT32_MAX if never interned.
  uint32_t Lookup(std::string_view name) const;

  std::string_view Name(uint32_t id) const;

  size_t size() const { return names_.size(); }

 private:
  void Rehash(size_t new_bucket_count);
  void RecountAux();

  static constexpr uint32_t kEmpty = UINT32_MAX;

  MemoryBudget* budget_ = nullptr;
  size_t charged_aux_bytes_ = 0;
  Arena arena_;
  std::vector<std::string_view> names_;  // id -> name
  std::vector<uint64_t> hashes_;         // id -> precomputed hash
  std::vector<uint32_t> buckets_;        // open addressing: id or kEmpty
  size_t bucket_mask_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_VALUE_SYMBOL_TABLE_H_
