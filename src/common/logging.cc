#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gdlog {

namespace {
std::atomic<bool> g_verbose{false};
}  // namespace

void SetVerboseLogging(bool enabled) { g_verbose.store(enabled); }
bool VerboseLoggingEnabled() { return g_verbose.load(); }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  const char* tag = "I";
  switch (severity) {
    case LogSeverity::kInfo:
      tag = "I";
      break;
    case LogSeverity::kWarning:
      tag = "W";
      break;
    case LogSeverity::kError:
      tag = "E";
      break;
    case LogSeverity::kFatal:
      tag = "F";
      break;
  }
  stream_ << "[" << tag << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool quiet =
      (severity_ == LogSeverity::kInfo || severity_ == LogSeverity::kWarning) &&
      !VerboseLoggingEnabled();
  if (!quiet) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace gdlog
