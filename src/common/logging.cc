#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace gdlog {

namespace {
std::atomic<bool> g_verbose{false};

/// ISO-8601 UTC timestamp with millisecond resolution, e.g.
/// "2026-08-06T14:03:07.123Z".
void FormatTimestamp(char* buf, size_t len) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char base[32];
  if (std::strftime(base, sizeof base, "%Y-%m-%dT%H:%M:%S", &tm) == 0) {
    base[0] = '\0';
  }
  std::snprintf(buf, len, "%s.%03dZ", base, static_cast<int>(ms));
}

const char* SeverityTag(internal::LogSeverity severity) {
  switch (severity) {
    case internal::LogSeverity::kInfo:
      return "INFO";
    case internal::LogSeverity::kWarning:
      return "WARN";
    case internal::LogSeverity::kError:
      return "ERROR";
    case internal::LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetVerboseLogging(bool enabled) { g_verbose.store(enabled); }
bool VerboseLoggingEnabled() { return g_verbose.load(); }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  char ts[64];
  FormatTimestamp(ts, sizeof ts);
  stream_ << "[" << ts << " " << SeverityTag(severity) << " " << file << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  // Two independent decisions: *whether* to emit (INFO/WARNING honor the
  // verbosity switch; ERROR/FATAL always emit) and *where* (ERROR/FATAL
  // go to stderr unconditionally; informational lines share stderr so
  // stdout stays clean for program output and bench tables).
  const bool informational = severity_ == LogSeverity::kInfo ||
                             severity_ == LogSeverity::kWarning;
  const bool emit = !informational || VerboseLoggingEnabled();
  if (emit) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace gdlog
