#include "common/guardrails.h"

#include <chrono>
#include <new>

namespace gdlog {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view TerminationReasonName(TerminationReason r) {
  switch (r) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kTupleLimit:
      return "tuple-limit";
    case TerminationReason::kStageLimit:
      return "stage-limit";
    case TerminationReason::kIterationLimit:
      return "iteration-limit";
    case TerminationReason::kMemoryLimit:
      return "memory-limit";
    case TerminationReason::kCancelled:
      return "cancelled";
    case TerminationReason::kOom:
      return "oom";
    case TerminationReason::kFault:
      return "fault";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

void MemoryBudget::Update(size_t* charged, size_t now_bytes) {
  const size_t before = *charged;
  if (now_bytes == before) return;
  if (now_bytes > before) {
    used_.fetch_add(now_bytes - before, std::memory_order_relaxed);
    const size_t total = used_.load(std::memory_order_relaxed);
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (total > peak &&
           !peak_.compare_exchange_weak(peak, total,
                                        std::memory_order_relaxed)) {
    }
    *charged = now_bytes;
    // Growth is the allocation-failure probe point: firing here exercises
    // the same bad_alloc path a real exhausted heap would take.
    if (injector_ != nullptr && injector_->Hit(FaultInjector::kAlloc)) {
      throw std::bad_alloc();
    }
  } else {
    used_.fetch_sub(before - now_bytes, std::memory_order_relaxed);
    *charged = now_bytes;
  }
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

const std::vector<std::string_view>& FaultInjector::ProbeCatalog() {
  static const std::vector<std::string_view> kCatalog = {
      kParse,     kAnalyze,  kCompile,   kEvalSaturate,
      kEvalGamma, kAlloc,    kDeadline,  kWalAppend,
      kWalFsync,  kCheckpointWrite,      kRecoveryReplay};
  return kCatalog;
}

Result<FaultInjector> FaultInjector::Parse(std::string_view spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("fault spec: empty");
  }
  FaultInjector fi;
  fi.spec_ = std::string(spec);
  for (std::string_view probe : ProbeCatalog()) {
    fi.probes_.emplace_back(std::string(probe), 0);
  }
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      return Status::InvalidArgument("fault spec: empty probe entry in '" +
                                     std::string(spec) + "'");
    }
    uint64_t trigger = 1;
    std::string_view name = entry;
    const size_t at = entry.find('@');
    if (at != std::string_view::npos) {
      name = entry.substr(0, at);
      const std::string_view count = entry.substr(at + 1);
      if (count.empty()) {
        return Status::InvalidArgument("fault spec: empty count in '" +
                                       std::string(entry) + "'");
      }
      trigger = 0;
      for (char c : count) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("fault spec: bad count in '" +
                                         std::string(entry) + "'");
        }
        trigger = trigger * 10 + static_cast<uint64_t>(c - '0');
      }
      if (trigger == 0) {
        return Status::InvalidArgument("fault spec: count must be >= 1 in '" +
                                       std::string(entry) + "'");
      }
    }
    Probe* p = fi.FindProbe(name);
    if (p == nullptr) {
      return Status::InvalidArgument("fault spec: unknown probe '" +
                                     std::string(name) + "'");
    }
    p->trigger = trigger;
  }
  return fi;
}

FaultInjector::Probe* FaultInjector::FindProbe(std::string_view name) {
  for (Probe& p : probes_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const FaultInjector::Probe* FaultInjector::FindProbe(
    std::string_view name) const {
  for (const Probe& p : probes_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

bool FaultInjector::Hit(std::string_view probe) {
  Probe* p = FindProbe(probe);
  if (p == nullptr) return false;
  // fetch_add hands each concurrent hit a unique ordinal, so exactly one
  // caller observes the trigger count — the one-shot needs no lock.
  const uint64_t n = p->count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (p->trigger == 0 || n != p->trigger) return false;
  return !p->fired.exchange(true, std::memory_order_relaxed);
}

bool FaultInjector::ArmedFor(std::string_view probe) const {
  const Probe* p = FindProbe(probe);
  return p != nullptr && p->trigger != 0;
}

uint64_t FaultInjector::hits(std::string_view probe) const {
  const Probe* p = FindProbe(probe);
  return p == nullptr ? 0 : p->count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// RunGuard
// ---------------------------------------------------------------------------

RunGuard::RunGuard(const RunLimits& limits, const CancelToken* cancel,
                   MemoryBudget* budget, FaultInjector* injector)
    : limits_(limits),
      cancel_(cancel),
      budget_(budget),
      injector_(injector) {}

void RunGuard::Arm() {
  start_ns_ = SteadyNowNs();
  deadline_ns_ =
      limits_.deadline_ms == 0
          ? 0
          : start_ns_ + limits_.deadline_ms * uint64_t{1000000};
}

Status RunGuard::Trip(TerminationReason reason, Status status) {
  reason_ = reason;
  tripped_ = status;
  return status;
}

void RunGuard::ForceReason(TerminationReason reason) { reason_ = reason; }

Status RunGuard::Check(const GuardCounters& c, std::string_view probe) {
  ++checks_;
  if (reason_ != TerminationReason::kCompleted) return tripped_;
  if (!probe.empty() && injector_ != nullptr && injector_->Hit(probe)) {
    return Trip(TerminationReason::kFault,
                Status::Internal("[GD207] injected fault at probe '" +
                                 std::string(probe) + "'"));
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Trip(TerminationReason::kCancelled,
                Status::Cancelled("[GD205] run cancelled"));
  }
  const bool injected_deadline =
      injector_ != nullptr && injector_->Hit(FaultInjector::kDeadline);
  if (injected_deadline ||
      (deadline_ns_ != 0 && SteadyNowNs() >= deadline_ns_)) {
    return Trip(TerminationReason::kDeadline,
                Status::DeadlineExceeded(
                    "[GD200] deadline of " +
                    std::to_string(limits_.deadline_ms) + " ms exceeded" +
                    (injected_deadline ? " (injected)" : "")));
  }
  if (limits_.max_tuples != 0 && c.tuples >= limits_.max_tuples) {
    return Trip(TerminationReason::kTupleLimit,
                Status::ResourceExhausted(
                    "[GD201] derived-tuple limit of " +
                    std::to_string(limits_.max_tuples) + " reached"));
  }
  if (limits_.max_stages != 0 && c.stages >= limits_.max_stages) {
    return Trip(TerminationReason::kStageLimit,
                Status::ResourceExhausted(
                    "[GD202] stage limit of " +
                    std::to_string(limits_.max_stages) + " reached"));
  }
  if (limits_.max_iterations != 0 && c.iterations >= limits_.max_iterations) {
    return Trip(TerminationReason::kIterationLimit,
                Status::ResourceExhausted(
                    "[GD203] fixpoint-iteration limit of " +
                    std::to_string(limits_.max_iterations) + " reached"));
  }
  if (limits_.max_memory_bytes != 0 && budget_ != nullptr &&
      budget_->used() >= limits_.max_memory_bytes) {
    return Trip(TerminationReason::kMemoryLimit,
                Status::ResourceExhausted(
                    "[GD204] tracked memory " +
                    std::to_string(budget_->used()) + " bytes exceeds budget of " +
                    std::to_string(limits_.max_memory_bytes) + " bytes"));
  }
  return Status::OK();
}

}  // namespace gdlog
