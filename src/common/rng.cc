#include "common/rng.h"

#include "common/hash.h"
#include "common/logging.h"

namespace gdlog {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into four nonzero state words.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ull;
    s = Mix64(x);
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  GDLOG_CHECK_GT(bound, 0u);
  // Lemire-style rejection: keep drawing until the draw falls in the
  // largest multiple of bound that fits in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  GDLOG_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace gdlog
