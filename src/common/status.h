// Status and Result<T>: exception-free error propagation for the gdlog
// engine, in the style of database kernels (RocksDB / Arrow).
//
// Engine entry points that can fail on user input (parse errors, analysis
// rejections, schema mismatches) return Status or Result<T>. Internal
// invariant violations use the CHECK macros from common/logging.h instead.
#ifndef GDLOG_COMMON_STATUS_H_
#define GDLOG_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gdlog {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // bad user input (schema mismatch, arity error, ...)
  kParseError,        // lexical or syntactic error in program text
  kAnalysisError,     // program rejected by stratification/stage analysis
  kNotFound,          // unknown predicate / relation
  kAlreadyExists,     // duplicate declaration
  kRuntimeError,      // evaluation-time failure (e.g. arithmetic on symbol)
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,   // run stopped by RunLimits::deadline_ms
  kResourceExhausted,  // run stopped by a tuple/stage/iteration/memory cap
  kCancelled,          // run stopped by a CancelToken request
  kOutOfMemory,        // std::bad_alloc caught at the Run boundary
};

/// Human-readable name of a status code, e.g. "ParseError".
std::string_view StatusCodeName(StatusCode code);

/// A cheap, movable success-or-error value. Ok status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result is a fatal programming error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {} // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define GDLOG_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::gdlog::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Evaluates a Result<T> expression; on error returns the status, otherwise
// moves the value into `lhs` (a declaration or an assignable lvalue).
#define GDLOG_ASSIGN_OR_RETURN(lhs, expr)                    \
  GDLOG_ASSIGN_OR_RETURN_IMPL_(                              \
      GDLOG_STATUS_CONCAT_(_result_, __LINE__), lhs, expr)

#define GDLOG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define GDLOG_STATUS_CONCAT_(a, b) GDLOG_STATUS_CONCAT_IMPL_(a, b)
#define GDLOG_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace gdlog

#endif  // GDLOG_COMMON_STATUS_H_
