// Build identity for observability surfaces: the gdlog_build_info
// Prometheus gauge, the run report's "build" section, and shell
// diagnostics. Values are baked in at compile time by the build system
// (see src/CMakeLists.txt); a build outside CMake degrades every field
// to "unknown" rather than failing.
#ifndef GDLOG_COMMON_BUILD_INFO_H_
#define GDLOG_COMMON_BUILD_INFO_H_

namespace gdlog {

struct BuildInfo {
  const char* version;    // release version, e.g. "0.6.0"
  const char* git_sha;    // short commit hash of the source tree
  const char* compiler;   // compiler id + version
  const char* sanitizer;  // GDLOG_SANITIZE mode: OFF/address/thread/...
};

const BuildInfo& GetBuildInfo();

}  // namespace gdlog

#endif  // GDLOG_COMMON_BUILD_INFO_H_
