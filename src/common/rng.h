// Deterministic pseudo-random number generation for workload generators,
// tests, and the non-deterministic choice operator.
//
// The paper's one-consequence operator gamma is non-deterministic; the
// engine resolves that non-determinism with a seeded Rng so every run is
// reproducible. Generators use the same Rng so benchmarks are stable.
#ifndef GDLOG_COMMON_RNG_H_
#define GDLOG_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gdlog {

/// xoshiro256** — fast, high-quality, 64-bit PRNG with splittable seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound) with rejection to avoid modulo bias.
  /// bound must be nonzero.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// An independent generator split from this one's stream.
  Rng Split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace gdlog

#endif  // GDLOG_COMMON_RNG_H_
