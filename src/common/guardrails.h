// Execution guardrails: the pieces that make a run bounded, stoppable,
// and failure-reporting instead of an open-ended fixpoint.
//
//   RunLimits     — caps a run may not exceed (wall clock, derived
//                   tuples, stages, fixpoint iterations, tracked memory).
//   CancelToken   — signal-safe cooperative cancellation flag; a SIGINT
//                   handler or another thread sets it, the fixpoint
//                   driver polls it at iteration boundaries.
//   MemoryBudget  — shared byte counter charged by the arenas and the
//                   relation storage as they grow; the guard compares it
//                   against the limit at safe boundaries (it never throws
//                   by itself), so a memory stop is graceful.
//   FaultInjector — deterministic, probe-point-driven failure injection
//                   (GDLOG_FAULTS env or EngineOptions::faults) so every
//                   error path above is testable on demand.
//   RunGuard      — ties the four together: one Check() call at each
//                   fixpoint boundary returns a Status tagged with the
//                   TerminationReason that first tripped.
//
// See docs/ROBUSTNESS.md for the probe-point catalog and the semantics
// of partial (truncated) fixpoints.
#ifndef GDLOG_COMMON_GUARDRAILS_H_
#define GDLOG_COMMON_GUARDRAILS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gdlog {

/// Why a run ended. kCompleted is a genuine fixpoint; every other value
/// is a bounded stop whose partial state stays queryable.
enum class TerminationReason : uint8_t {
  kCompleted = 0,
  kDeadline,        // wall-clock deadline expired (RunLimits::deadline_ms)
  kTupleLimit,      // derived-tuple cap hit (RunLimits::max_tuples)
  kStageLimit,      // next-stage cap hit (RunLimits::max_stages)
  kIterationLimit,  // saturation-round cap hit (RunLimits::max_iterations)
  kMemoryLimit,     // tracked-memory budget exceeded (max_memory_bytes)
  kCancelled,       // CancelToken requested (SIGINT / RequestCancel)
  kOom,             // std::bad_alloc escaped to the Run boundary
  kFault,           // deterministic fault injected at an eval probe point
};

/// Stable lowercase name ("completed", "deadline", "tuple-limit", ...)
/// used in RunReport JSON and shell output.
std::string_view TerminationReasonName(TerminationReason r);

/// Resource caps for one run. Zero means unlimited. Limits are enforced
/// at fixpoint-iteration and gamma-step boundaries, so a single long
/// saturation round may overshoot before the stop lands (documented in
/// docs/ROBUSTNESS.md).
struct RunLimits {
  uint64_t deadline_ms = 0;       // wall-clock budget for Run()
  uint64_t max_tuples = 0;        // derived (rule-produced) tuple cap
  uint64_t max_stages = 0;        // next-rule stage advances
  uint64_t max_iterations = 0;    // saturation rounds
  uint64_t max_memory_bytes = 0;  // MemoryBudget-tracked bytes

  bool any() const {
    return deadline_ms | max_tuples | max_stages | max_iterations |
           max_memory_bytes;
  }
};

/// Cooperative cancellation flag. Request() performs one relaxed atomic
/// store and is async-signal-safe; the evaluator polls cancelled() at
/// iteration boundaries.
class CancelToken {
 public:
  void Request() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

class FaultInjector;

/// Shared counter of engine-tracked allocations (value-store arenas,
/// relation rows, hash sets, indices). Trackers keep a per-container
/// charged figure and call Update with the current approximation; the
/// budget maintains the total and its high-water mark. Reads may come
/// from other threads (reports), hence the relaxed atomics.
class MemoryBudget {
 public:
  /// Adjusts the total by (now_bytes - *charged) and stores now_bytes
  /// back into *charged. With a FaultInjector attached, growth hits the
  /// "alloc" probe, which simulates allocation failure by throwing
  /// std::bad_alloc (caught at the Engine::Run boundary).
  void Update(size_t* charged, size_t now_bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  FaultInjector* injector_ = nullptr;
};

/// Deterministic fault injection. A spec is a comma-separated list of
/// probes, each optionally with a 1-based trigger count:
///
///   "alloc@100"          the 100th tracked-allocation growth throws
///   "parse"              LoadProgram fails before parsing (count 1)
///   "compile@2,deadline" second Run-compile fails; deadline reads expired
///
/// Probe catalog (docs/ROBUSTNESS.md): parse, analyze, compile,
/// eval.saturate, eval.gamma, alloc, deadline. Counters are pure hit
/// counts — no clocks, no randomness — so a failing configuration
/// replays exactly.
class FaultInjector {
 public:
  static constexpr std::string_view kParse = "parse";
  static constexpr std::string_view kAnalyze = "analyze";
  static constexpr std::string_view kCompile = "compile";
  static constexpr std::string_view kEvalSaturate = "eval.saturate";
  static constexpr std::string_view kEvalGamma = "eval.gamma";
  static constexpr std::string_view kAlloc = "alloc";
  static constexpr std::string_view kDeadline = "deadline";
  // Durability probes (docs/DURABILITY.md). wal.append leaves a genuinely
  // torn record on disk; the others fail the surrounding operation.
  static constexpr std::string_view kWalAppend = "wal.append";
  static constexpr std::string_view kWalFsync = "wal.fsync";
  static constexpr std::string_view kCheckpointWrite = "checkpoint.write";
  static constexpr std::string_view kRecoveryReplay = "recovery.replay";

  /// Every recognized probe name, for sweep tests and docs.
  static const std::vector<std::string_view>& ProbeCatalog();

  /// Parses a spec; rejects unknown probe names and malformed counts.
  static Result<FaultInjector> Parse(std::string_view spec);

  /// Records one hit of `probe`; true exactly when an armed probe reaches
  /// its trigger count (it stays silent afterwards — one shot).
  bool Hit(std::string_view probe);

  bool ArmedFor(std::string_view probe) const;
  /// Hits recorded so far for `probe` (armed or not).
  uint64_t hits(std::string_view probe) const;
  const std::string& spec() const { return spec_; }

 private:
  // Hit counters are atomic: the alloc probe fires from MemoryBudget
  // charges, which parallel evaluation issues on worker threads. The
  // copy constructor exists only so Parse can return by value and the
  // engine can store the injector — never copy one that is being hit.
  struct Probe {
    std::string name;
    uint64_t trigger = 0;  // 0 = not armed; N = fire on the Nth hit
    std::atomic<uint64_t> count{0};
    std::atomic<bool> fired{false};

    Probe(std::string n, uint64_t t) : name(std::move(n)), trigger(t) {}
    Probe(const Probe& o)
        : name(o.name),
          trigger(o.trigger),
          count(o.count.load(std::memory_order_relaxed)),
          fired(o.fired.load(std::memory_order_relaxed)) {}
    Probe& operator=(const Probe& o) {
      name = o.name;
      trigger = o.trigger;
      count.store(o.count.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      fired.store(o.fired.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };
  Probe* FindProbe(std::string_view name);
  const Probe* FindProbe(std::string_view name) const;

  std::string spec_;
  std::vector<Probe> probes_;
};

/// Counters sampled at each guard check; the driver fills them from its
/// running statistics.
struct GuardCounters {
  uint64_t tuples = 0;      // derived tuples so far
  uint64_t stages = 0;      // next-stages assigned so far
  uint64_t iterations = 0;  // saturation rounds so far
};

/// One guard per run: latches the first limit violation and reports the
/// same reason/Status on every later check, so a stop propagates cleanly
/// out of nested loops.
class RunGuard {
 public:
  RunGuard(const RunLimits& limits, const CancelToken* cancel,
           MemoryBudget* budget, FaultInjector* injector);

  /// Stamps the run's start time (the deadline is relative to this).
  void Arm();

  /// Returns OK while the run may continue; otherwise a Status tagged
  /// with a [GD2xx] code. `probe` names the boundary for fault injection
  /// (FaultInjector::kEvalSaturate / kEvalGamma) and may be empty.
  Status Check(const GuardCounters& counters, std::string_view probe);

  /// Records an externally-detected stop (e.g. bad_alloc caught at the
  /// Run boundary) so reports agree with the returned status.
  void ForceReason(TerminationReason reason);

  TerminationReason reason() const { return reason_; }
  uint64_t checks() const { return checks_; }
  const RunLimits& limits() const { return limits_; }
  /// Non-const: worker threads charge their output buffers to the budget
  /// (MemoryBudget::Update is atomic).
  MemoryBudget* budget() const { return budget_; }
  /// The run's cancel token (may be null); polled inside worker scans.
  const CancelToken* cancel() const { return cancel_; }
  FaultInjector* injector() const { return injector_; }

 private:
  Status Trip(TerminationReason reason, Status status);

  RunLimits limits_;
  const CancelToken* cancel_;
  MemoryBudget* budget_;
  FaultInjector* injector_;
  uint64_t start_ns_ = 0;
  uint64_t deadline_ns_ = 0;  // absolute; 0 = none
  uint64_t checks_ = 0;
  TerminationReason reason_ = TerminationReason::kCompleted;
  Status tripped_;  // latched non-OK status after the first violation
};

}  // namespace gdlog

#endif  // GDLOG_COMMON_GUARDRAILS_H_
