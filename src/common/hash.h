// Hashing helpers shared by interning tables, relation indices, and the
// choice runtime. All hashing in the engine goes through these so hash
// quality is controlled in one place.
#ifndef GDLOG_COMMON_HASH_H_
#define GDLOG_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gdlog {

/// Finalizer from SplitMix64; good avalanche for 64-bit keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

/// FNV-1a over a byte string.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Hash of a span of 64-bit values (tuple hashing).
inline uint64_t HashSpan64(const uint64_t* data, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ n;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, Mix64(data[i]));
  return h;
}

}  // namespace gdlog

#endif  // GDLOG_COMMON_HASH_H_
