// Minimal logging and invariant-checking macros.
//
// Log lines carry an ISO-8601 UTC timestamp and a severity tag:
//   [2026-08-06T14:03:07.123Z ERROR src/eval/fixpoint.cc:42] message
// ERROR and FATAL always emit to stderr; INFO and WARNING are gated by
// SetVerboseLogging (emission and stream choice are independent).
//
// CHECK-style macros abort on violation; they guard engine invariants, not
// user input (user input failures travel through Status).
#ifndef GDLOG_COMMON_LOGGING_H_
#define GDLOG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gdlog {
namespace internal {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Stream-style log message; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Global switch for LOG(INFO)/LOG(WARNING) output (errors always print).
/// Benchmarks turn this off to keep tables clean.
void SetVerboseLogging(bool enabled);
bool VerboseLoggingEnabled();

#define GDLOG_LOG_INFO                                            \
  ::gdlog::internal::LogMessage(                                  \
      ::gdlog::internal::LogSeverity::kInfo, __FILE__, __LINE__)
#define GDLOG_LOG_WARNING                                         \
  ::gdlog::internal::LogMessage(                                  \
      ::gdlog::internal::LogSeverity::kWarning, __FILE__, __LINE__)
#define GDLOG_LOG_ERROR                                           \
  ::gdlog::internal::LogMessage(                                  \
      ::gdlog::internal::LogSeverity::kError, __FILE__, __LINE__)
#define GDLOG_LOG_FATAL                                           \
  ::gdlog::internal::LogMessage(                                  \
      ::gdlog::internal::LogSeverity::kFatal, __FILE__, __LINE__)

#define GDLOG_CHECK(cond)                                   \
  if (cond) {                                               \
  } else                                                    \
    GDLOG_LOG_FATAL << "Check failed: " #cond " "

#define GDLOG_CHECK_EQ(a, b) GDLOG_CHECK((a) == (b))
#define GDLOG_CHECK_NE(a, b) GDLOG_CHECK((a) != (b))
#define GDLOG_CHECK_LT(a, b) GDLOG_CHECK((a) < (b))
#define GDLOG_CHECK_LE(a, b) GDLOG_CHECK((a) <= (b))
#define GDLOG_CHECK_GT(a, b) GDLOG_CHECK((a) > (b))
#define GDLOG_CHECK_GE(a, b) GDLOG_CHECK((a) >= (b))

}  // namespace gdlog

#endif  // GDLOG_COMMON_LOGGING_H_
