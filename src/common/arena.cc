#include "common/arena.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace gdlog {

Arena::~Arena() {
  if (budget_ != nullptr) budget_->Update(&charged_bytes_, 0);
}

void Arena::set_memory_budget(MemoryBudget* budget) {
  if (budget_ != nullptr && budget != budget_) {
    budget_->Update(&charged_bytes_, 0);
  }
  budget_ = budget;
  if (budget_ == nullptr) return;
  size_t reserved = 0;
  for (const Block& b : blocks_) reserved += b.size;
  budget_->Update(&charged_bytes_, reserved);
}

void Arena::AddBlock(size_t min_size) {
  Block b;
  b.size = std::max(block_size_, min_size);
  b.data = std::make_unique<char[]>(b.size);
  b.used = 0;
  blocks_.push_back(std::move(b));
  if (budget_ != nullptr) {
    budget_->Update(&charged_bytes_, charged_bytes_ + blocks_.back().size);
  }
}

void* Arena::Allocate(size_t n, size_t align) {
  GDLOG_CHECK((align & (align - 1)) == 0);
  if (n == 0) n = 1;
  if (blocks_.empty()) AddBlock(n + align);
  Block* b = &blocks_.back();
  size_t offset = (b->used + align - 1) & ~(align - 1);
  if (offset + n > b->size) {
    AddBlock(n + align);
    b = &blocks_.back();
    offset = 0;
  }
  b->used = offset + n;
  bytes_allocated_ += n;
  return b->data.get() + offset;
}

std::string_view Arena::CopyString(std::string_view s) {
  char* p = static_cast<char*>(Allocate(s.size() + 1, 1));
  std::memcpy(p, s.data(), s.size());
  p[s.size()] = '\0';
  return std::string_view(p, s.size());
}

}  // namespace gdlog
