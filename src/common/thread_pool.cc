#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace gdlog {

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(uint32_t num_workers)
    : num_workers_(std::max<uint32_t>(1, num_workers)) {
  threads_.reserve(num_workers_ - 1);
  for (uint32_t i = 0; i + 1 < num_workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

uint32_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::DrainBatch(const std::function<void(size_t)>& fn,
                            size_t num_tasks) {
  for (;;) {
    const size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks) return;
    if (queue_wait_cb_) {
      const uint64_t now = NowNs();
      queue_wait_cb_(now > batch_start_ns_ ? now - batch_start_ns_ : 0);
    }
    bool failed = false;
    std::exception_ptr err;
    try {
      fn(task);
    } catch (...) {
      failed = true;
      err = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mu_);
    --pending_;
    if (failed) {
      if (!error_) error_ = err;
      // Abandon the unclaimed remainder: mark those tasks finished and
      // bump the claim counter past the end so no worker picks them up.
      const size_t unclaimed =
          num_tasks - std::min(num_tasks,
                               next_task_.exchange(num_tasks,
                                                   std::memory_order_relaxed));
      pending_ -= std::min(pending_, unclaimed);
    }
    if (pending_ == 0) {
      lock.unlock();
      done_cv_.notify_all();
      if (failed) return;
    } else if (failed) {
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      // The batch may have drained entirely before this worker woke;
      // Run() has already nulled fn_ then, and there is nothing to do.
      if (fn_ == nullptr) continue;
      fn = fn_;
      num_tasks = num_tasks_;
      ++active_;
    }
    DrainBatch(*fn, num_tasks);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
    }
    // Run() cannot retire the batch (and start the next one, resetting
    // next_task_) while any worker may still touch this batch's state.
    done_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t num_tasks, const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_workers_ == 1 || num_tasks == 1) {
    const uint64_t start = queue_wait_cb_ ? NowNs() : 0;
    for (size_t i = 0; i < num_tasks; ++i) {
      if (queue_wait_cb_) {
        const uint64_t now = NowNs();
        queue_wait_cb_(now > start ? now - start : 0);
      }
      fn(i);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    pending_ = num_tasks;
    error_ = nullptr;
    batch_start_ns_ = NowNs();
    ++generation_;
  }
  batch_cv_.notify_all();
  DrainBatch(fn, num_tasks);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0 && active_ == 0; });
    err = error_;
    fn_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace gdlog
