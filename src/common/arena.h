// Bump-pointer arena. The engine's interning tables (symbols, ground
// terms) and per-run scratch structures allocate from arenas so that
// term memory is owned wholesale by the Engine and freed in O(1) blocks,
// avoiding per-term malloc/free churn.
#ifndef GDLOG_COMMON_ARENA_H_
#define GDLOG_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/guardrails.h"

namespace gdlog {

class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024) : block_size_(block_size) {}
  ~Arena();

  // Non-movable: the budget charge is keyed to this object's identity.
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = delete;
  Arena& operator=(Arena&&) = delete;

  /// Charges current and future block reservations to `budget` (which
  /// must outlive the arena); releases them on destruction.
  void set_memory_budget(MemoryBudget* budget);

  /// Allocates `n` bytes aligned to `align` (a power of two).
  void* Allocate(size_t n, size_t align = alignof(std::max_align_t));

  /// Copies `s` into the arena; the view stays valid for the arena's life.
  std::string_view CopyString(std::string_view s);

  /// Allocates an uninitialized array of T (trivially destructible only —
  /// the arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena does not run destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out (for accounting in EXPERIMENTS.md memory rows).
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void AddBlock(size_t min_size);

  size_t block_size_;
  size_t bytes_allocated_ = 0;
  std::vector<Block> blocks_;
  MemoryBudget* budget_ = nullptr;
  size_t charged_bytes_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_COMMON_ARENA_H_
