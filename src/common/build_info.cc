#include "common/build_info.h"

#ifndef GDLOG_VERSION_STRING
#define GDLOG_VERSION_STRING "unknown"
#endif
#ifndef GDLOG_GIT_SHA
#define GDLOG_GIT_SHA "unknown"
#endif
#ifndef GDLOG_COMPILER_ID
#define GDLOG_COMPILER_ID "unknown"
#endif
#ifndef GDLOG_SANITIZE_MODE
#define GDLOG_SANITIZE_MODE "unknown"
#endif

namespace gdlog {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{GDLOG_VERSION_STRING, GDLOG_GIT_SHA,
                              GDLOG_COMPILER_ID, GDLOG_SANITIZE_MODE};
  return info;
}

}  // namespace gdlog
