// Fixed-size worker pool for deterministic parallel evaluation.
//
// The pool owns N-1 persistent threads; the calling thread participates
// as the N-th worker, so `ThreadPool(n)` gives exactly n workers with no
// oversubscription. Work is submitted as one batch of indexed tasks
// (`Run(num_tasks, fn)`): workers claim task indices with an atomic
// counter, so scheduling is dynamic, but because tasks are *indexed* and
// results land in caller-owned per-index slots, callers get
// deterministic output regardless of which worker ran which task.
//
// Exception safety: the first exception thrown by any task is captured,
// the remaining unclaimed tasks are abandoned, and the exception is
// rethrown from Run() on the calling thread — so std::bad_alloc from a
// MemoryBudget fault probe propagates to the Engine::Run boundary
// exactly like in serial evaluation.
#ifndef GDLOG_COMMON_THREAD_POOL_H_
#define GDLOG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gdlog {

class ThreadPool {
 public:
  /// A pool of `num_workers` total workers (the caller counts as one, so
  /// num_workers - 1 threads are spawned). num_workers <= 1 spawns
  /// nothing and Run() executes inline.
  explicit ThreadPool(uint32_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_workers() const { return num_workers_; }

  /// Executes fn(task_index) for every task_index in [0, num_tasks),
  /// distributing indices across the pool; blocks until every claimed
  /// task finished. Not reentrant: tasks must not call Run() on the same
  /// pool. Rethrows the first task exception after the batch drains.
  void Run(size_t num_tasks, const std::function<void(size_t)>& fn);

  /// Observability hook: called once per claimed task with the
  /// nanoseconds the task spent queued (batch submission to claim). The
  /// callback runs on worker threads concurrently and must be
  /// thread-safe (the engine binds it to a lock-free histogram). Set
  /// before the first Run(); null disables (the default).
  void set_queue_wait_callback(std::function<void(uint64_t)> cb) {
    queue_wait_cb_ = std::move(cb);
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static uint32_t HardwareThreads();

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current batch until exhausted.
  void DrainBatch(const std::function<void(size_t)>& fn, size_t num_tasks);

  const uint32_t num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable batch_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;   // Run() waits for batch completion
  uint64_t generation_ = 0;           // bumped per batch
  bool shutdown_ = false;

  // Current batch (valid while pending_ > 0).
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t num_tasks_ = 0;
  std::atomic<size_t> next_task_{0};
  size_t pending_ = 0;  // tasks claimed-but-unfinished + unclaimed
  size_t active_ = 0;   // spawned workers currently inside DrainBatch
  std::exception_ptr error_;
  // Written in Run() before workers wake, constant for the batch's
  // lifetime (Run() cannot start the next batch while any DrainBatch is
  // still running), so lock-free reads in DrainBatch are race-free.
  uint64_t batch_start_ns_ = 0;
  std::function<void(uint64_t)> queue_wait_cb_;
};

}  // namespace gdlog

#endif  // GDLOG_COMMON_THREAD_POOL_H_
