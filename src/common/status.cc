#include "common/status.h"

namespace gdlog {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace gdlog
