// Random relation generators (the p(X, C) inputs of Example 5's sort).
#ifndef GDLOG_WORKLOAD_RELATION_GEN_H_
#define GDLOG_WORKLOAD_RELATION_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace gdlog {

struct RelationGenOptions {
  uint64_t seed = 1;
  int64_t max_cost = 1'000'000;
  bool unique_costs = true;
};

/// n tuples (id, cost); ids are 0..n-1, costs random (distinct when
/// unique_costs).
std::vector<std::pair<int64_t, int64_t>> RandomCostedRelation(
    uint32_t n, const RelationGenOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_WORKLOAD_RELATION_GEN_H_
