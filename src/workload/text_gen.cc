#include "workload/text_gen.h"

#include <cmath>
#include <map>

#include "common/rng.h"

namespace gdlog {

std::vector<std::pair<std::string, int64_t>> ZipfLetterFrequencies(
    uint32_t k, const TextGenOptions& options) {
  Rng rng(options.seed);
  double norm = 0;
  for (uint32_t r = 1; r <= k; ++r) norm += 1.0 / std::pow(r, options.zipf_s);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(k);
  for (uint32_t r = 1; r <= k; ++r) {
    const double share = (1.0 / std::pow(r, options.zipf_s)) / norm;
    int64_t f = static_cast<int64_t>(share * options.total_occurrences);
    if (f < 1) f = 1;
    // Jitter so equal tails differ, then force uniqueness if requested.
    f += static_cast<int64_t>(rng.NextBounded(7));
    if (options.unique_frequencies) f = f * (k + 1) + r;
    out.emplace_back("l" + std::to_string(r - 1), f);
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> CountLetterFrequencies(
    const std::string& text) {
  std::map<char, int64_t> counts;
  for (char c : text) ++counts[c];
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [c, n] : counts) out.emplace_back(std::string(1, c), n);
  return out;
}

}  // namespace gdlog
