#include "workload/interval_gen.h"

#include "common/rng.h"

namespace gdlog {

std::vector<std::pair<int64_t, int64_t>> RandomIntervals(
    uint32_t n, const IntervalGenOptions& options) {
  Rng rng(options.seed);
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const int64_t start = rng.NextInt(0, options.horizon - 1);
    int64_t finish = start + rng.NextInt(1, options.max_duration);
    if (options.unique_finish_times) finish = finish * (n + 1) + i;
    out.push_back({options.unique_finish_times ? start * (n + 1) : start,
                   finish});
  }
  return out;
}

}  // namespace gdlog
