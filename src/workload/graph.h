// Shared weighted-graph type for the greedy library, the procedural
// baselines, and the workload generators. Nodes are dense ids [0, n).
#ifndef GDLOG_WORKLOAD_GRAPH_H_
#define GDLOG_WORKLOAD_GRAPH_H_

#include <cstdint>
#include <vector>

namespace gdlog {

struct GraphEdge {
  uint32_t u = 0;
  uint32_t v = 0;
  int64_t w = 0;
};

/// Edge list; interpretation (directed vs undirected) is up to the
/// consumer — generators document what they produce.
struct Graph {
  uint32_t num_nodes = 0;
  std::vector<GraphEdge> edges;
};

}  // namespace gdlog

#endif  // GDLOG_WORKLOAD_GRAPH_H_
