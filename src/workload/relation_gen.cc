#include "workload/relation_gen.h"

#include "common/rng.h"

namespace gdlog {

std::vector<std::pair<int64_t, int64_t>> RandomCostedRelation(
    uint32_t n, const RelationGenOptions& options) {
  Rng rng(options.seed);
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t c = rng.NextInt(1, options.max_cost);
    if (options.unique_costs) c = c * (n + 1) + i;
    out.emplace_back(i, c);
  }
  return out;
}

}  // namespace gdlog
