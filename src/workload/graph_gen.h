// Seeded random graph generators for tests and benchmarks.
//
// All generators are deterministic in (parameters, seed). With
// `unique_weights` every edge weight is distinct, which makes greedy
// outcomes tie-free and lets tests compare the declarative engine with
// the procedural baselines tuple-for-tuple.
#ifndef GDLOG_WORKLOAD_GRAPH_GEN_H_
#define GDLOG_WORKLOAD_GRAPH_GEN_H_

#include "common/rng.h"
#include "workload/graph.h"

namespace gdlog {

struct GraphGenOptions {
  uint64_t seed = 1;
  int64_t max_weight = 1'000'000;
  bool unique_weights = true;
};

/// Connected undirected graph: a random spanning chain plus
/// `extra_edges` random non-self-loop edges (parallel edges possible,
/// harmless for MST). Total edges = n - 1 + extra_edges.
Graph ConnectedRandomGraph(uint32_t n, uint32_t extra_edges,
                           const GraphGenOptions& options = {});

/// Complete undirected graph on n nodes (n*(n-1)/2 edges).
Graph CompleteGraph(uint32_t n, const GraphGenOptions& options = {});

/// Directed bipartite graph: sources [0, left), targets [left,
/// left+right), m random arcs (duplicates filtered).
Graph BipartiteGraph(uint32_t left, uint32_t right, uint32_t m,
                     const GraphGenOptions& options = {});

/// rows x cols grid, 4-neighbour undirected edges.
Graph GridGraph(uint32_t rows, uint32_t cols,
                const GraphGenOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_WORKLOAD_GRAPH_GEN_H_
