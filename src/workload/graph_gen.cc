#include "workload/graph_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace gdlog {

namespace {

/// Draws edge weights; with unique_weights, weight = draw * E + index,
/// which preserves the random order while making all weights distinct.
class WeightDrawer {
 public:
  WeightDrawer(Rng* rng, const GraphGenOptions& options, size_t num_edges)
      : rng_(rng), options_(options), num_edges_(num_edges) {}

  int64_t Next() {
    const int64_t base = rng_->NextInt(1, options_.max_weight);
    if (!options_.unique_weights) return base;
    return base * static_cast<int64_t>(num_edges_ + 1) +
           static_cast<int64_t>(index_++);
  }

 private:
  Rng* rng_;
  const GraphGenOptions& options_;
  size_t num_edges_;
  size_t index_ = 0;
};

}  // namespace

Graph ConnectedRandomGraph(uint32_t n, uint32_t extra_edges,
                           const GraphGenOptions& options) {
  GDLOG_CHECK_GE(n, 1u);
  Rng rng(options.seed);
  Graph g;
  g.num_nodes = n;
  const size_t total = (n > 0 ? n - 1 : 0) + extra_edges;
  WeightDrawer weights(&rng, options, total);

  // Random spanning chain over a shuffled node order.
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  // Parallel edges are excluded: the paper's choice(Y, X) goals assume
  // one cost per arc (see the remark below Example 3), and a duplicate
  // (X, Y) pair with two costs would admit two entries for Y.
  std::unordered_set<uint64_t> seen;
  auto pair_key = [](uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (uint32_t i = 1; i < n; ++i) {
    // Attach to a random earlier node for a tree rather than a path.
    const uint32_t parent = order[rng.NextBounded(i)];
    seen.insert(pair_key(parent, order[i]));
    g.edges.push_back({parent, order[i], weights.Next()});
  }
  uint32_t added = 0, attempts = 0;
  while (added < extra_edges && attempts < 20 * extra_edges + 100) {
    ++attempts;
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t b = static_cast<uint32_t>(rng.NextBounded(n));
    if (a == b) continue;
    if (!seen.insert(pair_key(a, b)).second) continue;
    g.edges.push_back({a, b, weights.Next()});
    ++added;
  }
  return g;
}

Graph CompleteGraph(uint32_t n, const GraphGenOptions& options) {
  Rng rng(options.seed);
  Graph g;
  g.num_nodes = n;
  const size_t total = static_cast<size_t>(n) * (n - 1) / 2;
  WeightDrawer weights(&rng, options, total);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      g.edges.push_back({a, b, weights.Next()});
    }
  }
  return g;
}

Graph BipartiteGraph(uint32_t left, uint32_t right, uint32_t m,
                     const GraphGenOptions& options) {
  Rng rng(options.seed);
  Graph g;
  g.num_nodes = left + right;
  WeightDrawer weights(&rng, options, m);
  std::unordered_set<uint64_t> seen;
  uint32_t attempts = 0;
  while (g.edges.size() < m && attempts < 20 * m + 100) {
    ++attempts;
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(left));
    const uint32_t b =
        left + static_cast<uint32_t>(rng.NextBounded(right));
    const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (!seen.insert(key).second) continue;
    g.edges.push_back({a, b, weights.Next()});
  }
  return g;
}

Graph GridGraph(uint32_t rows, uint32_t cols,
                const GraphGenOptions& options) {
  Rng rng(options.seed);
  Graph g;
  g.num_nodes = rows * cols;
  const size_t total =
      static_cast<size_t>(rows) * (cols - 1) + static_cast<size_t>(cols) * (rows - 1);
  WeightDrawer weights(&rng, options, total);
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.edges.push_back({id(r, c), id(r, c + 1), weights.Next()});
      if (r + 1 < rows) g.edges.push_back({id(r, c), id(r + 1, c), weights.Next()});
    }
  }
  return g;
}

}  // namespace gdlog
