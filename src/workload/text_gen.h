// Letter-frequency generators for the Huffman experiments (Example 6).
#ifndef GDLOG_WORKLOAD_TEXT_GEN_H_
#define GDLOG_WORKLOAD_TEXT_GEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gdlog {

struct TextGenOptions {
  uint64_t seed = 1;
  // Zipf exponent for the frequency distribution.
  double zipf_s = 1.1;
  int64_t total_occurrences = 1'000'000;
  bool unique_frequencies = true;
};

/// k symbols ("l0", "l1", ...) with Zipf-distributed frequencies summing
/// roughly to total_occurrences; with unique_frequencies, all distinct.
std::vector<std::pair<std::string, int64_t>> ZipfLetterFrequencies(
    uint32_t k, const TextGenOptions& options = {});

/// Frequencies counted from a concrete string (for the example app).
std::vector<std::pair<std::string, int64_t>> CountLetterFrequencies(
    const std::string& text);

}  // namespace gdlog

#endif  // GDLOG_WORKLOAD_TEXT_GEN_H_
