// Random interval (job) generators for the scheduling experiments.
#ifndef GDLOG_WORKLOAD_INTERVAL_GEN_H_
#define GDLOG_WORKLOAD_INTERVAL_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace gdlog {

struct IntervalGenOptions {
  uint64_t seed = 1;
  int64_t horizon = 1'000'000;   // starts drawn from [0, horizon)
  int64_t max_duration = 50'000;
  bool unique_finish_times = true;
};

/// n half-open intervals [start, finish).
std::vector<std::pair<int64_t, int64_t>> RandomIntervals(
    uint32_t n, const IntervalGenOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_WORKLOAD_INTERVAL_GEN_H_
