#include "api/engine.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "analysis/diagnostics.h"
#include "analysis/rewriter.h"
#include "ast/printer.h"
#include "common/build_info.h"
#include "common/logging.h"
#include "eval/ir/ir.h"
#include "obs/json.h"
#include "parser/parser.h"

namespace gdlog {

namespace {

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

// Numeric "GDnnn" code of a status for flight-recorder payloads (0 when
// the status carries no code).
int64_t DiagCodeNumber(const Status& st) {
  const std::string code = DiagCodeOfStatus(st);
  int64_t n = 0;
  for (size_t i = 2; i < code.size(); ++i) {
    if (code[i] < '0' || code[i] > '9') return 0;
    n = n * 10 + (code[i] - '0');
  }
  return n;
}

}  // namespace

const char* EngineRunStateName(EngineRunState s) {
  switch (s) {
    case EngineRunState::kIdle: return "idle";
    case EngineRunState::kRunning: return "running";
    case EngineRunState::kCompleted: return "completed";
    case EngineRunState::kStopped: return "stopped";
  }
  return "unknown";
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      store_(std::make_unique<ValueStore>()),
      catalog_(std::make_unique<Catalog>()),
      start_time_(std::chrono::steady_clock::now()) {
  // Memory tracking is always on: the per-container recounts are O(1)
  // amortized, and peak figures belong in every report, limit or not.
  // Wired before the fault injector so the initial charge of the empty
  // stores can never trip the "alloc" probe.
  store_->set_memory_budget(&budget_);
  catalog_->set_memory_budget(&budget_);
  // Provenance: either flag (top-level or eval-level) turns on both the
  // storage side-column and the driver's trail/audit.
  if (options_.provenance || options_.eval.provenance) {
    options_.provenance = true;
    options_.eval.provenance = true;
    catalog_->EnableProvenance();
  }
  // Fault injection: explicit option first, GDLOG_FAULTS env fallback. A
  // malformed spec is remembered and surfaced by LoadProgram/Run rather
  // than aborting construction.
  std::string spec = options_.faults;
  if (spec.empty()) {
    if (const char* env = std::getenv("GDLOG_FAULTS")) spec = env;
  }
  if (!spec.empty()) {
    auto parsed = FaultInjector::Parse(spec);
    if (parsed.ok()) {
      injector_ = std::make_unique<FaultInjector>(std::move(*parsed));
      budget_.set_fault_injector(injector_.get());
    } else {
      faults_status_ = parsed.status();
    }
  }
  // Tracer: opt-in (it allocates per event). Metrics registry and
  // flight recorder: always-on defaults (see ObsOptions); an external
  // registry wins over the enable flag so callers accumulating across
  // runs keep working even with metrics_enabled=false.
  if (options_.obs.enabled) {
    tracer_ = std::make_unique<Tracer>(options_.obs.sample_every);
  }
  if (options_.obs.metrics != nullptr) {
    metrics_ = options_.obs.metrics;
  } else if (options_.obs.metrics_enabled) {
    own_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  if (options_.obs.recorder_enabled) {
    recorder_ =
        std::make_unique<FlightRecorder>(options_.obs.recorder_capacity);
  }
  if (options_.obs.progress_enabled) {
    progress_ = std::make_unique<ProgressTap>(options_.obs.progress_capacity);
  }
  if (metrics_ != nullptr) {
    // Build identity as a constant gauge, the node_exporter convention:
    // the value is always 1, the information lives in the labels.
    const BuildInfo& bi = GetBuildInfo();
    metrics_
        ->GetGauge("build.info", {{"version", bi.version},
                                  {"git_sha", bi.git_sha},
                                  {"compiler", bi.compiler},
                                  {"sanitizer", bi.sanitizer}})
        ->Set(1);
    // Register the uptime/run-state gauges now so the very first scrape
    // already carries the full family.
    RefreshRuntimeMetrics();
  }
  // Durability last: recovery interns values and charges the budget, so
  // every guardrail and observability hook must already be in place.
  OpenDurability();
  // The live endpoint starts after every surface it borrows exists. A
  // bind failure is latched (obs_http_status), not fatal — an engine
  // that cannot serve can still evaluate.
  if (options_.obs_http.enabled) {
    ObsServer::Sources src;
    src.metrics = metrics_;
    src.metrics_text = [this]() -> std::string {
      auto text = MetricsText();
      return text.ok() ? std::move(*text) : std::string();
    };
    src.recorder = recorder_.get();
    src.progress = progress_.get();
    src.statusz = [this] { return StatuszJson(); };
    obs_server_ =
        std::make_unique<ObsServer>(options_.obs_http, std::move(src));
    obs_http_status_ = obs_server_->Start();
    if (!obs_http_status_.ok()) {
      GDLOG_LOG_ERROR << "obs endpoint failed to start: "
                      << obs_http_status_.ToString();
      obs_server_.reset();
    }
  }
}

Engine::~Engine() = default;

namespace {

Status InjectedFault(std::string_view probe) {
  return Status::Internal(std::string("[") + std::string(diag::kInjectedFault) +
                          "] injected fault at probe '" + std::string(probe) +
                          "'");
}

Status OomStatus() {
  return Status::OutOfMemory(std::string("[") +
                             std::string(diag::kOutOfMemory) +
                             "] allocation failed");
}

}  // namespace

void Engine::OpenDurability() {
  if (options_.durability.dir.empty()) return;
  auto policy = ParseFsyncPolicy(options_.durability.fsync);
  if (!policy.ok()) {
    durability_status_ = policy.status();
    return;
  }
  durable_ = std::make_unique<DurableStore>();
  DurableStore::Options dopts;
  dopts.dir = options_.durability.dir;
  dopts.fsync = *policy;
  dopts.wal_batch_bytes = options_.durability.wal_batch_bytes;
  dopts.checkpoint_every = options_.durability.checkpoint_every;
  dopts.injector = injector_.get();
  dopts.budget = &budget_;
  const Status st = durable_->Open(dopts, store_.get());
  if (!st.ok()) {
    durability_status_ = st;
    if (recorder_) {
      recorder_->Record(FlightEventKind::kDurabilityError,
                        DiagCodeNumber(st));
    }
    durable_.reset();
    return;
  }
  // Replay the recovered EDB into the catalog so the engine starts with
  // exactly the facts that were durable at the last crash/close.
  try {
    for (const DurableStore::EdbRelation& r : durable_->relations()) {
      const PredicateId id = catalog_->Ensure(r.name, r.arity);
      Relation& rel = catalog_->relation(id);
      for (size_t row = 0; row < r.num_rows; ++row) {
        const TupleView tuple(r.rows.data() + row * r.arity, r.arity);
        const auto res = rel.Insert(tuple);
        if (res.inserted && rel.provenance_enabled()) {
          rel.Annotate(res.row, Relation::kEdbRule, nullptr, 0);
        }
      }
    }
  } catch (const std::bad_alloc&) {
    durability_status_ = OomStatus();
    return;
  }
  const DurableStore::RecoveryInfo& rec = durable_->recovery();
  if (recorder_ && rec.opened_existing) {
    recorder_->Record(FlightEventKind::kRecovery,
                      static_cast<int64_t>(rec.wal_records_replayed),
                      static_cast<int64_t>(rec.wal_dropped_bytes));
  }
  PublishDurabilityMetrics();
}

void Engine::PublishDurabilityMetrics() {
  if (metrics_ == nullptr || durable_ == nullptr) return;
  const DurableStore::Stats s = durable_->stats();
  const DurableStore::RecoveryInfo& rec = durable_->recovery();
  metrics_->GetGauge("wal.appends")->Set(static_cast<int64_t>(s.wal_appends));
  metrics_->GetGauge("wal.fsyncs")->Set(static_cast<int64_t>(s.wal_fsyncs));
  metrics_->GetGauge("wal.bytes_appended")
      ->Set(static_cast<int64_t>(s.wal_bytes_appended));
  metrics_->GetGauge("wal.size_bytes")
      ->Set(static_cast<int64_t>(s.wal_size_bytes));
  metrics_->GetGauge("wal.seq")
      ->Set(static_cast<int64_t>(durable_->wal_seq()));
  metrics_->GetGauge("checkpoint.count")
      ->Set(static_cast<int64_t>(s.checkpoints));
  metrics_->GetGauge("checkpoint.failures")
      ->Set(static_cast<int64_t>(s.checkpoint_failures));
  metrics_->GetGauge("checkpoint.last_bytes")
      ->Set(static_cast<int64_t>(s.checkpoint_bytes));
  metrics_->GetGauge("checkpoint.snapshot_seq")
      ->Set(static_cast<int64_t>(durable_->snapshot_seq()));
  metrics_->GetGauge("recovery.wal_records_replayed")
      ->Set(static_cast<int64_t>(rec.wal_records_replayed));
  metrics_->GetGauge("recovery.wal_dropped_bytes")
      ->Set(static_cast<int64_t>(rec.wal_dropped_bytes));
}

Status Engine::LoadProgram(std::string_view text) {
  GDLOG_RETURN_IF_ERROR(faults_status_);
  GDLOG_RETURN_IF_ERROR(durability_status_);
  if (injector_ && injector_->Hit(FaultInjector::kParse)) {
    if (recorder_) recorder_->Record(FlightEventKind::kFaultInjected, 0);
    return InjectedFault(FaultInjector::kParse);
  }
  // Parsing interns symbols, so with an armed "alloc" probe (or a truly
  // exhausted heap) it can throw; surface that as a Status like any
  // other load failure.
  try {
    const uint64_t t0 = WallNowNs();
    auto parsed = [&] {
      TraceSpan span(tracer_.get(), "parse", "engine");
      return ParseProgram(store_.get(), text);
    }();
    phase_times_.parse_ns += WallNowNs() - t0;
    GDLOG_RETURN_IF_ERROR(parsed.status());
    return LoadProgramAst(std::move(*parsed));
  } catch (const std::bad_alloc&) {
    return OomStatus();
  }
}

Status Engine::LoadProgramAst(Program program) {
  GDLOG_RETURN_IF_ERROR(faults_status_);
  GDLOG_RETURN_IF_ERROR(durability_status_);
  if (program_) {
    return Status::InvalidArgument("a program is already loaded");
  }
  if (injector_ && injector_->Hit(FaultInjector::kAnalyze)) {
    if (recorder_) recorder_->Record(FlightEventKind::kFaultInjected, 1);
    return InjectedFault(FaultInjector::kAnalyze);
  }
  const uint64_t t0 = WallNowNs();
  auto analyzed = [&] {
    TraceSpan span(tracer_.get(), "analyze", "engine");
    return AnalyzeStages(program, options_.stage);
  }();
  phase_times_.analyze_ns += WallNowNs() - t0;
  GDLOG_RETURN_IF_ERROR(analyzed.status());
  StageAnalysis analysis = std::move(*analyzed);
  for (uint32_t scc = 0; scc < analysis.cliques.size(); ++scc) {
    const CliqueStageInfo& cl = analysis.cliques[scc];
    if (cl.cls != CliqueClass::kRejected) continue;
    Diagnostic d = MakeDiagnostic(
        cl.code.empty() ? std::string_view(diag::kNotStageStratified)
                        : std::string_view(cl.code),
        cl.diagnostic);
    if (!cl.rules.empty()) {
      d.rule_index = static_cast<int>(cl.rules[0]);
      d.loc = program.rules[cl.rules[0]].loc;
    }
    return DiagnosticToStatus(d);
  }
  program_ = std::make_unique<Program>(std::move(program));
  analysis_ = std::make_unique<StageAnalysis>(std::move(analysis));
  return Status::OK();
}

void Engine::RecordDeferredDurabilityError() {
  if (durable_ == nullptr) return;
  const Status st = durable_->TakeDeferredError();
  if (!st.ok() && recorder_) {
    recorder_->Record(FlightEventKind::kDurabilityError, DiagCodeNumber(st));
  }
}

Status Engine::AddFact(std::string_view predicate, std::vector<Value> args) {
  if (ran_) return Status::InvalidArgument("cannot add facts after Run");
  GDLOG_RETURN_IF_ERROR(durability_status_);
  try {
    const auto arity = static_cast<uint32_t>(args.size());
    const PredicateId id = catalog_->Ensure(predicate, arity);
    Relation& rel = catalog_->relation(id);
    if (durable_) {
      // Dedup before logging so the WAL never carries duplicate adds
      // (which keeps retract-by-first-match exact on replay). In-memory
      // engines skip the extra probe — Insert dedups on its own.
      if (rel.Contains(TupleView(args))) return Status::OK();
      try {
        // Write-ahead: the fact must be logged before it becomes
        // visible. On append failure nothing is applied — at worst the
        // log carries a torn tail the next recovery drops. Failures
        // after the append (budget, auto-checkpoint) do not fail the
        // add: the fact is already durable, and failing here would make
        // the caller retry past the dedup probe and log it twice.
        Status st = durable_->LogCreateRelation(predicate, arity);
        if (st.ok()) {
          st = durable_->LogAddFact(predicate, arity, TupleView(args));
        }
        RecordDeferredDurabilityError();
        if (!st.ok()) {
          if (recorder_) {
            recorder_->Record(FlightEventKind::kDurabilityError,
                              DiagCodeNumber(st));
          }
          return st;
        }
        const auto res = rel.Insert(TupleView(args));
        if (res.inserted && rel.provenance_enabled()) {
          rel.Annotate(res.row, Relation::kEdbRule, nullptr, 0);
        }
      } catch (const std::bad_alloc&) {
        // Between the WAL append and the relation insert there is no
        // safe failure point: the fact may be durable yet absent from
        // the session, and a retried add would pass the dedup probe and
        // duplicate it in the log. Latch durability instead.
        durability_status_ = Status::RuntimeError(
            "[GD210] durable store '" + durable_->dir() +
            "' out of sync with the session after an allocation failure; "
            "reopen to recover");
        return OomStatus();
      }
      PublishDurabilityMetrics();
      return Status::OK();
    }
    const auto res = rel.Insert(TupleView(args));
    if (res.inserted && rel.provenance_enabled()) {
      rel.Annotate(res.row, Relation::kEdbRule, nullptr, 0);
    }
    return Status::OK();
  } catch (const std::bad_alloc&) {
    return OomStatus();
  }
}

Status Engine::RetractFact(std::string_view predicate,
                           std::vector<Value> args) {
  if (ran_) return Status::InvalidArgument("cannot retract facts after Run");
  GDLOG_RETURN_IF_ERROR(durability_status_);
  try {
    const auto arity = static_cast<uint32_t>(args.size());
    const PredicateId id = catalog_->Lookup(predicate, arity);
    if (id == kNoPredicate ||
        !catalog_->relation(id).Contains(TupleView(args))) {
      return Status::NotFound(
          "fact not present: " + std::string(predicate) +
          TupleToString(*store_, TupleView(args)));
    }
    if (durable_) {
      const Status st = durable_->LogRetract(predicate, arity, TupleView(args));
      RecordDeferredDurabilityError();
      if (!st.ok()) {
        if (recorder_) {
          recorder_->Record(FlightEventKind::kDurabilityError,
                            DiagCodeNumber(st));
        }
        return st;
      }
    }
    // A bad_alloc past this point is retry-safe, unlike AddFact's: a
    // second retract of the same tuple replays as a no-op.
    catalog_->relation(id).Retract(TupleView(args));
    if (durable_) PublishDurabilityMetrics();
    return Status::OK();
  } catch (const std::bad_alloc&) {
    return OomStatus();
  }
}

Status Engine::Checkpoint() {
  GDLOG_RETURN_IF_ERROR(durability_status_);
  if (!durable_) {
    return Status::InvalidArgument(
        "durability disabled: set EngineOptions::durability.dir");
  }
  const uint64_t retired_wal_bytes = durable_->stats().wal_size_bytes;
  const Status st = durable_->Checkpoint();
  if (recorder_) {
    if (st.ok()) {
      recorder_->Record(FlightEventKind::kCheckpoint,
                        static_cast<int64_t>(durable_->snapshot_seq()),
                        static_cast<int64_t>(
                            durable_->stats().checkpoint_bytes));
      recorder_->Record(FlightEventKind::kWalRotate,
                        static_cast<int64_t>(durable_->wal_seq()),
                        static_cast<int64_t>(retired_wal_bytes));
    } else {
      recorder_->Record(FlightEventKind::kDurabilityError,
                        DiagCodeNumber(st));
    }
  }
  PublishDurabilityMetrics();
  return st;
}

Status Engine::SyncDurability() {
  GDLOG_RETURN_IF_ERROR(durability_status_);
  if (!durable_) {
    return Status::InvalidArgument(
        "durability disabled: set EngineOptions::durability.dir");
  }
  const Status st = durable_->Sync();
  if (!st.ok() && recorder_) {
    recorder_->Record(FlightEventKind::kDurabilityError, DiagCodeNumber(st));
  }
  PublishDurabilityMetrics();
  return st;
}

namespace {

Result<Value> GroundValue(const TermNode& t, ValueStore* store) {
  switch (t.kind) {
    case TermKind::kConstant:
      return t.constant;
    case TermKind::kVariable:
      return Status::InvalidArgument("fact contains variable " + t.name);
    case TermKind::kCompound: {
      std::vector<Value> args;
      for (const TermNode& a : t.args) {
        GDLOG_ASSIGN_OR_RETURN(Value v, GroundValue(a, store));
        args.push_back(v);
      }
      if (t.is_tuple()) return store->MakeTuple(args);
      return store->MakeTerm(t.name, args);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status Engine::LoadProgramDurable(std::string_view text) {
  GDLOG_RETURN_IF_ERROR(faults_status_);
  GDLOG_RETURN_IF_ERROR(durability_status_);
  try {
    const uint64_t t0 = WallNowNs();
    auto parsed = [&] {
      TraceSpan span(tracer_.get(), "parse", "engine");
      return ParseProgram(store_.get(), text);
    }();
    phase_times_.parse_ns += WallNowNs() - t0;
    GDLOG_RETURN_IF_ERROR(parsed.status());
    // Split inline facts from rules: rules load as the program, facts
    // go through AddFact so the WAL sees them (in program order, which
    // recovery then reproduces exactly).
    Program rules;
    std::vector<Rule> facts;
    for (Rule& r : parsed->rules) {
      if (r.is_fact()) {
        facts.push_back(std::move(r));
      } else {
        rules.rules.push_back(std::move(r));
      }
    }
    GDLOG_RETURN_IF_ERROR(LoadProgramAst(std::move(rules)));
    for (const Rule& f : facts) {
      std::vector<Value> tuple;
      tuple.reserve(f.head.args.size());
      for (const TermNode& t : f.head.args) {
        GDLOG_ASSIGN_OR_RETURN(Value v, GroundValue(t, store_.get()));
        tuple.push_back(v);
      }
      GDLOG_RETURN_IF_ERROR(AddFact(f.head.predicate, std::move(tuple)));
    }
    return Status::OK();
  } catch (const std::bad_alloc&) {
    return OomStatus();
  }
}

Status Engine::Run() {
  if (!program_) return Status::InvalidArgument("no program loaded");
  if (ran_) return Status::InvalidArgument("engine already ran");
  GDLOG_RETURN_IF_ERROR(faults_status_);
  GDLOG_RETURN_IF_ERROR(durability_status_);
  // EDB edits are done; make them durable before deriving from them.
  if (durable_) {
    const Status sync_st = durable_->Sync();
    if (!sync_st.ok()) {
      if (recorder_) {
        recorder_->Record(FlightEventKind::kDurabilityError,
                          DiagCodeNumber(sync_st));
      }
      return sync_st;
    }
  }

  guard_ = std::make_unique<RunGuard>(options_.limits, &cancel_, &budget_,
                                      injector_.get());
  guard_->Arm();
  run_state_.store(EngineRunState::kRunning, std::memory_order_release);
  if (recorder_) {
    recorder_->Record(FlightEventKind::kRunStart,
                      static_cast<int64_t>(program_->rules.size()),
                      static_cast<int64_t>(catalog_->size()));
  }
  if (progress_) {
    ProgressEvent e;
    e.kind = ProgressKind::kRunStart;
    e.round = program_->rules.size();
    e.delta_rows = catalog_->size();
    e.memory_bytes = budget_.used();
    progress_->Record(e);
  }

  Status st;
  try {
    st = RunInner();
  } catch (const std::bad_alloc&) {
    // Allocation failure (real or injected via the "alloc" probe). The
    // tracked structures throw only from growth paths that leave them
    // readable, so whatever partial state exists is safe to report.
    guard_->ForceReason(TerminationReason::kOom);
    if (recorder_) {
      recorder_->Record(FlightEventKind::kOom,
                        static_cast<int64_t>(budget_.used()),
                        static_cast<int64_t>(budget_.peak()));
    }
    st = Status::OutOfMemory(std::string("[") +
                             std::string(diag::kOutOfMemory) +
                             "] allocation failed during evaluation");
  }
  outcome_.reason = guard_->reason();
  outcome_.status = st;
  outcome_.guard_checks = guard_->checks();
  // MemoryBudget is the single source of truth for peak tracked memory:
  // the outcome, the report's termination section, and the metrics gauge
  // all read budget_.peak() at this one point.
  outcome_.peak_memory_bytes = budget_.peak();
  if (metrics_ != nullptr) {
    metrics_->GetGauge("memory.tracked_peak_bytes")
        ->Set(static_cast<int64_t>(outcome_.peak_memory_bytes));
  }
  PublishDurabilityMetrics();
  if (recorder_) {
    recorder_->Record(FlightEventKind::kTermination,
                      static_cast<int64_t>(outcome_.reason),
                      outcome_.status.ok() ? 1 : 0);
  }
  if (driver_ && outcome_.reason != TerminationReason::kCompleted) {
    // A bounded stop leaves a consistent partial fixpoint behind: keep
    // the engine queryable (Query/RunReport/stats all work) while still
    // returning the non-OK stop status.
    ran_ = true;
  }
  // The black box earns its keep exactly when a run does NOT complete:
  // dump the ring to stderr on any bounded stop, crash-adjacent or not.
  if (recorder_ && options_.obs.recorder_dump_on_stop &&
      outcome_.reason != TerminationReason::kCompleted) {
    fputs(recorder_->DumpText().c_str(), stderr);
  }

  if (tracer_ && !options_.obs.trace_path.empty()) {
    const Status trace_st = WriteTrace(options_.obs.trace_path);
    if (!trace_st.ok()) {
      GDLOG_LOG_ERROR << "trace export failed: " << trace_st.ToString();
    }
  }
  run_state_.store(outcome_.reason == TerminationReason::kCompleted
                       ? EngineRunState::kCompleted
                       : EngineRunState::kStopped,
                   std::memory_order_release);
  PublishRunArtifacts();
  return st;
}

void Engine::PublishRunArtifacts() {
  // RunReport and the tracer are not mid-run-safe; now that evaluation
  // stopped, snapshot them into the endpoint's ring. Bounded stops
  // report partial state (ran_ is set for those too). This happens
  // BEFORE the terminal progress event so an SSE client that closes on
  // that event finds /runs/last and /trace already populated.
  if (obs_server_) {
    if (ran_) {
      auto report = RunReport();
      if (report.ok()) obs_server_->PushRunReport(std::move(*report));
    }
    if (tracer_) {
      JsonWriter w;
      tracer_->WriteJson(&w);
      obs_server_->SetTrace(w.Take());
    }
  }
  // Terminal progress event: SSE streams see the run end (completed or
  // bounded stop alike) and close; the ticker prints its last line.
  if (progress_) {
    ProgressEvent e;
    e.kind = ProgressKind::kTermination;
    e.termination = static_cast<int32_t>(outcome_.reason);
    if (driver_) {
      const FixpointStats& s = driver_->stats();
      e.round = s.saturation_rounds;
      e.tuples = s.exec.inserts;
      e.gamma_firings = s.gamma_firings;
      e.stages = s.stages_assigned;
    }
    e.memory_bytes = budget_.used();
    progress_->Record(e);
  }
}

Status Engine::RunInner() {
  // Load program facts.
  for (const Rule& r : program_->rules) {
    if (!r.is_fact()) continue;
    std::vector<Value> tuple;
    for (const TermNode& t : r.head.args) {
      GDLOG_ASSIGN_OR_RETURN(Value v, GroundValue(t, store_.get()));
      tuple.push_back(v);
    }
    const PredicateId id = catalog_->Ensure(
        r.head.predicate, static_cast<uint32_t>(r.head.args.size()));
    Relation& rel = catalog_->relation(id);
    const auto res = rel.Insert(TupleView(tuple));
    if (res.inserted && rel.provenance_enabled()) {
      rel.Annotate(res.row, Relation::kEdbRule, nullptr, 0);
    }
  }

  // Everything present now (user facts + program facts) seeds the
  // stable-model checker's reduct; relations created during compilation
  // default to zero seeds.
  seed_watermarks_.assign(catalog_->size(), 0);
  for (PredicateId id = 0; id < catalog_->size(); ++id) {
    seed_watermarks_[id] = catalog_->relation(id).size();
  }

  if (injector_ && injector_->Hit(FaultInjector::kCompile)) {
    guard_->ForceReason(TerminationReason::kFault);
    if (recorder_) recorder_->Record(FlightEventKind::kFaultInjected, 2);
    return InjectedFault(FaultInjector::kCompile);
  }

  // Abstract interpretation over the expanded program with the full EDB
  // visible: signatures and bounds for the run report / .types, and row
  // priors for the planner below.
  if (options_.static_analysis) {
    const uint64_t absint_t0 = WallNowNs();
    {
      TraceSpan span(tracer_.get(), "absint", "engine");
      absint_ = std::make_unique<absint::AnalysisResult>(ComputeAbsint());
    }
    phase_times_.absint_ns += WallNowNs() - absint_t0;
  }

  const uint64_t compile_t0 = WallNowNs();
  // Cost-based join planning: estimates come from the EDB as loaded
  // above, so the chosen goal orders are a pure function of the program
  // plus its input — identical across thread counts and reruns.
  JoinPlanner planner(catalog_.get());
  // Seed cardinality priors for IDB relations that are still empty at
  // plan time: the analyzer's upper bound replaces the neutral default.
  // Priors derive from the program plus the loaded EDB only, so plans
  // stay deterministic across thread counts and reruns.
  if (absint_ && options_.eval.use_join_planner &&
      options_.eval.use_cardinality_priors) {
    for (const absint::PredicateSignature& sig : absint_->signatures) {
      if (!sig.populated || sig.edb_seeded || !sig.card.hi_finite()) continue;
      const PredicateId id = catalog_->Ensure(sig.name, sig.arity);
      if (!catalog_->relation(id).empty()) continue;
      planner.SetPrior(id, sig.card.hi);
    }
  }
  CompileProgramOptions copts;
  if (options_.eval.use_join_planner) copts.planner = &planner;
  auto compiled = [&] {
    TraceSpan span(tracer_.get(), "compile", "engine");
    return CompileProgram(*program_, *analysis_, catalog_.get(), store_.get(),
                          copts);
  }();
  phase_times_.compile_ns += WallNowNs() - compile_t0;
  GDLOG_RETURN_IF_ERROR(compiled.status());
  if (recorder_) {
    for (const CompiledRule& r : *compiled) {
      if (r.plan_decisions.empty()) continue;
      recorder_->Record(FlightEventKind::kPlanDecision,
                        static_cast<int64_t>(r.rule_index),
                        static_cast<int64_t>(r.plan_decisions.size()));
    }
  }

  driver_ = std::make_unique<FixpointDriver>(
      catalog_.get(), store_.get(), analysis_.get(), std::move(*compiled),
      options_.eval,
      ObsContext{metrics_, tracer_.get(), recorder_.get(), progress_.get()},
      guard_.get());
  const uint64_t eval_t0 = WallNowNs();
  const Status eval_status = [&] {
    TraceSpan span(tracer_.get(), "eval", "engine");
    return driver_->Run();
  }();
  phase_times_.eval_ns += WallNowNs() - eval_t0;
  GDLOG_RETURN_IF_ERROR(eval_status);
  ran_ = true;
  return Status::OK();
}

const Relation* Engine::Find(std::string_view predicate,
                             uint32_t arity) const {
  const PredicateId id = catalog_->Lookup(predicate, arity);
  return id == kNoPredicate ? nullptr : &catalog_->relation(id);
}

std::vector<std::vector<Value>> Engine::Query(std::string_view predicate,
                                              uint32_t arity) const {
  std::vector<std::vector<Value>> out;
  const Relation* rel = Find(predicate, arity);
  if (!rel) return out;
  out.reserve(rel->size());
  for (RowId row = 0; row < rel->size(); ++row) {
    const TupleView t = rel->Row(row);
    out.emplace_back(t.begin(), t.end());
  }
  return out;
}

const FixpointStats* Engine::stats() const {
  return driver_ ? &driver_->stats() : nullptr;
}

const ir::LoweringReport* Engine::VmCoverage() const {
  return driver_ ? driver_->vm_coverage() : nullptr;
}

Result<std::string> Engine::PlanDump() const {
  if (!driver_) {
    return Status::InvalidArgument("PlanDump requires Run()");
  }
  // Lower afresh rather than reusing the driver's program: the dump is
  // identical either way (lowering is deterministic), and this keeps the
  // dump available under the interpreter backend too.
  const ir::ProgramIR lowered = ir::LowerProgram(driver_->rules(), *catalog_);
  return ir::Disassemble(lowered, *catalog_, *store_);
}

const CandidateQueueStats* Engine::QueueStats(int gamma_index) const {
  return driver_ ? driver_->QueueStats(gamma_index) : nullptr;
}

const std::vector<RuleProfile>* Engine::RuleProfiles() const {
  return driver_ ? &driver_->rule_profiles() : nullptr;
}

Result<std::string> Engine::RunReport() const {
  if (!ran_) return Status::InvalidArgument("call Run first");
  const FixpointStats& s = driver_->stats();
  JsonWriter w;
  w.BeginObject();

  w.Key("program").BeginObject();
  w.Key("rules").UInt(program_->rules.size());
  w.Key("relations").UInt(catalog_->size());
  w.EndObject();

  // Build identity: which binary produced this report (mirrors the
  // gdlog_build_info Prometheus gauge).
  {
    const BuildInfo& bi = GetBuildInfo();
    w.Key("build").BeginObject();
    w.Key("version").String(bi.version);
    w.Key("git_sha").String(bi.git_sha);
    w.Key("compiler").String(bi.compiler);
    w.Key("sanitizer").String(bi.sanitizer);
    w.EndObject();
  }

  // Options echo: every ablation flag, so a saved report fully describes
  // the configuration that produced it.
  w.Key("options").BeginObject();
  w.Key("choice_seed").UInt(options_.eval.choice_seed);
  w.Key("use_merge_congruence").Bool(options_.eval.use_merge_congruence);
  w.Key("use_priority_queue").Bool(options_.eval.use_priority_queue);
  w.Key("use_seminaive").Bool(options_.eval.use_seminaive);
  w.Key("use_join_planner").Bool(options_.eval.use_join_planner);
  w.Key("use_cardinality_priors").Bool(options_.eval.use_cardinality_priors);
  w.Key("static_analysis").Bool(options_.static_analysis);
  w.Key("threads").UInt(options_.eval.threads);
  w.Key("backend").String(
      options_.eval.backend == EvalBackend::kVm ? "vm" : "interp");
  w.Key("provenance").Bool(options_.eval.provenance);
  w.Key("obs_enabled").Bool(options_.obs.enabled);
  w.Key("obs_sample_every").UInt(options_.obs.sample_every);
  w.Key("metrics_enabled").Bool(metrics_ != nullptr);
  w.Key("recorder_enabled").Bool(recorder_ != nullptr);
  if (recorder_) w.Key("recorder_capacity").UInt(recorder_->capacity());
  w.Key("limits").BeginObject();
  w.Key("deadline_ms").UInt(options_.limits.deadline_ms);
  w.Key("max_tuples").UInt(options_.limits.max_tuples);
  w.Key("max_stages").UInt(options_.limits.max_stages);
  w.Key("max_iterations").UInt(options_.limits.max_iterations);
  w.Key("max_memory_bytes").UInt(options_.limits.max_memory_bytes);
  w.EndObject();
  if (injector_) w.Key("faults").String(injector_->spec());
  w.EndObject();

  // How the run ended: reason + status, the guard activity, and the
  // memory high-water mark. "completed" means a genuine fixpoint; any
  // other reason marks the tuple counts below as a partial (truncated)
  // evaluation.
  w.Key("termination").BeginObject();
  w.Key("reason").String(std::string(TerminationReasonName(outcome_.reason)));
  w.Key("ok").Bool(outcome_.status.ok());
  if (!outcome_.status.ok()) {
    w.Key("status").String(outcome_.status.ToString());
  }
  w.Key("guard_checks").UInt(outcome_.guard_checks);
  w.Key("tracked_memory_bytes").UInt(budget_.used());
  w.Key("peak_memory_bytes").UInt(outcome_.peak_memory_bytes);
  if (injector_) {
    w.Key("fault_hits").BeginObject();
    for (std::string_view probe : FaultInjector::ProbeCatalog()) {
      w.Key(std::string(probe)).UInt(injector_->hits(probe));
    }
    w.EndObject();
  }
  w.EndObject();

  w.Key("phases").BeginObject();
  w.Key("parse_ms").Double(NsToMs(phase_times_.parse_ns));
  w.Key("analyze_ms").Double(NsToMs(phase_times_.analyze_ns));
  w.Key("absint_ms").Double(NsToMs(phase_times_.absint_ns));
  w.Key("compile_ms").Double(NsToMs(phase_times_.compile_ns));
  w.Key("eval_ms").Double(NsToMs(phase_times_.eval_ns));
  w.Key("saturate_ms").Double(NsToMs(s.saturate_ns));
  w.Key("gamma_ms").Double(NsToMs(s.gamma_ns));
  w.EndObject();

  w.Key("fixpoint").BeginObject();
  w.Key("saturation_rounds").UInt(s.saturation_rounds);
  w.Key("gamma_firings").UInt(s.gamma_firings);
  w.Key("stages_assigned").UInt(s.stages_assigned);
  w.Key("solutions").UInt(s.exec.solutions);
  w.Key("inserts").UInt(s.exec.inserts);
  w.Key("scan_rows").UInt(s.exec.scan_rows);
  w.EndObject();

  // Parallel evaluation: resolved worker count and how the saturation
  // work split between pool batches and the main thread.
  w.Key("parallel").BeginObject();
  w.Key("threads_used").UInt(s.threads_used);
  w.Key("batches").UInt(s.parallel_batches);
  w.Key("tasks").UInt(s.parallel_tasks);
  w.Key("parallel_apps").UInt(s.parallel_apps);
  w.Key("serial_apps").UInt(s.serial_apps);
  w.EndObject();

  // Join-planner decisions: the goal order each generator plan ended up
  // with, annotated with the estimates that drove the picks — and, when
  // metrics were on, the EXPLAIN ANALYZE actuals measured through the
  // executor (probes / rows touched / matches per goal) with the
  // misestimation factor actual/estimated. Present only for rules the
  // planner actually recorded decisions for.
  const std::vector<std::vector<GoalStats>>& goal_stats =
      driver_->goal_stats();
  w.Key("plans").BeginArray();
  for (const CompiledRule& r : driver_->rules()) {
    if (r.plan_decisions.empty()) continue;
    w.BeginObject();
    w.Key("rule").UInt(r.rule_index);
    w.Key("goals").BeginArray();
    for (const PlanDecision& d : r.plan_decisions) {
      w.BeginObject();
      w.Key("goal").String(d.goal);
      if (d.filter) w.Key("filter").Bool(true);
      if (d.negated) w.Key("negated").Bool(true);
      if (!d.filter) {
        w.Key("arity").UInt(d.arity);
        w.Key("bound_cols").UInt(d.bound_cols);
        if (d.est_rows >= 0) w.Key("est_rows").Double(d.est_rows);
        if (d.goal_id >= 0 && r.rule_index < goal_stats.size() &&
            static_cast<size_t>(d.goal_id) <
                goal_stats[r.rule_index].size()) {
          const GoalStats& gs =
              goal_stats[r.rule_index][static_cast<size_t>(d.goal_id)];
          w.Key("goal_id").Int(d.goal_id);
          w.Key("actual").BeginObject();
          w.Key("probes").UInt(gs.probes);
          w.Key("rows").UInt(gs.rows);
          w.Key("matches").UInt(gs.matches);
          const double actual_rows =
              gs.probes > 0 ? static_cast<double>(gs.matches) /
                                  static_cast<double>(gs.probes)
                            : 0.0;
          w.Key("actual_rows").Double(actual_rows);
          if (d.est_rows > 0 && gs.probes > 0) {
            w.Key("misestimate").Double(actual_rows / d.est_rows);
          }
          w.EndObject();
        }
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("rules").BeginArray();
  const std::vector<RuleProfile>& profiles = driver_->rule_profiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    const RuleProfile& p = profiles[i];
    if (p.head.empty()) continue;  // no compiled rule at this index
    w.BeginObject();
    w.Key("rule").UInt(i);
    w.Key("head").String(p.head);
    w.Key("kind").String(p.kind);
    w.Key("recursive").Bool(p.recursive);
    w.Key("invocations").UInt(p.invocations);
    w.Key("firings").UInt(p.firings);
    w.Key("tuples").UInt(p.tuples);
    w.Key("dedup_hits").UInt(p.dedup_hits);
    w.Key("candidates").UInt(p.candidates);
    w.Key("wall_ms").Double(NsToMs(p.wall_ns));
    w.EndObject();
  }
  w.EndArray();

  w.Key("queues").BeginArray();
  for (const CompiledRule& r : driver_->rules()) {
    if (r.gamma_index < 0) continue;
    const CandidateQueueStats* q = driver_->QueueStats(r.gamma_index);
    if (q == nullptr) continue;
    w.BeginObject();
    w.Key("gamma").Int(r.gamma_index);
    w.Key("rule").UInt(r.rule_index);
    w.Key("inserted").UInt(q->inserted);
    w.Key("merged").UInt(q->merged);
    w.Key("redundant").UInt(q->redundant);
    w.Key("fired").UInt(q->fired);
    w.Key("max_queue").UInt(q->max_queue);
    w.EndObject();
  }
  w.EndArray();

  // Provenance: annotation volume and the choice-audit trail (capped so
  // a long run cannot blow up the report; the full trail stays queryable
  // via Engine::ChoiceAudit / shell .choices).
  {
    w.Key("provenance").BeginObject();
    w.Key("enabled").Bool(catalog_->provenance_enabled());
    size_t rows = 0, premises = 0;
    for (PredicateId id = 0; id < catalog_->size(); ++id) {
      rows += catalog_->relation(id).provenance_rows();
      premises += catalog_->relation(id).provenance_premises();
    }
    w.Key("rows_annotated").UInt(rows);
    w.Key("premises").UInt(premises);
    w.EndObject();

    w.Key("choices");
    const ChoiceAuditTrail* audit = driver_->choice_audit();
    if (audit == nullptr) {
      w.Null();
    } else {
      constexpr size_t kMaxEntries = 256;
      const auto& entries = audit->entries();
      w.BeginObject();
      w.Key("total").UInt(entries.size());
      w.Key("truncated").Bool(entries.size() > kMaxEntries);
      w.Key("entries").BeginArray();
      const size_t n = std::min(entries.size(), kMaxEntries);
      for (size_t i = 0; i < n; ++i) {
        const ChoiceAuditEntry& e = entries[i];
        w.BeginObject();
        w.Key("firing").UInt(e.firing);
        w.Key("rule").UInt(e.rule_index);
        w.Key("gamma").Int(e.gamma_index);
        if (e.stage >= 0) w.Key("stage").Int(e.stage);
        w.Key("witness").String(e.witness);
        w.Key("cost").String(store_->ToString(e.cost));
        w.Key("candidate_set").UInt(e.candidate_set);
        w.Key("pops").UInt(e.pops);
        w.Key("ties").UInt(e.ties);
        w.Key("rejected_extremum").UInt(e.rejected_extremum);
        w.Key("rejected_fd").UInt(e.rejected_fd);
        w.Key("rejected_post").UInt(e.rejected_post);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
  }

  // Bytecode-backend lowering coverage (eval.backend = vm): how many
  // rules ran on the VM and why the rest fell back to the interpreter.
  if (const ir::LoweringReport* cov = driver_->vm_coverage()) {
    w.Key("vm").BeginObject();
    w.Key("rules_total").UInt(cov->rules_total);
    w.Key("rules_lowered").UInt(cov->rules_lowered);
    w.Key("fallbacks").BeginArray();
    for (const ir::LoweringReport::Rejection& rej : cov->rejections) {
      w.BeginObject();
      w.Key("rule").UInt(rej.rule_index);
      w.Key("head").String(rej.head);
      w.Key("reason").String(rej.reason);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  // Lint summary, same code scheme as the standalone diagnostics JSON
  // (--lint-json), so report consumers see compile-time findings too.
  // Includes the abstract interpreter's findings when it ran.
  {
    LintOptions lopts;
    lopts.stage = options_.stage;
    LintResult lint = LintProgram(*program_, lopts);
    if (absint_) {
      lint.diagnostics.insert(lint.diagnostics.end(),
                              absint_->diagnostics.begin(),
                              absint_->diagnostics.end());
      SortDiagnostics(&lint.diagnostics);
      lint.counts = CountDiagnostics(lint.diagnostics);
    }
    w.Key("diagnostics").BeginObject();
    w.Key("errors").UInt(lint.counts.errors);
    w.Key("warnings").UInt(lint.counts.warnings);
    w.Key("notes").UInt(lint.counts.notes);
    w.Key("codes").BeginArray();
    for (const Diagnostic& d : lint.diagnostics) w.String(d.code);
    w.EndArray();
    w.EndObject();
  }

  // Durability: WAL/checkpoint activity and what recovery found on open
  // (null for a purely in-memory engine).
  w.Key("durability");
  if (durable_ == nullptr) {
    w.Null();
  } else {
    const DurableStore::Stats ds = durable_->stats();
    const DurableStore::RecoveryInfo& rec = durable_->recovery();
    w.BeginObject();
    w.Key("dir").String(durable_->dir());
    w.Key("fsync").String(std::string(FsyncPolicyName(
        durable_->fsync_policy())));
    w.Key("wal_seq").UInt(durable_->wal_seq());
    w.Key("snapshot_seq").UInt(durable_->snapshot_seq());
    w.Key("wal_appends").UInt(ds.wal_appends);
    w.Key("wal_fsyncs").UInt(ds.wal_fsyncs);
    w.Key("wal_bytes_appended").UInt(ds.wal_bytes_appended);
    w.Key("wal_size_bytes").UInt(ds.wal_size_bytes);
    w.Key("checkpoints").UInt(ds.checkpoints);
    w.Key("checkpoint_bytes").UInt(ds.checkpoint_bytes);
    w.Key("checkpoint_failures").UInt(ds.checkpoint_failures);
    w.Key("edb_relations").UInt(ds.edb_relations);
    w.Key("edb_facts").UInt(ds.edb_facts);
    w.Key("recovery").BeginObject();
    w.Key("opened_existing").Bool(rec.opened_existing);
    w.Key("snapshot_relations").UInt(rec.snapshot_relations);
    w.Key("snapshot_facts").UInt(rec.snapshot_facts);
    w.Key("wal_records_replayed").UInt(rec.wal_records_replayed);
    w.Key("wal_valid_bytes").UInt(rec.wal_valid_bytes);
    w.Key("wal_dropped_bytes").UInt(rec.wal_dropped_bytes);
    w.Key("wal_tail_dropped").Bool(rec.wal_tail_dropped);
    w.EndObject();
    w.EndObject();
  }

  // Static-analysis result: inferred signatures, intervals, and
  // cardinality bounds (null when static_analysis is off).
  w.Key("analysis");
  if (absint_) {
    absint::AnalysisToJson(*absint_, &w);
  } else {
    w.Null();
  }

  w.Key("metrics");
  if (metrics_ != nullptr) {
    metrics_->SnapshotJson(&w);
  } else {
    w.Null();
  }
  w.EndObject();
  return w.Take();
}

Result<std::string> Engine::ExplainAnalyzeText() const {
  if (!ran_) return Status::InvalidArgument("call Run first");
  const std::vector<std::vector<GoalStats>>& goal_stats =
      driver_->goal_stats();
  const std::vector<RuleProfile>& profiles = driver_->rule_profiles();
  std::string out = "% EXPLAIN ANALYZE (per-goal estimated vs actual rows; "
                    "x = actual/est, >1 under-estimated)\n";
  char line[256];
  for (const CompiledRule& r : driver_->rules()) {
    if (r.plan_decisions.empty()) continue;
    const std::string& head = r.rule_index < profiles.size()
                                  ? profiles[r.rule_index].head
                                  : std::string();
    std::snprintf(line, sizeof(line), "%% rule %u (%s):\n", r.rule_index,
                  head.c_str());
    out += line;
    for (const PlanDecision& d : r.plan_decisions) {
      if (d.filter) {
        std::snprintf(line, sizeof(line), "%%   filter %s\n",
                      d.goal.c_str());
        out += line;
        continue;
      }
      std::snprintf(line, sizeof(line), "%%   %s %-24s bound=%u",
                    d.negated ? "negated" : "goal   ", d.goal.c_str(),
                    d.bound_cols);
      out += line;
      if (d.est_rows >= 0) {
        std::snprintf(line, sizeof(line), "  est=%.1f", d.est_rows);
        out += line;
      }
      if (d.goal_id >= 0 && r.rule_index < goal_stats.size() &&
          static_cast<size_t>(d.goal_id) < goal_stats[r.rule_index].size()) {
        const GoalStats& gs =
            goal_stats[r.rule_index][static_cast<size_t>(d.goal_id)];
        const double actual_rows =
            gs.probes > 0 ? static_cast<double>(gs.matches) /
                                static_cast<double>(gs.probes)
                          : 0.0;
        std::snprintf(line, sizeof(line),
                      "  probes=%llu rows=%llu matches=%llu actual=%.2f",
                      static_cast<unsigned long long>(gs.probes),
                      static_cast<unsigned long long>(gs.rows),
                      static_cast<unsigned long long>(gs.matches),
                      actual_rows);
        out += line;
        if (d.est_rows > 0 && gs.probes > 0) {
          std::snprintf(line, sizeof(line), "  x%.2f",
                        actual_rows / d.est_rows);
          out += line;
        }
      }
      out += '\n';
    }
  }
  // Analysis-vs-actual cardinality gap: the abstract interpreter's row
  // bounds for derived (IDB) predicates against the relation sizes the
  // run actually produced. "within" marks bounds the run respected.
  if (absint_) {
    bool header = false;
    for (const absint::PredicateSignature& sig : absint_->signatures) {
      if (!sig.populated || sig.edb_seeded) continue;
      const Relation* rel = Find(sig.name, sig.arity);
      const uint64_t actual = rel ? rel->size() : 0;
      if (!header) {
        out += "% analysis cardinality bounds vs actual rows (IDB)\n";
        header = true;
      }
      std::string bound = "[" + std::to_string(sig.card.lo) + ", " +
                          (sig.card.hi_finite() ? std::to_string(sig.card.hi)
                                                : std::string("inf")) +
                          "]";
      std::snprintf(line, sizeof(line),
                    "%%   %-24s bound=%-18s actual=%llu %s\n",
                    sig.DisplayName().c_str(), bound.c_str(),
                    static_cast<unsigned long long>(actual),
                    sig.card.Contains(actual) ? "within" : "OUTSIDE");
      out += line;
    }
  }
  return out;
}

Status Engine::WriteTrace(const std::string& path) const {
  if (!tracer_) {
    return Status::InvalidArgument(
        "tracing disabled: set EngineOptions::obs.enabled");
  }
  return tracer_->WriteChromeTrace(path);
}

std::string Engine::DumpFlightRecorder() const {
  if (!recorder_) {
    return "flight recorder disabled "
           "(EngineOptions::obs.recorder_enabled = false)\n";
  }
  return recorder_->DumpText();
}

uint64_t Engine::uptime_seconds() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

void Engine::RefreshRuntimeMetrics() const {
  if (metrics_ == nullptr) return;
  metrics_->GetGauge("engine.uptime_seconds")
      ->Set(static_cast<int64_t>(uptime_seconds()));
  // One 0/1 gauge per lifecycle state (the node_exporter "state set"
  // convention): dashboards sum the family to 1 and alert on the label.
  const EngineRunState current = run_state();
  for (const EngineRunState s :
       {EngineRunState::kIdle, EngineRunState::kRunning,
        EngineRunState::kCompleted, EngineRunState::kStopped}) {
    metrics_->GetGauge("engine.run_state", {{"state", EngineRunStateName(s)}})
        ->Set(s == current ? 1 : 0);
  }
}

std::string Engine::StatuszJson() const {
  const BuildInfo& bi = GetBuildInfo();
  JsonWriter w;
  w.BeginObject();
  w.Key("build").BeginObject();
  w.Key("version").String(bi.version);
  w.Key("git_sha").String(bi.git_sha);
  w.Key("compiler").String(bi.compiler);
  w.Key("sanitizer").String(bi.sanitizer);
  w.EndObject();
  w.Key("uptime_seconds").UInt(uptime_seconds());
  w.Key("run_state").String(EngineRunStateName(run_state()));
  w.Key("tracked_memory_bytes").UInt(budget_.used());
  ProgressEvent last;
  if (progress_ && progress_->Last(&last)) {
    w.Key("progress").BeginObject();
    w.Key("seq").UInt(last.seq);
    w.Key("kind").String(ProgressKindName(last.kind));
    w.Key("round").UInt(last.round);
    w.Key("tuples").UInt(last.tuples);
    w.Key("gamma_firings").UInt(last.gamma_firings);
    w.Key("stages").UInt(last.stages);
    w.EndObject();
  } else {
    w.Key("progress").Null();
  }
  w.EndObject();
  return w.Take();
}

Result<std::string> Engine::MetricsText() const {
  if (metrics_ == nullptr) {
    return Status::InvalidArgument(
        "metrics disabled: set EngineOptions::obs.metrics_enabled");
  }
  RefreshRuntimeMetrics();
  return metrics_->PrometheusText();
}

Status Engine::WriteMetricsText(const std::string& path) const {
  GDLOG_ASSIGN_OR_RETURN(std::string text, MetricsText());
  // Write-to-temp + atomic rename: a scraper reading `path` sees either
  // the previous complete exposition or the new one, never a torn file.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open metrics file: " + tmp);
  }
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int close_err = std::fclose(f);
  if (n != text.size() || close_err != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to metrics file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename metrics file into place: " + path);
  }
  return Status::OK();
}

Result<std::string> Engine::RewrittenProgramText() const {
  if (!program_) return Status::InvalidArgument("no program loaded");
  GDLOG_ASSIGN_OR_RETURN(Program full, FullSemanticExpansion(*program_));
  return ProgramToString(*store_, full);
}

Result<std::string> Engine::AnalysisReport() const {
  if (!program_) return Status::InvalidArgument("no program loaded");
  const StageAnalysis& a = *analysis_;
  const DependencyGraph& g = *a.graph;
  std::string out;
  for (uint32_t scc : a.clique_order) {
    const CliqueStageInfo& cl = a.cliques[scc];
    if (cl.rules.empty() && !g.IsRecursive(scc)) continue;  // pure EDB
    out += "clique {";
    for (size_t i = 0; i < cl.members.size(); ++i) {
      if (i) out += ", ";
      const PredIndex p = cl.members[i];
      out += g.name(p) + "/" + std::to_string(g.arity(p));
      if (a.stage_arg[p] >= 0) {
        out += " [stage arg " + std::to_string(a.stage_arg[p]) + "]";
      }
    }
    out += "}: ";
    out += CliqueClassName(cl.cls);
    if (g.IsRecursive(scc)) out += ", recursive";
    if (cl.has_next_rules) out += ", next rules";
    if (!cl.diagnostic.empty()) out += "\n  note: " + cl.diagnostic;
    out += "\n";
    for (uint32_t ri : cl.rules) {
      out += "  rule " + std::to_string(ri) + ": ";
      switch (a.rule_info[ri].kind) {
        case RuleKind::kExit:
          out += "exit";
          break;
        case RuleKind::kFlat:
          out += "flat";
          break;
        case RuleKind::kNext:
          out += "next (stage var " + a.rule_info[ri].stage_var + ")";
          break;
      }
      out += "\n";
    }
  }
  return out;
}

Result<LintResult> Engine::Lint(const LintOptions& options) const {
  if (!program_) return Status::InvalidArgument("no program loaded");
  LintOptions opts = options;
  // Default the stage options to the engine's, so Lint agrees with what
  // LoadProgram accepted.
  opts.stage = options_.stage;
  LintResult result = LintProgram(*program_, opts);
  // Merge in the abstract interpreter's findings (types, intervals,
  // emptiness, choice determinism), keeping the combined list sorted the
  // same way the structural lints are.
  if (options_.static_analysis) {
    const absint::AnalysisResult* ai = absint_.get();
    absint::AnalysisResult local;
    if (ai == nullptr) {
      local = ComputeAbsint();
      ai = &local;
    }
    result.diagnostics.insert(result.diagnostics.end(),
                              ai->diagnostics.begin(), ai->diagnostics.end());
    SortDiagnostics(&result.diagnostics);
    result.counts = CountDiagnostics(result.diagnostics);
  }
  return result;
}

absint::AnalysisResult Engine::ComputeAbsint() const {
  absint::AnalysisOptions aopts;
  aopts.catalog = catalog_.get();
  if (analysis_) {
    return absint::AnalyzeProgram(*program_, analysis_->expanded, aopts);
  }
  return absint::Analyze(*program_, aopts);
}

Result<std::string> Engine::TypeSignaturesText() const {
  if (!program_) return Status::InvalidArgument("no program loaded");
  if (!options_.static_analysis) {
    return Status::InvalidArgument(
        "static analysis disabled: set EngineOptions::static_analysis");
  }
  if (absint_) return absint::SignaturesText(*absint_);
  return absint::SignaturesText(ComputeAbsint());
}

Result<StableCheckResult> Engine::VerifyStableModel() const {
  if (!ran_) return Status::InvalidArgument("call Run first");
  // Collect chosen tuples per gamma index, matching RewriteChoice order.
  int max_gamma = -1;
  for (const CompiledRule& r : driver_->rules()) {
    max_gamma = std::max(max_gamma, r.gamma_index);
  }
  std::vector<std::vector<std::vector<Value>>> chosen(max_gamma + 1);
  for (const CompiledRule& r : driver_->rules()) {
    if (r.gamma_index >= 0) {
      chosen[r.gamma_index] = driver_->choice_runtime().ChosenTuples(
          r.gamma_index);
    }
  }
  std::vector<size_t> watermarks = seed_watermarks_;
  watermarks.resize(catalog_->size(), 0);
  return CheckStableModel(*program_, *catalog_, store_.get(), chosen,
                          watermarks);
}

std::vector<std::string> Engine::RuleTexts() const {
  std::vector<std::string> texts;
  if (!program_) return texts;
  texts.reserve(program_->rules.size());
  for (const Rule& r : program_->rules) {
    texts.push_back(r.is_fact() ? std::string()
                                : RuleToString(*store_, r));
  }
  return texts;
}

Result<ProofNode> Engine::WhyRow(PredicateId pred, RowId row,
                                 uint32_t max_depth) const {
  if (!ran_) return Status::InvalidArgument("call Run first");
  if (!catalog_->provenance_enabled()) {
    return Status::InvalidArgument(
        "provenance disabled: set EngineOptions::provenance");
  }
  return BuildProofTree(*catalog_, *store_, pred, row, RuleTexts(),
                        max_depth);
}

Result<ProofNode> Engine::Why(std::string_view predicate,
                              const std::vector<Value>& tuple,
                              uint32_t max_depth) const {
  const PredicateId id =
      catalog_->Lookup(predicate, static_cast<uint32_t>(tuple.size()));
  if (id == kNoPredicate) {
    return Status::InvalidArgument("unknown predicate: " +
                                   std::string(predicate) + "/" +
                                   std::to_string(tuple.size()));
  }
  const Relation& rel = catalog_->relation(id);
  const RowId row = rel.Find(TupleView(tuple));
  if (row == kNoRow) {
    return Status::InvalidArgument("tuple not in the model: " + rel.name() +
                                   TupleToString(*store_, TupleView(tuple)));
  }
  return WhyRow(id, row, max_depth);
}

Result<std::pair<PredicateId, RowId>> Engine::ResolveWhyTarget(
    const std::string& target) {
  if (target.find('(') != std::string::npos) {
    // A ground atom: parse it as a one-fact program.
    GDLOG_ASSIGN_OR_RETURN(Program p,
                           ParseProgram(store_.get(), target + "."));
    if (p.rules.size() != 1 || !p.rules[0].is_fact()) {
      return Status::InvalidArgument("expected one ground atom: " + target);
    }
    const Rule& fact = p.rules[0];
    std::vector<Value> tuple;
    for (const TermNode& t : fact.head.args) {
      GDLOG_ASSIGN_OR_RETURN(Value v, GroundValue(t, store_.get()));
      tuple.push_back(v);
    }
    const PredicateId id = catalog_->Lookup(
        fact.head.predicate, static_cast<uint32_t>(tuple.size()));
    if (id == kNoPredicate) {
      return Status::InvalidArgument("unknown predicate: " +
                                     fact.head.predicate);
    }
    const RowId row = catalog_->relation(id).Find(TupleView(tuple));
    if (row == kNoRow) {
      return Status::InvalidArgument("tuple not in the model: " + target);
    }
    return std::make_pair(id, row);
  }
  // "pred/arity": the relation's most recently derived row.
  const size_t slash = target.rfind('/');
  if (slash == std::string::npos) {
    return Status::InvalidArgument(
        "expected a ground atom or pred/arity spec: " + target);
  }
  uint32_t arity = 0;
  for (size_t i = slash + 1; i < target.size(); ++i) {
    if (target[i] < '0' || target[i] > '9') {
      return Status::InvalidArgument("bad arity in spec: " + target);
    }
    arity = arity * 10 + static_cast<uint32_t>(target[i] - '0');
  }
  const PredicateId id = catalog_->Lookup(target.substr(0, slash), arity);
  if (id == kNoPredicate) {
    return Status::InvalidArgument("unknown predicate: " + target);
  }
  const Relation& rel = catalog_->relation(id);
  if (rel.empty()) {
    return Status::InvalidArgument("relation is empty: " + target);
  }
  return std::make_pair(id, static_cast<RowId>(rel.size() - 1));
}

Result<std::string> Engine::WhyText(const std::string& target,
                                    uint32_t max_depth) {
  GDLOG_ASSIGN_OR_RETURN(auto at, ResolveWhyTarget(target));
  GDLOG_ASSIGN_OR_RETURN(ProofNode tree,
                         WhyRow(at.first, at.second, max_depth));
  return ProofTreeText(tree);
}

Result<std::string> Engine::WhyJson(const std::string& target,
                                    uint32_t max_depth) {
  GDLOG_ASSIGN_OR_RETURN(auto at, ResolveWhyTarget(target));
  GDLOG_ASSIGN_OR_RETURN(ProofNode tree,
                         WhyRow(at.first, at.second, max_depth));
  JsonWriter w;
  ProofTreeJson(tree, &w);
  return w.Take();
}

Result<std::string> Engine::WhyDot(const std::string& target,
                                   uint32_t max_depth) {
  GDLOG_ASSIGN_OR_RETURN(auto at, ResolveWhyTarget(target));
  GDLOG_ASSIGN_OR_RETURN(ProofNode tree,
                         WhyRow(at.first, at.second, max_depth));
  return ProofTreeDot(tree);
}

const ChoiceAuditTrail* Engine::ChoiceAudit() const {
  return driver_ ? driver_->choice_audit() : nullptr;
}

Result<std::string> Engine::ChoiceAuditText() const {
  if (!ran_) return Status::InvalidArgument("call Run first");
  const ChoiceAuditTrail* audit = ChoiceAudit();
  if (audit == nullptr) {
    return Status::InvalidArgument(
        "choice audit disabled: set EngineOptions::provenance");
  }
  return gdlog::ChoiceAuditText(*audit, *store_);
}

}  // namespace gdlog
