#include "api/engine.h"

#include "analysis/rewriter.h"
#include "ast/printer.h"
#include "common/logging.h"
#include "parser/parser.h"

namespace gdlog {

Engine::Engine(EngineOptions options)
    : options_(options),
      store_(std::make_unique<ValueStore>()),
      catalog_(std::make_unique<Catalog>()) {}

Engine::~Engine() = default;

Status Engine::LoadProgram(std::string_view text) {
  GDLOG_ASSIGN_OR_RETURN(Program program, ParseProgram(store_.get(), text));
  return LoadProgramAst(std::move(program));
}

Status Engine::LoadProgramAst(Program program) {
  if (program_) {
    return Status::InvalidArgument("a program is already loaded");
  }
  GDLOG_ASSIGN_OR_RETURN(StageAnalysis analysis,
                         AnalyzeStages(program, options_.stage));
  for (const CliqueStageInfo& cl : analysis.cliques) {
    if (cl.cls == CliqueClass::kRejected) {
      return Status::AnalysisError(cl.diagnostic);
    }
  }
  program_ = std::make_unique<Program>(std::move(program));
  analysis_ = std::make_unique<StageAnalysis>(std::move(analysis));
  return Status::OK();
}

Status Engine::AddFact(std::string_view predicate, std::vector<Value> args) {
  if (ran_) return Status::InvalidArgument("cannot add facts after Run");
  const PredicateId id =
      catalog_->Ensure(predicate, static_cast<uint32_t>(args.size()));
  catalog_->relation(id).Insert(TupleView(args));
  return Status::OK();
}

namespace {

Result<Value> GroundValue(const TermNode& t, ValueStore* store) {
  switch (t.kind) {
    case TermKind::kConstant:
      return t.constant;
    case TermKind::kVariable:
      return Status::InvalidArgument("fact contains variable " + t.name);
    case TermKind::kCompound: {
      std::vector<Value> args;
      for (const TermNode& a : t.args) {
        GDLOG_ASSIGN_OR_RETURN(Value v, GroundValue(a, store));
        args.push_back(v);
      }
      if (t.is_tuple()) return store->MakeTuple(args);
      return store->MakeTerm(t.name, args);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status Engine::Run() {
  if (!program_) return Status::InvalidArgument("no program loaded");
  if (ran_) return Status::InvalidArgument("engine already ran");

  // Load program facts.
  for (const Rule& r : program_->rules) {
    if (!r.is_fact()) continue;
    std::vector<Value> tuple;
    for (const TermNode& t : r.head.args) {
      GDLOG_ASSIGN_OR_RETURN(Value v, GroundValue(t, store_.get()));
      tuple.push_back(v);
    }
    const PredicateId id = catalog_->Ensure(
        r.head.predicate, static_cast<uint32_t>(r.head.args.size()));
    catalog_->relation(id).Insert(TupleView(tuple));
  }

  // Everything present now (user facts + program facts) seeds the
  // stable-model checker's reduct; relations created during compilation
  // default to zero seeds.
  seed_watermarks_.assign(catalog_->size(), 0);
  for (PredicateId id = 0; id < catalog_->size(); ++id) {
    seed_watermarks_[id] = catalog_->relation(id).size();
  }

  GDLOG_ASSIGN_OR_RETURN(
      std::vector<CompiledRule> compiled,
      CompileProgram(*program_, *analysis_, catalog_.get(), store_.get()));
  driver_ = std::make_unique<FixpointDriver>(catalog_.get(), store_.get(),
                                             analysis_.get(),
                                             std::move(compiled),
                                             options_.eval);
  GDLOG_RETURN_IF_ERROR(driver_->Run());
  ran_ = true;
  return Status::OK();
}

const Relation* Engine::Find(std::string_view predicate,
                             uint32_t arity) const {
  const PredicateId id = catalog_->Lookup(predicate, arity);
  return id == kNoPredicate ? nullptr : &catalog_->relation(id);
}

std::vector<std::vector<Value>> Engine::Query(std::string_view predicate,
                                              uint32_t arity) const {
  std::vector<std::vector<Value>> out;
  const Relation* rel = Find(predicate, arity);
  if (!rel) return out;
  out.reserve(rel->size());
  for (RowId row = 0; row < rel->size(); ++row) {
    const TupleView t = rel->Row(row);
    out.emplace_back(t.begin(), t.end());
  }
  return out;
}

const FixpointStats* Engine::stats() const {
  return driver_ ? &driver_->stats() : nullptr;
}

const CandidateQueueStats* Engine::QueueStats(int gamma_index) const {
  return driver_ ? driver_->QueueStats(gamma_index) : nullptr;
}

Result<std::string> Engine::RewrittenProgramText() const {
  if (!program_) return Status::InvalidArgument("no program loaded");
  GDLOG_ASSIGN_OR_RETURN(Program full, FullSemanticExpansion(*program_));
  return ProgramToString(*store_, full);
}

Result<std::string> Engine::AnalysisReport() const {
  if (!program_) return Status::InvalidArgument("no program loaded");
  const StageAnalysis& a = *analysis_;
  const DependencyGraph& g = *a.graph;
  std::string out;
  for (uint32_t scc : a.clique_order) {
    const CliqueStageInfo& cl = a.cliques[scc];
    if (cl.rules.empty() && !g.IsRecursive(scc)) continue;  // pure EDB
    out += "clique {";
    for (size_t i = 0; i < cl.members.size(); ++i) {
      if (i) out += ", ";
      const PredIndex p = cl.members[i];
      out += g.name(p) + "/" + std::to_string(g.arity(p));
      if (a.stage_arg[p] >= 0) {
        out += " [stage arg " + std::to_string(a.stage_arg[p]) + "]";
      }
    }
    out += "}: ";
    out += CliqueClassName(cl.cls);
    if (g.IsRecursive(scc)) out += ", recursive";
    if (cl.has_next_rules) out += ", next rules";
    if (!cl.diagnostic.empty()) out += "\n  note: " + cl.diagnostic;
    out += "\n";
    for (uint32_t ri : cl.rules) {
      out += "  rule " + std::to_string(ri) + ": ";
      switch (a.rule_info[ri].kind) {
        case RuleKind::kExit:
          out += "exit";
          break;
        case RuleKind::kFlat:
          out += "flat";
          break;
        case RuleKind::kNext:
          out += "next (stage var " + a.rule_info[ri].stage_var + ")";
          break;
      }
      out += "\n";
    }
  }
  return out;
}

Result<StableCheckResult> Engine::VerifyStableModel() const {
  if (!ran_) return Status::InvalidArgument("call Run first");
  // Collect chosen tuples per gamma index, matching RewriteChoice order.
  int max_gamma = -1;
  for (const CompiledRule& r : driver_->rules()) {
    max_gamma = std::max(max_gamma, r.gamma_index);
  }
  std::vector<std::vector<std::vector<Value>>> chosen(max_gamma + 1);
  for (const CompiledRule& r : driver_->rules()) {
    if (r.gamma_index >= 0) {
      chosen[r.gamma_index] = driver_->choice_runtime().ChosenTuples(
          r.gamma_index);
    }
  }
  std::vector<size_t> watermarks = seed_watermarks_;
  watermarks.resize(catalog_->size(), 0);
  return CheckStableModel(*program_, *catalog_, store_.get(), chosen,
                          watermarks);
}

}  // namespace gdlog
