// gdlog public API: the Engine facade.
//
// Typical use:
//
//   gdlog::Engine engine;
//   auto st = engine.LoadProgram(R"(
//     prm(nil, a, 0, 0).
//     prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
//                        least(C, I), choice(Y, X).
//     new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
//   )");
//   engine.AddFact("g", {...});         // EDB tuples
//   st = engine.Run();                  // choice fixpoint
//   auto mst = engine.Query("prm", 4);  // one stable model's prm facts
//
// Each Engine owns its ValueStore (symbol/term interning), Catalog
// (relations + indices), analysis results, and one evaluation. Engines
// are single-shot: build, run, query.
#ifndef GDLOG_API_ENGINE_H_
#define GDLOG_API_ENGINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/absint/absint.h"
#include "analysis/lint.h"
#include "analysis/stage.h"
#include "ast/ast.h"
#include "common/guardrails.h"
#include "common/status.h"
#include "eval/fixpoint.h"
#include "eval/stable_model.h"
#include "obs/flight_recorder.h"
#include "obs/http/obs_server.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "storage/durable/durable_store.h"
#include "value/value.h"

namespace gdlog {

/// Durability configuration (see docs/DURABILITY.md). An empty `dir`
/// means a purely in-memory engine — the default, and zero overhead.
struct DurabilityOptions {
  /// Database directory for the WAL / snapshots / MANIFEST. Opened (and
  /// recovered) during Engine construction; open or recovery failures
  /// are latched and surfaced by LoadProgram/AddFact/Run, mirroring the
  /// faults-spec handling.
  std::string dir;
  /// WAL fsync policy: "always", "batch" (default), or "off".
  std::string fsync = "batch";
  /// Bytes appended between fsyncs under the "batch" policy.
  uint64_t wal_batch_bytes = 1 << 20;
  /// Checkpoint automatically after this many logged mutations
  /// (0 = only explicit Engine::Checkpoint calls).
  uint64_t checkpoint_every = 0;
};

struct EngineOptions {
  EvalOptions eval;
  StageAnalysisOptions stage;
  /// Observability switches. Histogram metrics and the flight recorder
  /// are always on by default (both lock-free, sub-5% overhead); the
  /// Chrome-trace tracer stays opt-in via obs.enabled. See
  /// docs/OBSERVABILITY.md.
  ObsOptions obs;
  /// Live observability endpoint (src/obs/http): /metrics, /healthz,
  /// /statusz, /runs, /trace, /blackbox, and the /progress SSE stream,
  /// served for the engine's lifetime — including while Run is in
  /// flight and after bounded stops. Off by default; shell --serve-obs
  /// / .serve turn it on. See docs/OBSERVABILITY.md "Live endpoint".
  ObsHttpOptions obs_http;
  /// Resource caps for Run (zero = unlimited). Enforced at fixpoint
  /// boundaries; a tripped limit ends the run with a bounded stop, not a
  /// crash — the partial state stays queryable. See docs/ROBUSTNESS.md.
  RunLimits limits;
  /// Fault-injection spec ("probe[@N],..."; see FaultInjector). Empty
  /// falls back to the GDLOG_FAULTS environment variable; a malformed
  /// spec fails LoadProgram/Run with InvalidArgument.
  std::string faults;
  /// Abstract interpretation (analysis/absint): per-predicate type
  /// signatures, value intervals, and cardinality bounds, computed over
  /// the expanded program before compilation. Feeds the GD3xx / GD012 /
  /// GD013 diagnostics in Lint() and the run report, the `.types` shell
  /// command, and — together with eval.use_cardinality_priors — the
  /// join planner's row priors for still-empty IDB relations. The
  /// analysis is deterministic and runs in well under the compile
  /// budget; turn it off only to measure its cost.
  bool static_analysis = true;
  /// Durable relation store: WAL + checkpoints + crash recovery for the
  /// EDB (asserted facts). The fixpoint is re-derived on reopen, not
  /// persisted. Off (in-memory) when durability.dir is empty.
  DurabilityOptions durability;
  /// Derivation provenance & choice audit: annotate every row with its
  /// deriving rule and premise rows (queryable via Engine::Why) and
  /// record one audit entry per choice firing (Engine::ChoiceAudit).
  /// The fixpoint itself is bit-identical with the flag off, at any
  /// thread count; memory for annotations is charged to the engine's
  /// MemoryBudget. See docs/OBSERVABILITY.md.
  bool provenance = false;
};

/// Wall time of the coarse engine phases, nanoseconds. Parse/analyze/
/// compile/eval are always collected (four clock pairs per run); the
/// saturate/gamma split inside eval requires obs.enabled.
struct EnginePhaseTimes {
  uint64_t parse_ns = 0;
  uint64_t analyze_ns = 0;
  uint64_t absint_ns = 0;
  uint64_t compile_ns = 0;
  uint64_t eval_ns = 0;
};

/// Coarse engine lifecycle, published as an atomic for the /statusz and
/// run-state gauges (safe to read from server threads mid-run).
enum class EngineRunState : uint8_t {
  kIdle = 0,   // constructed, Run not yet called
  kRunning,    // Run in flight
  kCompleted,  // Run reached a genuine fixpoint
  kStopped,    // Run ended on a bounded stop (limit/cancel/OOM/fault)
};

/// Stable lowercase name ("idle", "running", "completed", "stopped").
const char* EngineRunStateName(EngineRunState s);

/// How the last Run ended. Filled in whether Run succeeded, stopped on a
/// limit, was cancelled, or caught std::bad_alloc; `reason` stays
/// kCompleted until Run has been called.
struct RunOutcome {
  TerminationReason reason = TerminationReason::kCompleted;
  Status status;                   // what Run returned
  uint64_t guard_checks = 0;       // limit/cancel polls performed
  uint64_t peak_memory_bytes = 0;  // tracked-memory high-water mark
};

class Engine {
 public:
  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The engine's value store; use it to build EDB values.
  ValueStore& store() { return *store_; }
  const ValueStore& store() const { return *store_; }

  // Convenience value constructors.
  Value Int(int64_t v) { return Value::Int(v); }
  Value Sym(std::string_view name) { return store_->MakeSymbol(name); }
  Value Nil() { return Value::Nil(); }

  /// Parses and analyzes a program. Fails on parse errors, structural
  /// stage errors, and rejected cliques (recursion through negation that
  /// is not stage-stratified).
  Status LoadProgram(std::string_view text);
  /// Same, from an already-built AST.
  Status LoadProgramAst(Program program);
  /// Like LoadProgram, but routes the program's inline facts through
  /// AddFact so that with durability on they are WAL-logged like any
  /// other EDB edit (plain LoadProgram treats inline facts as part of
  /// the program text, invisible to the durable store). Equivalent to
  /// LoadProgram when durability is off, except that the facts no
  /// longer appear in program()->rules.
  Status LoadProgramDurable(std::string_view text);

  /// Adds an EDB tuple before Run. With durability on, the fact is
  /// WAL-logged before it is applied (write-ahead); a logging failure
  /// leaves the in-memory state unchanged.
  Status AddFact(std::string_view predicate, std::vector<Value> args);

  /// Removes an asserted EDB tuple before Run (NotFound when absent).
  /// WAL-logged like AddFact when durability is on.
  Status RetractFact(std::string_view predicate, std::vector<Value> args);

  /// Durable-store control (InvalidArgument when durability is off).
  /// Checkpoint writes a snapshot of the EDB, rotates the WAL, and swaps
  /// the manifest atomically; SyncDurability flushes pending WAL appends.
  Status Checkpoint();
  Status SyncDurability();
  /// The durable store, or nullptr when durability is off.
  const DurableStore* durable() const { return durable_.get(); }
  /// The latched durability open/recovery failure (OK when durability
  /// is off or the store opened cleanly). Every mutating entry point
  /// returns this status, but callers that construct an engine just to
  /// open a database (e.g. the shell's .open) can inspect it directly.
  const Status& durability_status() const { return durability_status_; }

  /// Evaluates the program to its (choice) fixpoint, or to the first
  /// guard stop (EngineOptions::limits / RequestCancel). Single-shot.
  /// A bounded stop returns the non-OK stop status but leaves the engine
  /// queryable (has_run() is true, Query/RunReport work on the partial
  /// state); outcome() says why the run ended either way.
  Status Run();
  bool has_run() const { return ran_; }

  /// Requests cooperative cancellation of an in-flight Run. Performs one
  /// relaxed atomic store plus (when the flight recorder is on) one
  /// allocation-free ring-buffer event, so it is safe from a signal
  /// handler or another thread; the run stops at the next fixpoint
  /// boundary with Status::Cancelled.
  void RequestCancel() {
    cancel_.Request();
    if (recorder_) recorder_->Record(FlightEventKind::kCancelRequested);
  }

  /// How the last Run ended (reason, status, guard checks, peak memory).
  const RunOutcome& outcome() const { return outcome_; }

  /// Total bytes currently charged to the engine's memory budget.
  size_t tracked_memory_bytes() const { return budget_.used(); }

  /// The fault injector, when a spec was given; nullptr otherwise.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// All tuples of predicate/arity (empty when absent).
  std::vector<std::vector<Value>> Query(std::string_view predicate,
                                        uint32_t arity) const;
  /// The relation, or nullptr.
  const Relation* Find(std::string_view predicate, uint32_t arity) const;

  // -- Introspection -------------------------------------------------------
  const StageAnalysis* analysis() const { return analysis_.get(); }
  const Program* program() const { return program_.get(); }
  const FixpointStats* stats() const;
  /// Queue statistics of the i-th choice rule (program order); nullptr
  /// when out of range.
  const CandidateQueueStats* QueueStats(int gamma_index) const;

  // -- Observability -------------------------------------------------------
  /// Per-rule evaluation profiles (by rule index); nullptr before Run.
  const std::vector<RuleProfile>* RuleProfiles() const;
  /// Coarse phase wall times collected so far.
  const EnginePhaseTimes& phase_times() const { return phase_times_; }
  /// The metrics registry in use (external or engine-owned); nullptr
  /// only when metrics are disabled (obs.metrics_enabled = false).
  const MetricsRegistry* metrics() const { return metrics_; }
  /// The tracer; nullptr when obs is disabled.
  const Tracer* tracer() const { return tracer_.get(); }
  /// The always-on flight recorder; nullptr when obs.recorder_enabled is
  /// false.
  const FlightRecorder* flight_recorder() const { return recorder_.get(); }
  /// The always-on progress tap (per-round/per-stage events, safe to
  /// poll from other threads mid-run); nullptr when
  /// obs.progress_enabled is false.
  const ProgressTap* progress() const { return progress_.get(); }
  /// The engine lifecycle state (atomic; safe from any thread).
  EngineRunState run_state() const {
    return run_state_.load(std::memory_order_acquire);
  }
  /// Seconds since this engine was constructed.
  uint64_t uptime_seconds() const;

  /// The live observability endpoint; nullptr when obs_http.enabled is
  /// false or the server failed to start (see obs_http_status).
  const ObsServer* obs_server() const { return obs_server_.get(); }
  /// The endpoint's bound port (resolves an ephemeral port 0 request);
  /// 0 when the server is not running.
  uint16_t obs_http_port() const {
    return obs_server_ ? obs_server_->port() : 0;
  }
  /// Why the endpoint is not serving (OK when it is, or was never
  /// requested). Latched at construction, like durability_status.
  const Status& obs_http_status() const { return obs_http_status_; }

  /// The flight-recorder ring rendered as text (one line per retained
  /// event). Works at any time — mid-run from another thread, after a
  /// bounded stop, after completion. Empty-ish header when disabled.
  std::string DumpFlightRecorder() const;

  /// Current metrics in the Prometheus text exposition format (0.0.4).
  /// Fails when metrics are disabled.
  Result<std::string> MetricsText() const;
  /// Writes MetricsText() to `path`.
  Status WriteMetricsText(const std::string& path) const;

  /// EXPLAIN ANALYZE: the planner's per-goal cardinality estimates next
  /// to the actuals measured through the executor (probes, rows touched,
  /// matches, mean rows per probe) with the misestimation factor
  /// actual/estimated (> 1 means the planner under-estimated). Call
  /// after Run; needs metrics on (the default) for the actuals.
  Result<std::string> ExplainAnalyzeText() const;

  /// Machine-readable run report: one JSON object with the options echo
  /// (including every EvalOptions ablation flag), per-phase wall times,
  /// fixpoint totals, per-rule profiles, per-queue statistics, and — when
  /// obs is enabled — the metrics snapshot. Call after Run.
  Result<std::string> RunReport() const;

  /// Writes the recorded phase timeline as Chrome trace_event JSON
  /// (loadable in chrome://tracing and Perfetto). Requires obs.enabled.
  Status WriteTrace(const std::string& path) const;

  /// The first-order rewriting whose stable models define this program's
  /// meaning (Sections 2-3), pretty-printed.
  Result<std::string> RewrittenProgramText() const;

  /// Human-readable report of the Section 4 analysis: every recursive
  /// clique with its classification, stage arguments, and rule kinds.
  Result<std::string> AnalysisReport() const;

  /// Runs every compile-time check on the loaded program and returns
  /// structured diagnostics (analysis/lint.h). Unlike LoadProgram, this
  /// never fails on a bad program — problems come back as Diagnostic
  /// records. Requires a loaded program.
  Result<LintResult> Lint(const LintOptions& options = {}) const;

  /// The abstract-interpretation result from the last Run; nullptr
  /// before Run or when EngineOptions::static_analysis is off.
  const absint::AnalysisResult* absint() const { return absint_.get(); }

  /// VM lowering coverage from the last Run (how many rules run on the
  /// bytecode backend, and why the rest fell back to the interpreter).
  /// Null before Run or when eval.backend is not kVm.
  const ir::LoweringReport* VmCoverage() const;

  /// Disassembly of the compiled rules lowered to the bytecode IR (shell
  /// `--dump-plan`, `.plan` goldens): one block per rule with its emit
  /// ops and per-plan scan/probe/filter levels, plus the rejection list.
  /// Deterministic for a given program + options. Call after Run — the
  /// dump reflects the exact plans the run executed, whichever backend
  /// ran them.
  Result<std::string> PlanDump() const;

  /// Inferred predicate signatures, one per line (shell `.types`).
  /// Reuses the Run-time analysis when available, otherwise analyzes the
  /// loaded program against the current EDB on demand.
  Result<std::string> TypeSignaturesText() const;

  /// Verifies the computed result is a stable model (Theorem 1). Call
  /// after Run; intended for tests at small scale.
  Result<StableCheckResult> VerifyStableModel() const;

  // -- Provenance (EngineOptions::provenance) ------------------------------
  /// Proof tree for one tuple of the model: why is it there? The tree
  /// follows the stored (rule, premises) annotations down to asserted
  /// facts, bounded at `max_depth` levels. Requires provenance and Run.
  Result<ProofNode> Why(std::string_view predicate,
                        const std::vector<Value>& tuple,
                        uint32_t max_depth = 8) const;

  /// Why() with a textual target and a rendered result. `target` is
  /// either a ground atom ("prm(a, b, 3, 1)" — parsed with the engine's
  /// store, so it may intern new symbols) or a "pred/arity" spec, which
  /// picks the relation's most recently derived row (handy for smoke
  /// artifacts). Text / JSON / DOT renderings of the same tree.
  Result<std::string> WhyText(const std::string& target,
                              uint32_t max_depth = 8);
  Result<std::string> WhyJson(const std::string& target,
                              uint32_t max_depth = 8);
  Result<std::string> WhyDot(const std::string& target,
                             uint32_t max_depth = 8);

  /// The choice-audit trail (one entry per γ firing): candidate-set
  /// size, chosen witness, tie count, admissibility rejections. Null
  /// when provenance is off or before Run.
  const ChoiceAuditTrail* ChoiceAudit() const;
  /// The audit trail rendered one line per firing (shell `.choices`).
  Result<std::string> ChoiceAuditText() const;

 private:
  /// The body of Run, separated so the Run boundary can catch
  /// std::bad_alloc and fill the outcome uniformly.
  Status RunInner();
  /// Resolves a Why target ("atom(...)" or "pred/arity") to a stored row.
  Result<std::pair<PredicateId, RowId>> ResolveWhyTarget(
      const std::string& target);
  /// Guard + proof-tree construction shared by the Why* renderers.
  Result<ProofNode> WhyRow(PredicateId pred, RowId row,
                           uint32_t max_depth) const;
  /// Opens the durable store and replays the recovered EDB into the
  /// catalog (constructor helper; failures latch durability_status_).
  void OpenDurability();
  /// Mirrors the durable store's counters into the metrics gauges.
  void PublishDurabilityMetrics();
  /// Flight-records any post-append durability failure the store
  /// deferred (budget charge, auto-checkpoint) without failing the
  /// mutation it rode on.
  void RecordDeferredDurabilityError();
  /// Refreshes the runtime gauges (engine.uptime_seconds and the
  /// engine.run_state family) so every scrape path — /metrics, shell
  /// .metrics, WriteMetricsText — sees current values.
  void RefreshRuntimeMetrics() const;
  /// The /statusz JSON: build info, uptime, run state, last progress.
  /// Reads only atomics and lock-free rings — safe mid-run.
  std::string StatuszJson() const;
  /// Publishes the end-of-run artifacts that are only safe to render
  /// once evaluation stopped (RunReport JSON, Chrome trace) into the
  /// endpoint's bounded ring, plus the terminal progress event.
  void PublishRunArtifacts();
  /// Rendered program rules indexed by rule index (facts stay empty).
  std::vector<std::string> RuleTexts() const;
  /// Runs the abstract interpreter on the loaded program against the
  /// current catalog contents.
  absint::AnalysisResult ComputeAbsint() const;

  EngineOptions options_;
  // Guardrails. Declared before the stores: members destroy in reverse
  // order, and the value-store arenas release their charge into budget_
  // on destruction, so the budget must outlive them.
  MemoryBudget budget_;
  CancelToken cancel_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<RunGuard> guard_;
  Status faults_status_;  // parse result of the faults spec
  RunOutcome outcome_;
  std::unique_ptr<ValueStore> store_;
  std::unique_ptr<Catalog> catalog_;
  // Durable store (null when durability.dir is empty). Declared after
  // store_/catalog_: recovery interns values and its charge must release
  // into budget_ before the stores go.
  std::unique_ptr<DurableStore> durable_;
  Status durability_status_;  // latched open/recovery failure
  std::unique_ptr<Program> program_;
  std::unique_ptr<StageAnalysis> analysis_;
  std::unique_ptr<absint::AnalysisResult> absint_;
  std::unique_ptr<FixpointDriver> driver_;
  // Observability. The tracer exists only when options_.obs.enabled; the
  // registry and flight recorder are always-on by default (gated by
  // metrics_enabled / recorder_enabled). metrics_ points at either
  // own_metrics_ or the external registry supplied via ObsOptions.
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<ProgressTap> progress_;
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<EngineRunState> run_state_{EngineRunState::kIdle};
  EnginePhaseTimes phase_times_;
  // Rows present per relation before evaluation started (user facts +
  // program facts) — the reduct seeds for VerifyStableModel.
  std::vector<size_t> seed_watermarks_;
  bool ran_ = false;
  // The live endpoint is declared LAST: its worker threads read the
  // members above (metrics, recorder, tap, atomics), so it must be the
  // first member destroyed — destruction joins every server thread
  // before anything it borrows goes away.
  Status obs_http_status_;
  std::unique_ptr<ObsServer> obs_server_;
};

}  // namespace gdlog

#endif  // GDLOG_API_ENGINE_H_
