// gdlog public API: the Engine facade.
//
// Typical use:
//
//   gdlog::Engine engine;
//   auto st = engine.LoadProgram(R"(
//     prm(nil, a, 0, 0).
//     prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I,
//                        least(C, I), choice(Y, X).
//     new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
//   )");
//   engine.AddFact("g", {...});         // EDB tuples
//   st = engine.Run();                  // choice fixpoint
//   auto mst = engine.Query("prm", 4);  // one stable model's prm facts
//
// Each Engine owns its ValueStore (symbol/term interning), Catalog
// (relations + indices), analysis results, and one evaluation. Engines
// are single-shot: build, run, query.
#ifndef GDLOG_API_ENGINE_H_
#define GDLOG_API_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"
#include "analysis/stage.h"
#include "ast/ast.h"
#include "common/status.h"
#include "eval/fixpoint.h"
#include "eval/stable_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "value/value.h"

namespace gdlog {

struct EngineOptions {
  EvalOptions eval;
  StageAnalysisOptions stage;
  /// Observability switches (metrics registry, tracer, trace sampling).
  /// Disabled by default: the evaluation hot path then pays one branch
  /// per instrumented site. See docs/OBSERVABILITY.md.
  ObsOptions obs;
};

/// Wall time of the coarse engine phases, nanoseconds. Parse/analyze/
/// compile/eval are always collected (four clock pairs per run); the
/// saturate/gamma split inside eval requires obs.enabled.
struct EnginePhaseTimes {
  uint64_t parse_ns = 0;
  uint64_t analyze_ns = 0;
  uint64_t compile_ns = 0;
  uint64_t eval_ns = 0;
};

class Engine {
 public:
  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The engine's value store; use it to build EDB values.
  ValueStore& store() { return *store_; }
  const ValueStore& store() const { return *store_; }

  // Convenience value constructors.
  Value Int(int64_t v) { return Value::Int(v); }
  Value Sym(std::string_view name) { return store_->MakeSymbol(name); }
  Value Nil() { return Value::Nil(); }

  /// Parses and analyzes a program. Fails on parse errors, structural
  /// stage errors, and rejected cliques (recursion through negation that
  /// is not stage-stratified).
  Status LoadProgram(std::string_view text);
  /// Same, from an already-built AST.
  Status LoadProgramAst(Program program);

  /// Adds an EDB tuple before Run.
  Status AddFact(std::string_view predicate, std::vector<Value> args);

  /// Evaluates the program to its (choice) fixpoint. Single-shot.
  Status Run();
  bool has_run() const { return ran_; }

  /// All tuples of predicate/arity (empty when absent).
  std::vector<std::vector<Value>> Query(std::string_view predicate,
                                        uint32_t arity) const;
  /// The relation, or nullptr.
  const Relation* Find(std::string_view predicate, uint32_t arity) const;

  // -- Introspection -------------------------------------------------------
  const StageAnalysis* analysis() const { return analysis_.get(); }
  const Program* program() const { return program_.get(); }
  const FixpointStats* stats() const;
  /// Queue statistics of the i-th choice rule (program order); nullptr
  /// when out of range.
  const CandidateQueueStats* QueueStats(int gamma_index) const;

  // -- Observability -------------------------------------------------------
  /// Per-rule evaluation profiles (by rule index); nullptr before Run.
  const std::vector<RuleProfile>* RuleProfiles() const;
  /// Coarse phase wall times collected so far.
  const EnginePhaseTimes& phase_times() const { return phase_times_; }
  /// The metrics registry in use (external or engine-owned); nullptr
  /// when obs is disabled.
  const MetricsRegistry* metrics() const { return metrics_; }
  /// The tracer; nullptr when obs is disabled.
  const Tracer* tracer() const { return tracer_.get(); }

  /// Machine-readable run report: one JSON object with the options echo
  /// (including every EvalOptions ablation flag), per-phase wall times,
  /// fixpoint totals, per-rule profiles, per-queue statistics, and — when
  /// obs is enabled — the metrics snapshot. Call after Run.
  Result<std::string> RunReport() const;

  /// Writes the recorded phase timeline as Chrome trace_event JSON
  /// (loadable in chrome://tracing and Perfetto). Requires obs.enabled.
  Status WriteTrace(const std::string& path) const;

  /// The first-order rewriting whose stable models define this program's
  /// meaning (Sections 2-3), pretty-printed.
  Result<std::string> RewrittenProgramText() const;

  /// Human-readable report of the Section 4 analysis: every recursive
  /// clique with its classification, stage arguments, and rule kinds.
  Result<std::string> AnalysisReport() const;

  /// Runs every compile-time check on the loaded program and returns
  /// structured diagnostics (analysis/lint.h). Unlike LoadProgram, this
  /// never fails on a bad program — problems come back as Diagnostic
  /// records. Requires a loaded program.
  Result<LintResult> Lint(const LintOptions& options = {}) const;

  /// Verifies the computed result is a stable model (Theorem 1). Call
  /// after Run; intended for tests at small scale.
  Result<StableCheckResult> VerifyStableModel() const;

 private:
  EngineOptions options_;
  std::unique_ptr<ValueStore> store_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<StageAnalysis> analysis_;
  std::unique_ptr<FixpointDriver> driver_;
  // Observability: tracer and registry exist only when options_.obs
  // .enabled; metrics_ points at either own_metrics_ or the external
  // registry supplied via ObsOptions::metrics.
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> own_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  EnginePhaseTimes phase_times_;
  // Rows present per relation before evaluation started (user facts +
  // program facts) — the reduct seeds for VerifyStableModel.
  std::vector<size_t> seed_watermarks_;
  bool ran_ = false;
};

}  // namespace gdlog

#endif  // GDLOG_API_ENGINE_H_
