#include "analysis/stage.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/diagnostics.h"
#include "analysis/rewriter.h"
#include "common/logging.h"

namespace gdlog {

std::string_view CliqueClassName(CliqueClass c) {
  switch (c) {
    case CliqueClass::kHorn:
      return "Horn";
    case CliqueClass::kStratified:
      return "Stratified";
    case CliqueClass::kStageStratified:
      return "StageStratified";
    case CliqueClass::kRelaxedStage:
      return "RelaxedStage";
    case CliqueClass::kRejected:
      return "Rejected";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Order constraints: proves var/const orderings within one rule instance.
// ---------------------------------------------------------------------------

/// A tiny difference-order solver. Nodes are rule variables and integer
/// constants; an edge u -> v carries strictness (u < v) or not (u <= v).
/// Transitive closure makes a path strict if any edge on it is strict.
class OrderConstraints {
 public:
  void AddLe(const std::string& u, const std::string& v, bool strict) {
    const int a = NodeOf(u);
    const int b = NodeOf(v);
    pending_.push_back({a, b, strict});
    closed_ = false;
  }

  void AddConstant(const std::string& key, int64_t value) {
    const int a = NodeOf(key);
    const_value_[a] = value;
    closed_ = false;
  }

  /// True iff u <= v (strict=false) or u < v (strict=true) is provable.
  bool Proves(const std::string& u, const std::string& v, bool strict) {
    if (u == v) return !strict;
    Close();
    auto iu = index_.find(u);
    auto iv = index_.find(v);
    if (iu == index_.end() || iv == index_.end()) return false;
    const int r = rel_[iu->second * n_ + iv->second];
    return strict ? r == kStrict : r != kNone;
  }

 private:
  static constexpr int kNone = 0;
  static constexpr int kLe = 1;
  static constexpr int kStrict = 2;

  int NodeOf(const std::string& key) {
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const int id = static_cast<int>(index_.size());
    index_.emplace(key, id);
    return id;
  }

  void Close() {
    if (closed_) return;
    n_ = static_cast<int>(index_.size());
    rel_.assign(static_cast<size_t>(n_) * n_, kNone);
    auto set_rel = [&](int a, int b, int r) {
      int& cur = rel_[static_cast<size_t>(a) * n_ + b];
      if (r > cur) cur = r;
    };
    for (const auto& e : pending_) {
      set_rel(e.a, e.b, e.strict ? kStrict : kLe);
    }
    // Known integer constants order each other.
    for (const auto& [a, va] : const_value_) {
      for (const auto& [b, vb] : const_value_) {
        if (va < vb) set_rel(a, b, kStrict);
        if (va == vb && a != b) {
          set_rel(a, b, kLe);
          set_rel(b, a, kLe);
        }
      }
    }
    // Floyd-Warshall-style closure; strictness is the max over the path's
    // weakest-link composition: le∘le = le, anything∘strict = strict.
    for (int k = 0; k < n_; ++k) {
      for (int i = 0; i < n_; ++i) {
        const int rik = rel_[static_cast<size_t>(i) * n_ + k];
        if (rik == kNone) continue;
        for (int j = 0; j < n_; ++j) {
          const int rkj = rel_[static_cast<size_t>(k) * n_ + j];
          if (rkj == kNone) continue;
          const int composed = (rik == kStrict || rkj == kStrict) ? kStrict : kLe;
          set_rel(i, j, composed);
        }
      }
    }
    closed_ = true;
  }

  struct Edge {
    int a, b;
    bool strict;
  };

  std::unordered_map<std::string, int> index_;
  std::unordered_map<int, int64_t> const_value_;
  std::vector<Edge> pending_;
  std::vector<int> rel_;
  int n_ = 0;
  bool closed_ = true;
};

/// Key for a term usable as an order-constraint node: a variable's name,
/// or "#<int>" for integer constants. Returns false for anything else.
bool TermKey(const TermNode& t, std::string* key, OrderConstraints* oc) {
  if (t.is_var()) {
    *key = t.name;
    return true;
  }
  if (t.is_const() && t.constant.is_int()) {
    *key = "#" + std::to_string(t.constant.AsInt());
    if (oc) oc->AddConstant(*key, t.constant.AsInt());
    return true;
  }
  return false;
}

/// Harvests ordering edges from one comparison literal.
void AddComparisonEdges(const Literal& lit, OrderConstraints* oc) {
  GDLOG_CHECK(lit.kind == LiteralKind::kComparison);
  const TermNode& lhs = lit.args[0];
  const TermNode& rhs = lit.args[1];
  std::string lk, rk;
  const bool lhs_ok = TermKey(lhs, &lk, oc);
  const bool rhs_ok = TermKey(rhs, &rk, oc);
  switch (lit.op) {
    case ComparisonOp::kLt:
      if (lhs_ok && rhs_ok) oc->AddLe(lk, rk, /*strict=*/true);
      return;
    case ComparisonOp::kLe:
      if (lhs_ok && rhs_ok) oc->AddLe(lk, rk, /*strict=*/false);
      return;
    case ComparisonOp::kGt:
      if (lhs_ok && rhs_ok) oc->AddLe(rk, lk, /*strict=*/true);
      return;
    case ComparisonOp::kGe:
      if (lhs_ok && rhs_ok) oc->AddLe(rk, lk, /*strict=*/false);
      return;
    case ComparisonOp::kNe:
      return;
    case ComparisonOp::kEq:
      break;
  }
  // Equality: plain t1 = t2, or stage arithmetic V = W + c, V = max/min(..).
  auto handle_eq_arith = [&](const TermNode& var_side,
                             const TermNode& expr_side) {
    std::string vk;
    if (!TermKey(var_side, &vk, oc)) return;
    if (expr_side.is_compound() && expr_side.args.size() == 2 &&
        (expr_side.name == "+" || expr_side.name == "-")) {
      const TermNode& a = expr_side.args[0];
      const TermNode& b = expr_side.args[1];
      // V = A + c  or  V = A - c with integer constant c.
      if (b.is_const() && b.constant.is_int()) {
        int64_t c = b.constant.AsInt();
        if (expr_side.name == "-") c = -c;
        std::string ak;
        if (TermKey(a, &ak, oc)) {
          if (c > 0) {
            oc->AddLe(ak, vk, /*strict=*/true);
          } else if (c == 0) {
            oc->AddLe(ak, vk, false);
            oc->AddLe(vk, ak, false);
          } else {
            oc->AddLe(vk, ak, /*strict=*/true);
          }
        }
      }
      // V = c + A (addition only).
      if (expr_side.name == "+" && a.is_const() && a.constant.is_int()) {
        const int64_t c = a.constant.AsInt();
        std::string bk;
        if (TermKey(b, &bk, oc)) {
          if (c > 0) {
            oc->AddLe(bk, vk, true);
          } else if (c == 0) {
            oc->AddLe(bk, vk, false);
            oc->AddLe(vk, bk, false);
          } else {
            oc->AddLe(vk, bk, true);
          }
        }
      }
      return;
    }
    if (expr_side.is_compound() &&
        (expr_side.name == "max" || expr_side.name == "min")) {
      for (const TermNode& a : expr_side.args) {
        std::string ak;
        if (!TermKey(a, &ak, oc)) continue;
        if (expr_side.name == "max") {
          oc->AddLe(ak, vk, false);  // each arg <= max
        } else {
          oc->AddLe(vk, ak, false);  // min <= each arg
        }
      }
      return;
    }
  };
  if (lhs_ok && rhs_ok) {
    oc->AddLe(lk, rk, false);
    oc->AddLe(rk, lk, false);
    return;
  }
  handle_eq_arith(lhs, rhs);
  handle_eq_arith(rhs, lhs);
}

/// All integer constants mentioned anywhere become order nodes, so
/// constant stage arguments (e.g. the 0 in exit rules) participate.
void RegisterConstants(const TermNode& t, OrderConstraints* oc) {
  if (t.is_const() && t.constant.is_int()) {
    oc->AddConstant("#" + std::to_string(t.constant.AsInt()),
                    t.constant.AsInt());
  }
  for (const TermNode& a : t.args) RegisterConstants(a, oc);
}

// ---------------------------------------------------------------------------
// Stage-variable inference within one rule.
// ---------------------------------------------------------------------------

/// True when all variables of `t` are in `stage_vars` and all functors
/// are arithmetic — i.e. the term's value is a function of stage values.
bool IsStageExpr(const TermNode& t,
                 const std::unordered_set<std::string>& stage_vars) {
  switch (t.kind) {
    case TermKind::kVariable:
      return stage_vars.count(t.name) > 0;
    case TermKind::kConstant:
      return t.constant.is_int();
    case TermKind::kCompound:
      if (!IsArithmeticFunctor(t.name)) return false;
      for (const TermNode& a : t.args) {
        if (!IsStageExpr(a, stage_vars)) return false;
      }
      return true;
  }
  return false;
}

/// Computes the set of stage variables of rule `r` given the current
/// per-predicate stage positions (restricted to predicates of clique
/// `scc`). Only top-level positive atoms bind variables.
std::unordered_set<std::string> RuleStageVars(
    const Rule& r, const DependencyGraph& graph, uint32_t scc,
    const std::vector<int>& stage_arg) {
  std::unordered_set<std::string> sv;
  // next(I) binds I as a stage variable directly.
  for (const Literal& l : r.body) {
    if (l.kind == LiteralKind::kNext) sv.insert(l.args[0].name);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : r.body) {
      if (l.is_positive_atom()) {
        const PredIndex p = graph.Lookup(
            l.predicate, static_cast<uint32_t>(l.args.size()));
        if (p == kNoPred || graph.scc_of(p) != scc) continue;
        const int pos = stage_arg[p];
        if (pos < 0 || pos >= static_cast<int>(l.args.size())) continue;
        const TermNode& t = l.args[pos];
        if (t.is_var() && sv.insert(t.name).second) changed = true;
      } else if (l.kind == LiteralKind::kComparison &&
                 l.op == ComparisonOp::kEq) {
        const TermNode& lhs = l.args[0];
        const TermNode& rhs = l.args[1];
        if (lhs.is_var() && IsStageExpr(rhs, sv) && sv.insert(lhs.name).second) {
          changed = true;
        }
        if (rhs.is_var() && IsStageExpr(lhs, sv) && sv.insert(rhs.name).second) {
          changed = true;
        }
      }
    }
  }
  return sv;
}

// ---------------------------------------------------------------------------
// Stage-occurrence collection on the expanded rule.
// ---------------------------------------------------------------------------

struct StageOccurrence {
  std::string key;    // order-constraint node key
  bool under_negation;
  bool keyable;       // false when the stage term is not a var/int
  std::string where;  // diagnostic text
};

void CollectOccurrences(const std::vector<Literal>& body,
                        const DependencyGraph& graph, uint32_t scc,
                        const std::vector<int>& stage_arg, bool under_negation,
                        OrderConstraints* oc,
                        std::vector<StageOccurrence>* out) {
  for (const Literal& l : body) {
    switch (l.kind) {
      case LiteralKind::kAtom: {
        const PredIndex p = graph.Lookup(
            l.predicate, static_cast<uint32_t>(l.args.size()));
        for (const TermNode& a : l.args) RegisterConstants(a, oc);
        if (p == kNoPred || graph.scc_of(p) != scc) break;
        const int pos = stage_arg[p];
        if (pos < 0 || pos >= static_cast<int>(l.args.size())) break;
        StageOccurrence occ;
        occ.under_negation = under_negation || l.negated;
        occ.keyable = TermKey(l.args[pos], &occ.key, oc);
        occ.where = l.predicate;
        out->push_back(std::move(occ));
        break;
      }
      case LiteralKind::kComparison:
        AddComparisonEdges(l, oc);
        for (const TermNode& a : l.args) RegisterConstants(a, oc);
        break;
      case LiteralKind::kNotExists:
        // Constraints inside the negated conjunction hold for the negated
        // instance, so they may be used when discharging its occurrences.
        CollectOccurrences(l.body, graph, scc, stage_arg,
                           /*under_negation=*/true, oc, out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Main analysis
// ---------------------------------------------------------------------------

Result<StageAnalysis> AnalyzeStages(const Program& program,
                                    const StageAnalysisOptions& options) {
  StageAnalysis out;
  GDLOG_ASSIGN_OR_RETURN(out.expanded, ExpandNext(program));
  out.graph = std::make_unique<DependencyGraph>(out.expanded);
  const DependencyGraph& graph = *out.graph;

  // The ordering-check form: choice erased, extrema rewritten.
  Program check_form_tmp = EraseChoice(out.expanded);
  GDLOG_ASSIGN_OR_RETURN(Program check_form, RewriteExtrema(check_form_tmp));
  GDLOG_CHECK_EQ(check_form.rules.size(), program.rules.size());

  const size_t num_rules = program.rules.size();
  out.rule_info.assign(num_rules, RuleStageInfo{});
  out.stage_arg.assign(graph.num_predicates(), -1);
  out.cliques.resize(graph.num_sccs());
  for (uint32_t s = 0; s < graph.num_sccs(); ++s) {
    out.cliques[s].members = graph.scc_members(s);
    out.clique_order.push_back(s);
  }

  // Rule kinds. A rule is recursive (flat/next) when its body mentions a
  // predicate of its head's clique — on the *expanded* form, so next
  // rules are recursive by construction.
  std::vector<uint32_t> scc_of_rule(num_rules);
  for (uint32_t ri = 0; ri < num_rules; ++ri) {
    const Rule& orig = program.rules[ri];
    const Rule& exp = out.expanded.rules[ri];
    const PredIndex head = graph.Lookup(
        exp.head.predicate, static_cast<uint32_t>(exp.head.args.size()));
    GDLOG_CHECK_NE(head, kNoPred);
    const uint32_t scc = graph.scc_of(head);
    scc_of_rule[ri] = scc;
    out.cliques[scc].rules.push_back(ri);

    bool recursive = false;
    std::function<void(const Literal&)> scan = [&](const Literal& l) {
      if (l.kind == LiteralKind::kAtom) {
        const PredIndex p = graph.Lookup(
            l.predicate, static_cast<uint32_t>(l.args.size()));
        if (p != kNoPred && graph.scc_of(p) == scc) recursive = true;
      }
      for (const Literal& inner : l.body) scan(inner);
    };
    for (const Literal& l : exp.body) scan(l);

    RuleStageInfo& info = out.rule_info[ri];
    if (orig.has_next()) {
      info.kind = RuleKind::kNext;
      info.stage_var =
          std::find_if(orig.body.begin(), orig.body.end(),
                       [](const Literal& l) {
                         return l.kind == LiteralKind::kNext;
                       })
              ->args[0]
              .name;
      out.cliques[scc].has_next_rules = true;
    } else {
      info.kind = recursive ? RuleKind::kFlat : RuleKind::kExit;
    }
  }

  // Stage-position inference, per clique containing next rules.
  for (uint32_t s = 0; s < graph.num_sccs(); ++s) {
    if (!out.cliques[s].has_next_rules) continue;
    // Seed from next rules: the stage variable's position in the head.
    for (uint32_t ri : out.cliques[s].rules) {
      if (out.rule_info[ri].kind != RuleKind::kNext) continue;
      const Rule& orig = program.rules[ri];
      const std::string& sv = out.rule_info[ri].stage_var;
      int pos = -1;
      for (size_t j = 0; j < orig.head.args.size(); ++j) {
        if (orig.head.args[j].is_var() && orig.head.args[j].name == sv) {
          pos = static_cast<int>(j);  // uniqueness enforced by ExpandNext
        }
      }
      GDLOG_CHECK_GE(pos, 0);
      const PredIndex head = graph.Lookup(
          orig.head.predicate, static_cast<uint32_t>(orig.head.args.size()));
      if (out.stage_arg[head] >= 0 && out.stage_arg[head] != pos) {
        return DiagnosticToStatus(MakeDiagnostic(
            diag::kConflictingStagePos,
            "predicate " + graph.name(head) + " has conflicting stage "
            "argument positions " + std::to_string(out.stage_arg[head]) +
            " and " + std::to_string(pos)));
      }
      out.stage_arg[head] = pos;
    }
    // Propagate through flat rules until stable.
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t ri : out.cliques[s].rules) {
        if (out.rule_info[ri].kind == RuleKind::kNext) continue;
        const Rule& orig = program.rules[ri];
        const auto sv = RuleStageVars(orig, graph, s, out.stage_arg);
        if (sv.empty()) continue;
        const PredIndex head = graph.Lookup(
            orig.head.predicate,
            static_cast<uint32_t>(orig.head.args.size()));
        int pos = -1;
        for (size_t j = 0; j < orig.head.args.size(); ++j) {
          const TermNode& t = orig.head.args[j];
          if (t.is_var() && sv.count(t.name)) {
            if (pos >= 0) {
              return DiagnosticToStatus(MakeDiagnostic(
                  diag::kTwoHeadStagePos,
                  "rule for " + graph.name(head) +
                      " places stage variables at two head positions (" +
                      std::to_string(pos) + " and " + std::to_string(j) +
                      ")"));
            }
            pos = static_cast<int>(j);
          }
        }
        if (pos < 0) continue;
        if (out.stage_arg[head] == pos) continue;
        if (out.stage_arg[head] >= 0) {
          return DiagnosticToStatus(MakeDiagnostic(
              diag::kConflictingStagePos,
              "predicate " + graph.name(head) + " has conflicting stage "
              "argument positions " + std::to_string(out.stage_arg[head]) +
              " and " + std::to_string(pos)));
        }
        out.stage_arg[head] = pos;
        changed = true;
      }
    }
  }

  // Record head stage positions on rules.
  for (uint32_t ri = 0; ri < num_rules; ++ri) {
    const PredIndex head = graph.Lookup(
        program.rules[ri].head.predicate,
        static_cast<uint32_t>(program.rules[ri].head.args.size()));
    out.rule_info[ri].head_stage_pos = out.stage_arg[head];
  }

  // Per-clique classification.
  for (uint32_t s = 0; s < graph.num_sccs(); ++s) {
    CliqueStageInfo& cl = out.cliques[s];
    const bool recursive = graph.IsRecursive(s);
    const bool internal_neg = graph.HasInternalNegation(s);

    if (!cl.has_next_rules) {
      // Extrema in a recursive rule rewrite to negation over the clique
      // itself (the body copy), which the dependency graph — built
      // before the extrema rewriting — cannot see. Detect it directly.
      bool recursive_extrema = false;
      for (uint32_t ri : cl.rules) {
        if (out.rule_info[ri].kind == RuleKind::kFlat &&
            program.rules[ri].has_extrema()) {
          recursive_extrema = true;
        }
      }
      if (recursive && (internal_neg || recursive_extrema)) {
        cl.cls = CliqueClass::kRejected;
        cl.code = diag::kNotStageStratified;
        cl.diagnostic =
            recursive_extrema
                ? "extrema in recursion without stage variables"
                : "recursion through negation without stage variables";
      } else {
        // Horn vs merely stratified is cosmetic here; report Horn when no
        // rule of the clique uses negation at all.
        bool any_negation = false;
        for (uint32_t ri : cl.rules) {
          for (const Literal& l : check_form.rules[ri].body) {
            if (l.is_negated_atom() || l.kind == LiteralKind::kNotExists) {
              any_negation = true;
            }
          }
        }
        cl.cls = any_negation ? CliqueClass::kStratified : CliqueClass::kHorn;
      }
      continue;
    }

    // --- Stage clique structural conditions -----------------------------
    std::string problem;
    std::string problem_code;
    // (a) every recursive predicate has exactly one stage argument.
    for (PredIndex p : cl.members) {
      if (graph.IsIdb(p) && out.stage_arg[p] < 0 && recursive) {
        problem = "predicate " + graph.name(p) +
                  " in a stage clique has no stage argument";
        problem_code = diag::kMissingStageArg;
      }
    }
    // (b) recursive rules for one predicate are all next or all flat.
    for (PredIndex p : cl.members) {
      bool has_next = false, has_flat = false;
      for (uint32_t ri : graph.RulesFor(p)) {
        if (out.rule_info[ri].kind == RuleKind::kNext) has_next = true;
        if (out.rule_info[ri].kind == RuleKind::kFlat) has_flat = true;
      }
      if (has_next && has_flat) {
        problem = "predicate " + graph.name(p) +
                  " mixes next rules and flat recursive rules";
        problem_code = diag::kMixedRuleKinds;
      }
    }
    if (!problem.empty()) {
      cl.cls = CliqueClass::kRejected;
      cl.diagnostic = problem;
      cl.code = problem_code;
      continue;
    }

    // --- Ordering obligations on the check form --------------------------
    bool next_violation = false;
    bool flat_violation = false;
    for (uint32_t ri : cl.rules) {
      const Rule& cr = check_form.rules[ri];
      const RuleStageInfo& info = out.rule_info[ri];
      const PredIndex head = graph.Lookup(
          cr.head.predicate, static_cast<uint32_t>(cr.head.args.size()));
      const int hp = out.stage_arg[head];
      if (hp < 0) continue;  // non-stage predicate (cannot happen here)

      OrderConstraints oc;
      std::vector<StageOccurrence> occs;
      CollectOccurrences(cr.body, graph, s, out.stage_arg,
                         /*under_negation=*/false, &oc, &occs);
      std::string head_key;
      const bool head_ok = TermKey(cr.head.args[hp], &head_key, &oc);

      for (const StageOccurrence& occ : occs) {
        const bool need_strict =
            info.kind == RuleKind::kNext || occ.under_negation;
        bool proven = head_ok && occ.keyable &&
                      oc.Proves(occ.key, head_key, need_strict);
        if (!proven) {
          const std::string msg =
              "rule " + std::to_string(ri) + " for " + cr.head.predicate +
              ": stage argument of body goal " + occ.where +
              (need_strict ? " not provably < " : " not provably <= ") +
              "head stage argument";
          if (!cl.diagnostic.empty()) cl.diagnostic += "; ";
          cl.diagnostic += msg;
          if (info.kind == RuleKind::kNext) {
            next_violation = true;
          } else {
            flat_violation = true;
          }
        }
      }
    }

    if (next_violation) {
      cl.cls = CliqueClass::kRejected;
      cl.code = diag::kNotStageStratified;
    } else if (flat_violation) {
      if (options.allow_relaxed_flat_rules) {
        cl.cls = CliqueClass::kRelaxedStage;
        cl.code = diag::kRelaxedStratification;
      } else {
        cl.cls = CliqueClass::kRejected;
        cl.code = diag::kNotStageStratified;
      }
    } else {
      cl.cls = CliqueClass::kStageStratified;
      cl.diagnostic.clear();
    }
  }

  return out;
}

}  // namespace gdlog
