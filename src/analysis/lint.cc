#include "analysis/lint.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/dep_graph.h"
#include "parser/parser.h"

namespace gdlog {

namespace {

using VarSet = std::unordered_set<std::string>;

std::string PredKey(const std::string& name, size_t arity) {
  return name + "/" + std::to_string(arity);
}

bool AllVarsBound(const TermNode& t, const VarSet& bound) {
  std::vector<std::string> vars;
  CollectVariables(t, &vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

/// Variables bound by the positive goals of `body`, starting from
/// `initial` (the enclosing scope for NotExists conjunctions). Positive
/// atoms bind all their variables; next(I) binds its stage variable (the
/// counter generates it); an equality binds one side's variable once the
/// other side is fully bound.
VarSet BoundVars(const std::vector<Literal>& body, const VarSet& initial) {
  VarSet bound = initial;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : body) {
      switch (l.kind) {
        case LiteralKind::kAtom:
          if (!l.negated) {
            std::vector<std::string> vars;
            for (const TermNode& a : l.args) CollectVariables(a, &vars);
            for (const std::string& v : vars) {
              if (bound.insert(v).second) changed = true;
            }
          }
          break;
        case LiteralKind::kNext:
          if (bound.insert(l.args[0].name).second) changed = true;
          break;
        case LiteralKind::kComparison:
          if (l.op == ComparisonOp::kEq) {
            const TermNode& lhs = l.args[0];
            const TermNode& rhs = l.args[1];
            if (lhs.is_var() && AllVarsBound(rhs, bound) &&
                bound.insert(lhs.name).second) {
              changed = true;
            }
            if (rhs.is_var() && AllVarsBound(lhs, bound) &&
                bound.insert(rhs.name).second) {
              changed = true;
            }
          }
          break;
        default:
          break;
      }
    }
  }
  return bound;
}

std::vector<std::string> DistinctVarsOf(const TermNode& t) {
  std::vector<std::string> all;
  CollectVariables(t, &all);
  std::vector<std::string> out;
  for (std::string& n : all) {
    if (std::find(out.begin(), out.end(), n) == out.end()) {
      out.push_back(std::move(n));
    }
  }
  return out;
}

/// "line N, column M" parsed back out of a parser error message.
SourceLoc LocFromErrorMessage(const std::string& msg) {
  SourceLoc loc;
  const size_t lp = msg.find("line ");
  const size_t cp = msg.find("column ");
  if (lp == std::string::npos || cp == std::string::npos) return loc;
  loc.line = std::atoi(msg.c_str() + lp + 5);
  loc.column = std::atoi(msg.c_str() + cp + 7);
  return loc;
}

class Linter {
 public:
  Linter(const Program& program, const LintOptions& options)
      : program_(program), options_(options) {}

  LintResult Run() {
    for (uint32_t ri = 0; ri < program_.rules.size(); ++ri) {
      CheckRuleStructure(ri);
      CheckRuleSafety(ri);
      CheckChoiceGoals(ri);
    }
    CheckPredicates();
    CheckReachability();
    CheckStratification();

    LintResult result;
    result.diagnostics = std::move(diags_);
    SortDiagnostics(&result.diagnostics);
    result.counts = CountDiagnostics(result.diagnostics);
    return result;
  }

 private:
  void Emit(Diagnostic d) { diags_.push_back(std::move(d)); }

  Diagnostic AtRule(std::string_view code, std::string message, uint32_t ri,
                    SourceLoc loc) {
    Diagnostic d = MakeDiagnostic(code, std::move(message));
    d.rule_index = static_cast<int>(ri);
    d.loc = loc.valid() ? loc : program_.rules[ri].loc;
    const Literal& head = program_.rules[ri].head;
    d.predicate = PredKey(head.predicate, head.args.size());
    return d;
  }

  // -- GD101-GD105: per-rule structural errors ----------------------------

  void CheckRuleStructure(uint32_t ri) {
    const Rule& r = program_.rules[ri];
    std::vector<const Literal*> nexts;
    std::vector<const Literal*> extrema;
    for (const Literal& l : r.body) {
      if (l.kind == LiteralKind::kNext) nexts.push_back(&l);
      if (l.kind == LiteralKind::kLeast || l.kind == LiteralKind::kMost) {
        extrema.push_back(&l);
      }
    }
    if (nexts.size() > 1) {
      structural_error_ = true;
      Emit(AtRule(diag::kMultipleNext,
                  "rule for " + r.head.predicate + " has " +
                      std::to_string(nexts.size()) +
                      " next goals; at most one is allowed",
                  ri, nexts[1]->loc));
    } else if (nexts.size() == 1) {
      const std::string& sv = nexts[0]->args[0].name;
      int occurrences = 0;
      for (const TermNode& arg : r.head.args) {
        if (arg.is_var() && arg.name == sv) ++occurrences;
      }
      if (occurrences != 1) {
        structural_error_ = true;
        Emit(AtRule(diag::kBadStageVar,
                    "stage variable " + sv + " of next(...) " +
                        (occurrences == 0
                             ? "does not appear in the head"
                             : "appears more than once in the head") +
                        " of a rule for " + r.head.predicate,
                    ri, nexts[0]->loc));
      }
    }
    if (extrema.size() > 1) {
      structural_error_ = true;
      Emit(AtRule(diag::kMultipleExtrema,
                  "rule for " + r.head.predicate +
                      " has more than one extrema goal",
                  ri, extrema[1]->loc));
    }
    for (const Literal* ext : extrema) {
      const TermNode& cost = ext->args[0];
      const char* which =
          ext->kind == LiteralKind::kLeast ? "least" : "most";
      if (!cost.is_var()) {
        structural_error_ = true;
        Emit(AtRule(diag::kNonVariableCost,
                    std::string(which) + " cost in a rule for " +
                        r.head.predicate + " must be a single variable",
                    ri, ext->loc));
        continue;
      }
      const std::vector<std::string> group_vars = DistinctVarsOf(ext->args[1]);
      if (std::find(group_vars.begin(), group_vars.end(), cost.name) !=
          group_vars.end()) {
        structural_error_ = true;
        Emit(AtRule(diag::kCostInGroup,
                    std::string(which) + " cost variable " + cost.name +
                        " also appears in the grouping of a rule for " +
                        r.head.predicate,
                    ri, ext->loc));
      }
    }
  }

  // -- GD001/GD002/GD008: rule safety (range restriction) -----------------

  void CheckRuleSafety(uint32_t ri) {
    const Rule& r = program_.rules[ri];
    std::set<std::string> flagged;  // "<code>:<var>" dedup within the rule
    const VarSet bound = CheckGoalsSafety(r.body, VarSet{}, ri, &flagged);
    for (const TermNode& arg : r.head.args) {
      for (const std::string& v : DistinctVarsOf(arg)) {
        if (bound.count(v) != 0) continue;
        if (!flagged.insert(std::string(diag::kUnsafeHeadVar) + ":" + v)
                 .second) {
          continue;
        }
        Emit(AtRule(diag::kUnsafeHeadVar,
                    "head variable " + v + " of " + r.head.predicate +
                        (r.is_fact()
                             ? " makes the fact non-ground"
                             : " is not bound by any positive body goal"),
                    ri, r.head.loc));
      }
    }
  }

  /// Checks every negated / built-in goal of `body` (recursing into
  /// NotExists conjunctions with the enclosing bindings) and returns the
  /// variables bound at this level.
  VarSet CheckGoalsSafety(const std::vector<Literal>& body,
                          const VarSet& outer, uint32_t ri,
                          std::set<std::string>* flagged) {
    const VarSet bound = BoundVars(body, outer);
    auto flag_unbound = [&](const TermNode& t, std::string_view code,
                            const std::string& context, SourceLoc loc) {
      for (const std::string& v : DistinctVarsOf(t)) {
        if (bound.count(v) != 0) continue;
        if (!flagged->insert(std::string(code) + ":" + v).second) continue;
        Emit(AtRule(code,
                    "variable " + v + " in " + context +
                        " is not bound by any positive body goal",
                    ri, loc));
      }
    };
    for (const Literal& l : body) {
      switch (l.kind) {
        case LiteralKind::kAtom:
          if (l.negated) {
            for (const TermNode& a : l.args) {
              flag_unbound(a, diag::kUnsafeBodyVar,
                           "negated goal not " + l.predicate, l.loc);
            }
          }
          break;
        case LiteralKind::kComparison:
          flag_unbound(l.args[0], diag::kUnsafeBodyVar, "a comparison",
                       l.loc);
          flag_unbound(l.args[1], diag::kUnsafeBodyVar, "a comparison",
                       l.loc);
          break;
        case LiteralKind::kNotExists:
          CheckGoalsSafety(l.body, bound, ri, flagged);
          break;
        case LiteralKind::kChoice:
          flag_unbound(l.args[0], diag::kUnsafeBodyVar, "a choice goal",
                       l.loc);
          flag_unbound(l.args[1], diag::kUnsafeBodyVar, "a choice goal",
                       l.loc);
          break;
        case LiteralKind::kLeast:
        case LiteralKind::kMost: {
          const char* which =
              l.kind == LiteralKind::kLeast ? "least" : "most";
          const TermNode& cost = l.args[0];
          if (cost.is_var() && bound.count(cost.name) == 0 &&
              flagged
                  ->insert(std::string(diag::kUnboundExtremaCost) + ":" +
                           cost.name)
                  .second) {
            Emit(AtRule(diag::kUnboundExtremaCost,
                        std::string(which) + " cost variable " + cost.name +
                            " is not bound by any positive body goal",
                        ri, l.loc));
          }
          flag_unbound(l.args[1], diag::kUnsafeBodyVar,
                       std::string(which) + " grouping", l.loc);
          break;
        }
        case LiteralKind::kNext:
          break;
      }
    }
    return bound;
  }

  // -- GD006/GD007: choice FD hygiene -------------------------------------

  void CheckChoiceGoals(uint32_t ri) {
    const Rule& r = program_.rules[ri];
    std::vector<const Literal*> goals;
    for (const Literal& l : r.body) {
      if (l.kind == LiteralKind::kChoice) goals.push_back(&l);
    }
    for (size_t i = 0; i < goals.size(); ++i) {
      for (size_t j = i + 1; j < goals.size(); ++j) {
        if (TermEquals(goals[i]->args[0], goals[j]->args[0]) &&
            TermEquals(goals[i]->args[1], goals[j]->args[1])) {
          Emit(AtRule(diag::kDuplicateChoice,
                      "duplicate choice goal in a rule for " +
                          r.head.predicate,
                      ri, goals[j]->loc));
        }
      }
    }
    for (const Literal* g : goals) {
      const std::vector<std::string> left = DistinctVarsOf(g->args[0]);
      const std::vector<std::string> right = DistinctVarsOf(g->args[1]);
      if (right.empty()) {
        Emit(AtRule(diag::kDegenerateChoice,
                    "choice FD in a rule for " + r.head.predicate +
                        " has no variables on its right side and "
                        "constrains nothing",
                    ri, g->loc));
        continue;
      }
      for (const std::string& v : left) {
        if (std::find(right.begin(), right.end(), v) != right.end()) {
          Emit(AtRule(diag::kDegenerateChoice,
                      "choice FD in a rule for " + r.head.predicate +
                          " lists variable " + v +
                          " on both sides; the FD is trivially satisfied",
                      ri, g->loc));
          break;
        }
      }
    }
  }

  // -- GD003/GD004/GD005: predicate bookkeeping ---------------------------

  struct PredUse {
    bool defined = false;
    bool rule_defined = false;  // head of at least one non-fact rule
    bool used = false;
    int def_rule = -1;
    SourceLoc def_loc;
    int use_rule = -1;
    SourceLoc use_loc;
  };

  void CheckPredicates() {
    std::map<std::string, PredUse> preds;  // ordered for stable output
    std::map<std::string, std::set<uint32_t>> arities;
    for (uint32_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& r = program_.rules[ri];
      PredUse& head = preds[PredKey(r.head.predicate, r.head.args.size())];
      if (!head.defined) {
        head.defined = true;
        head.def_rule = static_cast<int>(ri);
        head.def_loc = r.head.loc;
      }
      if (!r.is_fact()) head.rule_defined = true;
      arities[r.head.predicate].insert(
          static_cast<uint32_t>(r.head.args.size()));
      std::function<void(const Literal&)> visit = [&](const Literal& l) {
        if (l.kind == LiteralKind::kAtom) {
          PredUse& u = preds[PredKey(l.predicate, l.args.size())];
          if (!u.used) {
            u.used = true;
            u.use_rule = static_cast<int>(ri);
            u.use_loc = l.loc;
          }
          arities[l.predicate].insert(static_cast<uint32_t>(l.args.size()));
        }
        for (const Literal& inner : l.body) visit(inner);
      };
      for (const Literal& l : r.body) visit(l);
    }

    std::set<std::string> roots;
    for (const Program::PredicateRef& ref : options_.roots) {
      roots.insert(PredKey(ref.name, ref.arity));
    }
    for (const auto& [key, info] : preds) {
      if (info.used && !info.defined) {
        Diagnostic d = MakeDiagnostic(
            diag::kUndefinedPredicate,
            "predicate " + key + " is used but never defined by a fact or "
            "rule (did you misspell it, or forget to add EDB facts?)");
        d.predicate = key;
        d.rule_index = info.use_rule;
        d.loc = info.use_loc;
        Emit(std::move(d));
      }
      // A rule-defined predicate nobody consumes is presumed to be a
      // query output unless explicit roots say otherwise; a fact-only
      // predicate nobody consumes is dead data (typically a typo).
      const bool presumed_output = roots.empty() && info.rule_defined;
      if (info.defined && !info.used && roots.count(key) == 0 &&
          !presumed_output) {
        Diagnostic d = MakeDiagnostic(
            diag::kUnusedPredicate,
            "predicate " + key + " is defined but never used" +
                (roots.empty() ? "" : " and is not a query root"));
        d.predicate = key;
        d.rule_index = info.def_rule;
        d.loc = info.def_loc;
        Emit(std::move(d));
      }
    }
    for (const auto& [name, as] : arities) {
      if (as.size() < 2) continue;
      std::string list;
      for (uint32_t a : as) {
        if (!list.empty()) list += ", ";
        list += std::to_string(a);
      }
      const PredUse& info = preds[PredKey(name, *as.begin())];
      Diagnostic d = MakeDiagnostic(
          diag::kArityMismatch,
          "predicate " + name + " is used with inconsistent arities (" +
              list + "); gdlog treats each arity as a distinct predicate");
      d.predicate = name + "/" + std::to_string(*as.begin());
      d.rule_index = info.defined ? info.def_rule : info.use_rule;
      d.loc = info.defined ? info.def_loc : info.use_loc;
      Emit(std::move(d));
    }
  }

  // -- GD010: reachability from the query roots ---------------------------

  void CheckReachability() {
    if (options_.roots.empty()) return;
    // head -> body predicate adjacency over name/arity keys.
    std::map<std::string, std::set<std::string>> deps;
    for (const Rule& r : program_.rules) {
      std::set<std::string>& out =
          deps[PredKey(r.head.predicate, r.head.args.size())];
      std::function<void(const Literal&)> visit = [&](const Literal& l) {
        if (l.kind == LiteralKind::kAtom) {
          out.insert(PredKey(l.predicate, l.args.size()));
        }
        for (const Literal& inner : l.body) visit(inner);
      };
      for (const Literal& l : r.body) visit(l);
    }
    std::set<std::string> reachable;
    std::vector<std::string> stack;
    for (const Program::PredicateRef& ref : options_.roots) {
      const std::string key = PredKey(ref.name, ref.arity);
      if (reachable.insert(key).second) stack.push_back(key);
    }
    while (!stack.empty()) {
      const std::string key = std::move(stack.back());
      stack.pop_back();
      auto it = deps.find(key);
      if (it == deps.end()) continue;
      for (const std::string& next : it->second) {
        if (reachable.insert(next).second) stack.push_back(next);
      }
    }
    for (uint32_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& r = program_.rules[ri];
      if (r.is_fact()) continue;  // dead facts are GD004's business
      const std::string key = PredKey(r.head.predicate, r.head.args.size());
      if (reachable.count(key) != 0) continue;
      Emit(AtRule(diag::kUnreachableRule,
                  "rule for " + key +
                      " cannot contribute to any query root",
                  ri, r.loc));
    }
  }

  // -- GD009/GD011/GD106-GD109: stage-stratification ----------------------

  void CheckStratification() {
    if (!options_.check_stratification || structural_error_) return;
    auto analyzed = AnalyzeStages(program_, options_.stage);
    if (!analyzed.ok()) {
      // Structural stage errors (conflicting stage positions etc.) come
      // back through Status with an embedded code; surface them as-is.
      std::string code = DiagCodeOfStatus(analyzed.status());
      std::string msg = analyzed.status().message();
      if (code.empty()) {
        code = std::string(diag::kNotStageStratified);
      } else {
        msg = msg.substr(code.size() + 3);  // strip "[GDnnn] "
      }
      Emit(MakeDiagnostic(code, std::move(msg)));
      return;
    }
    const StageAnalysis& a = *analyzed;
    const DependencyGraph& g = *a.graph;
    for (uint32_t scc : a.clique_order) {
      const CliqueStageInfo& cl = a.cliques[scc];
      if (cl.cls != CliqueClass::kRejected &&
          cl.cls != CliqueClass::kRelaxedStage) {
        continue;
      }
      const bool rejected = cl.cls == CliqueClass::kRejected;
      std::string members;
      for (size_t i = 0; i < cl.members.size(); ++i) {
        if (i) members += ", ";
        members += PredKey(g.name(cl.members[i]), g.arity(cl.members[i]));
      }
      std::string code = cl.code;
      if (code.empty()) {
        code = std::string(rejected ? diag::kNotStageStratified
                                    : diag::kRelaxedStratification);
      }
      Diagnostic d = MakeDiagnostic(
          code, rejected
                    ? "recursive clique {" + members +
                          "} is not stage-stratified"
                    : "recursive clique {" + members +
                          "} is accepted under relaxed flat-rule "
                          "stratification only (stable-model guarantee "
                          "does not follow syntactically)");
      if (!cl.members.empty()) {
        d.predicate = PredKey(g.name(cl.members[0]), g.arity(cl.members[0]));
      }
      if (!cl.rules.empty()) {
        d.rule_index = static_cast<int>(cl.rules[0]);
        d.loc = program_.rules[cl.rules[0]].loc;
      }
      const std::string cycle = FormatCycle(g, scc);
      if (!cycle.empty()) d.notes.push_back(cycle);
      if (!cl.diagnostic.empty()) d.notes.push_back(cl.diagnostic);
      Emit(std::move(d));
    }
  }

  /// "dependency cycle: p -> cand ~> blocked -> p" over the expanded
  /// program's dependency graph; `~>` marks an edge under negation.
  static std::string FormatCycle(const DependencyGraph& g, uint32_t scc) {
    const std::vector<uint32_t> cycle = g.CycleWithin(scc);
    if (cycle.empty()) return "";
    bool any_negative = false;
    std::string out = g.name(g.edges()[cycle.front()].from);
    for (uint32_t ei : cycle) {
      const DependencyGraph::Edge& e = g.edges()[ei];
      any_negative |= e.negative;
      out += e.negative ? " ~> " : " -> ";
      out += g.name(e.to);
    }
    std::string text = "dependency cycle: " + out;
    if (any_negative) text += " (~> marks a dependency under negation)";
    return text;
  }

  const Program& program_;
  const LintOptions& options_;
  std::vector<Diagnostic> diags_;
  bool structural_error_ = false;
};

}  // namespace

LintResult LintProgram(const Program& program, const LintOptions& options) {
  return Linter(program, options).Run();
}

LintResult LintSource(ValueStore* store, std::string_view source,
                      const LintOptions& options) {
  auto parsed = ParseProgram(store, source);
  if (!parsed.ok()) {
    LintResult result;
    Diagnostic d =
        MakeDiagnostic(diag::kParseError, parsed.status().message());
    d.loc = LocFromErrorMessage(parsed.status().message());
    result.diagnostics.push_back(std::move(d));
    result.counts = CountDiagnostics(result.diagnostics);
    return result;
  }
  return LintProgram(*parsed, options);
}

}  // namespace gdlog
