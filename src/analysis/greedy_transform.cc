#include "analysis/greedy_transform.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"

namespace gdlog {

namespace {

/// Position of variable `name` among `args` (top-level only), or -1.
int VarPosition(const std::vector<TermNode>& args, const std::string& name) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_var() && args[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// True when the literal is `least(V, ())` / `most(V, ())` for variable V.
bool IsGlobalExtremum(const Literal& l, LiteralKind kind, std::string* var) {
  if (l.kind != kind) return false;
  if (!l.args[0].is_var()) return false;
  if (!l.args[1].is_tuple() || !l.args[1].args.empty()) return false;
  *var = l.args[0].name;
  return true;
}

struct PostCondition {
  size_t least_rule = 0;   // opt(C) <- reach(C), least(C).
  size_t most_rule = 0;    // reach(C) <- p(..., C, I), most(I).
  std::string pred;        // p
  uint32_t arity = 0;
  int cost_pos = -1;
  int stage_pos = -1;
};

/// Recognizes the A/B post-condition pair and the predicate it ranges
/// over.
std::optional<PostCondition> FindPostCondition(const Program& program) {
  for (size_t ai = 0; ai < program.rules.size(); ++ai) {
    const Rule& a = program.rules[ai];
    // A: opt(C) <- reach(C), least(C).
    if (a.body.size() != 2) continue;
    std::string cost_var;
    if (!a.body[0].is_positive_atom() || a.body[0].args.size() != 1) continue;
    if (!IsGlobalExtremum(a.body[1], LiteralKind::kLeast, &cost_var)) continue;
    if (!a.body[0].args[0].is_var() || a.body[0].args[0].name != cost_var) {
      continue;
    }
    const std::string& reach = a.body[0].predicate;
    // B: reach(C) <- p(..., C, I), most(I).
    for (size_t bi = 0; bi < program.rules.size(); ++bi) {
      const Rule& b = program.rules[bi];
      if (b.head.predicate != reach || b.head.args.size() != 1) continue;
      if (b.body.size() != 2) continue;
      if (!b.body[0].is_positive_atom()) continue;
      std::string stage_var;
      if (!IsGlobalExtremum(b.body[1], LiteralKind::kMost, &stage_var)) {
        continue;
      }
      if (!b.head.args[0].is_var()) continue;
      const std::string& total_var = b.head.args[0].name;
      PostCondition pc;
      pc.least_rule = ai;
      pc.most_rule = bi;
      pc.pred = b.body[0].predicate;
      pc.arity = static_cast<uint32_t>(b.body[0].args.size());
      pc.cost_pos = VarPosition(b.body[0].args, total_var);
      pc.stage_pos = VarPosition(b.body[0].args, stage_var);
      if (pc.cost_pos < 0 || pc.stage_pos < 0) continue;
      return pc;
    }
  }
  return std::nullopt;
}

}  // namespace

Result<GreedyTransformResult> PropagateExtremaIntoChoice(
    const Program& program, const GreedyTransformOptions& options) {
  if (!options.assume_matroid) {
    return Status::AnalysisError(
        "extrema propagation requires assume_matroid: deciding greedy-"
        "exactness automatically is the open problem the paper defers to "
        "matroid theory");
  }
  const auto pc = FindPostCondition(program);
  if (!pc) {
    return Status::AnalysisError(
        "no least-over-most post-condition pair found");
  }

  // N: the next rule for p consuming a generator atom at the cost
  // position, carrying choice goals and no extremum of its own.
  const Rule* next_rule = nullptr;
  size_t next_index = 0;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    if (r.head.predicate != pc->pred || r.head.args.size() != pc->arity) {
      continue;
    }
    if (!r.has_next() || r.has_extrema()) continue;
    next_rule = &r;
    next_index = ri;
  }
  if (!next_rule) {
    return Status::AnalysisError("no next rule defines " + pc->pred);
  }
  const TermNode& head_cost = next_rule->head.args[pc->cost_pos];
  if (!head_cost.is_var()) {
    return Status::AnalysisError("head cost of " + pc->pred +
                                 " is not a variable");
  }
  // The generator atom: the positive body atom carrying the head's cost
  // variable.
  const Literal* gen_atom = nullptr;
  for (const Literal& l : next_rule->body) {
    if (!l.is_positive_atom()) continue;
    if (VarPosition(l.args, head_cost.name) >= 0) gen_atom = &l;
  }
  if (!gen_atom) {
    return Status::AnalysisError("no generator atom feeds the cost of " +
                                 pc->pred);
  }
  const int gen_cost_pos = VarPosition(gen_atom->args, head_cost.name);

  // G: the accumulator rule for the generator —
  //   gen(V..., C, J) <- p(..., C1, J), base(V..., C2), C = C1 + C2.
  const Rule* acc_rule = nullptr;
  size_t acc_index = 0;
  const Literal* base_atom = nullptr;
  std::string step_cost_var;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    if (r.head.predicate != gen_atom->predicate ||
        r.head.args.size() != gen_atom->args.size()) {
      continue;
    }
    if (r.is_fact()) continue;
    const TermNode& acc_cost = r.head.args[gen_cost_pos];
    if (!acc_cost.is_var()) continue;
    // Find C = C1 + C2 (or the symmetric orientation).
    std::string c1, c2;
    for (const Literal& l : r.body) {
      if (l.kind != LiteralKind::kComparison || l.op != ComparisonOp::kEq) {
        continue;
      }
      const TermNode* var_side = nullptr;
      const TermNode* sum_side = nullptr;
      if (l.args[0].is_var() && l.args[0].name == acc_cost.name) {
        var_side = &l.args[0];
        sum_side = &l.args[1];
      } else if (l.args[1].is_var() && l.args[1].name == acc_cost.name) {
        var_side = &l.args[1];
        sum_side = &l.args[0];
      }
      if (!var_side) continue;
      if (!sum_side->is_compound() || sum_side->name != "+" ||
          sum_side->args.size() != 2 || !sum_side->args[0].is_var() ||
          !sum_side->args[1].is_var()) {
        continue;
      }
      c1 = sum_side->args[0].name;
      c2 = sum_side->args[1].name;
    }
    if (c1.empty()) continue;
    // One positive body atom carries the running total (c1 or c2) — the
    // recursive accumulator reference; the other carries the step cost.
    for (const Literal& l : r.body) {
      if (!l.is_positive_atom()) continue;
      const bool has_c1 = VarPosition(l.args, c1) >= 0;
      const bool has_c2 = VarPosition(l.args, c2) >= 0;
      if (has_c1 && !has_c2) {
        // running-total side; must be p or gen itself
        if (l.predicate != pc->pred && l.predicate != gen_atom->predicate) {
          continue;
        }
        step_cost_var = c2;
      } else if (has_c2 && !has_c1) {
        if (l.predicate != pc->pred && l.predicate != gen_atom->predicate) {
          base_atom = &l;  // tentative; validated below
          continue;
        }
        step_cost_var = c1;
      }
    }
    // Re-scan for the base atom now that the step cost variable is known.
    base_atom = nullptr;
    if (!step_cost_var.empty()) {
      for (const Literal& l : r.body) {
        if (!l.is_positive_atom()) continue;
        if (l.predicate == pc->pred || l.predicate == gen_atom->predicate) {
          continue;
        }
        if (VarPosition(l.args, step_cost_var) >= 0) base_atom = &l;
      }
    }
    if (base_atom) {
      acc_rule = &r;
      acc_index = ri;
      break;
    }
  }
  if (!acc_rule || !base_atom) {
    return Status::AnalysisError(
        "no accumulator rule (C = C1 + C2 over a base relation) defines " +
        gen_atom->predicate);
  }

  // --- Build the greedy rule -----------------------------------------------
  // Head of the greedy rule: p's head with the cost position replaced by
  // the step-cost variable and every other variable mapped through the
  // gen atom into the accumulator rule's variable space.
  const std::string stage_var =
      std::find_if(next_rule->body.begin(), next_rule->body.end(),
                   [](const Literal& l) {
                     return l.kind == LiteralKind::kNext;
                   })
          ->args[0]
          .name;

  auto map_var = [&](const std::string& n) -> Result<std::string> {
    if (n == stage_var) return n;
    const int k = VarPosition(gen_atom->args, n);
    if (k < 0) {
      return Status::AnalysisError("next-rule variable " + n +
                                   " is not positionally bound by " +
                                   gen_atom->predicate);
    }
    const TermNode& acc_head_arg = acc_rule->head.args[k];
    if (!acc_head_arg.is_var()) {
      return Status::AnalysisError("accumulator head position " +
                                   std::to_string(k) + " is not a variable");
    }
    return acc_head_arg.name;
  };

  Rule greedy;
  greedy.head.kind = LiteralKind::kAtom;
  greedy.head.predicate = pc->pred;
  for (size_t k = 0; k < next_rule->head.args.size(); ++k) {
    if (static_cast<int>(k) == pc->cost_pos) {
      greedy.head.args.push_back(TermNode::Var(step_cost_var));
    } else if (static_cast<int>(k) == pc->stage_pos) {
      greedy.head.args.push_back(TermNode::Var(stage_var));
    } else {
      const TermNode& t = next_rule->head.args[k];
      if (!t.is_var()) {
        return Status::AnalysisError("non-variable head argument in the "
                                     "next rule");
      }
      GDLOG_ASSIGN_OR_RETURN(std::string mapped, map_var(t.name));
      greedy.head.args.push_back(TermNode::Var(mapped));
    }
  }
  greedy.body.push_back(Literal::Next(TermNode::Var(stage_var)));
  greedy.body.push_back(*base_atom);
  greedy.body.push_back(Literal::Least(TermNode::Var(step_cost_var),
                                       TermNode::Var(stage_var)));
  for (const Literal& l : next_rule->body) {
    if (l.kind != LiteralKind::kChoice) continue;
    // Rebuild the choice terms with mapped variables (positional map
    // through the generator atom into the accumulator's variable space).
    auto rebuild = [&](const TermNode& t, auto&& self) -> Result<TermNode> {
      if (t.is_var()) {
        GDLOG_ASSIGN_OR_RETURN(std::string mapped, map_var(t.name));
        return TermNode::Var(mapped);
      }
      if (t.is_const()) return t;
      std::vector<TermNode> args;
      for (const TermNode& a : t.args) {
        GDLOG_ASSIGN_OR_RETURN(TermNode na, self(a, self));
        args.push_back(std::move(na));
      }
      return TermNode::Compound(t.name, std::move(args));
    };
    GDLOG_ASSIGN_OR_RETURN(TermNode left, rebuild(l.args[0], rebuild));
    GDLOG_ASSIGN_OR_RETURN(TermNode right, rebuild(l.args[1], rebuild));
    greedy.body.push_back(Literal::Choice(std::move(left), std::move(right)));
  }

  // --- Assemble the transformed program ------------------------------------
  GreedyTransformResult out;
  out.stage_predicate = pc->pred;
  out.stage_arity = pc->arity;
  out.cost_position = pc->cost_pos;
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    if (ri == pc->least_rule || ri == pc->most_rule || ri == acc_index) {
      continue;  // post-conditions and accumulator are dissolved
    }
    if (ri == next_index) {
      out.transformed.rules.push_back(greedy);
      continue;
    }
    out.transformed.rules.push_back(program.rules[ri]);
  }
  out.summary =
      "propagated least into the next rule of " + pc->pred +
      ": the accumulator " + gen_atom->predicate +
      " was dissolved; per-stage costs of " + pc->pred +
      " now sum to the optimum (greedy-exact under the asserted matroid)";
  return out;
}

}  // namespace gdlog
