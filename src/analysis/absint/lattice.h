// Abstract domains for the fixpoint analyzer (absint.h).
//
// Three small lattices shared by every analysis:
//
//   * TypeSet       — which Value kinds a column/variable may hold, as a
//                     4-bit set over {int, symbol, term, nil}. Empty set
//                     is bottom (no value possible), the full set is top.
//   * Interval      — the int64 range a value takes *when it is an int*.
//                     INT64_MIN / INT64_MAX act as -inf / +inf sentinels,
//                     so saturating arithmetic keeps them absorbing.
//   * CardBound     — [lo, hi] bounds on a relation's row count, with
//                     UINT64_MAX as the +inf sentinel.
//
// AbstractValue couples a TypeSet with an Interval: the interval is
// meaningful only while the int bit is set, and Meet drops the int bit
// when the interval intersection comes up empty (the value can still be
// a symbol/term/nil, just never an int).
//
// All operations are total and allocation-free; soundness arguments live
// with the transfer functions in absint.cc and docs/DIAGNOSTICS.md.
#ifndef GDLOG_ANALYSIS_ABSINT_LATTICE_H_
#define GDLOG_ANALYSIS_ABSINT_LATTICE_H_

#include <cstdint>
#include <string>

#include "value/value.h"

namespace gdlog {
namespace absint {

// ---------------------------------------------------------------------------
// TypeSet
// ---------------------------------------------------------------------------

struct TypeSet {
  // Bit layout mirrors ValueKind: 1 << static_cast<int>(kind).
  static constexpr uint8_t kIntBit = 1u << 0;
  static constexpr uint8_t kSymbolBit = 1u << 1;
  static constexpr uint8_t kTermBit = 1u << 2;
  static constexpr uint8_t kNilBit = 1u << 3;
  static constexpr uint8_t kAllBits = 0xF;

  uint8_t bits = 0;

  static TypeSet Bottom() { return TypeSet{0}; }
  static TypeSet Top() { return TypeSet{kAllBits}; }
  static TypeSet Only(ValueKind k) {
    return TypeSet{static_cast<uint8_t>(1u << static_cast<int>(k))};
  }
  static TypeSet Int() { return TypeSet{kIntBit}; }

  bool empty() const { return bits == 0; }
  bool is_top() const { return bits == kAllBits; }
  bool Has(ValueKind k) const {
    return (bits & (1u << static_cast<int>(k))) != 0;
  }
  bool has_int() const { return (bits & kIntBit) != 0; }

  TypeSet Union(TypeSet o) const {
    return TypeSet{static_cast<uint8_t>(bits | o.bits)};
  }
  TypeSet Intersect(TypeSet o) const {
    return TypeSet{static_cast<uint8_t>(bits & o.bits)};
  }
  bool operator==(const TypeSet&) const = default;
};

/// "bottom", "any", or a "|"-joined kind list, e.g. "int|symbol".
std::string TypeSetName(TypeSet t);

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

struct Interval {
  static constexpr int64_t kNegInf = INT64_MIN;
  static constexpr int64_t kPosInf = INT64_MAX;

  int64_t lo = kPosInf;  // empty by default (lo > hi)
  int64_t hi = kNegInf;

  static Interval Empty() { return Interval{}; }
  static Interval Full() { return Interval{kNegInf, kPosInf}; }
  static Interval Point(int64_t v) { return Interval{v, v}; }
  static Interval Range(int64_t lo, int64_t hi) { return Interval{lo, hi}; }
  /// The engine's inline-int payload range [Value::kMinInt, Value::kMaxInt];
  /// runtime arithmetic that lands outside it is a failed match.
  static Interval ValueRange() {
    return Interval{Value::kMinInt, Value::kMaxInt};
  }

  bool empty() const { return lo > hi; }
  bool is_full() const { return lo == kNegInf && hi == kPosInf; }
  bool Contains(int64_t v) const { return !empty() && lo <= v && v <= hi; }

  Interval Meet(Interval o) const {
    Interval r{lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
    if (r.empty()) return Empty();
    return r;
  }
  /// Convex hull; the empty interval is the identity.
  Interval Join(Interval o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Interval{lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
  }
  /// Classic interval widening: any bound that moved jumps to infinity.
  Interval Widen(Interval next) const {
    if (empty()) return next;
    if (next.empty()) return *this;
    return Interval{next.lo < lo ? kNegInf : lo, next.hi > hi ? kPosInf : hi};
  }
  bool operator==(const Interval&) const = default;
};

/// Sound over-approximations of the runtime EvalArith semantics
/// (rule_compiler.cc) *before* the [kMinInt, kMaxInt] range check: callers
/// meet the result with Interval::ValueRange() and treat an empty meet as
/// a guaranteed overflow. Saturating: the infinity sentinels absorb.
Interval IntervalAdd(Interval a, Interval b);
Interval IntervalSub(Interval a, Interval b);
Interval IntervalMul(Interval a, Interval b);
Interval IntervalDiv(Interval a, Interval b);  // truncating; /0 excluded
Interval IntervalMod(Interval a, Interval b);  // sign follows the dividend
Interval IntervalMin(Interval a, Interval b);
Interval IntervalMax(Interval a, Interval b);

/// "[lo, hi]" with "-inf"/"+inf" for the sentinels; "empty" when empty.
std::string IntervalName(Interval iv);

// ---------------------------------------------------------------------------
// AbstractValue
// ---------------------------------------------------------------------------

struct AbstractValue {
  TypeSet types;
  // Meaningful only while types.has_int(); kept Full() otherwise so
  // joins/meets need no special cases.
  Interval iv = Interval::Full();

  static AbstractValue Bottom() {
    return AbstractValue{TypeSet::Bottom(), Interval::Full()};
  }
  static AbstractValue Top() {
    return AbstractValue{TypeSet::Top(), Interval::Full()};
  }
  static AbstractValue OfInt(int64_t v) {
    return AbstractValue{TypeSet::Int(), Interval::Point(v)};
  }
  static AbstractValue IntRange(Interval iv) {
    if (iv.empty()) return Bottom();
    return AbstractValue{TypeSet::Int(), iv};
  }
  static AbstractValue OfKind(ValueKind k) {
    AbstractValue v{TypeSet::Only(k), Interval::Full()};
    return v;
  }

  bool empty() const { return types.empty(); }

  /// Greatest lower bound. When the interval intersection is empty the
  /// value can no longer be an int, but other kind bits survive.
  AbstractValue Meet(const AbstractValue& o) const {
    AbstractValue r;
    r.types = types.Intersect(o.types);
    r.iv = iv.Meet(o.iv);
    if (r.iv.empty()) {
      r.types.bits &= static_cast<uint8_t>(~TypeSet::kIntBit);
      r.iv = Interval::Full();
    }
    if (!r.types.has_int()) r.iv = Interval::Full();
    return r;
  }
  /// Least upper bound (types union, interval hull).
  AbstractValue Join(const AbstractValue& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    AbstractValue r;
    r.types = types.Union(o.types);
    if (types.has_int() && o.types.has_int()) {
      r.iv = iv.Join(o.iv);
    } else if (types.has_int()) {
      r.iv = iv;
    } else if (o.types.has_int()) {
      r.iv = o.iv;
    }
    return r;
  }
  AbstractValue Widen(const AbstractValue& next) const {
    AbstractValue r = next;
    if (types.has_int() && next.types.has_int()) r.iv = iv.Widen(next.iv);
    return r;
  }
  bool operator==(const AbstractValue&) const = default;
};

/// "int[0, 7]", "int|symbol", "any", "bottom", ...
std::string AbstractValueName(const AbstractValue& v);

// ---------------------------------------------------------------------------
// CardBound
// ---------------------------------------------------------------------------

struct CardBound {
  static constexpr uint64_t kInf = UINT64_MAX;

  uint64_t lo = 0;
  uint64_t hi = 0;

  static CardBound Exact(uint64_t n) { return CardBound{n, n}; }
  static CardBound AtMost(uint64_t n) { return CardBound{0, n}; }
  static CardBound Unbounded() { return CardBound{0, kInf}; }

  bool hi_finite() const { return hi != kInf; }
  bool Contains(uint64_t n) const { return lo <= n && n <= hi; }
  bool operator==(const CardBound&) const = default;
};

/// Saturating helpers for rule upper bounds: infinity absorbs.
uint64_t CardAdd(uint64_t a, uint64_t b);
uint64_t CardMul(uint64_t a, uint64_t b);

/// "[lo, hi]" with "inf" for the unbounded sentinel.
std::string CardBoundName(CardBound c);

}  // namespace absint
}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_ABSINT_LATTICE_H_
