#include "analysis/absint/absint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/rewriter.h"
#include "obs/json.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace gdlog {
namespace absint {

namespace {

std::string PredKey(const std::string& name, size_t arity) {
  return name + "/" + std::to_string(arity);
}

std::string KeyOf(const Literal& atom) {
  return PredKey(atom.predicate, atom.args.size());
}

AbstractValue AVOfValue(Value v) {
  if (v.is_int()) return AbstractValue::OfInt(v.AsInt());
  return AbstractValue::OfKind(v.kind());
}

// Rank in the semantic total order nil < ints < symbols < terms
// (ValueStore::Compare); lets the analyzer prove cross-kind comparisons
// dead without evaluating them.
int MinRank(TypeSet t) {
  if (t.Has(ValueKind::kNil)) return 0;
  if (t.has_int()) return 1;
  if (t.Has(ValueKind::kSymbol)) return 2;
  if (t.Has(ValueKind::kTerm)) return 3;
  return 4;  // empty: vacuous
}

int MaxRank(TypeSet t) {
  if (t.Has(ValueKind::kTerm)) return 3;
  if (t.Has(ValueKind::kSymbol)) return 2;
  if (t.has_int()) return 1;
  if (t.Has(ValueKind::kNil)) return 0;
  return -1;  // empty: vacuous
}

// Structural key of a ground fact row, for counting distinct facts
// without a ValueStore (interned Values compare by bits).
void FactKey(const TermNode& t, std::string* out) {
  switch (t.kind) {
    case TermKind::kConstant:
      out->append("c");
      out->append(std::to_string(t.constant.bits()));
      break;
    case TermKind::kVariable:
      out->append("v");
      out->append(t.name);
      break;
    case TermKind::kCompound:
      out->append(t.name);
      out->append("(");
      for (const TermNode& a : t.args) {
        FactKey(a, out);
        out->append(",");
      }
      out->append(")");
      break;
  }
}

struct PredState {
  std::string name;
  uint32_t arity = 0;
  std::vector<AbstractValue> cols;
  uint64_t base_rows = 0;  // exact EDB / program-fact rows
  uint64_t hi = 0;         // current row upper bound
  bool populated = false;
  bool edb_seeded = false;
  bool has_rules = false;
  // Final-pass bookkeeping for predicate-level GD012.
  int rules_total = 0;
  int rules_provably_unsat = 0;
};

// Collects diagnostics during the final classification pass only
// (null during fixpoint rounds). Deduplicates by code+rule+message so
// the multi-pass body propagation cannot double-report.
class Sink {
 public:
  explicit Sink(std::vector<Diagnostic>* out) : out_(out) {}

  void SetRule(int rule_index, const Rule* rule, std::string head_display) {
    rule_index_ = rule_index;
    rule_ = rule;
    head_display_ = std::move(head_display);
    fired_root_cause_ = false;
  }

  /// True when GD300/GD301/GD013 already explained why this rule is
  /// unsatisfiable; the generic GD012 is suppressed to avoid noise.
  bool fired_root_cause() const { return fired_root_cause_; }

  void Emit(std::string_view code, std::string message, SourceLoc loc) {
    std::string dedup;
    dedup.append(code);
    dedup.append("|");
    dedup.append(std::to_string(rule_index_));
    dedup.append("|");
    dedup.append(message);
    if (!seen_.insert(dedup).second) return;
    Diagnostic d = MakeDiagnostic(code, std::move(message));
    d.predicate = head_display_;
    d.rule_index = rule_index_;
    d.loc = loc.valid() ? loc : (rule_ != nullptr ? rule_->loc : SourceLoc{});
    out_->push_back(std::move(d));
    if (code != diag::kProvablyEmpty) fired_root_cause_ = true;
  }

 private:
  std::vector<Diagnostic>* out_;
  std::set<std::string> seen_;
  int rule_index_ = -1;
  const Rule* rule_ = nullptr;
  std::string head_display_;
  bool fired_root_cause_ = false;
};

// One rule-body abstract evaluation: an environment of per-variable
// abstract values refined by up to kBodyPasses propagation sweeps.
struct BodyCtx {
  std::map<std::string, AbstractValue> env;
  bool analyzable = true;  // every positive body atom's predicate populated
  bool unsat = false;
  std::string cause;  // human text for GD012 when unsat
  SourceLoc cause_loc;
  Sink* sink = nullptr;  // null during fixpoint rounds
};

constexpr int kBodyPasses = 4;

class Analyzer {
 public:
  Analyzer(const Program& surface, const Program& expanded,
           const AnalysisOptions& opts)
      : surface_(surface), expanded_(expanded), opts_(opts) {}

  AnalysisResult Run() {
    CollectPredicates();
    SeedFromCatalog();
    SeedFromFacts();
    Fixpoint();
    AnalysisResult result;
    result.rounds = rounds_;
    ClassifyRules(&result.diagnostics);
    EmitEmptyPredicates(&result.diagnostics);
    AnalyzeChoiceRules(&result.diagnostics);
    SortDiagnostics(&result.diagnostics);
    BuildSignatures(&result.signatures);
    return result;
  }

 private:
  // -- Setup ---------------------------------------------------------------

  void CollectPredicates() {
    const auto add = [this](const Program& p) {
      for (const Program::PredicateRef& ref : p.AllPredicates()) {
        const std::string key = PredKey(ref.name, ref.arity);
        auto [it, inserted] = states_.try_emplace(key);
        if (inserted) {
          it->second.name = ref.name;
          it->second.arity = ref.arity;
          it->second.cols.assign(ref.arity, AbstractValue::Bottom());
        }
      }
    };
    add(expanded_);
    add(surface_);
    for (const Rule& r : expanded_.rules) {
      if (r.is_fact()) continue;
      auto it = states_.find(KeyOf(r.head));
      if (it != states_.end()) it->second.has_rules = true;
    }
  }

  void SeedFromCatalog() {
    if (opts_.catalog == nullptr) return;
    for (auto& [key, ps] : states_) {
      const PredicateId id = opts_.catalog->Lookup(ps.name, ps.arity);
      if (id == kNoPredicate) continue;
      const Relation& rel = opts_.catalog->relation(id);
      if (rel.empty()) continue;
      ps.base_rows = rel.size();
      ps.hi = rel.size();
      ps.edb_seeded = true;
      ps.populated = true;
      if (rel.size() > opts_.max_scan_rows) {
        ps.cols.assign(ps.arity, AbstractValue::Top());
        continue;
      }
      for (size_t row = 0; row < rel.size(); ++row) {
        const TupleView t = rel.Row(static_cast<RowId>(row));
        for (uint32_t j = 0; j < ps.arity; ++j) {
          ps.cols[j] = ps.cols[j].Join(AVOfValue(t[j]));
        }
      }
    }
  }

  void SeedFromFacts() {
    std::map<std::string, std::set<std::string>> distinct;
    for (const Rule& r : expanded_.rules) {
      if (!r.is_fact()) continue;
      auto it = states_.find(KeyOf(r.head));
      if (it == states_.end()) continue;
      PredState& ps = it->second;
      // When a catalog is present its row count already includes the
      // program facts Engine::Run loaded; only the column lattice still
      // needs the AST view (cheap, and a no-op after the row scan).
      const bool count_rows = !ps.edb_seeded;
      for (size_t j = 0; j < r.head.args.size(); ++j) {
        const TermNode& a = r.head.args[j];
        AbstractValue v = AbstractValue::Top();
        if (a.is_const()) {
          v = AVOfValue(a.constant);
        } else if (a.is_compound()) {
          // Engine::Run grounds fact arguments without evaluating
          // arithmetic: every compound interns as a term.
          v = AbstractValue::OfKind(ValueKind::kTerm);
        }
        ps.cols[j] = ps.cols[j].Join(v);
      }
      ps.populated = true;
      if (count_rows) {
        std::string key;
        for (const TermNode& a : r.head.args) {
          FactKey(a, &key);
          key.append(";");
        }
        auto& rows = distinct[KeyOf(r.head)];
        if (rows.insert(std::move(key)).second) {
          ps.base_rows += 1;
          ps.hi = CardAdd(ps.hi, 1);
        }
      }
    }
  }

  // -- Term evaluation -----------------------------------------------------

  AbstractValue GetVar(BodyCtx* ctx, const std::string& name) {
    auto it = ctx->env.find(name);
    if (it == ctx->env.end()) return AbstractValue::Top();
    return it->second;
  }

  void MarkUnsat(BodyCtx* ctx, std::string cause, SourceLoc loc) {
    if (ctx->unsat) return;
    ctx->unsat = true;
    ctx->cause = std::move(cause);
    ctx->cause_loc = loc;
  }

  /// Meets a variable's environment entry with one occurrence's
  /// over-approximation. A disjoint-type conflict between two non-bottom
  /// sets is a provable type error (GD300); any other empty meet is a
  /// value-level conflict that only proves the body unsatisfiable.
  void MeetVar(BodyCtx* ctx, const std::string& name, const AbstractValue& occ,
               SourceLoc loc) {
    AbstractValue& cur =
        ctx->env.try_emplace(name, AbstractValue::Top()).first->second;
    const AbstractValue met = cur.Meet(occ);
    if (met.empty() && !cur.empty() && !occ.empty()) {
      if (cur.types.Intersect(occ.types).empty()) {
        if (ctx->sink != nullptr) {
          ctx->sink->Emit(diag::kTypeConflict,
                          "variable " + name + " is used both as " +
                              TypeSetName(cur.types) + " and as " +
                              TypeSetName(occ.types),
                          loc);
        }
        MarkUnsat(ctx, "conflicting types for variable " + name, loc);
      } else {
        MarkUnsat(ctx,
                  "conflicting value constraints on variable " + name +
                      " (" + AbstractValueName(cur) + " vs " +
                      AbstractValueName(occ) + ")",
                  loc);
      }
    }
    cur = met;
  }

  AbstractValue EvalTerm(BodyCtx* ctx, const TermNode& t, SourceLoc loc) {
    switch (t.kind) {
      case TermKind::kConstant:
        return AVOfValue(t.constant);
      case TermKind::kVariable:
        return GetVar(ctx, t.name);
      case TermKind::kCompound:
        break;
    }
    if (!IsArithmeticFunctor(t.name)) {
      // Constructor (or tuple): the value is an interned term. Nested
      // arguments are still evaluated so a guaranteed-overflow operand
      // inside t(...) is reported.
      for (const TermNode& a : t.args) EvalTerm(ctx, a, loc);
      return AbstractValue::OfKind(ValueKind::kTerm);
    }
    // Arithmetic functors are binary after parsing (unary minus becomes
    // 0 - x).
    const AbstractValue a = EvalTerm(ctx, t.args[0], loc);
    const AbstractValue b = EvalTerm(ctx, t.args[1], loc);
    if (ctx->unsat) return AbstractValue::Bottom();
    for (const AbstractValue* side : {&a, &b}) {
      if (!side->empty() && !side->types.has_int()) {
        if (ctx->sink != nullptr) {
          ctx->sink->Emit(diag::kNonIntArithmetic,
                          "operand of '" + t.name + "' can only be " +
                              TypeSetName(side->types) +
                              ", never an int; the rule body never matches",
                          loc);
        }
      }
    }
    if (!a.types.has_int() || !b.types.has_int()) {
      MarkUnsat(ctx, "arithmetic over a non-int operand", loc);
      return AbstractValue::Bottom();
    }
    Interval r;
    if (t.name == "+") {
      r = IntervalAdd(a.iv, b.iv);
    } else if (t.name == "-") {
      r = IntervalSub(a.iv, b.iv);
    } else if (t.name == "*") {
      r = IntervalMul(a.iv, b.iv);
    } else if (t.name == "/") {
      r = IntervalDiv(a.iv, b.iv);
    } else if (t.name == "mod") {
      r = IntervalMod(a.iv, b.iv);
    } else if (t.name == "min") {
      r = IntervalMin(a.iv, b.iv);
    } else {  // "max"
      r = IntervalMax(a.iv, b.iv);
    }
    const Interval clamped = r.Meet(Interval::ValueRange());
    if (clamped.empty()) {
      if (ctx->sink != nullptr) {
        ctx->sink->Emit(
            diag::kGuaranteedOverflow,
            "'" + t.name + "' here can never produce an in-range value "
            "(every evaluation overflows the 61-bit int payload or divides "
            "by zero), so the rule body never matches",
            loc);
      }
      MarkUnsat(ctx, "guaranteed arithmetic failure", loc);
      return AbstractValue::Bottom();
    }
    return AbstractValue::IntRange(clamped);
  }

  // -- Literal transfer functions ------------------------------------------

  void ApplyAtom(BodyCtx* ctx, const Literal& lit) {
    auto it = states_.find(KeyOf(lit));
    if (it == states_.end() || !it->second.populated) {
      ctx->analyzable = false;
      return;
    }
    const PredState& ps = it->second;
    for (size_t j = 0; j < lit.args.size(); ++j) {
      const TermNode& a = lit.args[j];
      const AbstractValue& col = ps.cols[j];
      if (a.is_var()) {
        MeetVar(ctx, a.name, col, lit.loc);
      } else if (a.is_const()) {
        if (col.Meet(AVOfValue(a.constant)).empty()) {
          MarkUnsat(ctx,
                    "argument " + std::to_string(j + 1) + " of " +
                        ps.name + "/" + std::to_string(ps.arity) +
                        " is always " + AbstractValueName(col) +
                        ", which excludes this constant",
                    lit.loc);
        }
      } else if (IsArithmeticFunctor(a.name)) {
        const AbstractValue v = EvalTerm(ctx, a, lit.loc);
        if (!ctx->unsat && col.Meet(v).empty()) {
          MarkUnsat(ctx,
                    "argument " + std::to_string(j + 1) + " of " +
                        ps.name + "/" + std::to_string(ps.arity) +
                        " can never equal this arithmetic result",
                    lit.loc);
        }
      } else {
        // Constructor pattern: the column must admit terms. Variables
        // under the pattern stay unconstrained (sound; no per-functor
        // destructuring in the column lattice).
        if (!col.empty() && !col.types.Has(ValueKind::kTerm)) {
          MarkUnsat(ctx,
                    "argument " + std::to_string(j + 1) + " of " +
                        ps.name + "/" + std::to_string(ps.arity) +
                        " is always " + AbstractValueName(col) +
                        ", never a compound term",
                    lit.loc);
        }
      }
      if (ctx->unsat) return;
    }
  }

  void ApplyComparison(BodyCtx* ctx, const Literal& lit) {
    const TermNode& lhs = lit.args[0];
    const TermNode& rhs = lit.args[1];
    const AbstractValue va = EvalTerm(ctx, lhs, lit.loc);
    const AbstractValue vb = EvalTerm(ctx, rhs, lit.loc);
    if (ctx->unsat) return;
    switch (lit.op) {
      case ComparisonOp::kEq: {
        const AbstractValue met = va.Meet(vb);
        if (met.empty() && !va.empty() && !vb.empty() && !lhs.is_var() &&
            !rhs.is_var()) {
          MarkUnsat(ctx, "equality between disjoint values can never hold",
                    lit.loc);
          return;
        }
        if (lhs.is_var()) MeetVar(ctx, lhs.name, vb, lit.loc);
        if (ctx->unsat) return;
        if (rhs.is_var()) MeetVar(ctx, rhs.name, GetVar(ctx, lhs.name), lit.loc);
        return;
      }
      case ComparisonOp::kNe: {
        const bool int_points = va.types == TypeSet::Int() &&
                                vb.types == TypeSet::Int() &&
                                va.iv.lo == va.iv.hi && vb.iv.lo == vb.iv.hi;
        if (int_points && va.iv.lo == vb.iv.lo) {
          MarkUnsat(ctx, "both sides are always " + std::to_string(va.iv.lo) +
                             ", so the disequality never holds",
                    lit.loc);
        }
        return;
      }
      case ComparisonOp::kLt:
      case ComparisonOp::kLe:
      case ComparisonOp::kGt:
      case ComparisonOp::kGe:
        break;
    }
    // Normalize to lo OP hi with OP in {<, <=}.
    const bool flipped =
        lit.op == ComparisonOp::kGt || lit.op == ComparisonOp::kGe;
    const bool strict =
        lit.op == ComparisonOp::kLt || lit.op == ComparisonOp::kGt;
    const TermNode& small_t = flipped ? rhs : lhs;
    const TermNode& big_t = flipped ? lhs : rhs;
    const AbstractValue& small = flipped ? vb : va;
    const AbstractValue& big = flipped ? va : vb;
    // Cross-kind orderings resolve statically in the semantic total
    // order nil < ints < symbols < terms.
    if (MinRank(small.types) > MaxRank(big.types) && !small.empty() &&
        !big.empty()) {
      MarkUnsat(ctx,
                "comparison can never hold: the left side always orders "
                "after the right in the nil < int < symbol < term order",
                lit.loc);
      return;
    }
    const bool both_int_only = small.types == TypeSet::Int() &&
                               big.types == TypeSet::Int();
    if (!both_int_only) return;
    const bool dead = strict ? small.iv.lo >= big.iv.hi
                             : small.iv.lo > big.iv.hi;
    if (dead) {
      MarkUnsat(ctx,
                "comparison can never hold: " + IntervalName(small.iv) +
                    (strict ? " < " : " <= ") + IntervalName(big.iv) +
                    " is always false",
                lit.loc);
      return;
    }
    // Narrow both sides; only sound when each side is provably an int.
    const int64_t off = strict ? 1 : 0;
    if (small_t.is_var()) {
      int64_t hi = big.iv.hi;
      if (hi != Interval::kPosInf) hi -= off;
      MeetVar(ctx, small_t.name,
              AbstractValue::IntRange(Interval{Interval::kNegInf, hi}),
              lit.loc);
    }
    if (ctx->unsat) return;
    if (big_t.is_var()) {
      int64_t lo = small.iv.lo;
      if (lo != Interval::kNegInf) lo += off;
      MeetVar(ctx, big_t.name,
              AbstractValue::IntRange(Interval{lo, Interval::kPosInf}),
              lit.loc);
    }
  }

  /// Runs the propagation sweeps over one rule body. Negated atoms and
  /// not-exists conjunctions contribute no constraints (sound for an
  /// over-approximation); meta goals only constrain next()'s stage
  /// variable, and only when analyzing an unexpanded surface program.
  void AnalyzeBody(const Rule& rule, BodyCtx* ctx) {
    for (int pass = 0; pass < kBodyPasses && !ctx->unsat && ctx->analyzable;
         ++pass) {
      for (const Literal& lit : rule.body) {
        switch (lit.kind) {
          case LiteralKind::kAtom:
            if (!lit.negated) ApplyAtom(ctx, lit);
            break;
          case LiteralKind::kComparison:
            ApplyComparison(ctx, lit);
            break;
          case LiteralKind::kNext:
            if (lit.args[0].is_var()) {
              MeetVar(ctx, lit.args[0].name,
                      AbstractValue::IntRange(
                          Interval{0, Interval::kPosInf}),
                      lit.loc);
            }
            break;
          case LiteralKind::kNotExists:
          case LiteralKind::kChoice:
          case LiteralKind::kLeast:
          case LiteralKind::kMost:
            break;
        }
        if (ctx->unsat || !ctx->analyzable) break;
      }
    }
  }

  AbstractValue HeadTermAV(BodyCtx* ctx, const TermNode& t, SourceLoc loc) {
    if (t.is_var()) return GetVar(ctx, t.name);
    if (t.is_const()) return AVOfValue(t.constant);
    if (IsArithmeticFunctor(t.name)) return EvalTerm(ctx, t, loc);
    for (const TermNode& a : t.args) EvalTerm(ctx, a, loc);
    return AbstractValue::OfKind(ValueKind::kTerm);
  }

  // -- Fixpoint ------------------------------------------------------------

  void Fixpoint() {
    const size_t n = expanded_.rules.size();
    std::vector<char> rule_ok(n, 0);
    bool changed = true;
    while (changed && rounds_ < opts_.max_rounds) {
      changed = false;
      ++rounds_;
      const bool widen = rounds_ > opts_.widen_after;
      for (size_t ri = 0; ri < n; ++ri) {
        const Rule& rule = expanded_.rules[ri];
        if (rule.is_fact()) continue;
        BodyCtx ctx;
        AnalyzeBody(rule, &ctx);
        rule_ok[ri] = static_cast<char>(ctx.analyzable && !ctx.unsat);
        if (rule_ok[ri] == 0) continue;
        auto it = states_.find(KeyOf(rule.head));
        if (it == states_.end()) continue;
        PredState& hs = it->second;
        bool head_unsat = false;
        std::vector<AbstractValue> contrib(rule.head.args.size());
        for (size_t j = 0; j < rule.head.args.size(); ++j) {
          contrib[j] = HeadTermAV(&ctx, rule.head.args[j], rule.head.loc);
          if (ctx.unsat || contrib[j].empty()) {
            head_unsat = true;
            break;
          }
        }
        if (head_unsat) {
          rule_ok[ri] = 0;
          continue;
        }
        for (size_t j = 0; j < contrib.size(); ++j) {
          AbstractValue next = hs.cols[j].Join(contrib[j]);
          if (widen) next = hs.cols[j].Widen(next);
          if (next != hs.cols[j]) {
            hs.cols[j] = next;
            changed = true;
          }
        }
        if (!hs.populated) {
          hs.populated = true;
          changed = true;
        }
      }
      // Cardinality: per round, a predicate's bound is its base rows
      // plus the saturating product of each contributing rule's body
      // bounds. Monotone; widened to +inf once growth persists.
      std::map<std::string, uint64_t> next_hi;
      for (const auto& [key, ps] : states_) next_hi[key] = ps.base_rows;
      for (size_t ri = 0; ri < n; ++ri) {
        if (rule_ok[ri] == 0) continue;
        const Rule& rule = expanded_.rules[ri];
        if (rule.is_fact()) continue;
        uint64_t ub = 1;
        for (const Literal& lit : rule.body) {
          if (!lit.is_positive_atom()) continue;
          auto it = states_.find(KeyOf(lit));
          ub = CardMul(ub, it != states_.end() ? it->second.hi : 0);
        }
        auto& slot = next_hi[KeyOf(rule.head)];
        slot = CardAdd(slot, ub);
      }
      for (auto& [key, ps] : states_) {
        const uint64_t nh = next_hi[key];
        if (nh != ps.hi) {
          ps.hi = widen && nh > ps.hi ? CardBound::kInf : nh;
          changed = true;
        }
      }
    }
    if (changed) {
      // Round backstop tripped before convergence (pathological inputs
      // only): give up precision, keep soundness.
      for (auto& [key, ps] : states_) {
        if (!ps.populated) continue;
        ps.cols.assign(ps.arity, AbstractValue::Top());
        ps.hi = CardBound::kInf;
      }
    }
  }

  // -- Diagnostics ---------------------------------------------------------

  void ClassifyRules(std::vector<Diagnostic>* out) {
    Sink sink(out);
    for (size_t ri = 0; ri < expanded_.rules.size(); ++ri) {
      const Rule& rule = expanded_.rules[ri];
      if (rule.is_fact()) continue;
      const std::string head = KeyOf(rule.head);
      auto it = states_.find(head);
      if (it != states_.end()) it->second.rules_total += 1;
      sink.SetRule(static_cast<int>(ri), &rule, head);
      BodyCtx ctx;
      ctx.sink = &sink;
      AnalyzeBody(rule, &ctx);
      if (!ctx.analyzable) continue;
      if (!ctx.unsat) {
        // Body satisfiable: still evaluate the head so GD301/GD013 at
        // head arithmetic sites are reported.
        for (const TermNode& t : rule.head.args) {
          HeadTermAV(&ctx, t, rule.head.loc);
          if (ctx.unsat) break;
        }
      }
      if (!ctx.unsat) continue;
      if (it != states_.end()) it->second.rules_provably_unsat += 1;
      if (!sink.fired_root_cause()) {
        sink.Emit(diag::kProvablyEmpty,
                  "rule can never derive a tuple: " + ctx.cause,
                  ctx.cause_loc);
      }
    }
  }

  void EmitEmptyPredicates(std::vector<Diagnostic>* out) {
    for (const auto& [key, ps] : states_) {
      if (!ps.has_rules || ps.base_rows != 0 || ps.edb_seeded) continue;
      if (ps.rules_total == 0 || ps.rules_provably_unsat != ps.rules_total) {
        continue;
      }
      Diagnostic d = MakeDiagnostic(
          diag::kProvablyEmpty,
          "predicate " + key + " is provably empty: it has no facts and "
          "every rule body is unsatisfiable");
      d.predicate = key;
      out->push_back(std::move(d));
    }
  }

  // Choice determinism runs over the *surface* rules so the choice
  // literals synthesized by next() expansion are not misreported.
  void AnalyzeChoiceRules(std::vector<Diagnostic>* out) {
    for (size_t ri = 0; ri < surface_.rules.size(); ++ri) {
      const Rule& rule = surface_.rules[ri];
      if (!rule.has_choice()) continue;
      for (const Literal& lit : rule.body) {
        if (lit.kind != LiteralKind::kChoice) continue;
        std::vector<std::string> left_vars;
        std::vector<std::string> right_vars;
        CollectVariables(lit.args[0], &left_vars);
        CollectVariables(lit.args[1], &right_vars);
        if (right_vars.empty()) continue;  // degenerate; GD007 territory
        std::set<std::string> det(left_vars.begin(), left_vars.end());
        if (!DeterminedClosure(rule, &det)) continue;
        const bool singleton = std::all_of(
            right_vars.begin(), right_vars.end(),
            [&det](const std::string& v) { return det.count(v) > 0; });
        if (singleton) {
          Diagnostic d = MakeDiagnostic(
              diag::kDeadChoice,
              "choice goal is dead: the right side is functionally "
              "determined by the left through body equalities, so the "
              "witness set is always a singleton and the choice never "
              "actually chooses");
          d.predicate = KeyOf(rule.head);
          d.rule_index = static_cast<int>(ri);
          d.loc = lit.loc.valid() ? lit.loc : rule.loc;
          out->push_back(std::move(d));
        }
      }
      if (!rule.has_extrema() && !rule.has_next()) {
        Diagnostic d = MakeDiagnostic(
            diag::kChoiceNeverRejects,
            "rule admissibility reduces to the choice FD memo: with no "
            "extremum and no stage post-condition, a candidate that "
            "respects the recorded choices is never rejected");
        d.predicate = KeyOf(rule.head);
        d.rule_index = static_cast<int>(ri);
        d.loc = rule.loc;
        out->push_back(std::move(d));
      }
    }
  }

  /// Grows `det` with every variable functionally determined by the
  /// current set through body equalities. Constructor compounds are
  /// injective (interned), so a determined constructor equality
  /// determines its argument variables; arithmetic is not inverted.
  /// Returns false only on malformed input (defensive).
  bool DeterminedClosure(const Rule& rule, std::set<std::string>* det) {
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Literal& lit : rule.body) {
        if (lit.kind != LiteralKind::kComparison ||
            lit.op != ComparisonOp::kEq) {
          continue;
        }
        for (int side = 0; side < 2; ++side) {
          const TermNode& from = lit.args[side];
          const TermNode& to = lit.args[1 - side];
          std::vector<std::string> from_vars;
          CollectVariables(from, &from_vars);
          const bool from_det = std::all_of(
              from_vars.begin(), from_vars.end(),
              [det](const std::string& v) { return det->count(v) > 0; });
          if (!from_det) continue;
          if (to.is_var()) {
            grew |= det->insert(to.name).second;
          } else if (to.is_compound() && !IsArithmeticFunctor(to.name)) {
            std::vector<std::string> to_vars;
            CollectVariables(to, &to_vars);
            for (const std::string& v : to_vars) {
              grew |= det->insert(v).second;
            }
          }
        }
      }
    }
    return true;
  }

  // -- Results -------------------------------------------------------------

  void BuildSignatures(std::vector<PredicateSignature>* out) {
    out->reserve(states_.size());
    for (const auto& [key, ps] : states_) {
      PredicateSignature sig;
      sig.name = ps.name;
      sig.arity = ps.arity;
      sig.args = ps.cols;
      sig.populated = ps.populated;
      sig.edb_seeded = ps.edb_seeded;
      if (ps.populated) {
        sig.card = CardBound{ps.base_rows, ps.hi};
      } else {
        sig.card = CardBound::Unbounded();
      }
      out->push_back(std::move(sig));
    }
    std::sort(out->begin(), out->end(),
              [](const PredicateSignature& a, const PredicateSignature& b) {
                if (a.name != b.name) return a.name < b.name;
                return a.arity < b.arity;
              });
  }

  const Program& surface_;
  const Program& expanded_;
  const AnalysisOptions& opts_;
  std::map<std::string, PredState> states_;
  int rounds_ = 0;
};

}  // namespace

std::string PredicateSignature::DisplayName() const {
  return PredKey(name, arity);
}

const PredicateSignature* AnalysisResult::Find(std::string_view name,
                                               uint32_t arity) const {
  for (const PredicateSignature& s : signatures) {
    if (s.arity == arity && s.name == name) return &s;
  }
  return nullptr;
}

AnalysisResult AnalyzeProgram(const Program& surface, const Program& expanded,
                              const AnalysisOptions& opts) {
  Analyzer a(surface, expanded, opts);
  return a.Run();
}

AnalysisResult Analyze(const Program& surface, const AnalysisOptions& opts) {
  Result<Program> expanded = ExpandNext(surface);
  if (expanded.ok()) {
    return AnalyzeProgram(surface, expanded.value(), opts);
  }
  // Expansion failures carry their own GD1xx diagnostics elsewhere; the
  // surface program still analyzes soundly (next() binds its stage
  // variable to a nonnegative int).
  return AnalyzeProgram(surface, surface, opts);
}

void AnalysisToJson(const AnalysisResult& r, JsonWriter* w) {
  w->BeginObject();
  w->Key("rounds").Int(r.rounds);
  w->Key("predicates").BeginArray();
  for (const PredicateSignature& sig : r.signatures) {
    w->BeginObject();
    w->Key("predicate").String(sig.DisplayName());
    w->Key("populated").Bool(sig.populated);
    w->Key("cardinality").BeginObject();
    w->Key("lo").UInt(sig.card.lo);
    w->Key("hi");
    if (sig.card.hi_finite()) {
      w->UInt(sig.card.hi);
    } else {
      w->Null();
    }
    w->EndObject();
    w->Key("args").BeginArray();
    for (const AbstractValue& v : sig.args) {
      w->BeginObject();
      w->Key("types").BeginArray();
      if (v.types.has_int()) w->String("int");
      if (v.types.Has(ValueKind::kSymbol)) w->String("symbol");
      if (v.types.Has(ValueKind::kTerm)) w->String("term");
      if (v.types.Has(ValueKind::kNil)) w->String("nil");
      w->EndArray();
      if (v.types.has_int() && !v.iv.is_full()) {
        if (v.iv.lo != Interval::kNegInf) w->Key("min").Int(v.iv.lo);
        if (v.iv.hi != Interval::kPosInf) w->Key("max").Int(v.iv.hi);
      }
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string SignaturesText(const AnalysisResult& r) {
  std::string out;
  for (const PredicateSignature& sig : r.signatures) {
    out += sig.DisplayName();
    if (!sig.populated) {
      out += ": unanalyzed (no facts or analyzable rules)\n";
      continue;
    }
    out += ": (";
    for (size_t j = 0; j < sig.args.size(); ++j) {
      if (j > 0) out += ", ";
      out += AbstractValueName(sig.args[j]);
    }
    out += ") rows ";
    out += CardBoundName(sig.card);
    if (sig.edb_seeded) out += " [edb]";
    out += "\n";
  }
  return out;
}

}  // namespace absint
}  // namespace gdlog
