// Fixpoint abstract interpretation over the post-rewrite program.
//
// One bottom-up Kleene fixpoint over the rules drives four analyses on
// the shared lattices of lattice.h:
//
//   * type inference         — per-predicate argument signatures (which
//     Value kinds each column can hold), solved by propagating column
//     sets through rule bodies into heads; conflicting uses raise GD300
//     and arithmetic over non-ints raises GD301.
//   * interval analysis      — int ranges propagated through arithmetic
//     and comparisons; an arithmetic site whose result range cannot
//     intersect [Value::kMinInt, Value::kMaxInt] is a *guaranteed*
//     overflow (GD013), and a comparison whose operand ranges cannot
//     overlap proves the rule body unsatisfiable (GD012).
//   * cardinality analysis   — [lo, hi] row-count bounds per predicate:
//     exact for EDB relations (scanned from the catalog when one is
//     supplied), derived for IDB predicates as the saturating product of
//     body bounds, widened to +inf on recursion. Finite upper bounds are
//     fed to JoinPlanner as priors (see Engine::Run).
//   * choice determinism     — a determined-variable closure over each
//     surface rule's equalities detects choice goals whose witness set
//     is provably a singleton (GD310) and choice rules whose
//     admissibility test reduces to the FD memo (GD311).
//
// Soundness: every abstract object over-approximates the concrete values
// that can occur in *any* run given the EDB visible at analysis time,
// so error-class diagnostics only fire when the conflict is provable.
// The analysis never blocks evaluation; its verdicts surface through
// Engine::Lint(), --lint-json, RunReport, and the .types shell command.
#ifndef GDLOG_ANALYSIS_ABSINT_ABSINT_H_
#define GDLOG_ANALYSIS_ABSINT_ABSINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/absint/lattice.h"
#include "analysis/diagnostics.h"
#include "ast/ast.h"

namespace gdlog {

class Catalog;  // storage/catalog.h
class JsonWriter;  // obs/json.h

namespace absint {

struct AnalysisOptions {
  // EDB statistics source. When null only program-text facts seed the
  // analysis (the standalone --lint path); Engine::Run passes its
  // catalog so AddFact rows are visible.
  const Catalog* catalog = nullptr;
  // Relations larger than this are summarized as top types / full
  // intervals (the row count stays exact) instead of being scanned.
  uint64_t max_scan_rows = 1u << 20;
  // Fixpoint rounds before interval bounds and cardinalities widen to
  // infinity; keeps recursive programs converging in O(rounds).
  int widen_after = 3;
  // Hard cap on fixpoint rounds (a backstop; widening converges first).
  int max_rounds = 64;
};

/// One predicate's inferred facts: a per-column abstract value and a
/// row-count bound. `populated` distinguishes "no tuples can exist"
/// (bottom columns) from "not analyzable" — a predicate with neither
/// facts nor analyzable rules never populates and its columns stay
/// bottom without implying emptiness diagnostics.
struct PredicateSignature {
  std::string name;
  uint32_t arity = 0;
  std::vector<AbstractValue> args;
  CardBound card;
  bool populated = false;
  bool edb_seeded = false;  // row stats came from the catalog

  std::string DisplayName() const;  // "name/arity"
};

struct AnalysisResult {
  // Sorted by name, then arity.
  std::vector<PredicateSignature> signatures;
  // GD012/GD013/GD3xx findings, sorted with SortDiagnostics.
  std::vector<Diagnostic> diagnostics;
  int rounds = 0;

  const PredicateSignature* Find(std::string_view name, uint32_t arity) const;
};

/// Analyzes `expanded` (the ExpandNext'd program the evaluator executes;
/// rule indices must match `surface`). Choice-determinism findings are
/// derived from `surface` so synthesized choice literals from next()
/// expansion are not misreported.
AnalysisResult AnalyzeProgram(const Program& surface, const Program& expanded,
                              const AnalysisOptions& opts = {});

/// Convenience for callers holding only the surface program (shell lint,
/// fuzzer): expands next() internally and falls back to analyzing the
/// surface program when expansion fails.
AnalysisResult Analyze(const Program& surface, const AnalysisOptions& opts = {});

/// Renders the "analysis" JSON object: {"rounds": N, "predicates":
/// [{"predicate", "populated", "cardinality": {"lo", "hi"}, "args":
/// [{"types": [...], "min", "max"}]}]}. Integer-only (golden-diff safe).
void AnalysisToJson(const AnalysisResult& r, JsonWriter* w);

/// Human-readable signature listing for the .types shell command, one
/// predicate per line: "p/2: (int[0, 7], symbol) rows [3, 18]".
std::string SignaturesText(const AnalysisResult& r);

}  // namespace absint
}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_ABSINT_ABSINT_H_
