#include "analysis/absint/lattice.h"

#include <cstdio>
#include <string>

namespace gdlog {
namespace absint {

namespace {

constexpr int64_t kNegInf = Interval::kNegInf;
constexpr int64_t kPosInf = Interval::kPosInf;

bool IsInf(int64_t v) { return v == kNegInf || v == kPosInf; }

// Saturating bound arithmetic. `down` picks the rounding direction when
// opposite infinities collide (lo math rounds down, hi math rounds up);
// that case cannot arise from well-formed intervals but must not trap.
int64_t SatAdd(int64_t a, int64_t b, bool down) {
  if (IsInf(a) || IsInf(b)) {
    const bool has_neg = a == kNegInf || b == kNegInf;
    const bool has_pos = a == kPosInf || b == kPosInf;
    if (has_neg && has_pos) return down ? kNegInf : kPosInf;
    return has_neg ? kNegInf : kPosInf;
  }
  int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) return b > 0 ? kPosInf : kNegInf;
  return r;
}

int64_t SatSub(int64_t a, int64_t b, bool down) {
  if (IsInf(a) || IsInf(b)) {
    const bool has_neg = a == kNegInf || b == kPosInf;
    const bool has_pos = a == kPosInf || b == kNegInf;
    if (has_neg && has_pos) return down ? kNegInf : kPosInf;
    return has_neg ? kNegInf : kPosInf;
  }
  int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) return b < 0 ? kPosInf : kNegInf;
  return r;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  const bool neg = (a < 0) != (b < 0);
  if (IsInf(a) || IsInf(b)) return neg ? kNegInf : kPosInf;
  int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) return neg ? kNegInf : kPosInf;
  return r;
}

// d != 0. Truncating like the runtime; infinities divide to infinity,
// anything over an infinite divisor collapses to 0.
int64_t SatDiv(int64_t a, int64_t d, bool down) {
  if (IsInf(d)) return 0;
  if (IsInf(a)) return ((a < 0) != (d < 0)) ? kNegInf : kPosInf;
  if (a == INT64_MIN && d == -1) return kPosInf;
  (void)down;
  return a / d;
}

int64_t BoundMin(int64_t a, int64_t b) { return a < b ? a : b; }
int64_t BoundMax(int64_t a, int64_t b) { return a > b ? a : b; }

}  // namespace

std::string TypeSetName(TypeSet t) {
  if (t.empty()) return "bottom";
  if (t.is_top()) return "any";
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if (t.has_int()) add("int");
  if (t.Has(ValueKind::kSymbol)) add("symbol");
  if (t.Has(ValueKind::kTerm)) add("term");
  if (t.Has(ValueKind::kNil)) add("nil");
  return out;
}

Interval IntervalAdd(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval{SatAdd(a.lo, b.lo, true), SatAdd(a.hi, b.hi, false)};
}

Interval IntervalSub(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval{SatSub(a.lo, b.hi, true), SatSub(a.hi, b.lo, false)};
}

Interval IntervalMul(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  const int64_t c1 = SatMul(a.lo, b.lo);
  const int64_t c2 = SatMul(a.lo, b.hi);
  const int64_t c3 = SatMul(a.hi, b.lo);
  const int64_t c4 = SatMul(a.hi, b.hi);
  return Interval{BoundMin(BoundMin(c1, c2), BoundMin(c3, c4)),
                  BoundMax(BoundMax(c1, c2), BoundMax(c3, c4))};
}

Interval IntervalDiv(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  // The runtime rejects d == 0 as a failed match, so only the nonzero
  // part of b produces values; a divisor interval that is exactly {0}
  // can never evaluate.
  if (b.lo == 0 && b.hi == 0) return Interval::Empty();
  // Quotient magnitude is maximized at the divisor endpoints and at the
  // +-1 divisors (when b spans them), so the corner set below is sound
  // for truncating division.
  int64_t divisors[4];
  int n = 0;
  if (b.lo != 0) divisors[n++] = b.lo;
  if (b.hi != 0) divisors[n++] = b.hi;
  if (b.Contains(1)) divisors[n++] = 1;
  if (b.Contains(-1)) divisors[n++] = -1;
  Interval r = Interval::Empty();
  for (int i = 0; i < n; ++i) {
    const int64_t d = divisors[i];
    const int64_t q1 = SatDiv(a.lo, d, true);
    const int64_t q2 = SatDiv(a.hi, d, false);
    r = r.Join(Interval{BoundMin(q1, q2), BoundMax(q1, q2)});
  }
  return r;
}

Interval IntervalMod(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  if (b.lo == 0 && b.hi == 0) return Interval::Empty();
  // |a mod d| <= |d| - 1 and the result's sign follows the dividend
  // (C++ truncating semantics, mirrored by the runtime).
  int64_t mag = 0;
  if (IsInf(b.lo) || IsInf(b.hi)) {
    mag = kPosInf;
  } else {
    const int64_t alo = b.lo == INT64_MIN ? kPosInf : (b.lo < 0 ? -b.lo : b.lo);
    const int64_t ahi = b.hi < 0 ? -b.hi : b.hi;
    mag = BoundMax(alo, ahi);
    if (mag > 0 && !IsInf(mag)) mag -= 1;
  }
  int64_t lo = 0;
  int64_t hi = 0;
  if (a.lo < 0) lo = BoundMax(a.lo, mag == kPosInf ? kNegInf : -mag);
  if (a.hi > 0) hi = BoundMin(a.hi, mag);
  return Interval{lo, hi};
}

Interval IntervalMin(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval{BoundMin(a.lo, b.lo), BoundMin(a.hi, b.hi)};
}

Interval IntervalMax(Interval a, Interval b) {
  if (a.empty() || b.empty()) return Interval::Empty();
  return Interval{BoundMax(a.lo, b.lo), BoundMax(a.hi, b.hi)};
}

namespace {
std::string BoundName(int64_t v) {
  if (v == kNegInf) return "-inf";
  if (v == kPosInf) return "+inf";
  return std::to_string(v);
}
}  // namespace

std::string IntervalName(Interval iv) {
  if (iv.empty()) return "empty";
  return "[" + BoundName(iv.lo) + ", " + BoundName(iv.hi) + "]";
}

std::string AbstractValueName(const AbstractValue& v) {
  if (v.types.empty()) return "bottom";
  if (v.types.is_top() && v.iv.is_full()) return "any";
  std::string out;
  const auto add = [&out](const std::string& part) {
    if (!out.empty()) out += '|';
    out += part;
  };
  if (v.types.has_int()) {
    add(v.iv.is_full() ? "int" : "int" + IntervalName(v.iv));
  }
  if (v.types.Has(ValueKind::kSymbol)) add("symbol");
  if (v.types.Has(ValueKind::kTerm)) add("term");
  if (v.types.Has(ValueKind::kNil)) add("nil");
  return out;
}

uint64_t CardAdd(uint64_t a, uint64_t b) {
  if (a == CardBound::kInf || b == CardBound::kInf) return CardBound::kInf;
  const uint64_t r = a + b;
  if (r < a) return CardBound::kInf;
  return r;
}

uint64_t CardMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == CardBound::kInf || b == CardBound::kInf) return CardBound::kInf;
  if (a > CardBound::kInf / b) return CardBound::kInf;
  return a * b;
}

std::string CardBoundName(CardBound c) {
  const std::string hi =
      c.hi == CardBound::kInf ? "inf" : std::to_string(c.hi);
  return "[" + std::to_string(c.lo) + ", " + hi + "]";
}

}  // namespace absint
}  // namespace gdlog
