// Predicate dependency graph, SCC decomposition (recursive cliques), and
// classical stratification.
//
// Nodes are predicate name/arity pairs. An edge q -> p exists when a rule
// with head q has p in its body; the edge is *negative* when p occurs
// under negation (a negated atom or inside a NotExists conjunction).
// Maximal sets of mutually recursive predicates — the paper's "recursive
// cliques" — are the nontrivial SCCs (or single predicates with a
// self-loop).
#ifndef GDLOG_ANALYSIS_DEP_GRAPH_H_
#define GDLOG_ANALYSIS_DEP_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace gdlog {

/// Dense id of a predicate within one DependencyGraph.
using PredIndex = uint32_t;
inline constexpr PredIndex kNoPred = UINT32_MAX;

class DependencyGraph {
 public:
  /// Builds the graph for `program`. Predicates mentioned only in bodies
  /// (pure EDB) get nodes too.
  explicit DependencyGraph(const Program& program);

  size_t num_predicates() const { return names_.size(); }
  const std::string& name(PredIndex p) const { return names_[p]; }
  uint32_t arity(PredIndex p) const { return arities_[p]; }

  /// kNoPred if the predicate does not appear in the program.
  PredIndex Lookup(const std::string& name, uint32_t arity) const;

  struct Edge {
    PredIndex from;  // head predicate
    PredIndex to;    // body predicate
    bool negative;
    uint32_t rule_index;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// True if the predicate appears in some rule head.
  bool IsIdb(PredIndex p) const { return is_idb_[p]; }

  /// Indices of rules whose head is p.
  const std::vector<uint32_t>& RulesFor(PredIndex p) const {
    return rules_for_[p];
  }

  // -- SCCs ---------------------------------------------------------------
  /// SCC id of each predicate; SCC ids are in *reverse* topological order
  /// of the condensation when produced by Tarjan, so we re-number them so
  /// that scc_id increases along dependencies (EDB sccs first).
  uint32_t scc_of(PredIndex p) const { return scc_of_[p]; }
  size_t num_sccs() const { return scc_members_.size(); }
  const std::vector<PredIndex>& scc_members(uint32_t scc) const {
    return scc_members_[scc];
  }
  /// True when the SCC is a recursive clique: more than one member, or a
  /// single member with a self-edge.
  bool IsRecursive(uint32_t scc) const { return scc_recursive_[scc]; }
  /// True when some edge internal to the SCC is negative.
  bool HasInternalNegation(uint32_t scc) const {
    return scc_internal_negation_[scc];
  }

  /// Edge indices (into edges()) forming a dependency cycle through the
  /// members of `scc`: each edge's `to` is the next edge's `from`, and
  /// the last edge returns to the first edge's `from`. Empty when the
  /// SCC is not recursive. Used by diagnostics to explain why a clique
  /// is recursive (e.g. the cycle that breaks stage-stratification).
  std::vector<uint32_t> CycleWithin(uint32_t scc) const;

  /// Classical stratification: assigns each predicate a stratum such that
  /// positive dependencies are non-decreasing and negative dependencies
  /// strictly increase. Fails (AnalysisError) when a recursive clique has
  /// an internal negative edge — those cliques must instead pass the
  /// stage-stratification test of analysis/stage.h.
  Result<std::vector<uint32_t>> ComputeStrata() const;

 private:
  PredIndex Ensure(const std::string& name, uint32_t arity);
  void AddLiteralEdges(const Literal& lit, PredIndex head, uint32_t rule_index,
                       bool under_negation);
  void ComputeSccs();

  std::unordered_map<std::string, PredIndex> by_key_;
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::vector<bool> is_idb_;
  std::vector<std::vector<uint32_t>> rules_for_;
  std::vector<Edge> edges_;
  std::vector<std::vector<uint32_t>> adj_;  // pred -> edge indices (from=pred)

  std::vector<uint32_t> scc_of_;
  std::vector<std::vector<PredIndex>> scc_members_;
  std::vector<bool> scc_recursive_;
  std::vector<bool> scc_internal_negation_;
};

}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_DEP_GRAPH_H_
