#include "analysis/rewriter.h"

#include <algorithm>

#include "analysis/diagnostics.h"
#include "common/logging.h"

namespace gdlog {

TermNode VariableRenamer::Rename(const TermNode& t) {
  switch (t.kind) {
    case TermKind::kVariable: {
      auto it = map_.find(t.name);
      if (it == map_.end()) {
        it = map_.emplace(t.name, prefix_ + t.name).first;
      }
      return TermNode::Var(it->second);
    }
    case TermKind::kConstant:
      return t;
    case TermKind::kCompound: {
      std::vector<TermNode> args;
      args.reserve(t.args.size());
      for (const TermNode& a : t.args) args.push_back(Rename(a));
      return TermNode::Compound(t.name, std::move(args));
    }
  }
  return t;
}

Literal VariableRenamer::Rename(const Literal& l) {
  Literal out = l;
  out.args.clear();
  for (const TermNode& a : l.args) out.args.push_back(Rename(a));
  out.body.clear();
  for (const Literal& inner : l.body) out.body.push_back(Rename(inner));
  return out;
}

namespace {

/// Distinct variable names in first-occurrence order.
std::vector<std::string> DistinctVars(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  for (const std::string& n : names) {
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out;
}

std::vector<std::string> TermVars(const TermNode& t) {
  std::vector<std::string> all;
  CollectVariables(t, &all);
  return DistinctVars(all);
}

}  // namespace

Result<Program> ExpandNext(const Program& program) {
  Program out;
  out.rules.reserve(program.rules.size());
  for (size_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    size_t next_count = std::count_if(
        r.body.begin(), r.body.end(),
        [](const Literal& l) { return l.kind == LiteralKind::kNext; });
    if (next_count == 0) {
      out.rules.push_back(r);
      continue;
    }
    if (next_count > 1) {
      return DiagnosticToStatus(MakeDiagnostic(
          diag::kMultipleNext, "rule for " + r.head.predicate +
                                   " has more than one next goal"));
    }
    // Locate the stage variable and its (unique) position in the head.
    const auto next_it = std::find_if(
        r.body.begin(), r.body.end(),
        [](const Literal& l) { return l.kind == LiteralKind::kNext; });
    const std::string& stage_var = next_it->args[0].name;
    int stage_pos = -1;
    for (size_t j = 0; j < r.head.args.size(); ++j) {
      const TermNode& arg = r.head.args[j];
      if (arg.is_var() && arg.name == stage_var) {
        if (stage_pos >= 0) {
          return DiagnosticToStatus(MakeDiagnostic(
              diag::kBadStageVar,
              "stage variable " + stage_var + " appears more than once in "
              "the head of a rule for " + r.head.predicate));
        }
        stage_pos = static_cast<int>(j);
      }
    }
    if (stage_pos < 0) {
      return DiagnosticToStatus(MakeDiagnostic(
          diag::kBadStageVar,
          "stage variable " + stage_var +
              " of next(...) does not appear in the head of a rule for " +
              r.head.predicate));
    }
    // Build: p(_..., I1), I = I1 + 1, choice(I, W), choice(W, I).
    Rule nr;
    nr.head = r.head;
    const std::string prev_var = "S$" + std::to_string(ri);
    std::vector<TermNode> prev_args;
    std::vector<TermNode> w_elems;
    for (size_t j = 0; j < r.head.args.size(); ++j) {
      if (static_cast<int>(j) == stage_pos) {
        prev_args.push_back(TermNode::Var(prev_var));
      } else {
        prev_args.push_back(
            TermNode::Var("A$" + std::to_string(ri) + "_" + std::to_string(j)));
        w_elems.push_back(r.head.args[j]);
      }
    }
    TermNode w = w_elems.size() == 1 ? w_elems[0]
                                     : TermNode::Tuple(std::move(w_elems));
    std::vector<TermNode> plus_args;
    plus_args.push_back(TermNode::Var(prev_var));
    plus_args.push_back(TermNode::Const(Value::Int(1)));

    for (const Literal& l : r.body) {
      if (l.kind != LiteralKind::kNext) {
        nr.body.push_back(l);
        continue;
      }
      nr.body.push_back(Literal::Atom(r.head.predicate, prev_args));
      nr.body.push_back(Literal::Comparison(
          ComparisonOp::kEq, TermNode::Var(stage_var),
          TermNode::Compound("+", plus_args)));
      nr.body.push_back(Literal::Choice(TermNode::Var(stage_var), w));
      nr.body.push_back(Literal::Choice(w, TermNode::Var(stage_var)));
    }
    out.rules.push_back(std::move(nr));
  }
  return out;
}

Program EraseChoice(const Program& program) {
  Program out;
  out.rules.reserve(program.rules.size());
  for (const Rule& r : program.rules) {
    Rule nr;
    nr.head = r.head;
    for (const Literal& l : r.body) {
      if (l.kind != LiteralKind::kChoice) nr.body.push_back(l);
    }
    out.rules.push_back(std::move(nr));
  }
  return out;
}

Program RewriteChoice(const Program& program, ChoiceRewriteInfo* info) {
  Program out;
  uint32_t counter = 0;
  for (const Rule& r : program.rules) {
    if (!r.has_choice()) {
      out.rules.push_back(r);
      continue;
    }
    const uint32_t i = counter++;
    const std::string chosen_name = "chosen$" + std::to_string(i);
    const std::string diff_name = "diffChoice$" + std::to_string(i);

    // V: distinct variables across all choice goals, first-occurrence
    // order — the argument list of chosen$i / diffChoice$i.
    std::vector<std::string> all_vars;
    std::vector<const Literal*> choice_goals;
    for (const Literal& l : r.body) {
      if (l.kind == LiteralKind::kChoice) {
        choice_goals.push_back(&l);
        CollectVariables(l.args[0], &all_vars);
        CollectVariables(l.args[1], &all_vars);
      }
    }
    const std::vector<std::string> v = DistinctVars(all_vars);
    std::vector<TermNode> v_terms;
    for (const std::string& n : v) v_terms.push_back(TermNode::Var(n));

    std::vector<Literal> base_body;
    for (const Literal& l : r.body) {
      if (l.kind != LiteralKind::kChoice) base_body.push_back(l);
    }

    // Original rule with choice goals replaced by the chosen$i atom.
    Rule replaced;
    replaced.head = r.head;
    replaced.body = base_body;
    replaced.body.push_back(Literal::Atom(chosen_name, v_terms));
    out.rules.push_back(std::move(replaced));

    // chosen$i(V) <- base_body, not diffChoice$i(V).
    Rule chosen_rule;
    chosen_rule.head = Literal::Atom(chosen_name, v_terms);
    chosen_rule.body = base_body;
    chosen_rule.body.push_back(
        Literal::Atom(diff_name, v_terms, /*neg=*/true));
    out.rules.push_back(std::move(chosen_rule));

    ChoiceRewriteInfo::Entry entry;
    entry.chosen_name = chosen_name;
    entry.diff_name = diff_name;
    entry.arity = static_cast<uint32_t>(v.size());

    // diffChoice$i(V) <- chosen$i(V'), R != R'   (V' shares vars(L)).
    for (const Literal* cg : choice_goals) {
      const TermNode& left = cg->args[0];
      const TermNode& right = cg->args[1];
      VariableRenamer renamer("D$" + std::to_string(i) + "_");
      for (const std::string& n : TermVars(left)) renamer.Share(n);
      std::vector<TermNode> v_renamed;
      for (const std::string& n : v) {
        v_renamed.push_back(renamer.Rename(TermNode::Var(n)));
      }
      Rule diff_rule;
      diff_rule.head = Literal::Atom(diff_name, v_terms);
      diff_rule.body.push_back(Literal::Atom(chosen_name, v_renamed));
      diff_rule.body.push_back(Literal::Comparison(ComparisonOp::kNe, right,
                                                   renamer.Rename(right)));
      out.rules.push_back(std::move(diff_rule));

      ChoiceGoalSig sig;
      for (const std::string& n : TermVars(left)) {
        const auto it = std::find(v.begin(), v.end(), n);
        sig.left_positions.push_back(
            static_cast<uint32_t>(it - v.begin()));
      }
      for (const std::string& n : TermVars(right)) {
        const auto it = std::find(v.begin(), v.end(), n);
        sig.right_positions.push_back(
            static_cast<uint32_t>(it - v.begin()));
      }
      entry.goals.push_back(std::move(sig));
    }
    if (info) info->entries.push_back(std::move(entry));
  }
  return out;
}

Result<Program> RewriteExtrema(const Program& program) {
  Program out;
  for (const Rule& r : program.rules) {
    if (!r.has_extrema()) {
      out.rules.push_back(r);
      continue;
    }
    size_t count = std::count_if(
        r.body.begin(), r.body.end(), [](const Literal& l) {
          return l.kind == LiteralKind::kLeast || l.kind == LiteralKind::kMost;
        });
    if (count > 1) {
      return DiagnosticToStatus(MakeDiagnostic(
          diag::kMultipleExtrema, "rule for " + r.head.predicate +
                                      " has more than one extrema goal"));
    }
    const auto ext_it = std::find_if(
        r.body.begin(), r.body.end(), [](const Literal& l) {
          return l.kind == LiteralKind::kLeast || l.kind == LiteralKind::kMost;
        });
    const bool is_least = ext_it->kind == LiteralKind::kLeast;
    const TermNode& cost = ext_it->args[0];
    const TermNode& group = ext_it->args[1];
    if (!cost.is_var()) {
      return DiagnosticToStatus(MakeDiagnostic(
          diag::kNonVariableCost, "extrema cost in a rule for " +
                                      r.head.predicate +
                                      " must be a single variable"));
    }
    const std::vector<std::string> group_vars = TermVars(group);
    if (std::find(group_vars.begin(), group_vars.end(), cost.name) !=
        group_vars.end()) {
      return DiagnosticToStatus(MakeDiagnostic(
          diag::kCostInGroup,
          "extrema cost variable " + cost.name +
              " may not also appear in the grouping of a rule for " +
              r.head.predicate));
    }

    Rule nr;
    nr.head = r.head;
    std::vector<Literal> rest;
    for (const Literal& l : r.body) {
      if (&l != &*ext_it) rest.push_back(l);
    }
    nr.body = rest;

    // NotExists copy: rest-of-body renamed apart except group variables,
    // plus C' < C (least) or C' > C (most).
    VariableRenamer renamer("E$");
    for (const std::string& n : group_vars) renamer.Share(n);
    std::vector<Literal> copy;
    for (const Literal& l : rest) copy.push_back(renamer.Rename(l));
    copy.push_back(Literal::Comparison(
        is_least ? ComparisonOp::kLt : ComparisonOp::kGt,
        renamer.Rename(cost), cost));
    nr.body.push_back(Literal::NotExists(std::move(copy)));
    out.rules.push_back(std::move(nr));
  }
  return out;
}

namespace {

void NormalizeRule(const Rule& rule, uint32_t* aux_counter,
                   std::vector<Rule>* out) {
  Rule nr;
  nr.head = rule.head;
  // Variables appearing outside each NotExists (head + sibling literals).
  for (size_t li = 0; li < rule.body.size(); ++li) {
    const Literal& l = rule.body[li];
    if (l.kind != LiteralKind::kNotExists) {
      nr.body.push_back(l);
      continue;
    }
    std::vector<std::string> outside;
    CollectLiteralVariables(rule.head, &outside);
    for (size_t lj = 0; lj < rule.body.size(); ++lj) {
      if (lj != li) CollectLiteralVariables(rule.body[lj], &outside);
    }
    std::vector<std::string> inside;
    for (const Literal& inner : l.body) {
      CollectLiteralVariables(inner, &inside);
    }
    std::vector<std::string> shared;
    for (const std::string& n : DistinctVars(inside)) {
      if (std::find(outside.begin(), outside.end(), n) != outside.end()) {
        shared.push_back(n);
      }
    }
    const std::string aux_name = "aux$" + std::to_string((*aux_counter)++);
    std::vector<TermNode> shared_terms;
    for (const std::string& n : shared) shared_terms.push_back(TermNode::Var(n));

    Rule aux_rule;
    aux_rule.head = Literal::Atom(aux_name, shared_terms);
    aux_rule.body = l.body;
    // Recurse: the aux body may itself contain NotExists.
    NormalizeRule(aux_rule, aux_counter, out);

    nr.body.push_back(Literal::Atom(aux_name, shared_terms, /*neg=*/true));
  }
  out->push_back(std::move(nr));
}

}  // namespace

Program NormalizeNotExists(const Program& program) {
  Program out;
  uint32_t aux_counter = 0;
  for (const Rule& r : program.rules) {
    NormalizeRule(r, &aux_counter, &out.rules);
  }
  return out;
}

Result<Program> FullSemanticExpansion(const Program& program) {
  GDLOG_ASSIGN_OR_RETURN(Program p1, ExpandNext(program));
  Program p2 = RewriteChoice(p1, nullptr);
  GDLOG_ASSIGN_OR_RETURN(Program p3, RewriteExtrema(p2));
  return NormalizeNotExists(p3);
}

Result<Program> ExpandForStageAnalysis(const Program& program) {
  GDLOG_ASSIGN_OR_RETURN(Program p1, ExpandNext(program));
  Program p2 = EraseChoice(p1);
  return RewriteExtrema(p2);
}

}  // namespace gdlog
