// Semantic static analysis ("lint") over gdlog programs.
//
// LintProgram runs every compile-time check the engine knows about and
// returns structured Diagnostic records instead of failing on the first
// problem. Checks (see docs/DIAGNOSTICS.md for the full catalogue):
//
//   * rule safety / range restriction: every head variable and every
//     variable of a negated, comparison, choice, or extrema goal must be
//     bound by a positive body goal (GD001, GD002, GD008);
//   * undefined, unused, and arity-inconsistent predicates (GD003-GD005);
//   * duplicate or degenerate choice FD specifications (GD006, GD007);
//   * stage-stratification (Section 4), with rejected cliques explained
//     by the offending dependency cycle through the next/choice recursion
//     (GD009, GD011, GD106-GD109);
//   * per-rule structural errors: multiple next/extrema goals, bad stage
//     variables, malformed extrema costs (GD101-GD105);
//   * rules unreachable from the query roots, when roots are given
//     (GD010).
//
// The pass never evaluates the program; it is pure syntax + analysis and
// safe to run on untrusted input.
#ifndef GDLOG_ANALYSIS_LINT_H_
#define GDLOG_ANALYSIS_LINT_H_

#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/stage.h"
#include "ast/ast.h"

namespace gdlog {

struct LintOptions {
  // Query roots ("outputs") for the reachability checks. When empty, the
  // unreachable-rule check (GD010) is skipped and the unused-predicate
  // check (GD004) treats every rule-defined sink predicate as a root.
  std::vector<Program::PredicateRef> roots;
  // Options forwarded to the stage-stratification analysis.
  StageAnalysisOptions stage;
  // Disable to skip the (comparatively expensive) Section 4 analysis.
  bool check_stratification = true;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted: errors first
  DiagCounts counts;

  /// True when the program produced no errors (warnings/notes allowed).
  bool clean() const { return counts.errors == 0; }
};

/// Lints a parsed program.
LintResult LintProgram(const Program& program, const LintOptions& options = {});

/// Parses `source` (interning constants into `store`) and lints the
/// result. A parse failure yields a single GD100 diagnostic.
LintResult LintSource(ValueStore* store, std::string_view source,
                      const LintOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_LINT_H_
