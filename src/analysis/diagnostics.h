// Structured compile-time diagnostics for gdlog programs.
//
// Every program-level complaint the frontend can raise — from the linter
// (analysis/lint.h), the stage-stratification analysis (analysis/stage.h),
// and the semantic rewriter (analysis/rewriter.h) — is a Diagnostic: a
// stable code (GD001, GD102, ...), a severity, a one-line message, the
// offending predicate and rule, a source location threaded from the
// lexer, and optional note lines (e.g. the dependency cycle that breaks
// stage-stratification). docs/DIAGNOSTICS.md catalogues every code.
//
// Analysis passes that still report through Status embed the code in the
// message ("[GD106] ..."); DiagCodeOfStatus recovers it so callers and
// tests can dispatch on codes instead of message substrings.
#ifndef GDLOG_ANALYSIS_DIAGNOSTICS_H_
#define GDLOG_ANALYSIS_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace gdlog {

class JsonWriter;  // obs/json.h

enum class DiagSeverity : uint8_t { kError, kWarning, kNote };

/// "error" / "warning" / "note".
std::string_view DiagSeverityName(DiagSeverity s);

// Stable diagnostic codes. GD0xx are linter checks over well-formed
// programs; GD1xx are parse/structural failures that also abort loading.
namespace diag {
// -- Linter checks (analysis/lint.h) --------------------------------------
inline constexpr std::string_view kUnsafeHeadVar = "GD001";
inline constexpr std::string_view kUnsafeBodyVar = "GD002";
inline constexpr std::string_view kUndefinedPredicate = "GD003";
inline constexpr std::string_view kUnusedPredicate = "GD004";
inline constexpr std::string_view kArityMismatch = "GD005";
inline constexpr std::string_view kDuplicateChoice = "GD006";
inline constexpr std::string_view kDegenerateChoice = "GD007";
inline constexpr std::string_view kUnboundExtremaCost = "GD008";
inline constexpr std::string_view kNotStageStratified = "GD009";
inline constexpr std::string_view kUnreachableRule = "GD010";
inline constexpr std::string_view kRelaxedStratification = "GD011";
inline constexpr std::string_view kProvablyEmpty = "GD012";
inline constexpr std::string_view kGuaranteedOverflow = "GD013";
// -- Parse / structural failures (parser, rewriter, stage analysis) -------
inline constexpr std::string_view kParseError = "GD100";
inline constexpr std::string_view kMultipleNext = "GD101";
inline constexpr std::string_view kBadStageVar = "GD102";
inline constexpr std::string_view kMultipleExtrema = "GD103";
inline constexpr std::string_view kNonVariableCost = "GD104";
inline constexpr std::string_view kCostInGroup = "GD105";
inline constexpr std::string_view kConflictingStagePos = "GD106";
inline constexpr std::string_view kTwoHeadStagePos = "GD107";
inline constexpr std::string_view kMixedRuleKinds = "GD108";
inline constexpr std::string_view kMissingStageArg = "GD109";
inline constexpr std::string_view kIntLiteralRange = "GD110";
// -- Run-time termination outcomes (common/guardrails.h) -------------------
inline constexpr std::string_view kDeadlineExceeded = "GD200";
inline constexpr std::string_view kTupleLimit = "GD201";
inline constexpr std::string_view kStageLimit = "GD202";
inline constexpr std::string_view kIterationLimit = "GD203";
inline constexpr std::string_view kMemoryLimit = "GD204";
inline constexpr std::string_view kRunCancelled = "GD205";
inline constexpr std::string_view kOutOfMemory = "GD206";
inline constexpr std::string_view kInjectedFault = "GD207";
// -- Durability failures (storage/durable) ----------------------------------
inline constexpr std::string_view kWalError = "GD210";
inline constexpr std::string_view kWalCorrupt = "GD211";
inline constexpr std::string_view kSnapshotCorrupt = "GD212";
// -- Static analysis findings (analysis/absint) ----------------------------
inline constexpr std::string_view kTypeConflict = "GD300";
inline constexpr std::string_view kNonIntArithmetic = "GD301";
inline constexpr std::string_view kDeadChoice = "GD310";
inline constexpr std::string_view kChoiceNeverRejects = "GD311";
}  // namespace diag

/// Default severity of a code ("GDnnn"); kError for unknown codes.
DiagSeverity DiagCodeSeverity(std::string_view code);

/// One-line catalogue summary of a code; empty for unknown codes.
std::string_view DiagCodeSummary(std::string_view code);

struct Diagnostic {
  std::string code;  // stable "GDnnn" identifier
  DiagSeverity severity = DiagSeverity::kError;
  std::string message;
  // Offending predicate as "name/arity"; empty when not predicate-specific.
  std::string predicate;
  // Index into Program::rules; -1 when not rule-specific.
  int rule_index = -1;
  SourceLoc loc;
  // Extra explanation lines, e.g. the offending dependency cycle.
  std::vector<std::string> notes;
};

/// Builds a diagnostic with the code's default severity.
Diagnostic MakeDiagnostic(std::string_view code, std::string message);

/// Converts to the legacy Status channel, embedding "[GDnnn]" in the
/// message (ParseError for GD100, AnalysisError otherwise).
Status DiagnosticToStatus(const Diagnostic& d);

/// The "[GDnnn]" code embedded in an error status message, or "" when the
/// status is OK or carries no code.
std::string DiagCodeOfStatus(const Status& st);

/// Stable presentation order: errors before warnings before notes, then
/// by rule index, then by source location, then by code.
void SortDiagnostics(std::vector<Diagnostic>* diags);

struct DiagCounts {
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
};
DiagCounts CountDiagnostics(const std::vector<Diagnostic>& diags);

/// Compiler-style rendering: "file:line:col: severity[GDnnn]: message",
/// one line per diagnostic plus indented note lines.
std::string RenderDiagnostic(const Diagnostic& d, std::string_view file);
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view file);

/// JSON form consistent with Engine::RunReport:
/// {"program": ..., "summary": {"errors": N, "warnings": N, "notes": N},
///  "diagnostics": [{"code", "severity", "message", "predicate", "rule",
///                   "line", "column", "notes"}]}.
void DiagnosticsToJson(const std::vector<Diagnostic>& diags,
                       std::string_view program_name, JsonWriter* w);
std::string DiagnosticsJson(const std::vector<Diagnostic>& diags,
                            std::string_view program_name);

/// Writes the same "program"/"summary"/"diagnostics" keys into an object
/// the caller has already opened — lets callers append sibling sections
/// (the shell's --lint-json adds "analysis") without changing the
/// DiagnosticsToJson schema.
void DiagnosticsJsonContents(const std::vector<Diagnostic>& diags,
                             std::string_view program_name, JsonWriter* w);

}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_DIAGNOSTICS_H_
