#include "analysis/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "obs/json.h"

namespace gdlog {

std::string_view DiagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}

namespace {

struct CodeEntry {
  std::string_view code;
  DiagSeverity severity;
  std::string_view summary;
};

constexpr CodeEntry kCodeTable[] = {
    {diag::kUnsafeHeadVar, DiagSeverity::kError,
     "head variable not bound by any positive body goal"},
    {diag::kUnsafeBodyVar, DiagSeverity::kError,
     "variable in a negated or built-in goal not bound by any positive "
     "body goal"},
    {diag::kUndefinedPredicate, DiagSeverity::kWarning,
     "predicate used in a rule body but never defined by a fact or rule"},
    {diag::kUnusedPredicate, DiagSeverity::kWarning,
     "predicate defined but never used"},
    {diag::kArityMismatch, DiagSeverity::kWarning,
     "predicate name used with inconsistent arities"},
    {diag::kDuplicateChoice, DiagSeverity::kWarning,
     "duplicate choice goal in one rule"},
    {diag::kDegenerateChoice, DiagSeverity::kWarning,
     "degenerate choice FD (trivially satisfied)"},
    {diag::kUnboundExtremaCost, DiagSeverity::kError,
     "extrema cost variable not bound by any positive body goal"},
    {diag::kNotStageStratified, DiagSeverity::kError,
     "recursive clique is not stage-stratified"},
    {diag::kUnreachableRule, DiagSeverity::kWarning,
     "rule cannot contribute to any query root"},
    {diag::kRelaxedStratification, DiagSeverity::kNote,
     "clique accepted under relaxed flat-rule stratification only"},
    {diag::kProvablyEmpty, DiagSeverity::kWarning,
     "rule body (or whole predicate) is provably unsatisfiable"},
    {diag::kGuaranteedOverflow, DiagSeverity::kWarning,
     "arithmetic site can never produce an in-range value"},
    {diag::kParseError, DiagSeverity::kError, "syntax error"},
    {diag::kMultipleNext, DiagSeverity::kError,
     "rule has more than one next goal"},
    {diag::kBadStageVar, DiagSeverity::kError,
     "stage variable of next(...) must appear exactly once in the head"},
    {diag::kMultipleExtrema, DiagSeverity::kError,
     "rule has more than one extrema goal"},
    {diag::kNonVariableCost, DiagSeverity::kError,
     "extrema cost must be a single variable"},
    {diag::kCostInGroup, DiagSeverity::kError,
     "extrema cost variable may not appear in the grouping"},
    {diag::kConflictingStagePos, DiagSeverity::kError,
     "predicate has conflicting stage argument positions"},
    {diag::kTwoHeadStagePos, DiagSeverity::kError,
     "rule places stage variables at two head positions"},
    {diag::kMixedRuleKinds, DiagSeverity::kError,
     "predicate mixes next rules and flat recursive rules"},
    {diag::kMissingStageArg, DiagSeverity::kError,
     "predicate in a stage clique has no stage argument"},
    {diag::kIntLiteralRange, DiagSeverity::kError,
     "integer literal outside the engine's 61-bit value range"},
    {diag::kDeadlineExceeded, DiagSeverity::kError,
     "run stopped: wall-clock deadline exceeded"},
    {diag::kTupleLimit, DiagSeverity::kError,
     "run stopped: derived-tuple limit reached"},
    {diag::kStageLimit, DiagSeverity::kError,
     "run stopped: stage limit reached"},
    {diag::kIterationLimit, DiagSeverity::kError,
     "run stopped: fixpoint-iteration limit reached"},
    {diag::kMemoryLimit, DiagSeverity::kError,
     "run stopped: tracked-memory budget exceeded"},
    {diag::kRunCancelled, DiagSeverity::kError,
     "run stopped: cooperative cancellation requested"},
    {diag::kOutOfMemory, DiagSeverity::kError,
     "run stopped: allocation failure caught at the Run boundary"},
    {diag::kInjectedFault, DiagSeverity::kError,
     "run stopped: deterministic fault injected at a probe point"},
    {diag::kWalError, DiagSeverity::kError,
     "durability: WAL or checkpoint I/O failed (path and offset in message)"},
    {diag::kWalCorrupt, DiagSeverity::kError,
     "durability: WAL unreadable beyond a torn tail (bad header or replay)"},
    {diag::kSnapshotCorrupt, DiagSeverity::kError,
     "durability: snapshot or manifest failed its checksum"},
    {diag::kTypeConflict, DiagSeverity::kError,
     "variable has provably disjoint types at two uses"},
    {diag::kNonIntArithmetic, DiagSeverity::kError,
     "arithmetic operand can never be an int"},
    {diag::kDeadChoice, DiagSeverity::kWarning,
     "choice witness set is provably a singleton"},
    {diag::kChoiceNeverRejects, DiagSeverity::kNote,
     "choice rule admissibility reduces to the FD memo"},
};

const CodeEntry* FindCode(std::string_view code) {
  for (const CodeEntry& e : kCodeTable) {
    if (e.code == code) return &e;
  }
  return nullptr;
}

}  // namespace

DiagSeverity DiagCodeSeverity(std::string_view code) {
  const CodeEntry* e = FindCode(code);
  return e ? e->severity : DiagSeverity::kError;
}

std::string_view DiagCodeSummary(std::string_view code) {
  const CodeEntry* e = FindCode(code);
  return e ? e->summary : std::string_view{};
}

Diagnostic MakeDiagnostic(std::string_view code, std::string message) {
  Diagnostic d;
  d.code = std::string(code);
  d.severity = DiagCodeSeverity(code);
  d.message = std::move(message);
  return d;
}

Status DiagnosticToStatus(const Diagnostic& d) {
  std::string msg = "[" + d.code + "] " + d.message;
  if (d.loc.valid()) msg += " at " + d.loc.ToString();
  for (const std::string& n : d.notes) msg += "; " + n;
  if (d.code == diag::kParseError) return Status::ParseError(std::move(msg));
  return Status::AnalysisError(std::move(msg));
}

std::string DiagCodeOfStatus(const Status& st) {
  if (st.ok()) return "";
  const std::string& m = st.message();
  if (m.size() < 3 || m[0] != '[') return "";
  const size_t close = m.find(']');
  if (close == std::string::npos) return "";
  const std::string code = m.substr(1, close - 1);
  if (code.size() < 3 || code.compare(0, 2, "GD") != 0) return "";
  return code;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::make_tuple(static_cast<int>(a.severity),
                                            a.rule_index, a.loc.line,
                                            a.loc.column, a.code) <
                            std::make_tuple(static_cast<int>(b.severity),
                                            b.rule_index, b.loc.line,
                                            b.loc.column, b.code);
                   });
}

DiagCounts CountDiagnostics(const std::vector<Diagnostic>& diags) {
  DiagCounts c;
  for (const Diagnostic& d : diags) {
    switch (d.severity) {
      case DiagSeverity::kError:
        ++c.errors;
        break;
      case DiagSeverity::kWarning:
        ++c.warnings;
        break;
      case DiagSeverity::kNote:
        ++c.notes;
        break;
    }
  }
  return c;
}

std::string RenderDiagnostic(const Diagnostic& d, std::string_view file) {
  std::string out;
  if (!file.empty()) out += std::string(file) + ":";
  if (d.loc.valid()) {
    out += std::to_string(d.loc.line) + ":" + std::to_string(d.loc.column) +
           ":";
  }
  if (!out.empty()) out += " ";
  out += std::string(DiagSeverityName(d.severity)) + "[" + d.code +
         "]: " + d.message;
  if (!d.predicate.empty()) out += " [" + d.predicate + "]";
  if (d.rule_index >= 0) out += " (rule " + std::to_string(d.rule_index) + ")";
  out += "\n";
  for (const std::string& n : d.notes) out += "    note: " + n + "\n";
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view file) {
  std::string out;
  for (const Diagnostic& d : diags) out += RenderDiagnostic(d, file);
  const DiagCounts c = CountDiagnostics(diags);
  out += std::to_string(c.errors) + " error(s), " +
         std::to_string(c.warnings) + " warning(s), " +
         std::to_string(c.notes) + " note(s)\n";
  return out;
}

void DiagnosticsJsonContents(const std::vector<Diagnostic>& diags,
                             std::string_view program_name, JsonWriter* w) {
  const DiagCounts c = CountDiagnostics(diags);
  w->Key("program").String(program_name);
  w->Key("summary").BeginObject();
  w->Key("errors").UInt(c.errors);
  w->Key("warnings").UInt(c.warnings);
  w->Key("notes").UInt(c.notes);
  w->EndObject();
  w->Key("diagnostics").BeginArray();
  for (const Diagnostic& d : diags) {
    w->BeginObject();
    w->Key("code").String(d.code);
    w->Key("severity").String(DiagSeverityName(d.severity));
    w->Key("message").String(d.message);
    if (!d.predicate.empty()) w->Key("predicate").String(d.predicate);
    if (d.rule_index >= 0) w->Key("rule").Int(d.rule_index);
    if (d.loc.valid()) {
      w->Key("line").Int(d.loc.line);
      w->Key("column").Int(d.loc.column);
    }
    if (!d.notes.empty()) {
      w->Key("notes").BeginArray();
      for (const std::string& n : d.notes) w->String(n);
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndArray();
}

void DiagnosticsToJson(const std::vector<Diagnostic>& diags,
                       std::string_view program_name, JsonWriter* w) {
  w->BeginObject();
  DiagnosticsJsonContents(diags, program_name, w);
  w->EndObject();
}

std::string DiagnosticsJson(const std::vector<Diagnostic>& diags,
                            std::string_view program_name) {
  JsonWriter w;
  DiagnosticsToJson(diags, program_name, &w);
  return w.Take();
}

}  // namespace gdlog
