#include "analysis/dep_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace gdlog {

namespace {
std::string Key(const std::string& name, uint32_t arity) {
  return name + "/" + std::to_string(arity);
}
}  // namespace

DependencyGraph::DependencyGraph(const Program& program) {
  for (uint32_t ri = 0; ri < program.rules.size(); ++ri) {
    const Rule& r = program.rules[ri];
    GDLOG_CHECK(r.head.kind == LiteralKind::kAtom);
    const PredIndex head =
        Ensure(r.head.predicate, static_cast<uint32_t>(r.head.args.size()));
    is_idb_[head] = true;
    rules_for_[head].push_back(ri);
    for (const Literal& lit : r.body) {
      AddLiteralEdges(lit, head, ri, /*under_negation=*/false);
    }
  }
  adj_.assign(names_.size(), {});
  for (uint32_t e = 0; e < edges_.size(); ++e) {
    adj_[edges_[e].from].push_back(e);
  }
  ComputeSccs();
}

PredIndex DependencyGraph::Ensure(const std::string& name, uint32_t arity) {
  const std::string key = Key(name, arity);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  const auto p = static_cast<PredIndex>(names_.size());
  by_key_.emplace(key, p);
  names_.push_back(name);
  arities_.push_back(arity);
  is_idb_.push_back(false);
  rules_for_.emplace_back();
  return p;
}

PredIndex DependencyGraph::Lookup(const std::string& name,
                                  uint32_t arity) const {
  auto it = by_key_.find(Key(name, arity));
  return it == by_key_.end() ? kNoPred : it->second;
}

void DependencyGraph::AddLiteralEdges(const Literal& lit, PredIndex head,
                                      uint32_t rule_index,
                                      bool under_negation) {
  switch (lit.kind) {
    case LiteralKind::kAtom: {
      const PredIndex p =
          Ensure(lit.predicate, static_cast<uint32_t>(lit.args.size()));
      edges_.push_back(
          Edge{head, p, under_negation || lit.negated, rule_index});
      return;
    }
    case LiteralKind::kNotExists:
      for (const Literal& inner : lit.body) {
        AddLiteralEdges(inner, head, rule_index, /*under_negation=*/true);
      }
      return;
    default:
      return;  // comparisons and meta goals add no edges
  }
}

void DependencyGraph::ComputeSccs() {
  // Iterative Tarjan.
  const size_t n = names_.size();
  scc_of_.assign(n, UINT32_MAX);
  std::vector<uint32_t> index(n, UINT32_MAX), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<PredIndex> stack;
  uint32_t next_index = 0;

  struct Frame {
    PredIndex v;
    size_t edge_pos;
  };
  std::vector<std::vector<PredIndex>> sccs;

  for (PredIndex root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge_pos < adj_[f.v].size()) {
        const Edge& e = edges_[adj_[f.v][f.edge_pos++]];
        const PredIndex w = e.to;
        if (index[w] == UINT32_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<PredIndex> members;
          for (;;) {
            const PredIndex w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            members.push_back(w);
            if (w == f.v) break;
          }
          sccs.push_back(std::move(members));
        }
        const PredIndex v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }

  // Tarjan emits SCCs in reverse topological order of the condensation
  // (callees before callers); we want dependencies-first, which is the
  // emission order itself for edges head -> body (head depends on body):
  // a body SCC completes before the head SCC pops. So emission order is
  // already "EDB first".
  scc_members_ = std::move(sccs);
  for (uint32_t s = 0; s < scc_members_.size(); ++s) {
    for (PredIndex p : scc_members_[s]) scc_of_[p] = s;
  }
  scc_recursive_.assign(scc_members_.size(), false);
  scc_internal_negation_.assign(scc_members_.size(), false);
  for (uint32_t s = 0; s < scc_members_.size(); ++s) {
    if (scc_members_[s].size() > 1) scc_recursive_[s] = true;
  }
  for (const Edge& e : edges_) {
    if (scc_of_[e.from] == scc_of_[e.to] && e.negative) {
      scc_internal_negation_[scc_of_[e.from]] = true;
    }
  }
  // A single-member SCC with no self-edge is not recursive; fix up.
  for (uint32_t s = 0; s < scc_members_.size(); ++s) {
    if (scc_members_[s].size() == 1) {
      const PredIndex p = scc_members_[s][0];
      bool self = false;
      for (uint32_t ei : adj_[p]) {
        if (edges_[ei].to == p) {
          self = true;
          break;
        }
      }
      scc_recursive_[s] = self;
    }
  }
}

std::vector<uint32_t> DependencyGraph::CycleWithin(uint32_t scc) const {
  if (!IsRecursive(scc)) return {};
  const PredIndex start = scc_members_[scc][0];
  for (uint32_t ei : adj_[start]) {
    if (edges_[ei].to == start) return {ei};  // self-loop
  }
  // BFS within the SCC from `start`, recording the edge that first
  // reached each node; the first edge found back into `start` closes a
  // shortest cycle through it (one exists: the SCC is strongly
  // connected).
  std::vector<uint32_t> parent(names_.size(), UINT32_MAX);
  std::vector<bool> seen(names_.size(), false);
  std::vector<PredIndex> queue{start};
  seen[start] = true;
  uint32_t closing = UINT32_MAX;
  for (size_t qi = 0; qi < queue.size() && closing == UINT32_MAX; ++qi) {
    const PredIndex u = queue[qi];
    for (uint32_t ei : adj_[u]) {
      const Edge& e = edges_[ei];
      if (scc_of_[e.to] != scc) continue;
      if (e.to == start) {
        closing = ei;
        break;
      }
      if (!seen[e.to]) {
        seen[e.to] = true;
        parent[e.to] = ei;
        queue.push_back(e.to);
      }
    }
  }
  if (closing == UINT32_MAX) return {};
  std::vector<uint32_t> path{closing};
  for (PredIndex v = edges_[closing].from; v != start;
       v = edges_[path.back()].from) {
    path.push_back(parent[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<std::vector<uint32_t>> DependencyGraph::ComputeStrata() const {
  const size_t n = names_.size();
  // Stratum = longest chain of negative edges below the predicate; computed
  // on the SCC condensation (SCC ids are topologically ordered,
  // dependencies first).
  for (uint32_t s = 0; s < num_sccs(); ++s) {
    if (HasInternalNegation(s)) {
      std::string who;
      for (PredIndex p : scc_members_[s]) {
        if (!who.empty()) who += ", ";
        who += names_[p] + "/" + std::to_string(arities_[p]);
      }
      return Status::AnalysisError(
          "negation inside recursive clique {" + who +
          "} — not classically stratifiable (stage analysis required)");
    }
  }
  std::vector<uint32_t> scc_stratum(num_sccs(), 0);
  for (const Edge& e : edges_) {
    const uint32_t sh = scc_of_[e.from];
    const uint32_t sb = scc_of_[e.to];
    if (sh == sb) continue;
    // sb < sh in emission order (body completes first).
    const uint32_t need = scc_stratum[sb] + (e.negative ? 1 : 0);
    if (scc_stratum[sh] < need) scc_stratum[sh] = need;
  }
  // One fixpoint pass is enough only if edges are visited in topological
  // order; iterate until stable to be safe (condensation is acyclic, so
  // at most num_sccs passes).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : edges_) {
      const uint32_t sh = scc_of_[e.from];
      const uint32_t sb = scc_of_[e.to];
      if (sh == sb) continue;
      const uint32_t need = scc_stratum[sb] + (e.negative ? 1 : 0);
      if (scc_stratum[sh] < need) {
        scc_stratum[sh] = need;
        changed = true;
      }
    }
  }
  std::vector<uint32_t> strata(n);
  for (PredIndex p = 0; p < n; ++p) strata[p] = scc_stratum[scc_of_[p]];
  return strata;
}

}  // namespace gdlog
