// Stage analysis: the compile-time recognition of stage-stratified
// programs (paper, Sections 3-4).
//
// For every recursive clique of the program the analysis determines:
//
//   * whether each rule is a "next rule" (contains next(I)) or a "flat
//     rule" — a stage clique may define each predicate with rules of one
//     kind only;
//   * the unique stage argument of every predicate in the clique,
//     inferred by propagating stage variables from next(I) goals through
//     head arguments (including through stage arithmetic I = J + 1 and
//     I = max(J, K));
//   * whether the clique is stage-stratified: on the rewritten rule r'
//     (next expanded, choice erased, extrema rewritten to a negated body
//     copy), every stage argument in the tail must be provably <= the
//     head's stage argument — strictly so for next rules and for stage
//     occurrences under negation in flat rules.
//
// The ordering proofs use a per-rule difference-constraint graph built
// from the rule's comparisons, stage arithmetic, and integer constants;
// u < v is proven by reachability through at least one strict edge.
//
// Stage *variables are compared per clique*: a stage value produced by a
// different clique's counter (e.g. Kruskal's component ids, minted by
// comp0's own next counter) is an opaque datum to this clique and takes
// no part in the ordering obligation.
#ifndef GDLOG_ANALYSIS_STAGE_H_
#define GDLOG_ANALYSIS_STAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dep_graph.h"
#include "ast/ast.h"
#include "common/status.h"

namespace gdlog {

enum class RuleKind : uint8_t { kExit, kFlat, kNext };

enum class CliqueClass : uint8_t {
  kHorn,            // no negation, no meta goals in recursion
  kStratified,      // negation only on lower cliques
  kStageStratified, // stage clique passing the full Section 4 test
  kRelaxedStage,    // stage clique whose flat rules violate strictness
                    // (the paper's Kruskal case, Section 7)
  kRejected,
};

std::string_view CliqueClassName(CliqueClass c);

struct RuleStageInfo {
  RuleKind kind = RuleKind::kExit;
  // Head stage argument position, or -1 when the head predicate has no
  // stage argument (Horn cliques).
  int head_stage_pos = -1;
  // Name of the stage variable bound by next(I); empty for non-next rules.
  std::string stage_var;
};

struct CliqueStageInfo {
  CliqueClass cls = CliqueClass::kHorn;
  // Human-readable explanation when cls is kRelaxedStage or kRejected.
  std::string diagnostic;
  // Diagnostic code (diag::k* in analysis/diagnostics.h, e.g. "GD009")
  // when cls is kRelaxedStage or kRejected; empty otherwise.
  std::string code;
  // Predicates of the clique (indices into the DependencyGraph).
  std::vector<PredIndex> members;
  // Rule indices (into the analyzed Program) whose head is in the clique.
  std::vector<uint32_t> rules;
  bool has_next_rules = false;
};

struct StageAnalysis {
  // The program with next goals macro-expanded (rule i corresponds to
  // rule i of the analyzed program). Recursion through next(I) — e.g.
  // Example 5's sort, whose only self-reference is the implicit
  // sp(_, I1) — is visible only on this form, so the dependency graph is
  // built over it. This is also the form the evaluator executes.
  Program expanded;
  // Dependency graph over `expanded`.
  std::unique_ptr<DependencyGraph> graph;

  // Indexed by DependencyGraph scc id.
  std::vector<CliqueStageInfo> cliques;
  // Indexed by rule position in the analyzed Program.
  std::vector<RuleStageInfo> rule_info;
  // Indexed by PredIndex: stage argument position or -1.
  std::vector<int> stage_arg;
  // Clique ids in dependency order (callees first) — the stratum
  // saturation order of the fixpoint drivers.
  std::vector<uint32_t> clique_order;

  bool AllAccepted() const {
    for (const CliqueStageInfo& c : cliques) {
      if (c.cls == CliqueClass::kRejected) return false;
    }
    return true;
  }
};

struct StageAnalysisOptions {
  // Accept stage cliques whose flat rules break strict stratification
  // (classified kRelaxedStage instead of kRejected). The fixpoint is still
  // well-defined operationally; the stable-model guarantee of Theorem 1
  // no longer follows syntactically — the paper's Kruskal discussion.
  bool allow_relaxed_flat_rules = true;
};

/// Runs the full analysis on `program` (original surface form, with
/// next/choice/least goals in place). Fails only on structural errors
/// (malformed next goals, conflicting stage positions, mixed rule kinds,
/// extrema misuse); mere loss of stage-stratification is reported per
/// clique via CliqueClass.
Result<StageAnalysis> AnalyzeStages(const Program& program,
                                    const StageAnalysisOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_STAGE_H_
