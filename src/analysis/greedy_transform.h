// The paper's Section 7 transformation: propagating an extrema
// post-condition into a choice program, turning a generate-and-minimize
// specification into a greedy stage program.
//
// The paper's motivating instance poses minimum-cost maximal matching
// naively — accumulate a running total per stage, take the final total
// (most over stages), minimize over stable models (least over totals):
//
//   opt_matching(C)  <- a_matching(C), least(C).
//   a_matching(C)    <- matching(X, Y, C, I), most(I).
//   matching(nil, nil, 0, 0).
//   matching(X, Y, C, I) <- next(I), new_arc(X, Y, C, J), I = J + 1,
//                           choice(Y, X), choice(X, Y).
//   new_arc(X, Y, C, J)  <- matching(_, _, C1, J), g(X, Y, C2),
//                           C = C1 + C2.
//
// and remarks it "can be transformed into the efficient solution of
// Example 7" because the selection structure is a (partition) matroid.
// Deriving sufficient conditions automatically is the open problem the
// paper leaves to matroid/greedoid theory; this pass implements the
// transformation itself for the accumulator pattern above, gated on the
// caller asserting the matroid property:
//
//   * the accumulator rule G  (gen cost = previous total + base cost),
//   * the next rule N consuming gen with choice goals and no extremum,
//   * the post-condition pair A/B (least over the most-staged total)
//
// are recognized and replaced by the greedy stage rule
//
//   p(V..., C2, I) <- next(I), base(V..., C2), least(C2, I), choices...
//
// whose per-stage costs sum to the optimal total when the asserted
// matroid property holds (greedy-exactness), exactly the paper's
// Example 7.
#ifndef GDLOG_ANALYSIS_GREEDY_TRANSFORM_H_
#define GDLOG_ANALYSIS_GREEDY_TRANSFORM_H_

#include <string>

#include "ast/ast.h"
#include "common/status.h"

namespace gdlog {

struct GreedyTransformResult {
  Program transformed;
  // Name/arity of the stage predicate whose per-stage costs now carry
  // the solution (sum them to get the old opt value).
  std::string stage_predicate;
  uint32_t stage_arity = 0;
  int cost_position = -1;
  // Human-readable account of what was recognized and rewritten.
  std::string summary;
};

struct GreedyTransformOptions {
  // The caller asserts the underlying selection structure is a matroid
  // (greedy-exact). Without this the pass refuses — the transformation
  // is not equivalence-preserving in general, which is precisely the
  // open problem the paper defers to matroid theory.
  bool assume_matroid = false;
};

/// Recognizes the naive accumulate-and-minimize pattern in `program` and
/// returns the greedy stage program. Fails with AnalysisError when the
/// pattern is absent or the matroid assertion is missing.
Result<GreedyTransformResult> PropagateExtremaIntoChoice(
    const Program& program, const GreedyTransformOptions& options = {});

}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_GREEDY_TRANSFORM_H_
