// The paper's meta-level rewritings (Sections 2 and 3).
//
// The engine does NOT evaluate the rewritten program — choice runs on the
// memoized chosen-tuple runtime and least/most on the (R,Q,L) structure.
// The rewritings exist because they *define the semantics*: they feed the
// stage-stratification checker (analysis/stage.h) and the stable-model
// checker (eval/stable_model.h), and they let users display the
// first-order program their choice program abbreviates.
//
// Rewriting pipeline, in the order mandated by the paper:
//   1. ExpandNext      next(I) in a rule for p(W, I) becomes
//                      p(_,...,I1), I = I1 + 1, choice(I, W), choice(W, I)
//   2. RewriteChoice   each rule with choice goals gets chosen$i /
//                      diffChoice$i companion rules; choice goals are
//                      replaced by a positive chosen$i atom
//   3. RewriteExtrema  least(C, G) becomes a NotExists copy of the body
//                      sharing the group variables G with C' < C inside
//                      (most: C' > C)
//   4. NormalizeNotExists
//                      each NotExists conjunction becomes a fresh
//                      auxiliary predicate + a plain negated atom, giving
//                      a normal logic program for the GL-reduct checker
//
// Generated predicate names contain '$' (chosen$0, diffChoice$0, aux$1),
// which user programs cannot lex — no capture is possible.
#ifndef GDLOG_ANALYSIS_REWRITER_H_
#define GDLOG_ANALYSIS_REWRITER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace gdlog {

struct RewriteOptions {
  // Prefix used for fresh variables introduced by renamings.
  std::string fresh_var_prefix = "R$";
};

/// Step 1. Fails if a rule uses next(I) with I not appearing exactly once
/// among the head arguments, or uses multiple next goals.
Result<Program> ExpandNext(const Program& program);

/// Describes one choice goal of a rewritten rule in terms of positions
/// into the chosen$i predicate's argument list: the FD
/// left_positions -> right_positions must hold among chosen$i facts.
struct ChoiceGoalSig {
  std::vector<uint32_t> left_positions;
  std::vector<uint32_t> right_positions;
};

/// Metadata tying generated chosen$i / diffChoice$i predicates back to
/// the FDs they enforce. The stable-model checker uses this to evaluate
/// diffChoice$i on the fly instead of materializing its (unsafe) rules.
struct ChoiceRewriteInfo {
  struct Entry {
    std::string chosen_name;
    std::string diff_name;
    uint32_t arity = 0;
    std::vector<ChoiceGoalSig> goals;
  };
  std::vector<Entry> entries;
};

/// Step 2. Purely syntactic; never fails on ExpandNext output. If `info`
/// is non-null it receives the chosen/diffChoice metadata.
Program RewriteChoice(const Program& program, ChoiceRewriteInfo* info);

/// Step 2 variant used by stage analysis: simply erase choice goals (the
/// paper's "eliminating the choice goals").
Program EraseChoice(const Program& program);

/// Step 3. Fails if a rule carries more than one extrema goal (the paper
/// never combines two, and their interaction is unspecified), or if the
/// extrema cost term is not a variable.
Result<Program> RewriteExtrema(const Program& program);

/// Step 4. Purely syntactic.
Program NormalizeNotExists(const Program& program);

/// The full pipeline 1-4: the normal logic program whose stable models
/// define the meaning of `program`.
Result<Program> FullSemanticExpansion(const Program& program);

/// Steps 1-3 only (used by the stage-stratification checker, which wants
/// to see NotExists bodies in place rather than behind aux predicates).
Result<Program> ExpandForStageAnalysis(const Program& program);

/// Renames every variable in `lit` via `map`; variables not in the map
/// are added with `fresh(name)`.
class VariableRenamer {
 public:
  /// `suffix` distinguishes one renaming from another within a rule.
  explicit VariableRenamer(std::string prefix) : prefix_(std::move(prefix)) {}

  /// Pre-seeds `name` to map to itself (a shared variable).
  void Share(const std::string& name) { map_[name] = name; }

  TermNode Rename(const TermNode& t);
  Literal Rename(const Literal& l);

 private:
  std::string prefix_;
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace gdlog

#endif  // GDLOG_ANALYSIS_REWRITER_H_
