// Hash index over a subset of a relation's columns.
//
// The complexity results of Section 6 assume "availability of indices":
// each join goal probes the indexed columns bound by earlier goals in
// O(1) expected per matching row. Indices are append-only, mirroring the
// append-only fact store of a fixpoint evaluation: buckets hold chain
// heads into a parallel next[] array, so insertion never moves entries.
//
// Chains are kept in row-insertion order (appended at the tail), and
// Rehash rebuilds them in the same order — so a probe enumerates its
// matches oldest-first, exactly like a full scan, no matter whether the
// entries arrived incrementally, through an EnsureIndex backfill over
// pre-existing rows, or across a rehash. Goal reordering (the join
// planner) and scan partitioning (the parallel evaluator) both rely on
// this: the same database enumerates identically however the index came
// to be.
#ifndef GDLOG_STORAGE_INDEX_H_
#define GDLOG_STORAGE_INDEX_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace gdlog {

using RowId = uint32_t;
inline constexpr RowId kNoRow = UINT32_MAX;

class Index {
 public:
  /// `columns` are the indexed column positions, in probe-key order.
  explicit Index(std::vector<uint32_t> columns);

  const std::vector<uint32_t>& columns() const { return columns_; }

  /// Registers `row` (whose full tuple is `tuple`) under its key columns.
  void Insert(RowId row, TupleView tuple);

  /// Iterates the chain of candidate rows whose key hash matches `key`.
  /// Callers must re-verify column equality on the full tuple (hash
  /// collisions are possible); MatchIterator exposes the raw chain.
  /// Inline: one iterator is constructed per probe, squarely on the
  /// join hot path of both evaluation backends.
  class MatchIterator {
   public:
    MatchIterator(const Index* index, uint64_t hash)
        : index_(index), hash_(hash) {
      const size_t slot = hash & index->bucket_mask_;
      current_ = index->buckets_[slot];
      // Skip non-matching hashes at the head.
      while (current_ != kNoRow && index_->hashes_[current_] != hash_) {
        current_ = index_->next_[current_];
      }
    }

    /// Next candidate row id, or kNoRow when exhausted.
    RowId Next() {
      if (current_ == kNoRow) return kNoRow;
      const RowId row = index_->rows_[current_];
      current_ = index_->next_[current_];
      while (current_ != kNoRow && index_->hashes_[current_] != hash_) {
        current_ = index_->next_[current_];
      }
      return row;
    }

   private:
    const Index* index_;
    uint64_t hash_;
    RowId current_;
  };

  /// Hash of a probe key (one Value per indexed column, in order).
  /// Inline: this sits on the probe hot path of both evaluation
  /// backends.
  static uint64_t HashKey(TupleView key) {
    uint64_t h = 0xabcdef0123456789ull ^ key.size();
    for (Value v : key) h = HashCombine(h, v.Hash());
    return h;
  }

  /// Extracts this index's key hash from a full tuple.
  uint64_t HashRowKey(TupleView tuple) const;

  MatchIterator Probe(uint64_t key_hash) const {
    return MatchIterator(this, key_hash);
  }

  size_t size() const { return rows_.size(); }

  /// Approximate heap footprint, for MemoryBudget accounting.
  size_t ApproxBytes() const {
    return rows_.capacity() * sizeof(RowId) +
           hashes_.capacity() * sizeof(uint64_t) +
           next_.capacity() * sizeof(uint32_t) +
           buckets_.capacity() * sizeof(uint32_t) +
           tails_.capacity() * sizeof(uint32_t);
  }

 private:
  friend class MatchIterator;

  void Rehash(size_t new_bucket_count);
  /// Appends `entry` at the tail of `slot`'s chain.
  void Link(uint32_t entry, size_t slot);

  std::vector<uint32_t> columns_;
  std::vector<RowId> rows_;       // entry -> row id
  std::vector<uint64_t> hashes_;  // entry -> key hash
  std::vector<uint32_t> next_;    // entry -> next entry in chain (or kNoRow)
  std::vector<uint32_t> buckets_; // bucket -> chain head entry (or kNoRow)
  std::vector<uint32_t> tails_;   // bucket -> chain tail entry (or kNoRow)
  size_t bucket_mask_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_STORAGE_INDEX_H_
