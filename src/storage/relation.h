// Append-only relation with set semantics, delta tracking for seminaive
// evaluation, and attached hash indices.
//
// Fixpoint evaluation only ever adds facts, so rows are stored in arrival
// order in one flat Value array. Three watermarks partition the rows for
// the seminaive discipline:
//
//   [0, delta_begin)        "old"   — facts known before the last round
//   [delta_begin, delta_end) "delta" — facts derived in the last round
//   [delta_end, size)        "new"   — facts derived in the current round
//
// AdvanceEpoch() rolls new into delta and delta into old.
#ifndef GDLOG_STORAGE_RELATION_H_
#define GDLOG_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/guardrails.h"
#include "storage/index.h"
#include "storage/tuple.h"

namespace gdlog {

/// One premise of a derivation: a row of some predicate. `pred` holds a
/// PredicateId (declared in catalog.h; a plain uint32_t here keeps
/// relation.h free of the catalog include).
struct ProvPremise {
  uint32_t pred = UINT32_MAX;
  RowId row = kNoRow;
};

class Relation {
 public:
  Relation(std::string name, uint32_t arity);

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }

  /// Inserts a tuple if not already present. Returns the row id and
  /// whether the tuple was new.
  struct InsertResult {
    RowId row;
    bool inserted;
  };
  InsertResult Insert(TupleView tuple);

  /// Removes a tuple, preserving the insertion order of the others.
  /// Only valid before evaluation starts (no indices built, watermarks
  /// still at zero) — Retract exists for EDB edits between loads, not
  /// for the fixpoint, which is append-only. Returns whether the tuple
  /// was present.
  bool Retract(TupleView tuple);

  /// True iff the tuple is present.
  bool Contains(TupleView tuple) const;
  /// Row id of the tuple, or kNoRow.
  RowId Find(TupleView tuple) const;

  TupleView Row(RowId row) const {
    return TupleView(data_.data() + static_cast<size_t>(row) * arity_, arity_);
  }

  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  // -- Seminaive watermarks ----------------------------------------------
  RowId delta_begin() const { return delta_begin_; }
  RowId delta_end() const { return delta_end_; }
  size_t delta_size() const { return delta_end_ - delta_begin_; }
  size_t new_size() const { return num_rows_ - delta_end_; }
  /// Rolls [delta_end, size) into the delta window and the previous delta
  /// into old. Returns the new delta's size.
  size_t AdvanceEpoch();
  /// Makes every current row "old" and empties the delta (used when a
  /// stratum is saturated before the next stratum starts).
  void SealEpoch();

  // -- Indices -------------------------------------------------------------
  /// Ensures a hash index exists on `columns` (probe-key order); returns
  /// its position among this relation's indices. Existing rows are
  /// back-filled. Column lists are deduplicated structurally.
  size_t EnsureIndex(const std::vector<uint32_t>& columns);
  const Index& index(size_t i) const { return *indices_[i]; }
  size_t num_indices() const { return indices_.size(); }

  // -- Provenance ----------------------------------------------------------
  // Optional side-column recording, per row, the rule that first derived
  // it and the premise rows it was derived from. Rows are annotated by
  // the evaluator right after a winning Insert; dedup re-derivations
  // never overwrite (first derivation wins, matching the evaluator's
  // serial order). The column's bytes are part of ApproxBytes, so the
  // MemoryBudget guardrail sees them automatically.

  /// Rule-id sentinel for asserted (EDB) facts.
  static constexpr uint32_t kEdbRule = UINT32_MAX;
  /// Rule-id sentinel for rows inserted but never annotated.
  static constexpr uint32_t kUnknownRule = UINT32_MAX - 1;

  void EnableProvenance();
  bool provenance_enabled() const { return prov_ != nullptr; }

  /// Records the derivation of `row` (no-op when provenance is off or
  /// the row is already annotated).
  void Annotate(RowId row, uint32_t rule_index, const ProvPremise* premises,
                size_t num_premises);

  struct ProvView {
    uint32_t rule_index = kUnknownRule;
    const ProvPremise* premises = nullptr;
    size_t num_premises = 0;
  };
  /// The stored derivation of `row`; rule_index is kUnknownRule when the
  /// column is off or the row was never annotated.
  ProvView ProvenanceOf(RowId row) const;

  /// Rows annotated / premise references stored (0 when off).
  size_t provenance_rows() const;
  size_t provenance_premises() const;

  // -- Memory accounting ---------------------------------------------------
  /// Charges row storage, the dedup set, and indices to `budget` (which
  /// must outlive the relation); growth is re-counted on every insert.
  void set_memory_budget(MemoryBudget* budget);
  /// Approximate heap footprint of this relation.
  size_t ApproxBytes() const;

 private:
  void RehashSet(size_t new_bucket_count);
  void RecountMemory();

  std::string name_;
  uint32_t arity_;

  std::vector<Value> data_;       // flat rows
  size_t num_rows_ = 0;

  // Open-addressing set of row ids for duplicate elimination.
  std::vector<uint32_t> set_buckets_;
  std::vector<uint64_t> row_hashes_;  // row -> content hash
  size_t set_mask_ = 0;

  RowId delta_begin_ = 0;
  RowId delta_end_ = 0;

  MemoryBudget* budget_ = nullptr;
  size_t charged_bytes_ = 0;

  // Provenance side-column (see EnableProvenance): per-row deriving rule
  // plus a span into a shared premise pool.
  struct ProvColumn {
    std::vector<uint32_t> rule;        // per row; kUnknownRule = not yet
    std::vector<uint32_t> span_begin;  // per row, offset into pool
    std::vector<uint32_t> span_len;    // per row
    std::vector<ProvPremise> pool;
    size_t annotated = 0;
  };
  std::unique_ptr<ProvColumn> prov_;

  std::vector<std::unique_ptr<Index>> indices_;
};

}  // namespace gdlog

#endif  // GDLOG_STORAGE_RELATION_H_
