#include "storage/durable/durable_store.h"

#include <dirent.h>

#include <new>

#include "common/guardrails.h"
#include "storage/durable/io.h"

namespace gdlog {

namespace {

constexpr std::string_view kSnapMagic = "GDSNAP1\n";  // 8 bytes
constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kManifestMagic = "GDMANIFEST1";

Status SnapshotCorrupt(std::string msg) {
  return Status::RuntimeError("[GD212] " + std::move(msg));
}

std::string HexU32(uint32_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[i] = kDigits[v & 0xF];
    v >>= 4;
  }
  return s;
}

// Parses "key=<decimal>" returning false on any malformation.
bool ParseField(std::string_view token, std::string_view key, uint64_t* out) {
  if (token.size() <= key.size() + 1 ||
      token.substr(0, key.size()) != key || token[key.size()] != '=') {
    return false;
  }
  uint64_t v = 0;
  for (char c : token.substr(key.size() + 1)) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

DurableStore::~DurableStore() {
  // Best-effort: callers that care about the final sync status call
  // Close() themselves.
  if (open_) (void)Close();
}

std::string DurableStore::WalPath(uint64_t seq) const {
  return options_.dir + "/wal-" + std::to_string(seq) + ".log";
}

std::string DurableStore::SnapshotPath(uint64_t seq) const {
  return options_.dir + "/snapshot-" + std::to_string(seq) + ".gds";
}

// -- Mirror -------------------------------------------------------------------

DurableStore::EdbRelation* DurableStore::FindRelation(std::string_view name,
                                                      uint32_t arity) {
  for (EdbRelation& r : relations_) {
    if (r.arity == arity && r.name == name) return &r;
  }
  return nullptr;
}

DurableStore::EdbRelation& DurableStore::EnsureRelation(std::string_view name,
                                                        uint32_t arity) {
  if (EdbRelation* r = FindRelation(name, arity)) return *r;
  relations_.emplace_back();
  relations_.back().name.assign(name);
  relations_.back().arity = arity;
  return relations_.back();
}

void DurableStore::ApplyRecord(const WalRecord& rec) {
  switch (rec.type) {
    case WalRecordType::kCreateRelation:
      EnsureRelation(rec.name, rec.arity);
      return;
    case WalRecordType::kAddFact: {
      EdbRelation& r = EnsureRelation(rec.name, rec.arity);
      r.rows.insert(r.rows.end(), rec.tuple.begin(), rec.tuple.end());
      ++r.num_rows;
      ++total_facts_;
      return;
    }
    case WalRecordType::kRetract: {
      EdbRelation* r = FindRelation(rec.name, rec.arity);
      if (r == nullptr) return;  // redo of a no-op retract
      for (size_t row = 0; row < r->num_rows; ++row) {
        const TupleView have(r->rows.data() + row * rec.arity, rec.arity);
        if (TupleEquals(have, rec.tuple)) {
          r->rows.erase(r->rows.begin() + row * rec.arity,
                        r->rows.begin() + (row + 1) * rec.arity);
          --r->num_rows;
          --total_facts_;
          return;
        }
      }
      return;
    }
  }
}

size_t DurableStore::MirrorBytes() const {
  size_t bytes = relations_.capacity() * sizeof(EdbRelation);
  for (const EdbRelation& r : relations_) {
    bytes += r.rows.capacity() * sizeof(Value) + r.name.capacity();
  }
  return bytes;
}

Status DurableStore::ChargeBudget(size_t extra_buffer_bytes) {
  if (options_.budget == nullptr) return Status::OK();
  try {
    options_.budget->Update(&charged_, MirrorBytes() + extra_buffer_bytes);
  } catch (const std::bad_alloc&) {
    // The alloc fault probe (or a genuinely exhausted heap) fires inside
    // Update; surface it as a Status like every other durability failure.
    return Status::OutOfMemory(
        "[GD206] allocation failure charging durability buffers");
  }
  return Status::OK();
}

void DurableStore::Latch(const Status& why) {
  if (!failed_.ok()) return;
  failed_ = Status::RuntimeError(
      "[GD210] durable store '" + options_.dir +
      "' closed to mutations after an unrecoverable failure (reopen to "
      "recover): " + why.message());
}

Status DurableStore::TakeDeferredError() {
  Status st = std::move(deferred_);
  deferred_ = Status::OK();
  return st;
}

void DurableStore::FinishMutation() {
  ++appends_since_checkpoint_;
  // The record is durable from here on; nothing below may fail the
  // mutation (the caller would retry it and duplicate the add in the
  // log). A budget failure leaves the accounting out of step with the
  // mirror, so it latches; a safe checkpoint failure just retries on
  // the next cadence hit (fatal ones latch inside Checkpoint()).
  if (Status st = ChargeBudget(0); !st.ok()) {
    Latch(st);
    if (deferred_.ok()) deferred_ = std::move(st);
    return;
  }
  if (Status st = MaybeAutoCheckpoint(); !st.ok()) {
    ++checkpoint_failures_;
    if (deferred_.ok()) deferred_ = std::move(st);
  }
}

// -- Manifest -----------------------------------------------------------------

Status DurableStore::WriteManifest(uint64_t snapshot_seq, uint64_t wal_seq,
                                   bool* renamed) {
  std::string body(kManifestMagic);
  body += " snapshot=" + std::to_string(snapshot_seq);
  body += " wal=" + std::to_string(wal_seq);
  std::string line = body + " crc=" +
                     HexU32(Crc32(body.data(), body.size())) + "\n";

  const std::string tmp = options_.dir + "/MANIFEST.tmp";
  const std::string final_path = options_.dir + "/" + std::string(kManifestName);
  GDLOG_ASSIGN_OR_RETURN(FileHandle f, OpenTrunc(tmp));
  GDLOG_RETURN_IF_ERROR(WriteFully(f, line.data(), line.size(), 0));
  GDLOG_RETURN_IF_ERROR(Fsync(f));
  GDLOG_RETURN_IF_ERROR(f.Close());
  GDLOG_RETURN_IF_ERROR(RenameFile(tmp, final_path));
  if (renamed != nullptr) *renamed = true;
  return FsyncDir(options_.dir);
}

namespace {

Status ParseManifest(const std::string& path, const std::string& text,
                     uint64_t* snapshot_seq, uint64_t* wal_seq) {
  // "GDMANIFEST1 snapshot=<S> wal=<W> crc=<hex>\n"
  std::string_view line(text);
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  const size_t crc_at = line.rfind(" crc=");
  if (line.substr(0, kManifestMagic.size()) != kManifestMagic ||
      crc_at == std::string_view::npos) {
    return SnapshotCorrupt("malformed manifest '" + path + "'");
  }
  const std::string_view body = line.substr(0, crc_at);
  const std::string_view crc_hex = line.substr(crc_at + 5);
  uint32_t want = 0;
  if (crc_hex.size() != 8) {
    return SnapshotCorrupt("malformed manifest crc in '" + path + "'");
  }
  for (char c : crc_hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return SnapshotCorrupt("malformed manifest crc in '" + path + "'");
    }
    want = want << 4 | digit;
  }
  if (Crc32(body.data(), body.size()) != want) {
    return SnapshotCorrupt("manifest checksum mismatch in '" + path + "'");
  }
  // Fields after the magic: "snapshot=<S> wal=<W>".
  std::string_view rest = body.substr(kManifestMagic.size());
  bool have_snapshot = false, have_wal = false;
  while (!rest.empty()) {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    const size_t sp = rest.find(' ');
    const std::string_view token =
        sp == std::string_view::npos ? rest : rest.substr(0, sp);
    rest = sp == std::string_view::npos ? std::string_view()
                                        : rest.substr(sp + 1);
    if (ParseField(token, "snapshot", snapshot_seq)) {
      have_snapshot = true;
    } else if (ParseField(token, "wal", wal_seq)) {
      have_wal = true;
    } else if (!token.empty()) {
      return SnapshotCorrupt("unknown manifest field '" + std::string(token) +
                             "' in '" + path + "'");
    }
  }
  if (!have_snapshot || !have_wal || *wal_seq == 0) {
    return SnapshotCorrupt("incomplete manifest '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

// -- Snapshot -----------------------------------------------------------------

Status DurableStore::LoadSnapshot(const std::string& path,
                                  uint64_t expected_seq) {
  std::string bytes;
  GDLOG_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
  if (bytes.size() < kSnapMagic.size() + 8 + 4 ||
      std::string_view(bytes.data(), kSnapMagic.size()) != kSnapMagic) {
    return SnapshotCorrupt("bad snapshot magic in '" + path + "'");
  }
  const size_t body_begin = kSnapMagic.size();
  const size_t body_size = bytes.size() - body_begin - 4;
  const uint32_t got_crc =
      Crc32(bytes.data() + body_begin, body_size);
  ByteReader trailer{bytes.data(), bytes.size(), bytes.size() - 4};
  uint32_t want_crc = 0;
  GDLOG_RETURN_IF_ERROR(trailer.ReadU32(&want_crc));
  if (got_crc != want_crc) {
    return SnapshotCorrupt("snapshot checksum mismatch in '" + path + "'");
  }

  ByteReader r{bytes.data(), body_begin + body_size, body_begin};
  uint64_t seq = 0;
  GDLOG_RETURN_IF_ERROR(r.ReadU64(&seq));
  if (seq != expected_seq) {
    return SnapshotCorrupt("snapshot sequence mismatch in '" + path +
                           "': image has " + std::to_string(seq) +
                           ", manifest expects " +
                           std::to_string(expected_seq));
  }
  uint32_t num_relations = 0;
  GDLOG_RETURN_IF_ERROR(r.ReadU32(&num_relations));
  for (uint32_t i = 0; i < num_relations; ++i) {
    uint32_t name_len = 0;
    GDLOG_RETURN_IF_ERROR(r.ReadU32(&name_len));
    std::string_view name;
    GDLOG_RETURN_IF_ERROR(r.ReadBytes(name_len, &name));
    uint32_t arity = 0;
    GDLOG_RETURN_IF_ERROR(r.ReadU32(&arity));
    uint64_t num_rows = 0;
    GDLOG_RETURN_IF_ERROR(r.ReadU64(&num_rows));
    EdbRelation& rel = EnsureRelation(name, arity);
    for (uint64_t row = 0; row < num_rows; ++row) {
      for (uint32_t col = 0; col < arity; ++col) {
        Value v;
        GDLOG_RETURN_IF_ERROR(r.ReadValue(store_, &v));
        rel.rows.push_back(v);
      }
      ++rel.num_rows;
      ++total_facts_;
    }
    ++recovery_.snapshot_relations;
    recovery_.snapshot_facts += num_rows;
  }
  if (!r.AtEnd()) {
    return SnapshotCorrupt("trailing bytes in snapshot '" + path + "'");
  }
  return Status::OK();
}

// -- Open / recovery ----------------------------------------------------------

Status DurableStore::Open(const Options& options, ValueStore* store) {
  if (open_) return Status::Internal("DurableStore::Open called twice");
  options_ = options;
  store_ = store;
  relations_.clear();
  total_facts_ = 0;
  recovery_ = RecoveryInfo{};
  failed_ = Status::OK();
  deferred_ = Status::OK();
  checkpoint_failures_ = 0;

  GDLOG_RETURN_IF_ERROR(EnsureDir(options_.dir));

  const std::string manifest_path =
      options_.dir + "/" + std::string(kManifestName);
  snapshot_seq_ = 0;
  wal_seq_ = 1;
  if (FileExists(manifest_path)) {
    recovery_.opened_existing = true;
    std::string text;
    GDLOG_RETURN_IF_ERROR(ReadWholeFile(manifest_path, &text));
    GDLOG_RETURN_IF_ERROR(
        ParseManifest(manifest_path, text, &snapshot_seq_, &wal_seq_));

    if (options_.injector != nullptr &&
        options_.injector->Hit(FaultInjector::kRecoveryReplay)) {
      return Status::RuntimeError(
          "[GD211] injected recovery fault replaying '" + options_.dir + "'");
    }

    if (snapshot_seq_ != 0) {
      GDLOG_RETURN_IF_ERROR(
          LoadSnapshot(SnapshotPath(snapshot_seq_), snapshot_seq_));
    }
    GDLOG_ASSIGN_OR_RETURN(WalScan scan,
                           ReadWal(WalPath(wal_seq_), wal_seq_, store_));
    for (const WalRecord& rec : scan.records) ApplyRecord(rec);
    recovery_.wal_records_replayed = scan.records.size();
    recovery_.wal_valid_bytes = scan.valid_size;
    recovery_.wal_dropped_bytes = scan.dropped_bytes;
    recovery_.wal_tail_dropped = scan.tail_dropped;
  } else {
    // Fresh database: publish a manifest before the first WAL write so a
    // reopen always finds one (a missing wal-1.log reads as empty).
    GDLOG_RETURN_IF_ERROR(WriteManifest(0, 1));
  }
  recovery_.snapshot_seq = snapshot_seq_;
  recovery_.wal_seq = wal_seq_;

  wal_.set_options({options_.fsync, options_.wal_batch_bytes,
                    options_.injector});
  GDLOG_RETURN_IF_ERROR(
      wal_.Open(WalPath(wal_seq_), wal_seq_, recovery_.wal_valid_bytes));

  SweepStaleFiles();
  GDLOG_RETURN_IF_ERROR(ChargeBudget(0));
  open_ = true;
  return Status::OK();
}

void DurableStore::SweepStaleFiles() {
  // A crash between the manifest swap and the old-pair deletion leaves
  // unreferenced wal-*/snapshot-* files behind; drop them (best effort —
  // stale files are harmless, just wasted bytes).
  DIR* d = ::opendir(options_.dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> stale;
  while (struct dirent* e = ::readdir(d)) {
    const std::string_view n(e->d_name);
    const bool wal = n.size() > 8 && n.substr(0, 4) == "wal-" &&
                     n.substr(n.size() - 4) == ".log";
    const bool snap = n.size() > 13 && n.substr(0, 9) == "snapshot-" &&
                      n.substr(n.size() - 4) == ".gds";
    if (!wal && !snap) continue;
    const std::string full = options_.dir + "/" + std::string(n);
    if (full == WalPath(wal_seq_) ||
        (snapshot_seq_ != 0 && full == SnapshotPath(snapshot_seq_))) {
      continue;
    }
    stale.push_back(full);
  }
  ::closedir(d);
  for (const std::string& path : stale) (void)RemoveFile(path);
}

// -- Mutations ----------------------------------------------------------------

Status DurableStore::LogCreateRelation(std::string_view name, uint32_t arity) {
  if (!open_) return Status::Internal("DurableStore not open");
  GDLOG_RETURN_IF_ERROR(failed_);
  if (FindRelation(name, arity) != nullptr) return Status::OK();
  GDLOG_RETURN_IF_ERROR(wal_.Append(*store_, WalRecordType::kCreateRelation,
                                    name, arity, TupleView()));
  EnsureRelation(name, arity);
  FinishMutation();
  return Status::OK();
}

Status DurableStore::LogAddFact(std::string_view name, uint32_t arity,
                                TupleView tuple) {
  if (!open_) return Status::Internal("DurableStore not open");
  GDLOG_RETURN_IF_ERROR(failed_);
  GDLOG_RETURN_IF_ERROR(
      wal_.Append(*store_, WalRecordType::kAddFact, name, arity, tuple));
  EdbRelation& r = EnsureRelation(name, arity);
  r.rows.insert(r.rows.end(), tuple.begin(), tuple.end());
  ++r.num_rows;
  ++total_facts_;
  FinishMutation();
  return Status::OK();
}

Status DurableStore::LogRetract(std::string_view name, uint32_t arity,
                                TupleView tuple) {
  if (!open_) return Status::Internal("DurableStore not open");
  GDLOG_RETURN_IF_ERROR(failed_);
  GDLOG_RETURN_IF_ERROR(
      wal_.Append(*store_, WalRecordType::kRetract, name, arity, tuple));
  WalRecord rec;
  rec.type = WalRecordType::kRetract;
  rec.name.assign(name);
  rec.arity = arity;
  rec.tuple.assign(tuple.begin(), tuple.end());
  ApplyRecord(rec);
  FinishMutation();
  return Status::OK();
}

Status DurableStore::Sync() {
  if (!open_) return Status::OK();
  GDLOG_RETURN_IF_ERROR(failed_);
  return wal_.Sync();
}

Status DurableStore::MaybeAutoCheckpoint() {
  if (options_.checkpoint_every == 0 ||
      appends_since_checkpoint_ < options_.checkpoint_every) {
    return Status::OK();
  }
  return Checkpoint();
}

// -- Checkpoint ---------------------------------------------------------------

Status DurableStore::Checkpoint() {
  if (!open_) return Status::Internal("DurableStore not open");
  GDLOG_RETURN_IF_ERROR(failed_);

  const uint64_t new_snapshot = snapshot_seq_ + 1;
  const uint64_t new_wal = wal_seq_ + 1;

  // 1. Encode the mirror. The image buffer is charged to the budget for
  //    its lifetime.
  std::string image(kSnapMagic);
  AppendU64(&image, new_snapshot);
  AppendU32(&image, static_cast<uint32_t>(relations_.size()));
  for (const EdbRelation& r : relations_) {
    AppendBytes(&image, r.name);
    AppendU32(&image, r.arity);
    AppendU64(&image, r.num_rows);
    for (size_t i = 0; i < r.num_rows * r.arity; ++i) {
      AppendValue(&image, *store_, r.rows[i]);
    }
  }
  AppendU32(&image, Crc32(image.data() + kSnapMagic.size(),
                          image.size() - kSnapMagic.size()));
  GDLOG_RETURN_IF_ERROR(ChargeBudget(image.size()));

  bool manifest_renamed = false;
  Status st = [&]() -> Status {
    if (options_.injector != nullptr &&
        options_.injector->Hit(FaultInjector::kCheckpointWrite)) {
      return Status::RuntimeError(
          "[GD210] injected checkpoint write fault for '" +
          SnapshotPath(new_snapshot) + "'");
    }

    // 2. Snapshot: temp + fsync + rename + fsync(dir).
    const std::string snap_path = SnapshotPath(new_snapshot);
    const std::string snap_tmp = snap_path + ".tmp";
    {
      GDLOG_ASSIGN_OR_RETURN(FileHandle f, OpenTrunc(snap_tmp));
      GDLOG_RETURN_IF_ERROR(WriteFully(f, image.data(), image.size(), 0));
      GDLOG_RETURN_IF_ERROR(Fsync(f));
      GDLOG_RETURN_IF_ERROR(f.Close());
    }
    GDLOG_RETURN_IF_ERROR(RenameFile(snap_tmp, snap_path));
    GDLOG_RETURN_IF_ERROR(FsyncDir(options_.dir));

    // 3. Start the next WAL before the manifest can name it.
    WalWriter next;
    next.set_options({options_.fsync, options_.wal_batch_bytes,
                      options_.injector});
    GDLOG_RETURN_IF_ERROR(next.Open(WalPath(new_wal), new_wal, 0));
    GDLOG_RETURN_IF_ERROR(next.Sync());
    GDLOG_RETURN_IF_ERROR(FsyncDir(options_.dir));

    // 4. The swap: after this rename the new pair is in force.
    GDLOG_RETURN_IF_ERROR(
        WriteManifest(new_snapshot, new_wal, &manifest_renamed));

    // 5. Commit the in-memory view before any retire I/O, and treat the
    //    old pair as best-effort cleanup: the old WAL is superseded, so
    //    even its close/sync failing is moot, and stale files from a
    //    failed delete are swept on reopen.
    const std::string old_wal = WalPath(wal_seq_);
    const std::string old_snap =
        snapshot_seq_ != 0 ? SnapshotPath(snapshot_seq_) : std::string();
    (void)wal_.Close();
    wal_ = std::move(next);
    snapshot_seq_ = new_snapshot;
    wal_seq_ = new_wal;
    appends_since_checkpoint_ = 0;
    ++checkpoints_;
    last_checkpoint_bytes_ = image.size();
    (void)RemoveFile(old_wal);
    if (!old_snap.empty()) (void)RemoveFile(old_snap);
    return Status::OK();
  }();

  if (!st.ok() && manifest_renamed) {
    // The on-disk MANIFEST already names the new (empty) WAL while this
    // process would keep appending to the retired one — those appends
    // would be acknowledged and then vanish on reopen. Nothing after
    // the rename can be trusted, so refuse all further mutations.
    Latch(st);
  }
  GDLOG_RETURN_IF_ERROR(ChargeBudget(0));  // release the image buffer charge
  return st;
}

Status DurableStore::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  Status st = wal_.Close();
  if (options_.budget != nullptr) {
    options_.budget->Update(&charged_, 0);
  }
  return st;
}

DurableStore::Stats DurableStore::stats() const {
  Stats s;
  s.wal_appends = wal_.appends();
  s.wal_fsyncs = wal_.fsyncs();
  s.wal_bytes_appended = wal_.bytes_appended();
  s.wal_size_bytes = wal_.size_bytes();
  s.checkpoints = checkpoints_;
  s.checkpoint_bytes = last_checkpoint_bytes_;
  s.checkpoint_failures = checkpoint_failures_;
  s.edb_relations = relations_.size();
  s.edb_facts = total_facts_;
  return s;
}

}  // namespace gdlog
