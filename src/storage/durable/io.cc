#include "storage/durable/io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cstdio>

namespace gdlog {

namespace {

Status ErrnoStatus(std::string_view op, const std::string& path, int err,
                   uint64_t offset = UINT64_MAX) {
  std::string msg = "[GD210] ";
  msg += op;
  msg += " failed for '";
  msg += path;
  msg += "'";
  if (offset != UINT64_MAX) {
    msg += " at offset " + std::to_string(offset);
  }
  msg += ": ";
  msg += strerror(err);
  msg += " (errno " + std::to_string(err) + ")";
  return Status::RuntimeError(std::move(msg));
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto& table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

FileHandle::~FileHandle() {
  if (fd_ >= 0) ::close(fd_);
}

FileHandle::FileHandle(FileHandle&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)) {
  o.fd_ = -1;
}

FileHandle& FileHandle::operator=(FileHandle&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    o.fd_ = -1;
  }
  return *this;
}

Status FileHandle::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0 && errno != EINTR) {
    return ErrnoStatus("close", path_, errno);
  }
  return Status::OK();
}

namespace {

Result<FileHandle> OpenWithFlags(const std::string& path, int flags,
                                 std::string_view op) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return ErrnoStatus(op, path, errno);
  return FileHandle(fd, path);
}

}  // namespace

Result<FileHandle> OpenAppend(const std::string& path, uint64_t* size) {
  GDLOG_ASSIGN_OR_RETURN(
      FileHandle f,
      OpenWithFlags(path, O_WRONLY | O_CREAT | O_APPEND, "open(append)"));
  struct stat st;
  if (::fstat(f.fd(), &st) != 0) {
    return ErrnoStatus("fstat", path, errno);
  }
  if (size != nullptr) *size = static_cast<uint64_t>(st.st_size);
  return f;
}

Result<FileHandle> OpenRead(const std::string& path) {
  return OpenWithFlags(path, O_RDONLY, "open(read)");
}

Result<FileHandle> OpenTrunc(const std::string& path) {
  return OpenWithFlags(path, O_WRONLY | O_CREAT | O_TRUNC, "open(trunc)");
}

Status WriteFully(const FileHandle& f, const void* data, size_t len,
                  uint64_t offset) {
  const auto* p = static_cast<const unsigned char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(f.fd(), p + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", f.path(), errno, offset + done);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadAt(const FileHandle& f, void* data, size_t len,
                      uint64_t offset) {
  auto* p = static_cast<unsigned char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(f.fd(), p + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", f.path(), errno, offset + done);
    }
    if (n == 0) break;  // EOF
    done += static_cast<size_t>(n);
  }
  return done;
}

Status Fsync(const FileHandle& f) {
  int rc;
  do {
    rc = ::fsync(f.fd());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("fsync", f.path(), errno);
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  GDLOG_ASSIGN_OR_RETURN(FileHandle d,
                         OpenWithFlags(dir, O_RDONLY, "open(dir)"));
  GDLOG_RETURN_IF_ERROR(Fsync(d));
  return d.Close();
}

Status RenameFile(const std::string& from, const std::string& to) {
  int rc;
  do {
    rc = ::rename(from.c_str(), to.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("rename", from + " -> " + to, errno);
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path, errno);
  }
  return Status::OK();
}

Status TruncateFile(const FileHandle& f, uint64_t size) {
  int rc;
  do {
    rc = ::ftruncate(f.fd(), static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoStatus("ftruncate", f.path(), errno, size);
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", dir, errno);
  }
  return Status::OK();
}

bool FileExists(const std::string& path, uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  if (size != nullptr) *size = static_cast<uint64_t>(st.st_size);
  return true;
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  GDLOG_ASSIGN_OR_RETURN(FileHandle f, OpenRead(path));
  uint64_t size = 0;
  struct stat st;
  if (::fstat(f.fd(), &st) == 0) size = static_cast<uint64_t>(st.st_size);
  out->resize(size);
  GDLOG_ASSIGN_OR_RETURN(size_t n, ReadAt(f, out->data(), size, 0));
  out->resize(n);
  return f.Close();
}

}  // namespace gdlog
