// DurableStore: the crash-safe home of the EDB.
//
// Durability covers the extensional database — relation creations and
// asserted facts (AddFact / Retract). The fixpoint is NOT persisted: on
// reopen the engine replays the recovered EDB and re-derives it, which
// the engine's deterministic evaluation makes bit-identical to the
// uninterrupted run (the chaos test in tests/durability_test.cc holds it
// to that).
//
// On-disk layout of a database directory:
//
//   MANIFEST            "GDMANIFEST1 snapshot=<S> wal=<W> crc=<hex>\n"
//   snapshot-<S>.gds    full EDB image: "GDSNAP1\n" u64 S, body, u32 crc
//   wal-<W>.log         mutations since snapshot S (see wal.h)
//
// The manifest names exactly one (snapshot, wal) pair and is replaced
// atomically (write MANIFEST.tmp, fsync, rename, fsync dir), so a crash
// at any instant leaves either the old pair or the new pair in force —
// never a mix. Checkpoint() writes snapshot S+1 from the in-memory
// mirror, starts wal W+1, swaps the manifest, then deletes the old pair;
// stale files from a crash between swap and delete are swept on Open.
//
// Recovery (redo-only): read the manifest, load the snapshot it names,
// replay the WAL tail stopping at the first torn record, truncate the
// tail, and reopen the WAL for appending. Every mutation is logged
// before it is applied (write-ahead), so a crash loses at most the
// mutation whose append never completed.
//
// The store keeps an in-memory mirror of the EDB so checkpoints are
// exact regardless of what derived facts the engine's catalog has
// accumulated. Mirror rows and checkpoint I/O buffers are charged to the
// MemoryBudget.
#ifndef GDLOG_STORAGE_DURABLE_DURABLE_STORE_H_
#define GDLOG_STORAGE_DURABLE_DURABLE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/durable/wal.h"
#include "storage/tuple.h"
#include "value/value.h"

namespace gdlog {

class FaultInjector;
class MemoryBudget;

class DurableStore {
 public:
  struct Options {
    std::string dir;  // database directory (created if absent)
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    uint64_t wal_batch_bytes = 1 << 20;   // sync cadence under kBatch
    uint64_t checkpoint_every = 0;        // auto-checkpoint after N appends
                                          // (0 = only explicit Checkpoint())
    FaultInjector* injector = nullptr;    // durability probes (may be null)
    MemoryBudget* budget = nullptr;       // mirror + buffer charges
  };

  /// One recovered EDB relation; `rows` is a flat Value array of
  /// `num_rows` x `arity` in original insertion order.
  struct EdbRelation {
    std::string name;
    uint32_t arity = 0;
    std::vector<Value> rows;
    size_t num_rows = 0;
  };

  /// What Open() found on disk, for the RunReport and recovery tests.
  struct RecoveryInfo {
    bool opened_existing = false;  // a manifest was present
    uint64_t snapshot_seq = 0;     // 0 = no snapshot yet
    uint64_t wal_seq = 0;
    uint64_t snapshot_relations = 0;
    uint64_t snapshot_facts = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t wal_valid_bytes = 0;    // recovered-up-to offset in the WAL
    uint64_t wal_dropped_bytes = 0;  // torn tail discarded
    bool wal_tail_dropped = false;
  };

  /// Counters for metrics / the RunReport durability section.
  struct Stats {
    uint64_t wal_appends = 0;
    uint64_t wal_fsyncs = 0;
    uint64_t wal_bytes_appended = 0;
    uint64_t wal_size_bytes = 0;
    uint64_t checkpoints = 0;
    uint64_t checkpoint_bytes = 0;  // last snapshot image size
    uint64_t checkpoint_failures = 0;  // auto-checkpoints that failed
    uint64_t edb_relations = 0;
    uint64_t edb_facts = 0;
  };

  DurableStore() = default;
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Creates/opens the database directory, recovers any on-disk state
  /// into the mirror (interning values into `store`, which must outlive
  /// this object), truncates a torn WAL tail, and opens the WAL for
  /// appending. Fails with [GD211]/[GD212] on real corruption (a torn
  /// tail is not corruption) and [GD210] on I/O errors.
  Status Open(const Options& options, ValueStore* store);

  bool open() const { return open_; }
  const std::string& dir() const { return options_.dir; }
  FsyncPolicy fsync_policy() const { return options_.fsync; }

  // -- Write-ahead mutations ----------------------------------------------
  // Each logs first, then applies to the mirror. All return [GD210] on
  // append failure, leaving the mirror unchanged (the failed record is
  // at worst a torn tail for the next recovery to drop).
  //
  // Once the append has succeeded the mutation is durable and these
  // report success: a later bookkeeping failure (budget charge, an
  // auto-checkpoint) must not make the caller retry — the retry would
  // pass its dedup probe and log the fact a second time, breaking the
  // no-duplicate-adds invariant retract-by-first-match replay relies on.
  // Such failures are kept for TakeDeferredError() instead, and when the
  // store can no longer be trusted (budget failure mid-apply, a
  // checkpoint that died after the manifest swap) it latches: every
  // further mutation fails with the latched status until reopened.

  Status LogCreateRelation(std::string_view name, uint32_t arity);
  Status LogAddFact(std::string_view name, uint32_t arity, TupleView tuple);
  Status LogRetract(std::string_view name, uint32_t arity, TupleView tuple);

  /// Returns and clears the first post-append bookkeeping failure since
  /// the last call (OK when none). Callers poll it after a successful
  /// mutation to report the problem without un-acknowledging the write.
  Status TakeDeferredError();

  /// Forces outstanding WAL appends to disk (policy permitting).
  Status Sync();

  /// Writes a snapshot of the mirror, rotates to a fresh WAL, and swaps
  /// the manifest atomically. On failure before the manifest rename the
  /// previous (snapshot, wal) pair remains in force and appends continue
  /// safely; a failure after the rename means the on-disk manifest may
  /// already name the new pair, so the store latches — appending to the
  /// retired WAL would lose those records on reopen.
  Status Checkpoint();

  /// Sync and close the WAL. Open() may be called again afterwards.
  Status Close();

  // -- Recovered state ------------------------------------------------------
  const RecoveryInfo& recovery() const { return recovery_; }
  /// The EDB mirror, in creation order (replay these into the catalog).
  const std::vector<EdbRelation>& relations() const { return relations_; }
  Stats stats() const;
  uint64_t wal_seq() const { return wal_seq_; }
  uint64_t snapshot_seq() const { return snapshot_seq_; }

 private:
  EdbRelation* FindRelation(std::string_view name, uint32_t arity);
  EdbRelation& EnsureRelation(std::string_view name, uint32_t arity);
  void ApplyRecord(const WalRecord& rec);
  Status ChargeBudget(size_t extra_buffer_bytes);
  size_t MirrorBytes() const;
  /// Refuses every further mutation with a [GD210] wrapping `why`.
  void Latch(const Status& why);
  /// Post-append bookkeeping after a successful WAL append: budget
  /// true-up (latching on failure) and the auto-checkpoint cadence
  /// (counting failures). Never fails the surrounding mutation; errors
  /// go to the deferred slot.
  void FinishMutation();
  /// `renamed`, when non-null, is set once MANIFEST has been renamed
  /// into place — the point after which a failure can no longer be
  /// retried safely.
  Status WriteManifest(uint64_t snapshot_seq, uint64_t wal_seq,
                       bool* renamed = nullptr);
  Status LoadSnapshot(const std::string& path, uint64_t expected_seq);
  std::string WalPath(uint64_t seq) const;
  std::string SnapshotPath(uint64_t seq) const;
  void SweepStaleFiles();
  Status MaybeAutoCheckpoint();

  Options options_;
  ValueStore* store_ = nullptr;
  bool open_ = false;
  Status failed_;    // latched: mutations refused until reopen
  Status deferred_;  // first unreported post-append failure

  std::vector<EdbRelation> relations_;
  size_t total_facts_ = 0;

  WalWriter wal_;
  uint64_t wal_seq_ = 0;
  uint64_t snapshot_seq_ = 0;
  uint64_t appends_since_checkpoint_ = 0;

  RecoveryInfo recovery_;
  uint64_t checkpoints_ = 0;
  uint64_t checkpoint_failures_ = 0;
  uint64_t last_checkpoint_bytes_ = 0;

  size_t charged_ = 0;  // MemoryBudget bookkeeping
};

}  // namespace gdlog

#endif  // GDLOG_STORAGE_DURABLE_DURABLE_STORE_H_
